#!/usr/bin/env python3
"""Quickstart: encrypted analytics over a sales table with the session API.

Demonstrates the full Seabed loop from the paper's Figure 5:

1. describe the plaintext schema (what is sensitive, what the domains are),
2. let the planner pick encryption schemes from sample queries,
3. upload data (the session encrypts; the server sees only ciphertexts),
4. query three ways -- SQL strings (translation cached by shape), the
   fluent builder, and a PreparedQuery that translates once and re-binds
   parameters on every execute.

Run:  python examples/quickstart.py [--persist DIR] [--append]

With ``--persist DIR`` the script also runs the deployment loop: save
the encrypted table to a partition store under DIR, attach it from a
fresh session (same master key, zero re-encryption), and check the
reopened table answers identically.

With ``--append`` it then runs the ingestion lifecycle on that store:
stream fresh batches in with ``append_rows`` (each encrypts only its
batch and lands as a new store *generation*), inspect the generation
log, and ``compact`` the small generations back into full-size
partitions.  Implies a temporary store when ``--persist`` is not given.

With ``--pruned`` it demos the zone-map index: time-clustered batches
are appended (each covering a disjoint ``amount`` range, the way
arriving traffic clusters by time), and a selective range query is run
with and without pruning -- identical answers, most partitions never
dispatched.  Also implies a temporary store when needed.

With ``--shards N`` it demos sharded multi-node execution: the same
table is split across N process-isolated shard workers keyed on
``country``, a group-by is scatter-gathered (node-side partial
aggregates, one merge), a point query is ring-routed to its owning
shard, and a worker is killed mid-query to show replica failover --
every answer identical to the single-store session.

With ``--serve`` it demos the service layer: the table is persisted,
hosted by an asyncio Seabed server on a localhost socket, and queried
through a second session over ``RemoteTransport`` with a bearer token
-- answers bit-identical to the in-process session, and the keyless
audit runs *inside the serving process* to show it holds no keys.

With ``--connect HOST:PORT --token TOKEN`` the script talks to an
already-running server (``python -m repro.net.service``) instead;
add ``--table PATH`` to open a hosted store and run a count query.
"""

import argparse
import tempfile

import numpy as np

from repro import SeabedSession, col
from repro.core.schema import ColumnSpec, TableSchema
from repro.ops import OPS

parser = argparse.ArgumentParser(description="Seabed quickstart")
parser.add_argument(
    "--persist", metavar="DIR", default=None,
    help="save the table under DIR and re-attach it from a fresh session",
)
parser.add_argument(
    "--append", action="store_true",
    help="demo incremental ingestion (append batches, generations, compaction)",
)
parser.add_argument(
    "--pruned", action="store_true",
    help="demo zone-map partition pruning on a selective range query",
)
parser.add_argument(
    "--shards", metavar="N", type=int, default=0,
    help="demo sharded scatter-gather execution across N worker processes",
)
parser.add_argument(
    "--serve", action="store_true",
    help="demo the service layer: host the table over a socket and query "
         "it through a remote session",
)
parser.add_argument(
    "--metrics", action="store_true",
    help="demo the telemetry layer: run a traced query, print the stitched "
         "cross-process span tree, and scrape the server's Prometheus "
         "metrics over the wire (implies --serve)",
)
parser.add_argument(
    "--connect", metavar="HOST:PORT", default=None,
    help="connect to an already-running Seabed server instead of hosting one",
)
parser.add_argument(
    "--token", default=None,
    help="bearer token for --connect (minted by the server's --grant)",
)
parser.add_argument(
    "--table", metavar="PATH", default=None,
    help="store path to open over --connect",
)
args = parser.parse_args()
if args.metrics:
    args.serve = True

#: Fixed for the demo so --persist can attach from a fresh session; real
#: deployments generate and guard this key.
MASTER_KEY = b"quickstart-demo-master-key-32byt"

rng = np.random.default_rng(42)
N = 50_000
COUNTRIES = ["us", "ca", "in", "uk", "de", "br", "jp"]

# -- 1. the plaintext data -----------------------------------------------------
data = {
    "country": rng.choice(COUNTRIES, N, p=[0.4, 0.3, 0.1, 0.08, 0.06, 0.04, 0.02]),
    "amount": rng.integers(1, 10_000, N),
    "year": rng.integers(2013, 2017, N),
}

# -- 2. schema + sample queries -> encrypted schema -------------------------------
schema = TableSchema("sales", [
    ColumnSpec(
        "country", dtype="str", sensitive=True,
        distinct_values=COUNTRIES,
        value_counts={c: int((data["country"] == c).sum()) for c in COUNTRIES},
    ),
    ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
    ColumnSpec("year", dtype="int", sensitive=False),
])
session = SeabedSession(mode="seabed", master_key=MASTER_KEY)
session.create_plan(schema, [
    "SELECT sum(amount) FROM sales WHERE country = 'us'",
    "SELECT country, sum(amount) FROM sales GROUP BY country",
    "SELECT min(amount), max(amount) FROM sales",
])
print("Encrypted schema plans:")
for name, plan in session.encrypted_schema("sales").plans.items():
    print(f"  {name:10s} -> {plan.kind}")

# -- 3. upload (encrypts client-side) ----------------------------------------------
stats = session.upload("sales", data, num_partitions=8)
print(f"\nUploaded {stats.rows:,} rows as {stats.physical_columns} physical "
      f"columns in {stats.encrypt_seconds:.2f}s")

# -- 4a. SQL strings (same-shape queries share one cached translation) --------------
for sql in [
    "SELECT sum(amount) FROM sales",
    "SELECT sum(amount), count(*) FROM sales WHERE country = 'in'",
    "SELECT country, avg(amount) FROM sales GROUP BY country",
]:
    result = session.query(sql, expected_groups=len(COUNTRIES))
    print(f"\n{sql}")
    for row in result.rows[:5]:
        print(f"   {row}")
    print(f"   [server {result.server_time*1e3:.1f} ms | "
          f"network {result.network_time*1e3:.2f} ms | "
          f"client {result.client_time*1e3:.1f} ms | "
          f"result {result.result_bytes} bytes]")

# -- 4b. the fluent builder ----------------------------------------------------------
result = (
    session.table("sales")
    .where(col("year") == 2015)
    .min("amount")
    .max("amount")
    .execute()
)
print("\nbuilder: min/max of 2015 sales ->", result.rows[0])

# -- 4c. prepare once, execute per tenant -------------------------------------------
prepared = session.prepare(
    "SELECT sum(amount), count(*) FROM sales WHERE year BETWEEN :lo AND :hi"
)
before = OPS.snapshot()
print("\nprepared: yearly windows (translated once, tokens re-bound per call)")
for lo, hi in [(2013, 2013), (2014, 2015), (2013, 2016)]:
    row = prepared.execute(lo=lo, hi=hi).rows[0]
    print(f"   {lo}-{hi}: sum={row['sum(amount)']:,} n={row['count(*)']:,}")
delta = OPS.delta(before)
print(f"   [ops during 3 executes: translate={delta.get('translate', 0)} "
      f"parse={delta.get('parse', 0)} plan={delta.get('plan', 0)}]")
print(f"\ntranslation cache: {session.cache_stats()}")

# -- 5. optional persistence round trip (--persist DIR) ------------------------------
if args.persist or args.append or args.pruned:
    from repro.workloads.persist import persist_round_trip

    store_root = args.persist or tempfile.mkdtemp(prefix="seabed-quickstart-")
    sql = "SELECT country, sum(amount) FROM sales GROUP BY country"
    expected = session.query(sql, expected_groups=len(COUNTRIES)).rows
    fresh, handle = persist_round_trip(session, "sales", store_root, MASTER_KEY)
    reopened = fresh.query(sql, expected_groups=len(COUNTRIES)).rows
    match = sorted(map(str, expected)) == sorted(map(str, reopened))
    print(f"\npersisted to {handle.store_path} and re-attached from a fresh "
          f"session (zero re-encryption): results identical = {match}")
    assert match, "reopened store answered differently"

# -- 6. optional ingestion lifecycle (--append) ---------------------------------------
if args.append:
    # Fresh batches stream into the *persisted* store: each append
    # encrypts only its batch (row IDs continue from the high-water mark)
    # and lands as a new generation, published atomically.
    print("\nincremental ingestion: 3 appended batches of 2,000 rows")
    for i in range(3):
        batch = {
            "country": rng.choice(COUNTRIES, 2_000),
            "amount": rng.integers(1, 10_000, 2_000),
            "year": rng.integers(2013, 2017, 2_000),
        }
        before = OPS.snapshot()
        stats = fresh.append_rows("sales", batch)
        encrypted_rows = OPS.delta(before).get("encrypt_rows", 0)
        print(f"   batch {i + 1}: generation {stats.generation}, "
              f"{stats.rows:,} rows in {stats.encrypt_seconds * 1e3:.1f} ms "
              f"(encrypted exactly {encrypted_rows:,} rows)")
    handle = fresh.encrypted_table("sales")
    print("   generation log:", [
        (g["id"], g["num_rows"], f"{g['num_partitions']}p")
        for g in handle.generations
    ])

    compaction = handle.compact()
    assert compaction is not None
    print(f"   compacted: {compaction['generations_before']} generations "
          f"-> {compaction['generations_after']}, partitions "
          f"{compaction['partitions_before']} -> {compaction['partitions_after']}")

    total = fresh.query("SELECT count(*) FROM sales").rows[0]["count(*)"]
    print(f"   rows after ingestion: {total:,} (expected {N + 6_000:,})")
    assert total == N + 6_000, "ingestion lost or duplicated rows"

# -- 7. optional zone-map pruning demo (--pruned) -------------------------------------
if args.pruned:
    # Arriving traffic is time-clustered, so appended generations cover
    # narrow value ranges.  The zone-map index (built from ciphertexts
    # only: ORE min/max, DET token digests) lets the server skip whole
    # partitions a selective predicate provably cannot match.
    print("\nzone-map pruning: 3 time-clustered batches, then a range query")
    for i in range(3):
        lo = 20_000 + 10_000 * i
        fresh.append_rows("sales", {
            "country": rng.choice(COUNTRIES, 2_000),
            "amount": rng.integers(lo, lo + 5_000, 2_000),
            "year": np.full(2_000, 2017 + i),
        })
    index = fresh.stats("sales")
    print(f"   index: {index['partitions_with_stats']}/{index['partitions']} "
          f"partitions covered, columns "
          f"{sorted(index['columns'])}")

    sql = "SELECT sum(amount), count(*) FROM sales WHERE amount BETWEEN :lo AND :hi"
    pruned = fresh.query(sql, lo=30_000, hi=34_999)
    skipped = sum(m.partitions_skipped for m in pruned.request_metrics)
    total_parts = sum(m.partitions_total for m in pruned.request_metrics)
    fresh.server.pruning = False
    full = fresh.query(sql, lo=30_000, hi=34_999)
    fresh.server.pruning = True
    print(f"   WHERE amount IN [30000, 35000): {pruned.rows[0]}")
    print(f"   pruned run skipped {skipped}/{total_parts} partitions; "
          f"full scan answered identically = {pruned.rows == full.rows}")
    assert pruned.rows == full.rows, "pruning changed the answer"
    assert skipped > 0, "the selective range query should skip partitions"

# -- 8. optional sharded scatter-gather demo (--shards N) -----------------------------
if args.shards:
    from repro.engine.cluster import ClusterConfig, SimulatedCluster

    replicas = min(2, args.shards)
    print(f"\nsharded execution: {args.shards} worker processes, "
          f"{replicas} replicas per shard")
    shard_root = tempfile.mkdtemp(prefix="seabed-quickstart-shards-")
    shard_session = SeabedSession(
        mode="seabed", master_key=MASTER_KEY,
        cluster=SimulatedCluster(ClusterConfig(storage_dir=shard_root)),
    )
    # The shard key must carry a DET ciphertext column so the ring can
    # route on its tokens; without the SPLASHE frequency hints the
    # planner gives `country` a DET plan instead.
    shard_schema = TableSchema("sales", [
        ColumnSpec("country", dtype="str", sensitive=True),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("year", dtype="int", sensitive=False),
    ])
    shard_session.create_plan(shard_schema, [
        "SELECT sum(amount) FROM sales WHERE country = 'us'",
        "SELECT country, sum(amount) FROM sales GROUP BY country",
        "SELECT min(amount), max(amount) FROM sales",
    ])
    sharded = shard_session.shard_table(
        "sales", "country", num_shards=args.shards, replicas=replicas,
    )
    shard_session.upload("sales", data)
    print("   rows per shard:", dict(sorted(sharded.shard_rows().items())))

    sql = "SELECT country, sum(amount) FROM sales GROUP BY country"
    expected = sorted(map(str, session.query(
        sql, expected_groups=len(COUNTRIES)).rows))
    gathered = shard_session.query(sql, expected_groups=len(COUNTRIES))
    match = sorted(map(str, gathered.rows)) == expected
    print(f"   scatter-gathered group-by identical to single-store = {match}")
    assert match, "sharded group-by answered differently"

    point = shard_session.query("SELECT sum(amount) FROM sales WHERE country = 'jp'")
    skipped = sum(m.shards_skipped for m in point.request_metrics)
    total_shards = sum(m.shards_total for m in point.request_metrics)
    print(f"   point query routed by the ring: skipped "
          f"{skipped}/{total_shards} shards -> {point.rows[0]}")
    if args.shards > 1:
        assert skipped > 0, "the routed point query should skip shards"

    if replicas > 1:
        # Kill the primary of a populated shard mid-query: the reply
        # never arrives, and the coordinator retries on the replica.
        victim_shard = next(
            s for s, n in sharded.shard_rows().items() if n > 0)
        primary = sharded.store.replica_nodes(victim_shard)[0]
        sharded.arm_exit(primary, "execute", after=1)
        recovered = shard_session.query(sql, expected_groups=len(COUNTRIES))
        failovers = sum(m.failovers for m in recovered.request_metrics)
        match = sorted(map(str, recovered.rows)) == expected
        print(f"   killed node {primary} mid-query: {failovers} failover, "
              f"answer still identical = {match}")
        assert match and failovers == 1, "failover changed the answer"
    shard_session.close()

# -- 9. optional service layer demo (--serve / --connect) -----------------------------
if args.serve:
    import os

    import repro

    store_dir = tempfile.mkdtemp(prefix="seabed-quickstart-serve-")
    path = session.encrypted_table("sales").save(os.path.join(store_dir, "sales"))
    with repro.serve(stores=[path]) as handle:
        token = handle.mint_token("quickstart")
        print(f"\nservice layer: asyncio server on {handle.host}:{handle.port}, "
              f"bearer-token auth, keys never leave the client")
        remote = repro.connect(
            handle.address, token, mode="seabed", master_key=MASTER_KEY)
        remote.open_table(path)
        sql = "SELECT country, sum(amount) FROM sales GROUP BY country"
        over_wire = remote.query(sql, expected_groups=len(COUNTRIES))
        local_rows = session.query(sql, expected_groups=len(COUNTRIES)).rows
        match = over_wire.rows == local_rows
        print(f"   remote session over the socket answered identically = {match}")
        assert match, "the wire changed an answer"
        print(f"   [wire {over_wire.wire_time * 1e3:.1f} ms round trip | "
              f"queue {over_wire.queue_wait * 1e3:.2f} ms admission wait]")
        audit = remote.transport.audit_server()
        print(f"   keyless audit inside the serving process: ok={audit['ok']} "
              f"({audit['objects_walked']:,} objects walked, "
              f"{len(audit['flagged'])} flagged)")
        assert audit["ok"], audit["flagged"]

        # -- 9b. optional live telemetry demo (--metrics) ---------------------
        if args.metrics:
            from repro.obs import trace as obs_trace

            print("\ntelemetry: one traced query, stitched across processes")
            obs_trace.get_tracer().clear()
            with obs_trace.span("quickstart:traced-query"):
                remote.query(sql, expected_groups=len(COUNTRIES))
                ctx = obs_trace.current_context()
            spans = obs_trace.get_tracer().spans(trace_id=ctx["trace_id"])
            procs = {s.process for s in spans}
            print(f"   {len(spans)} spans from {len(procs)} processes "
                  f"({', '.join(sorted(procs))}):")
            for line in obs_trace.render_tree(spans).splitlines():
                print(f"     {line}")

            scrape = remote.transport.server_metrics()
            wanted = ("seabed_service_request_seconds_count",
                      "seabed_kernel_values_total",
                      "seabed_slow_queries_total")
            shown = [line for line in scrape["text"].splitlines()
                     if line.startswith(wanted)]
            print("   live Prometheus scrape of the serving process "
                  f"({len(scrape['text'].splitlines())} lines, showing "
                  f"{len(shown)}):")
            for line in shown[:8]:
                print(f"     {line}")
            assert any(
                line.startswith("seabed_service_request_seconds_count")
                for line in shown
            ), "the scrape is missing the request-latency histogram"
        remote.close()

if args.connect:
    import repro

    remote = repro.connect(
        args.connect, args.token, mode="seabed", master_key=MASTER_KEY)
    print(f"\nconnected to {args.connect}: "
          f"server info {remote.transport.server_info}")
    audit = remote.transport.audit_server()
    print(f"   keyless audit of the remote server: ok={audit['ok']}")
    if args.table:
        opened = remote.open_table(args.table)
        count = remote.query(f"SELECT count(*) FROM {opened.name}").rows[0]
        print(f"   {opened.name}: {count}")
    remote.close()
