#!/usr/bin/env python3
"""The advertising-analytics workload (paper Section 6.6, Figure 10).

Plans the 33-dimension / 18-measure schema under a storage budget (the
planner splays low-cardinality sensitive dimensions first), replays a
slice of the production-style query log over all three systems (NoEnc /
Seabed / Paillier), and prints the response-time comparison plus the
SPLASHE storage report.

Run:  python examples/ad_analytics.py
"""


from repro.core.proxy import SeabedClient
from repro.workloads import adanalytics

ROWS = 30_000
dataset = adanalytics.generate(rows=ROWS, seed=0)
samples = adanalytics.sample_queries(dataset)
queries = adanalytics.figure10a_queries(seed=1)

clients = {}
for mode in ("plain", "seabed", "paillier"):
    # The blinding pool accelerates baseline *setup* only (documented
    # insecure); server-side Paillier costs are unchanged.
    client = SeabedClient(mode=mode, paillier_bits=1024, seed=2,
                          paillier_blinding_pool=64)
    report = client.create_plan(dataset.schema, samples, storage_budget=10.0)
    client.upload("ad_analytics", dataset.columns, num_partitions=8)
    clients[mode] = client
    if mode == "seabed":
        print("SPLASHE decisions under a 10x storage budget "
              "(lowest-cardinality dimensions first):")
        for d in report.splashe_decisions:
            print(f"  {d.column:8s} card={d.cardinality:5d} -> {d.chosen:13s} "
                  f"k={d.k} overhead={d.overhead_factor:.1f}x")

print(f"\nReplaying {len(queries)} production-style queries "
      f"(sum by hour, 1-12 groups) over {ROWS:,} rows:\n")
print(f"{'groups':>7}  {'NoEnc (ms)':>11}  {'Seabed (ms)':>12}  "
      f"{'Paillier (ms)':>14}  {'Seabed/NoEnc':>13}")
for q in queries[:9]:
    times = {}
    for mode, client in clients.items():
        result = client.query(q.sql, expected_groups=q.num_groups)
        times[mode] = result.total_time * 1e3
    ratio = times["seabed"] / times["plain"] if times["plain"] else float("inf")
    print(f"{q.num_groups:>7}  {times['plain']:>11.1f}  {times['seabed']:>12.1f}  "
          f"{times['paillier']:>14.1f}  {ratio:>12.2f}x")

print("\nEncrypted storage footprint (server-visible bytes):")
for mode, client in clients.items():
    size = client.server.storage_bytes("ad_analytics")
    print(f"  {mode:8s}: {size / 1e6:8.1f} MB")
