#!/usr/bin/env python3
"""The AmpLab Big Data Benchmark over Seabed (paper Section 6.7).

Runs all four BDB query families over encrypted data, with the paper's
simplifications: Q2 matches deterministically encrypted sourceIP prefixes
(client pre-processing), Q4's external-script phase stays plaintext (run
through the Spark-like RDD API) and only its phase-2 aggregation is
encrypted.

Run:  python examples/big_data_benchmark.py
"""

import numpy as np

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.engine.rdd import RDD
from repro.workloads import bdb

data = bdb.generate(num_rankings=2_000, num_uservisits=20_000, seed=0)
client = SeabedClient(mode="seabed")
client.create_plan(data.uservisits_schema, bdb.sample_queries())
client.create_plan(data.rankings_schema, bdb.sample_queries())
client.upload("rankings", data.rankings, num_partitions=4)
client.upload("uservisits", data.uservisits, num_partitions=8)

print("=== Q1: scan (filter rankings by pageRank, OPE comparison) ===")
for variant in ("A", "B", "C"):
    threshold = bdb.Q1_THRESHOLDS[variant]
    result = client.scan(
        f"SELECT pageURL, pageRank FROM rankings WHERE pageRank > {threshold}"
    )
    print(f"  Q1{variant} (pageRank > {threshold}): {len(result.rows):,} rows, "
          f"server {result.server_time*1e3:.0f} ms")

print("\n=== Q2: aggregation (revenue by encrypted sourceIP prefix) ===")
for variant in ("A", "B", "C"):
    result = client.query(bdb.query_q2(variant), expected_groups=500)
    print(f"  Q2{variant} (prefix {bdb.Q2_PREFIXES[variant]}): "
          f"{len(result.rows):,} groups, server {result.server_time*1e3:.0f} ms")

print("\n=== Q3: join (uservisits x rankings, date-filtered, per-IP) ===")
for variant in ("A", "B", "C"):
    result = client.query(bdb.query_q3(variant), expected_groups=400)
    top = sorted(result.rows, key=lambda r: -r["sum(adRevenue)"])[:3]
    print(f"  Q3{variant}: {len(result.rows):,} source IPs, "
          f"server {result.server_time*1e3:.0f} ms; top revenue "
          f"{[r['sourceIP'] for r in top]}")

print("\n=== Q4: external script (plaintext phase 1) + encrypted phase 2 ===")
docs = bdb.generate_crawl_documents(500, data.rankings["pageURL"], seed=1)
rdd = RDD.parallelize(client.cluster, docs, num_partitions=4)
link_counts = (
    rdd.flat_map(bdb.extract_links)
    .reduce_by_key(lambda a, b: a + b)
    .collect()
)
print(f"  phase 1 (plaintext word-count UDF via RDD): "
      f"{len(link_counts):,} distinct link targets")

urls = [u for u, _ in link_counts]
counts = np.array([c for _, c in link_counts], dtype=np.int64)
phase2_schema = TableSchema("linkcounts", [
    ColumnSpec("target", dtype="str", sensitive=True,
               distinct_values=sorted(set(urls))),
    ColumnSpec("hits", dtype="int", sensitive=True),
])
client.create_plan(phase2_schema, [
    "SELECT sum(hits) FROM linkcounts WHERE target = 'x'",
])
client.upload("linkcounts", {"target": np.array(urls, dtype=object),
                             "hits": counts}, num_partitions=2)
result = client.query("SELECT sum(hits), count(*) FROM linkcounts")
print(f"  phase 2 (encrypted aggregation): total hits "
      f"{result.rows[0]['sum(hits)']:,} across {result.rows[0]['count(*)']:,} "
      f"targets, server {result.server_time*1e3:.0f} ms")
