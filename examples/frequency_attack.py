#!/usr/bin/env python3
"""Frequency attacks on DET, and the SPLASHE defence (paper Sections 1, 3).

A cloud operator observing a deterministically encrypted `country` column
sees its exact histogram.  With auxiliary knowledge (say, census data) it
decrypts the column without any key.  Enhanced SPLASHE balances the
ciphertext frequencies with dummy entries, pushing the attacker back to
random guessing -- while every aggregation stays answerable.

Run:  python examples/frequency_attack.py
"""

import numpy as np

from repro.attacks.frequency import frequency_attack, uniformity_chi2
from repro.core import splashe
from repro.crypto.det import DetScheme

rng = np.random.default_rng(7)
N = 20_000
DISTRIBUTION = {
    "usa": 0.42, "canada": 0.31, "india": 0.11, "china": 0.07,
    "brazil": 0.05, "france": 0.03, "kenya": 0.01,
}
VALUES = list(DISTRIBUTION)
key = b"this-is-a-32-byte-demo-key!!####"

plain = rng.choice(VALUES, N, p=list(DISTRIBUTION.values()))
codes = np.array([VALUES.index(v) for v in plain])

# -- plain DET: the attack wins ------------------------------------------------
det = DetScheme(key)
cipher = det.encrypt_column(codes)
truth = {det.encrypt_one(i): v for i, v in enumerate(VALUES)}
attack = frequency_attack(cipher, DISTRIBUTION, true_mapping=truth,
                          method="optimal")
print("Against deterministic encryption:")
print(f"  attacker recovers {attack.summary()}")
print(f"  histogram uniformity p-value: {uniformity_chi2(cipher):.2e}")

# -- enhanced SPLASHE: frequencies balanced ----------------------------------------
counts = np.bincount(codes, minlength=len(VALUES))
order = np.argsort(-counts)
k = splashe.choose_k(sorted(counts.tolist(), reverse=True))
frequent = sorted(order[:k].tolist())
print(f"\nEnhanced SPLASHE splays the top k={k} values "
      f"({[VALUES[c] for c in frequent]}) into their own ASHE columns;")
balanced = splashe.balance_det_codes(codes, frequent, len(VALUES), rng)
cipher_balanced = det.encrypt_column(balanced)
attack2 = frequency_attack(cipher_balanced, DISTRIBUTION, true_mapping=truth,
                           method="optimal")
print("the remaining DET column is frequency-balanced with dummy entries:")
print(f"  attacker now recovers {attack2.summary()}")
print(f"  histogram uniformity p-value: {uniformity_chi2(cipher_balanced):.3f}")

infrequent = [v for c, v in enumerate(VALUES) if c not in frequent]
print(f"\n  (chance level for the {len(infrequent)} infrequent values is "
      f"{1 / len(infrequent):.0%}; splayed values never appear in the DET "
      "column at all)")
print("\nStorage cost of the defence (Section 3.4):")
basic = splashe.storage_overhead_factor(len(VALUES), 1, k=None)
enhanced = splashe.storage_overhead_factor(len(VALUES), 1, k=k)
print(f"  basic SPLASHE:    {basic:.1f}x")
print(f"  enhanced SPLASHE: {enhanced:.1f}x")
