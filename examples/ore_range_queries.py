#!/usr/bin/env python3
"""Range analytics with order-revealing encryption (paper Appendix A.3).

A time-series of sensor readings is encrypted so the server can answer
time-window sums, min/max and median without learning values -- it sees
only the CLWW ORE leakage: pairwise order plus the index of the first
differing bit.

Run:  python examples/ore_range_queries.py [--persist DIR]
"""

import argparse

import numpy as np

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.crypto.ore import OreScheme

parser = argparse.ArgumentParser(description="ORE range analytics")
parser.add_argument(
    "--persist", metavar="DIR", default=None,
    help="save the sensor table under DIR and re-attach it from a fresh client",
)
args = parser.parse_args()

MASTER_KEY = b"ore-demo-master-key-32-bytes-ok!"

rng = np.random.default_rng(12)
N = 40_000
data = {
    "ts": np.arange(N, dtype=np.int64),  # seconds since epoch start
    "reading": (1000 + 200 * np.sin(np.arange(N) / 500)
                + rng.normal(0, 40, N)).astype(np.int64),
}
schema = TableSchema("sensor", [
    ColumnSpec("ts", dtype="int", sensitive=True, nbits=32),
    ColumnSpec("reading", dtype="int", sensitive=True, nbits=32),
])
client = SeabedClient(mode="seabed", master_key=MASTER_KEY)
client.create_plan(schema, [
    "SELECT sum(reading) FROM sensor WHERE ts BETWEEN 0 AND 10",
    "SELECT min(reading), max(reading), median(reading) FROM sensor",
    "SELECT avg(reading) FROM sensor WHERE reading > 100",
])
client.upload("sensor", data, num_partitions=8)

print("Window aggregates over ORE-filtered ranges:")
for lo, hi in [(0, 4999), (10_000, 19_999), (30_000, 39_999)]:
    r = client.query(
        f"SELECT avg(reading), count(*) FROM sensor WHERE ts BETWEEN {lo} AND {hi}"
    )
    row = r.rows[0]
    print(f"  ts in [{lo:>6}, {hi:>6}]: avg={row['avg(reading)']:8.1f} "
          f"n={row['count(*)']:,}  (server {r.server_time*1e3:.0f} ms)")

r = client.query("SELECT min(reading), max(reading), median(reading) FROM sensor")
print(f"\nExtremes via server-side ORE tournament/quickselect: {r.rows[0]}")

r = client.query("SELECT count(*) FROM sensor WHERE reading > 1150")
print(f"Readings above 1150: {r.rows[0]['count(*)']:,}")

# -- what the server actually learns ------------------------------------------------
ore = OreScheme(b"demo-key-32-bytes-demo-key-32-by", nbits=16)
a, b = ore.encrypt_one(1234), ore.encrypt_one(1250)
print("\nORE leakage profile (CLWW):")
print(f"  Compare(Enc(1234), Enc(1250)) -> {ore.compare_words(a, b)} "
      "(order is public)")
print(f"  first differing bit index     -> {ore.first_diff_index(a, b)} "
      "(and nothing below it)")

if args.persist:
    from repro.workloads.persist import persist_round_trip

    sql = "SELECT min(reading), max(reading) FROM sensor"
    expected = client.query(sql).rows
    fresh, handle = persist_round_trip(client, "sensor", args.persist, MASTER_KEY)
    reopened = fresh.query(sql).rows
    assert expected == reopened, (expected, reopened)
    print(f"\npersisted to {handle.store_path}; fresh session answers "
          "identically (ORE trit words memory-mapped, zero re-encryption)")
