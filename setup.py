"""Setup shim: enables offline editable installs (`python setup.py develop`)
in environments without the `wheel` package, where pip's PEP-660 editable
build is unavailable. Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
