"""Tests for partitioned tables (repro.engine.table)."""

import numpy as np
import pytest

from repro.engine.table import Partition, Table, concat_tables
from repro.errors import ExecutionError


def make_table(rows: int = 100, parts: int = 4) -> Table:
    return Table.from_columns(
        "t",
        {"a": np.arange(rows, dtype=np.int64), "b": np.ones(rows, dtype=np.int64)},
        num_partitions=parts,
    )


class TestConstruction:
    def test_partition_count_and_rows(self):
        t = make_table(100, 4)
        assert t.num_partitions == 4
        assert t.num_rows == 100

    def test_contiguous_ids(self):
        t = make_table(103, 4)  # uneven split
        next_id = 0
        for p in t.partitions:
            assert p.start_id == next_id
            next_id += p.nrows
        assert next_id == 103

    def test_more_partitions_than_rows(self):
        t = make_table(3, 10)
        assert t.num_rows == 3
        assert t.num_partitions <= 3

    def test_base_id_offset(self):
        t = Table.from_columns("t", {"a": np.arange(10)}, 2, base_id=500)
        assert t.partitions[0].start_id == 500

    def test_ragged_columns_rejected(self):
        with pytest.raises(ExecutionError, match="rows"):
            Table.from_columns("t", {"a": np.arange(5), "b": np.arange(6)}, 2)

    def test_empty_columns_rejected(self):
        with pytest.raises(ExecutionError, match="at least one column"):
            Table.from_columns("t", {}, 2)

    def test_ragged_partition_rejected(self):
        with pytest.raises(ExecutionError, match="ragged"):
            Partition({"a": np.arange(3), "b": np.arange(4)}, start_id=0)

    def test_noncontiguous_partitions_rejected(self):
        p1 = Partition({"a": np.arange(5)}, start_id=0)
        p2 = Partition({"a": np.arange(5)}, start_id=99)
        with pytest.raises(ExecutionError, match="not contiguous"):
            Table("t", [p1, p2])

    def test_partition_schema_mismatch_rejected(self):
        p1 = Partition({"a": np.arange(5)}, start_id=0)
        p2 = Partition({"b": np.arange(5)}, start_id=5)
        with pytest.raises(ExecutionError, match="mismatch"):
            Table("t", [p1, p2])


class TestAccess:
    def test_column_concat(self):
        t = make_table(50, 3)
        assert t.column("a").tolist() == list(range(50))

    def test_missing_column(self):
        t = make_table()
        with pytest.raises(ExecutionError, match="no column"):
            t.partitions[0].column("zzz")

    def test_column_names_sorted(self):
        assert make_table().column_names == ["a", "b"]

    def test_repartition_preserves_data(self):
        t = make_table(60, 3)
        r = t.repartition(7)
        assert r.num_partitions == 7
        assert r.column("a").tolist() == t.column("a").tolist()

    def test_memory_accounting_object_columns(self):
        plain = Table.from_columns("t", {"a": np.arange(10, dtype=np.int64)}, 1)
        objs = np.empty(10, dtype=object)
        for i in range(10):
            objs[i] = 1 << 2048  # big Paillier-sized ints
        fat = Table.from_columns("t", {"a": objs}, 1)
        assert fat.memory_bytes() > plain.memory_bytes()


class TestConcat:
    def test_concat_appends(self):
        t1 = make_table(10, 2)
        t2 = make_table(10, 2)
        merged = concat_tables("t", [t1, t2])
        assert merged.num_rows == 20

    def test_concat_schema_mismatch(self):
        t1 = make_table(10, 2)
        t2 = Table.from_columns("x", {"z": np.arange(10)}, 2)
        with pytest.raises(ExecutionError, match="mismatch"):
            concat_tables("t", [t1, t2])

    def test_concat_empty(self):
        with pytest.raises(ExecutionError, match="no tables"):
            concat_tables("t", [])
