"""Tests for the pluggable execution backends (repro.engine.backends)."""

import threading

import pytest

from repro.engine.backends import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_workers,
    make_backend,
    timed_call,
)
from repro.errors import ExecutionError


def square(x):
    """Top-level so the process backend can pickle it."""
    return x * x


def add(a, b):
    return a + b


class TestFactory:
    def test_known_names(self):
        assert set(BACKENDS) == {"serial", "threads", "processes"}
        for name, cls in BACKENDS.items():
            backend = make_backend(name, 2)
            try:
                assert isinstance(backend, cls)
                assert backend.name == name
            finally:
                backend.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ExecutionError, match="unknown execution backend"):
            make_backend("spark")

    def test_default_workers_fill_in(self):
        backend = make_backend("threads", None)
        assert backend.workers == default_workers()
        backend.close()

    def test_negative_workers_rejected(self):
        with pytest.raises(ExecutionError, match="at least one worker"):
            make_backend("threads", -1)

    def test_serial_defaults_to_one_worker(self):
        assert SerialBackend().workers == 1


class TestTimedCall:
    def test_measures_and_returns(self):
        result, elapsed = timed_call(add, (2, 3))
        assert result == 5
        assert elapsed >= 0.0


@pytest.mark.parametrize("name", ["serial", "threads", "processes"])
class TestAllBackends:
    def test_map_calls_ordered(self, name):
        backend = make_backend(name, 2)
        try:
            out = backend.map_calls(square, [(i,) for i in range(7)])
            assert [r for r, _ in out] == [i * i for i in range(7)]
            assert all(t >= 0.0 for _, t in out)
        finally:
            backend.close()

    def test_run_tasks_accepts_closures(self, name):
        # Closures work on every backend: the process pool falls back to
        # in-process execution for the legacy zero-arg-callable API.
        backend = make_backend(name, 2)
        try:
            out = backend.run_tasks([lambda i=i: i + 10 for i in range(5)])
            assert [r for r, _ in out] == [10, 11, 12, 13, 14]
        finally:
            backend.close()

    def test_empty_stage(self, name):
        backend = make_backend(name, 2)
        try:
            assert backend.map_calls(square, []) == []
            assert backend.run_tasks([]) == []
        finally:
            backend.close()

    def test_close_idempotent(self, name):
        backend = make_backend(name, 2)
        backend.map_calls(square, [(1,), (2,)])
        backend.close()
        backend.close()
        # The pool is recreated lazily after close.
        assert [r for r, _ in backend.map_calls(square, [(3,), (4,)])] == [9, 16]
        backend.close()


class TestThreadBackend:
    def test_actually_concurrent(self):
        backend = ThreadBackend(4)
        try:
            gate = threading.Barrier(4, timeout=5)

            def wait_at_gate(_):
                gate.wait()  # deadlocks unless all 4 run at once
                return threading.current_thread().name

            out = backend.map_calls(wait_at_gate, [(i,) for i in range(4)])
            names = {r for r, _ in out}
            assert len(names) == 4
        finally:
            backend.close()


class TestProcessBackend:
    def test_runs_in_other_processes(self):
        import os

        backend = ProcessBackend(2)
        try:
            out = backend.map_calls(os.getpid, [(), ()])
            pids = {r for r, _ in out}
            assert os.getpid() not in pids
        finally:
            backend.close()

    def test_single_call_skips_pool(self):
        backend = ProcessBackend(2)
        try:
            # One-task stages run inline -- even unpicklable fns work.
            out = backend.map_calls(lambda: 42, [()])
            assert out[0][0] == 42
            assert backend._executor is None
        finally:
            backend.close()
