"""Manifest v3 zone-map statistics: emission, backfill, rebuild."""

import json
import os

import numpy as np
import pytest

from repro.engine.store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    append_store,
    compact_store,
    open_store,
    rebuild_stats,
    store_stats,
    write_store,
)
from repro.engine.table import Table
from repro.errors import StorageError


def build_table(rows=24, partitions=3, base_id=0, seed=5, name="zm"):
    rng = np.random.default_rng(seed)
    columns = {
        "u__det": rng.integers(0, 6, rows, dtype=np.uint64),
        "year": rng.integers(2013, 2017, rows).astype(np.int64),
        "m__ashe": rng.integers(0, 2**60, rows, dtype=np.uint64),
    }
    return Table.from_columns(name, columns, num_partitions=partitions,
                              base_id=base_id)


def manifest_of(path):
    return json.load(open(os.path.join(path, MANIFEST_NAME)))


def strip_stats(path, version=2):
    """Rewrite the manifest as a pre-zone-map (v2) store."""
    manifest = manifest_of(path)
    manifest["version"] = version
    for gen in manifest["generations"]:
        for part in gen["partitions"]:
            part.pop("stats", None)
    json.dump(manifest, open(os.path.join(path, MANIFEST_NAME), "w"))


class TestEmission:
    def test_write_store_emits_v3_stats(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        manifest = manifest_of(path)
        assert manifest["version"] == FORMAT_VERSION == 3
        for part in manifest["generations"][0]["partitions"]:
            stats = part["stats"]
            assert stats["rows"] > 0 and stats["nulls"] == 0
            assert stats["columns"]["u__det"]["kind"] == "det"
            assert stats["columns"]["year"]["kind"] == "plain"
            assert "m__ashe" not in stats["columns"]

    def test_open_store_attaches_zone_maps(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        table = open_store(path)
        assert table.zone_maps is not None
        assert len(table.zone_maps) == table.num_partitions
        assert all(z and z["rows"] for z in table.zone_maps)

    def test_append_and_compact_emit_stats(self, tmp_path):
        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        append_store(build_table(rows=6, partitions=1, base_id=24, seed=9), path)
        append_store(build_table(rows=6, partitions=1, base_id=30, seed=10), path)
        assert all(z for z in open_store(path).zone_maps)
        assert compact_store(path) is not None
        table = open_store(path)
        assert all(z for z in table.zone_maps)
        summary = store_stats(path)
        assert summary["partitions_with_stats"] == summary["partitions"]


class TestBackfill:
    def test_v2_store_opens_without_stats(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        strip_stats(path)
        table = open_store(path)
        assert table.zone_maps == [None, None, None]
        assert store_stats(path)["partitions_with_stats"] == 0

    def test_first_append_backfills_everything(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        strip_stats(path)
        append_store(build_table(rows=6, partitions=1, base_id=24, seed=9), path)
        manifest = manifest_of(path)
        assert manifest["version"] == FORMAT_VERSION
        assert all(
            "stats" in part
            for gen in manifest["generations"] for part in gen["partitions"]
        )
        # The backfilled stats match what a fresh build would compute.
        reference = write_store(
            build_table(), tmp_path / "ref", overwrite=True
        )
        want = [
            p["stats"] for p in manifest_of(reference)["generations"][0]["partitions"]
        ]
        got = [p["stats"] for p in manifest_of(path)["generations"][0]["partitions"]]
        assert got == want

    def test_noop_compaction_still_upgrades(self, tmp_path):
        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        strip_stats(path)
        assert compact_store(path) is None  # nothing to merge...
        assert store_stats(path)["partitions_with_stats"] == 3  # ...but upgraded

    def test_rebuild_stats_is_eager_and_idempotent(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        strip_stats(path)
        summary = rebuild_stats(path)
        assert summary["partitions_with_stats"] == 3
        assert summary["columns"]["u__det"]["kind"] == "det"
        before = manifest_of(path)
        rebuild_stats(path)
        assert manifest_of(path)["generations"] == before["generations"]

    def test_future_version_still_rejected(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        manifest = manifest_of(path)
        manifest["version"] = FORMAT_VERSION + 1
        json.dump(manifest, open(os.path.join(path, MANIFEST_NAME), "w"))
        with pytest.raises(StorageError, match="format version"):
            open_store(path)
