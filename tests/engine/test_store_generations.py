"""Generational appends, snapshots, truncation and compaction
(repro.engine.store), including crash-safety at every labelled point."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.engine.store import (
    CRASH_POINT_ENV,
    FORMAT_NAME,
    MANIFEST_NAME,
    PartitionRef,
    append_store,
    compact_store,
    current_generation,
    disk_bytes,
    open_store,
    reader_at,
    resolve_partition,
    snapshot_generation,
    store_generations,
    store_num_rows,
    truncate_store,
    write_store,
)
from repro.engine.table import Table
from repro.errors import StorageError
from repro.idlist.codec import decode_span_groups


def build_table(rows=24, partitions=3, base_id=0, seed=7, name="mixed"):
    rng = np.random.default_rng(seed)
    objs = np.empty(rows, dtype=object)
    for i in range(rows):
        objs[i] = (1 << 100) + base_id + i
    return Table.from_columns(
        name,
        {
            "u": rng.integers(0, 2**63, rows).astype(np.uint64),
            "f": rng.random(rows),
            "big": objs,
        },
        num_partitions=partitions,
        base_id=base_id,
    )


def column_across(path, name, generation=None):
    return np.concatenate(
        [np.asarray(p.column(name))
         for p in open_store(path, generation=generation).partitions]
    )


def downgrade_to_v1(path):
    """Rewrite a single-generation v2 manifest as the PR-3 v1 format."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    manifest = json.load(open(manifest_path))
    assert len(manifest["generations"]) == 1
    gen = manifest["generations"][0]
    assert gen["dir"] == ""
    v1 = {
        "format": FORMAT_NAME,
        "version": 1,
        "table": manifest["table"],
        "num_rows": manifest["num_rows"],
        "spans_hex": gen["spans_hex"],
        "columns": manifest["columns"],
        "partitions": gen["partitions"],
    }
    json.dump(v1, open(manifest_path, "w"))


class TestAppend:
    def test_append_round_trip(self, tmp_path):
        first = build_table(rows=24, partitions=3)
        path = write_store(first, tmp_path / "s")
        second = build_table(rows=10, partitions=2, base_id=24, seed=8)
        third = build_table(rows=6, partitions=1, base_id=34, seed=9)
        assert append_store(second, path) == 2
        assert append_store(third, path) == 3

        assert store_num_rows(path) == 40
        assert [g["id"] for g in store_generations(path)] == [1, 2, 3]
        reopened = open_store(path)
        assert reopened.num_partitions == 6
        assert reopened.store_generation == 3
        for name in ("u", "f", "big"):
            want = np.concatenate([
                np.asarray(t.column(name)) for t in (first, second, third)
            ])
            assert np.array_equal(column_across(path, name), want), name

    def test_partition_ids_stay_contiguous(self, tmp_path):
        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        append_store(build_table(rows=10, partitions=2, base_id=24), path)
        starts = [p.start_id for p in open_store(path).partitions]
        ends = [
            p.start_id + p.nrows for p in open_store(path).partitions
        ]
        assert starts == [0, 8, 16, 24, 29]
        assert ends[:-1] == starts[1:]

    def test_append_wrong_base_id_rejected(self, tmp_path):
        path = write_store(build_table(rows=24), tmp_path / "s")
        with pytest.raises(StorageError, match="row-ID sequence"):
            append_store(build_table(rows=10, base_id=30), path)

    def test_append_schema_mismatch_rejected(self, tmp_path):
        path = write_store(build_table(rows=24), tmp_path / "s")
        bad = Table.from_columns(
            "mixed", {"u": np.arange(4, dtype=np.uint64)},
            num_partitions=1, base_id=24,
        )
        with pytest.raises(StorageError, match="do not match"):
            append_store(bad, path)

    def test_append_wrong_table_rejected(self, tmp_path):
        path = write_store(build_table(rows=24), tmp_path / "s")
        with pytest.raises(StorageError, match="holds table"):
            append_store(build_table(rows=4, base_id=24, name="other"), path)

    def test_appended_refs_carry_generation(self, tmp_path):
        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        append_store(build_table(rows=10, partitions=1, base_id=24), path)
        ref = open_store(path).partitions[-1].ref
        assert (ref.path, ref.index, ref.generation) == (
            os.path.abspath(path), 3, 2,
        )


class TestV1Compat:
    def test_v1_manifest_reads(self, tmp_path):
        table = build_table(rows=24, partitions=3)
        path = write_store(table, tmp_path / "s")
        downgrade_to_v1(path)
        reopened = open_store(path)
        assert reopened.num_rows == 24
        assert current_generation(path) == 1
        assert np.array_equal(column_across(path, "u"), table.column("u"))

    def test_append_upgrades_v1_to_current(self, tmp_path):
        from repro.engine.store import FORMAT_VERSION

        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        downgrade_to_v1(path)
        append_store(build_table(rows=10, partitions=1, base_id=24), path)
        manifest = json.load(open(os.path.join(path, MANIFEST_NAME)))
        assert manifest["version"] == FORMAT_VERSION
        assert manifest["store_id"]
        assert [g["id"] for g in manifest["generations"]] == [1, 2]
        assert open_store(path).num_rows == 34


class TestSnapshots:
    def test_old_generation_still_readable_after_append(self, tmp_path):
        first = build_table(rows=24, partitions=3)
        path = write_store(first, tmp_path / "s")
        snapshot = open_store(path)
        append_store(build_table(rows=10, partitions=1, base_id=24), path)

        # The pinned snapshot (and its refs) keep resolving generation 1.
        assert snapshot.num_rows == 24
        ref = snapshot.partitions[0].ref
        assert ref.generation == 1
        part = resolve_partition(ref)
        assert np.array_equal(
            np.asarray(part.column("u")), np.asarray(first.partitions[0].column("u"))
        )
        assert reader_at(path, 1).num_rows == 24
        assert open_store(path, generation=1).num_rows == 24
        assert open_store(path).num_rows == 34

    def test_snapshot_generation_boundaries(self, tmp_path):
        path = write_store(build_table(rows=24), tmp_path / "s")
        append_store(build_table(rows=10, partitions=1, base_id=24), path)
        assert snapshot_generation(path, 24) == 1
        assert snapshot_generation(path, 34) == 2
        assert snapshot_generation(path, 30) is None
        assert snapshot_generation(path, 99) is None

    def test_legacy_ref_resolves_current(self, tmp_path):
        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        part = resolve_partition(PartitionRef(os.path.abspath(path), 2))
        assert part.start_id == 16

    def test_ref_from_replaced_store_fails_loudly(self, tmp_path):
        """write_store(overwrite=True) mints a new store identity; refs
        from the replaced store must not silently read the new data."""
        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        stale_ref = open_store(path).partitions[0].ref
        write_store(
            build_table(rows=12, partitions=2, seed=9), path, overwrite=True
        )
        with pytest.raises(StorageError, match="replaced"):
            resolve_partition(stale_ref)
        # refs from the replacement resolve fine
        assert resolve_partition(open_store(path).partitions[0].ref).nrows == 6

    def test_cached_snapshot_revalidates_after_compaction(self, tmp_path):
        """A reader cached at generation G (e.g. in a worker process)
        must not survive a compaction that retired G: the manifest
        signature changed, so the cache hit revalidates and raises."""
        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        base = 24
        for i in range(3):
            append_store(
                build_table(rows=5, partitions=1, base_id=base, seed=30 + i), path
            )
            base += 5
        gen = current_generation(path)
        assert reader_at(path, gen).num_rows == 39  # now cached
        # Compact from ANOTHER process: this process's cache entry is
        # untouched, so only the signature revalidation can catch it.
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c",
             f"from repro.engine.store import compact_store; "
             f"assert compact_store({path!r}) is not None"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        with pytest.raises(StorageError, match="compacted"):
            reader_at(path, gen)


class TestTruncate:
    def test_truncate_drops_uncommitted_generations(self, tmp_path):
        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        append_store(build_table(rows=10, partitions=1, base_id=24), path)
        size_with_orphan = disk_bytes(path)
        assert truncate_store(path, 24) == 1
        assert store_num_rows(path) == 24
        assert open_store(path).num_partitions == 3
        assert not os.path.exists(os.path.join(path, "gen-000002"))
        assert disk_bytes(path) < size_with_orphan

    def test_truncate_never_reuses_generation_ids(self, tmp_path):
        path = write_store(build_table(rows=24), tmp_path / "s")
        append_store(build_table(rows=10, partitions=1, base_id=24), path)
        truncate_store(path, 24)
        # The counter is not rewound: the next append gets a fresh id, so
        # refs pinned to the rolled-back generation can never alias it.
        assert append_store(build_table(rows=8, partitions=1, base_id=24), path) == 3

    def test_truncate_to_non_boundary_rejected(self, tmp_path):
        path = write_store(build_table(rows=24), tmp_path / "s")
        append_store(build_table(rows=10, partitions=1, base_id=24), path)
        with pytest.raises(StorageError, match="no generation boundary"):
            truncate_store(path, 30)

    def test_truncate_noop(self, tmp_path):
        path = write_store(build_table(rows=24), tmp_path / "s")
        assert truncate_store(path, 24) == 0


class TestCompact:
    def build_fragmented(self, tmp_path, appends=6, rows_per=5):
        first = build_table(rows=24, partitions=3)
        path = write_store(first, tmp_path / "s")
        base = 24
        for i in range(appends):
            append_store(
                build_table(rows=rows_per, partitions=1, base_id=base, seed=20 + i),
                path,
            )
            base += rows_per
        return path, base

    def test_compact_merges_small_runs(self, tmp_path):
        path, total = self.build_fragmented(tmp_path)
        before = column_across(path, "u")
        stats = compact_store(path)
        assert stats is not None
        assert stats["generations_before"] == 7
        assert stats["generations_after"] == 2
        assert stats["partitions_after"] < stats["partitions_before"]
        gens = store_generations(path)
        assert gens[0]["id"] == 1  # the full-size generation is untouched
        assert gens[1]["compacted_from"] == [2, 3, 4, 5, 6, 7]
        assert store_num_rows(path) == total
        assert np.array_equal(column_across(path, "u"), before)

    def test_compacted_source_spans_recorded(self, tmp_path):
        path, total = self.build_fragmented(tmp_path, appends=4, rows_per=5)
        compact_store(path, target_rows=8)
        manifest = json.load(open(os.path.join(path, MANIFEST_NAME)))
        merged = manifest["generations"][-1]
        groups = decode_span_groups(bytes.fromhex(merged["source_spans_hex"]))
        # One group per output partition; together they cover exactly the
        # merged generations' row-ID range, in order.
        assert len(groups) == len(merged["partitions"])
        flat = [span for group in groups for span in group]
        assert flat[0][0] == 24
        assert sum(count for _, count in flat) == total - 24
        ends = [start + count for start, count in flat]
        assert all(e == s for e, (s, _) in zip(ends[:-1], flat[1:]))

    def test_compact_noop_on_healthy_store(self, tmp_path):
        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        assert compact_store(path) is None

    def test_stale_refs_fail_loudly_after_compaction(self, tmp_path):
        path, _ = self.build_fragmented(tmp_path)
        stale_ref = open_store(path).partitions[-1].ref
        assert compact_store(path) is not None
        with pytest.raises(StorageError, match="compacted|no snapshot"):
            reader_at(path, stale_ref.generation)

    def test_compact_everything_when_all_generations_small(self, tmp_path):
        path, total = self.build_fragmented(tmp_path)
        before = column_across(path, "u")
        stats = compact_store(path, target_rows=total)
        assert stats["generations_after"] == 1
        reopened = open_store(path)
        assert reopened.num_partitions == 1
        assert np.array_equal(column_across(path, "u"), before)
        # generation-1 root partitions were retired and deleted
        assert not os.path.exists(os.path.join(path, "part-00000"))


CRASH_SCRIPT = """
import numpy as np
from repro.engine.store import append_store
from repro.engine.table import Table

table = Table.from_columns(
    "mixed",
    {{
        "u": np.arange(10, dtype=np.uint64),
        "f": np.ones(10),
        "big": np.array([1 << 100] * 10, dtype=object),
    }},
    num_partitions=1,
    base_id=24,
)
append_store(table, {path!r})
"""


class TestCrashSafety:
    @pytest.mark.parametrize("point", [
        "append:before-rename", "append:after-rename", "append:after-manifest",
    ])
    def test_writer_killed_mid_append(self, tmp_path, point):
        first = build_table(rows=24, partitions=3)
        path = write_store(first, tmp_path / "s")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        env[CRASH_POINT_ENV] = point
        proc = subprocess.run(
            [sys.executable, "-c", CRASH_SCRIPT.format(path=path)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 70, proc.stderr

        if point == "append:after-manifest":
            # Published but never acknowledged: visible until rolled back.
            assert store_num_rows(path) == 34
            truncate_store(path, 24)
        # The store reopens cleanly at the previous generation...
        reopened = open_store(path)
        assert reopened.num_rows == 24
        assert np.array_equal(column_across(path, "u"), first.column("u"))
        # ...and the next append succeeds despite any staged leftovers.
        gen = append_store(
            build_table(rows=10, partitions=1, base_id=24, seed=31), path
        )
        assert gen >= 2
        assert store_num_rows(path) == 34
        assert not any(
            entry.endswith(".tmp") for entry in os.listdir(path)
        )

    @pytest.mark.parametrize("point", [
        "compact:before-rename", "compact:after-rename", "compact:after-manifest",
    ])
    def test_writer_killed_mid_compaction(self, tmp_path, point):
        path = write_store(build_table(rows=24, partitions=3), tmp_path / "s")
        base = 24
        for i in range(4):
            append_store(
                build_table(rows=5, partitions=1, base_id=base, seed=40 + i), path
            )
            base += 5
        want = column_across(path, "u")

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        env[CRASH_POINT_ENV] = point
        proc = subprocess.run(
            [sys.executable, "-c",
             f"from repro.engine.store import compact_store; "
             f"compact_store({path!r})"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 70, proc.stderr

        # Data identical whether the crash landed before or after the
        # manifest publish (compaction never changes row content)...
        assert store_num_rows(path) == 44
        assert np.array_equal(column_across(path, "u"), want)
        # ...and the next writer finishes the job and leaves no strays:
        # staging dirs, and -- for the after-manifest crash -- the
        # retired generation directories the dead writer never deleted.
        compact_store(path)
        assert np.array_equal(column_across(path, "u"), want)
        manifest = json.load(open(os.path.join(path, MANIFEST_NAME)))
        referenced = set()
        for g in manifest["generations"]:
            if g["dir"]:
                referenced.add(g["dir"])
            for part in g["partitions"]:
                referenced.add(part["dir"].split("/", 1)[0])
        on_disk = {
            e for e in os.listdir(path) if e.startswith(("gen-", "part-"))
        }
        assert on_disk == referenced
        assert not any(e.endswith(".tmp") for e in os.listdir(path))
