"""Tests for the Spark-like RDD API (repro.engine.rdd)."""

import numpy as np
import pytest

from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.engine.rdd import RDD
from repro.engine.table import Table
from repro.errors import ExecutionError


@pytest.fixture
def cluster() -> SimulatedCluster:
    return SimulatedCluster(ClusterConfig(cores=4, task_startup_s=0.0, job_startup_s=0.0))


class TestBasics:
    def test_parallelize_collect(self, cluster):
        rdd = RDD.parallelize(cluster, range(10), num_partitions=3)
        assert sorted(rdd.collect()) == list(range(10))
        assert rdd.num_partitions == 3

    def test_map(self, cluster):
        out = RDD.parallelize(cluster, [1, 2, 3]).map(lambda x: x * 10).collect()
        assert sorted(out) == [10, 20, 30]

    def test_filter(self, cluster):
        out = RDD.parallelize(cluster, range(10)).filter(lambda x: x % 2 == 0)
        assert sorted(out.collect()) == [0, 2, 4, 6, 8]

    def test_flat_map(self, cluster):
        out = RDD.parallelize(cluster, [1, 2]).flat_map(lambda x: [x, x]).collect()
        assert sorted(out) == [1, 1, 2, 2]

    def test_count(self, cluster):
        assert RDD.parallelize(cluster, range(17)).count() == 17

    def test_reduce(self, cluster):
        assert RDD.parallelize(cluster, range(101)).reduce(lambda a, b: a + b) == 5050

    def test_reduce_empty_rejected(self, cluster):
        with pytest.raises(ExecutionError, match="empty"):
            RDD.parallelize(cluster, []).reduce(lambda a, b: a + b)

    def test_map_partitions(self, cluster):
        out = RDD.parallelize(cluster, range(10), 2).map_partitions(lambda rows: [sum(rows)])
        assert sum(out.collect()) == 45


class TestReduceByKey:
    def test_word_count_style(self, cluster):
        pairs = [("a", 1), ("b", 1), ("a", 1), ("c", 1), ("a", 1), ("c", 1)]
        out = RDD.parallelize(cluster, pairs, 2).reduce_by_key(lambda a, b: a + b)
        assert dict(out.collect()) == {"a": 3, "b": 1, "c": 2}

    def test_shuffle_is_accounted(self, cluster):
        pairs = [(i % 5, 1) for i in range(100)]
        rdd = RDD.parallelize(cluster, pairs, 4)
        out = rdd.reduce_by_key(lambda a, b: a + b)
        assert out.metrics.shuffle_bytes > 0

    def test_reducer_count_controls_parallelism(self, cluster):
        pairs = [(i, i) for i in range(20)]
        out = RDD.parallelize(cluster, pairs, 2).reduce_by_key(lambda a, b: a + b,
                                                               num_reducers=7)
        assert out.num_partitions == 7
        assert dict(out.collect()) == {i: i for i in range(20)}


class TestFromTable:
    def test_rows_carry_ids(self, cluster):
        table = Table.from_columns(
            "t", {"a": np.array([10, 20, 30]), "b": np.array([1, 2, 3])}, 2
        )
        rows = RDD.from_table(cluster, table).collect()
        assert rows[0][0] == 0  # leading element is the row ID
        assert {r[0] for r in rows} == {0, 1, 2}

    def test_paper_table2_pipeline(self, cluster):
        """The Table 2 example: filter on b, project a, sum -- over the
        Spark-style API with IDs preserved."""
        table = Table.from_columns(
            "t",
            {"a": np.array([1, 2, 3, 4]), "b": np.array([5, 50, 15, 3])},
            2,
        )
        rdd = RDD.from_table(cluster, table, columns=["a", "b"])
        total = (
            rdd.filter(lambda row: row[2] > 10)
            .map(lambda row: row[1])
            .reduce(lambda x, y: x + y)
        )
        assert total == 5  # rows with b>10 have a = 2 and 3
