"""Directory-fsync degradation and cluster durability/caching knobs."""

import errno
import os
import warnings

import pytest

from repro.engine import storage
from repro.engine import store as store_mod
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.errors import ExecutionError, StorageError


class TestFsyncDirFallback:
    def _patch_fsync(self, monkeypatch, err):
        real = os.fsync

        def failing(fd):
            raise OSError(err, os.strerror(err))

        monkeypatch.setattr(storage.os, "fsync", failing)
        return real

    @pytest.mark.parametrize("err", sorted(storage._FSYNC_UNSUPPORTED))
    def test_unsupported_errno_degrades_with_warning(
        self, tmp_path, monkeypatch, err
    ):
        self._patch_fsync(monkeypatch, err)
        before = storage.FSYNC_DIR_FALLBACKS
        with pytest.warns(RuntimeWarning, match="rejects fsync"):
            storage.fsync_dir(str(tmp_path))
        assert storage.FSYNC_DIR_FALLBACKS == before + 1

    def test_warning_fires_once_per_directory(self, tmp_path, monkeypatch):
        self._patch_fsync(monkeypatch, errno.EINVAL)
        with pytest.warns(RuntimeWarning):
            storage.fsync_dir(str(tmp_path))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            storage.fsync_dir(str(tmp_path))

    def test_other_errors_still_raise(self, tmp_path, monkeypatch):
        self._patch_fsync(monkeypatch, errno.EIO)
        with pytest.raises(OSError):
            storage.fsync_dir(str(tmp_path))


class TestConfigValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ExecutionError, match="workers"):
            ClusterConfig(workers=-1)

    def test_nonpositive_append_partition_rows_rejected(self):
        with pytest.raises(ExecutionError, match="append_partition_rows"):
            ClusterConfig(append_partition_rows=0)

    def test_nonpositive_reader_keep_generations_rejected(self):
        with pytest.raises(ExecutionError, match="reader_keep_generations"):
            ClusterConfig(reader_keep_generations=0)


class TestReaderRetentionKnob:
    @pytest.fixture(autouse=True)
    def _restore(self):
        kept = store_mod.reader_keep_generations()
        yield
        store_mod.set_reader_keep_generations(kept)

    def test_setter_validates(self):
        with pytest.raises(StorageError, match="at least 1"):
            store_mod.set_reader_keep_generations(0)

    def test_cluster_applies_config_knob(self):
        SimulatedCluster(ClusterConfig(reader_keep_generations=2))
        assert store_mod.reader_keep_generations() == 2
