"""Tests for job metrics accounting (repro.engine.metrics)."""

import pytest

from repro.engine.metrics import JobMetrics, StageMetrics


class TestStageMetrics:
    def test_derived_properties(self):
        stage = StageMetrics("map", task_times=[0.1, 0.2, 0.3], makespan=0.3)
        assert stage.num_tasks == 3
        assert stage.total_cpu == pytest.approx(0.6)


class TestJobMetrics:
    def test_server_time_composition(self):
        job = JobMetrics(job_startup=0.25)
        job.add_stage(StageMetrics("map", [0.1], 0.1))
        job.add_stage(StageMetrics("reduce", [0.05], 0.05))
        job.shuffle_time = 0.02
        assert job.server_time == pytest.approx(0.42)

    def test_total_time_includes_client_and_network(self):
        job = JobMetrics()
        job.network_time = 0.1
        job.client_time = 0.2
        assert job.total_time == pytest.approx(0.3)

    def test_real_time_sums_wall_clock(self):
        job = JobMetrics(job_startup=0.25)
        job.add_stage(StageMetrics("map", [0.4, 0.4], 0.4, wall_time=0.21))
        job.add_stage(StageMetrics("reduce", [0.1], 0.1, wall_time=0.1))
        # Real wall-clock is independent of the simulated schedule.
        assert job.real_time == pytest.approx(0.31)
        assert job.server_time == pytest.approx(0.25 + 0.4 + 0.1)

    def test_stage_lookup(self):
        job = JobMetrics()
        job.add_stage(StageMetrics("merge", [0.1], 0.1))
        assert job.stage("merge").makespan == 0.1
        with pytest.raises(KeyError):
            job.stage("missing")

    def test_summary_values(self):
        job = JobMetrics(job_startup=1.0)
        job.result_bytes = 100
        summary = job.summary()
        assert summary["server_s"] == 1.0
        assert summary["result_bytes"] == 100.0

    def test_summary_wire_keys_appear_as_a_pair(self):
        # Wire keys are all-or-nothing: either nonzero member pulls in
        # both, the missing one as 0.0 (documented on summary()).
        job = JobMetrics()
        job.wire_time = 0.02
        summary = job.summary()
        assert summary["wire_s"] == pytest.approx(0.02)
        assert summary["queue_wait_s"] == 0.0

        job = JobMetrics()
        job.queue_wait = 0.01
        summary = job.summary()
        assert summary["queue_wait_s"] == pytest.approx(0.01)
        assert summary["wire_s"] == 0.0

    def test_summary_omits_wire_and_shard_keys_in_process(self):
        # In-process transports never emit wire keys; single-store jobs
        # never emit shard keys -- the key *set* is the contract.
        summary = JobMetrics().summary()
        for key in ("queue_wait_s", "wire_s", "shards_total",
                    "shards_skipped", "failovers"):
            assert key not in summary

    def test_summary_shard_keys_appear_for_scatter_gather(self):
        job = JobMetrics()
        job.shards_total = 4
        summary = job.summary()
        assert summary["shards_total"] == 4.0
        assert summary["shards_skipped"] == 0.0
        assert summary["failovers"] == 0.0
