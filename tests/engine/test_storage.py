"""Tests for table serialisation (repro.engine.storage)."""

import numpy as np
import pytest

from repro.engine.storage import (
    deserialize_table,
    disk_size,
    memory_size,
    serialize_table,
)
from repro.engine.table import Table
from repro.errors import ExecutionError


def build_table() -> Table:
    rng = np.random.default_rng(0)
    objs = np.empty(20, dtype=object)
    for i in range(20):
        objs[i] = (1 << 100) + i if i % 2 == 0 else -(1 << 90) - i
    return Table.from_columns(
        "mixed",
        {
            "i": rng.integers(-100, 100, 20).astype(np.int64),
            "u": rng.integers(0, 2**63, 20).astype(np.uint64),
            "f": rng.random(20),
            "big": objs,
            "ore": rng.integers(0, 2**63, (20, 2)).astype(np.uint64),
        },
        num_partitions=3,
    )


class TestRoundTrip:
    def test_full_round_trip(self):
        table = build_table()
        restored = deserialize_table(serialize_table(table))
        assert restored.name == table.name
        assert restored.num_partitions == table.num_partitions
        for col in table.column_names:
            orig, back = table.column(col), restored.column(col)
            if orig.dtype == object:
                assert [int(x) for x in orig] == [int(x) for x in back]
            else:
                assert np.array_equal(orig, back)

    def test_round_trip_compressed(self):
        table = build_table()
        restored = deserialize_table(serialize_table(table, compress=True))
        assert np.array_equal(restored.column("i"), table.column("i"))

    def test_partition_start_ids_preserved(self):
        table = build_table()
        restored = deserialize_table(serialize_table(table))
        assert [p.start_id for p in restored.partitions] == [
            p.start_id for p in table.partitions
        ]

    def test_2d_shape_preserved(self):
        restored = deserialize_table(serialize_table(build_table()))
        assert restored.column("ore").shape == (20, 2)


class TestBoolColumns:
    def test_bool_round_trip(self):
        table = Table.from_columns(
            "flags", {"b": np.array([True, False, True])}, 1
        )
        restored = deserialize_table(serialize_table(table))
        assert restored.column("b").tolist() == [True, False, True]
        assert restored.column("b").dtype == np.bool_


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ExecutionError, match="not a serialized"):
            deserialize_table(b"JUNKxxxx")

    def test_unsupported_dtype(self):
        table = Table.from_columns("t", {"s": np.array(["a", "b"])}, 1)
        with pytest.raises(ExecutionError, match="unsupported column dtype"):
            serialize_table(table)


class TestSizeAccounting:
    def test_compression_shrinks_repetitive_data(self):
        table = Table.from_columns("t", {"z": np.zeros(10_000, dtype=np.int64)}, 2)
        assert disk_size(table, compress=True) < disk_size(table) / 50

    def test_memory_exceeds_disk_for_plain_tables(self):
        table = build_table()
        assert memory_size(table) > disk_size(table)

    def test_paillier_column_dominates(self):
        """2048-bit ciphertexts are ~32x an int64 -- the Table 5 blowup."""
        n = 200
        plain = Table.from_columns("p", {"v": np.arange(n, dtype=np.int64)}, 1)
        objs = np.empty(n, dtype=object)
        for i in range(n):
            objs[i] = 1 << 2047
        paillier = Table.from_columns("e", {"v": objs}, 1)
        assert disk_size(paillier) > 25 * disk_size(plain)
