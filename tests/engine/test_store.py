"""Tests for the persistent partition store (repro.engine.store)."""

import json
import os
import shutil

import numpy as np
import pytest

from repro.engine.store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    PartitionRef,
    StoreReader,
    disk_bytes,
    dispatch_payload,
    open_store,
    reader,
    resolve_partition,
    write_store,
)
from repro.engine.table import Partition, Table
from repro.errors import StorageError


def build_table(rows: int = 24, partitions: int = 3) -> Table:
    rng = np.random.default_rng(7)
    objs = np.empty(rows, dtype=object)
    for i in range(rows):
        objs[i] = (1 << 100) + i if i % 2 == 0 else -(1 << 90) - i
    return Table.from_columns(
        "mixed",
        {
            "i": rng.integers(-100, 100, rows).astype(np.int64),
            "u": rng.integers(0, 2**63, rows).astype(np.uint64),
            "f": rng.random(rows),
            "big": objs,
            "ore": rng.integers(0, 2**63, (rows, 2)).astype(np.uint64),
        },
        num_partitions=partitions,
        base_id=100,
    )


def assert_tables_equal(a: Table, b: Table) -> None:
    assert a.name == b.name
    assert a.num_partitions == b.num_partitions
    for pa, pb in zip(a.partitions, b.partitions):
        assert pa.start_id == pb.start_id
        assert sorted(pa.columns) == sorted(pb.columns)
        for name in pa.columns:
            assert np.array_equal(pa.column(name), np.asarray(pb.column(name))), name


class TestRoundTrip:
    def test_bit_for_bit(self, tmp_path):
        table = build_table()
        path = write_store(table, tmp_path / "mixed")
        reopened = open_store(path)
        assert_tables_equal(table, reopened)
        assert reopened.store_path == os.path.abspath(path)

    def test_numeric_columns_are_readonly_memmaps(self, tmp_path):
        path = write_store(build_table(), tmp_path / "mixed")
        reopened = open_store(path)
        col = reopened.partitions[0].column("u")
        assert isinstance(col, np.memmap)
        with pytest.raises(ValueError):
            col[0] = 1  # mode="r" maps reject writes

    def test_object_column_loads_eagerly(self, tmp_path):
        path = write_store(build_table(), tmp_path / "mixed")
        big = open_store(path).partitions[0].column("big")
        assert big.dtype == object
        assert isinstance(big[0], int) and big[0] >> 99

    def test_partition_refs_assigned(self, tmp_path):
        path = write_store(build_table(), tmp_path / "mixed")
        reopened = open_store(path)
        for index, part in enumerate(reopened.partitions):
            ref = part.ref
            assert (ref.path, ref.index, ref.generation) == (
                os.path.abspath(path), index, 1,
            )
            assert ref.store_id  # minted by write_store

    def test_column_meta_recorded(self, tmp_path):
        path = write_store(
            build_table(), tmp_path / "mixed", column_meta={"u": "ashe"}
        )
        manifest = json.load(open(os.path.join(path, MANIFEST_NAME)))
        assert manifest["columns"]["u"]["enc"] == "ashe"
        assert "enc" not in manifest["columns"]["i"]

    def test_disk_bytes_accounts_files(self, tmp_path):
        path = write_store(build_table(), tmp_path / "mixed")
        raw = sum(
            os.path.getsize(os.path.join(dirpath, f))
            for dirpath, _, files in os.walk(path)
            for f in files
        )
        assert disk_bytes(path) == raw > 0


class TestOverwrite:
    def test_existing_store_refused(self, tmp_path):
        table = build_table()
        write_store(table, tmp_path / "s")
        with pytest.raises(StorageError, match="already exists"):
            write_store(table, tmp_path / "s")

    def test_overwrite_replaces(self, tmp_path):
        write_store(build_table(rows=24, partitions=4), tmp_path / "s")
        table = build_table(rows=12, partitions=2)
        path = write_store(table, tmp_path / "s", overwrite=True)
        reopened = open_store(path)
        assert reopened.num_partitions == 2
        assert_tables_equal(table, reopened)
        assert not os.path.exists(os.path.join(path, "part-00002"))


class TestCorruption:
    def test_version_mismatch(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        manifest_path = os.path.join(path, MANIFEST_NAME)
        manifest = json.load(open(manifest_path))
        manifest["version"] = FORMAT_VERSION + 1
        json.dump(manifest, open(manifest_path, "w"))
        with pytest.raises(StorageError, match="format version"):
            open_store(path)

    def test_truncated_column_file(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        target = os.path.join(path, "part-00001", "u.bin")
        with open(target, "r+b") as fh:
            fh.truncate(os.path.getsize(target) - 8)
        with pytest.raises(StorageError, match="truncated|bytes"):
            open_store(path)

    def test_missing_column_file(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        os.remove(os.path.join(path, "part-00000", "f.bin"))
        with pytest.raises(StorageError, match="missing column file"):
            open_store(path)

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(StorageError, match="no partition store"):
            open_store(tmp_path / "empty")

    def test_corrupt_manifest(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        with open(os.path.join(path, MANIFEST_NAME), "w") as fh:
            fh.write("{ not json")
        with pytest.raises(StorageError, match="corrupt"):
            open_store(path)

    def test_wrong_format_marker(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        manifest_path = os.path.join(path, MANIFEST_NAME)
        manifest = json.load(open(manifest_path))
        manifest["format"] = "something-else"
        json.dump(manifest, open(manifest_path, "w"))
        with pytest.raises(StorageError, match="not a seabed-store"):
            open_store(path)


class TestDispatch:
    def test_dispatch_payload_prefers_refs(self, tmp_path):
        path = write_store(build_table(), tmp_path / "s")
        stored = open_store(path)
        ref = dispatch_payload(stored.partitions[1])
        assert (ref.path, ref.index, ref.generation) == (
            os.path.abspath(path), 1, 1,
        )
        inmem = build_table().partitions[0]
        assert dispatch_payload(inmem) is inmem

    def test_resolve_partition_round_trip(self, tmp_path):
        table = build_table()
        path = write_store(table, tmp_path / "s")
        ref = PartitionRef(os.path.abspath(path), 2)
        part = resolve_partition(ref)
        assert isinstance(part, Partition)
        assert part.start_id == table.partitions[2].start_id
        assert np.array_equal(part.column("i"), table.partitions[2].column("i"))
        # Second resolution hits the per-process reader cache.
        assert resolve_partition(ref) is part

    def test_resolve_passthrough_for_inmemory(self):
        part = build_table().partitions[0]
        assert resolve_partition(part) is part

    def test_out_of_range_partition(self, tmp_path):
        path = write_store(build_table(partitions=3), tmp_path / "s")
        with pytest.raises(StorageError, match="no partition"):
            StoreReader(path).partition(9)

    def test_reader_cache_detects_external_rewrite(self, tmp_path):
        """A store rewritten by *another* process (simulated here by a
        manifest replacement the local cache never saw) must not be
        served from stale maps -- the manifest stat guards the cache."""
        path = write_store(build_table(rows=24, partitions=4), tmp_path / "s")
        stale = reader(path)
        assert stale.num_partitions == 4
        # Rewrite out-of-band: stage elsewhere, then move the new
        # manifest + partitions in (new inode, no in-process eviction).
        other = write_store(build_table(rows=12, partitions=2), tmp_path / "o")
        for entry in os.listdir(path):
            target = os.path.join(path, entry)
            shutil.rmtree(target) if os.path.isdir(target) else os.remove(target)
        for entry in os.listdir(other):
            os.rename(os.path.join(other, entry), os.path.join(path, entry))
        fresh = reader(path)
        assert fresh is not stale
        assert fresh.num_partitions == 2
        assert open_store(path).num_partitions == 2


class TestValidation:
    def test_unsupported_dtype_rejected(self, tmp_path):
        table = Table.from_columns(
            "bad", {"x": np.arange(4, dtype=np.int32)}, num_partitions=1
        )
        with pytest.raises(StorageError, match="unsupported dtype"):
            write_store(table, tmp_path / "bad")

    def test_unstorable_column_name_rejected(self, tmp_path):
        table = Table.from_columns(
            "bad", {"a/b": np.arange(4, dtype=np.int64)}, num_partitions=1
        )
        with pytest.raises(StorageError, match="not storable"):
            write_store(table, tmp_path / "bad")

    def test_empty_table_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="no partitions"):
            write_store(Table("empty", []), tmp_path / "empty")
