"""Tests for the simulated cluster (repro.engine.cluster)."""

import pytest

from repro.engine.backends import SerialBackend, ThreadBackend
from repro.engine.cluster import ClusterConfig, SimulatedCluster, makespan
from repro.errors import ExecutionError


def double(x):
    """Top-level so process backends could pickle it."""
    return 2 * x


class TestMakespan:
    def test_single_core_sums(self):
        assert makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_cores_is_max(self):
        assert makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_two_cores_balances(self):
        # FIFO least-loaded: [3] -> c0, [3] -> c1, [2] -> c0(3+2), [1] -> c1(4)
        assert makespan([3.0, 3.0, 2.0, 1.0], 2) == pytest.approx(5.0)

    def test_empty(self):
        assert makespan([], 4) == 0.0

    def test_zero_cores_rejected(self):
        with pytest.raises(ExecutionError, match="at least one core"):
            makespan([1.0], 0)

    def test_monotone_in_cores(self):
        times = [0.5, 1.5, 0.2, 0.9, 2.2, 0.1] * 5
        spans = [makespan(times, c) for c in (1, 2, 4, 8, 16)]
        assert spans == sorted(spans, reverse=True)


class TestStageExecution:
    def test_results_in_order(self):
        cluster = SimulatedCluster(ClusterConfig(cores=2))
        results, stage = cluster.run_stage("s", [lambda i=i: i * i for i in range(5)])
        assert results == [0, 1, 4, 9, 16]
        assert stage.num_tasks == 5

    def test_task_startup_included(self):
        config = ClusterConfig(cores=1, task_startup_s=0.5)
        cluster = SimulatedCluster(config)
        _, stage = cluster.run_stage("s", [lambda: None, lambda: None])
        assert stage.makespan >= 1.0

    def test_metrics_accumulate(self):
        cluster = SimulatedCluster(ClusterConfig(cores=2))
        job = cluster.new_job()
        cluster.run_stage("a", [lambda: 1], job)
        cluster.run_stage("b", [lambda: 2], job)
        assert [s.name for s in job.stages] == ["a", "b"]
        assert job.server_time >= job.job_startup

    def test_driver_work_counts_once(self):
        cluster = SimulatedCluster(ClusterConfig(cores=8))
        job = cluster.new_job()
        out = cluster.run_driver("merge", lambda: 42, job)
        assert out == 42
        assert job.stage("merge").num_tasks == 1

    def test_map_stage_dispatches_args(self):
        cluster = SimulatedCluster(ClusterConfig(cores=2))
        results, stage = cluster.map_stage("s", double, [(i,) for i in range(5)])
        assert results == [0, 2, 4, 6, 8]
        assert stage.num_tasks == 5

    def test_wall_time_recorded(self):
        cluster = SimulatedCluster(ClusterConfig(cores=2))
        job = cluster.new_job()
        cluster.run_stage("a", [lambda: 1], job)
        cluster.map_stage("b", double, [(1,)], job)
        assert all(s.wall_time > 0.0 for s in job.stages)
        assert job.real_time == pytest.approx(sum(s.wall_time for s in job.stages))


class TestBackendSelection:
    def test_serial_is_default(self):
        cluster = SimulatedCluster()
        assert isinstance(cluster.backend, SerialBackend)

    def test_config_selects_backend(self):
        cluster = SimulatedCluster(ClusterConfig(backend="threads", workers=3))
        try:
            assert isinstance(cluster.backend, ThreadBackend)
            assert cluster.backend.workers == 3
        finally:
            cluster.close()

    def test_with_backend_builder(self):
        config = ClusterConfig().with_backend("processes", workers=4)
        assert (config.backend, config.workers) == ("processes", 4)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError, match="unknown execution backend"):
            SimulatedCluster(ClusterConfig(backend="mapreduce"))

    def test_injected_backend_wins(self):
        backend = SerialBackend()
        cluster = SimulatedCluster(ClusterConfig(backend="threads"), backend=backend)
        assert cluster.backend is backend

    def test_same_results_across_backends(self):
        calls = [(i,) for i in range(8)]
        serial = SimulatedCluster(ClusterConfig(backend="serial"))
        threads = SimulatedCluster(ClusterConfig(backend="threads", workers=2))
        try:
            r1, _ = serial.map_stage("s", double, calls)
            r2, _ = threads.map_stage("s", double, calls)
            assert r1 == r2
        finally:
            threads.close()


class TestStragglers:
    def test_injection_inflates_makespan(self):
        base = ClusterConfig(cores=4, task_startup_s=0.01, straggler_prob=0.0)
        slow = ClusterConfig(
            cores=4, task_startup_s=0.01, straggler_prob=1.0, straggler_factor=10.0
        )
        tasks = [lambda: sum(range(1000)) for _ in range(8)]
        _, clean = SimulatedCluster(base).run_stage("s", list(tasks))
        _, straggled = SimulatedCluster(slow).run_stage("s", list(tasks))
        assert straggled.makespan > clean.makespan * 5

    def test_deterministic_with_seed(self):
        # Which tasks straggle is seeded; measured wall times jitter, so we
        # compare the straggle pattern, made unambiguous by a large startup.
        config = ClusterConfig(
            cores=2, task_startup_s=0.1, straggler_prob=0.5,
            straggler_factor=50.0, seed=7,
        )
        t1 = SimulatedCluster(config).run_stage("s", [lambda: None] * 20)[1]
        t2 = SimulatedCluster(config).run_stage("s", [lambda: None] * 20)[1]
        pattern1 = [t > 1.0 for t in t1.task_times]
        pattern2 = [t > 1.0 for t in t2.task_times]
        assert pattern1 == pattern2
        assert any(pattern1) and not all(pattern1)


class TestNetworkModel:
    def test_transfer_time_scales_with_bytes(self):
        cluster = SimulatedCluster(
            ClusterConfig(client_bandwidth_bytes_s=1e6, client_latency_s=0.1)
        )
        assert cluster.client_transfer_time(1_000_000) == pytest.approx(1.1)

    def test_slow_link_config(self):
        fast = ClusterConfig()
        slow = fast.with_client_link(10e6 / 8, 0.1)  # 10 Mbps / 100 ms
        c_fast = SimulatedCluster(fast).client_transfer_time(100_000)
        c_slow = SimulatedCluster(slow).client_transfer_time(100_000)
        assert c_slow > c_fast * 10

    def test_shuffle_accounting(self):
        cluster = SimulatedCluster(ClusterConfig())
        job = cluster.new_job()
        cluster.account_shuffle(job, 1_000_000)
        cluster.account_result_transfer(job, 2048)
        assert job.shuffle_bytes == 1_000_000
        assert job.result_bytes == 2048
        assert job.network_time > 0
        assert job.total_time >= job.server_time

    def test_with_cores_builder(self):
        assert ClusterConfig(cores=4).with_cores(64).cores == 64


class TestJobMetrics:
    def test_stage_lookup_missing(self):
        cluster = SimulatedCluster()
        job = cluster.new_job()
        with pytest.raises(KeyError):
            job.stage("nope")

    def test_summary_keys(self):
        cluster = SimulatedCluster()
        job = cluster.new_job()
        cluster.run_stage("s", [lambda: 0], job)
        summary = job.summary()
        assert set(summary) == {
            "server_s", "real_s", "network_s", "client_s", "total_s",
            "result_bytes", "shuffle_bytes",
            "partitions_total", "partitions_skipped",
        }
