"""Tests for the benchmark-harness support (repro.bench)."""


import pytest

from repro.bench.harness import ResultSink, cdf_points, results_dir
from repro.bench.tables import format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [333, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equally wide

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table\n")

    def test_number_rendering(self):
        text = format_table(["v"], [[1234567], [0.25], [1234.5], [0]])
        assert "1,234,567" in text
        assert "0.25" in text

    def test_strings_pass_through(self):
        assert "hello" in format_table(["v"], [["hello"]])


class TestResultSink:
    def test_writes_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("SEABED_RESULTS_DIR", str(tmp_path))
        with ResultSink("demo") as sink:
            sink.emit("chunk one")
            sink.emit("chunk two")
        path = tmp_path / "demo.txt"
        assert path.exists()
        content = path.read_text()
        assert "chunk one" in content and "chunk two" in content
        assert "chunk one" in capsys.readouterr().out

    def test_results_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SEABED_RESULTS_DIR", str(tmp_path / "nested"))
        assert results_dir() == tmp_path / "nested"
        assert (tmp_path / "nested").is_dir()


class TestCdf:
    def test_quantiles(self):
        points = cdf_points(range(1, 101), quantiles=(0.5, 1.0))
        assert points[0] == (0.5, pytest.approx(50.5))
        assert points[1] == (1.0, 100.0)

    def test_empty(self):
        assert cdf_points([]) == []
