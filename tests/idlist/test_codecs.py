"""Tests for the composable codec pipelines (repro.idlist.codec)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.idlist import CODECS, IdList, get_codec
from repro.idlist.codec import decode

ALL_CODEC_NAMES = sorted(CODECS)

id_sets = st.sets(st.integers(min_value=0, max_value=20_000), max_size=150)


@pytest.mark.parametrize("name", ALL_CODEC_NAMES)
class TestRoundTripAllCodecs:
    def test_typical(self, name):
        codec = get_codec(name)
        ids = IdList.from_ids([2, 3, 4, 9, 23, 24, 25, 1000])
        assert codec.decode(codec.encode(ids)) == ids

    def test_single_id(self, name):
        codec = get_codec(name)
        ids = IdList.from_ids([777])
        assert codec.decode(codec.encode(ids)) == ids

    def test_long_contiguous_run(self, name):
        codec = get_codec(name)
        ids = IdList.from_range(0, 5000)
        assert codec.decode(codec.encode(ids)) == ids

    def test_self_describing_decode(self, name):
        codec = get_codec(name)
        ids = IdList.from_ids([1, 5, 6])
        assert decode(codec.encode(ids)) == ids


class TestSizeBehaviour:
    """The size relationships the paper relies on (Section 4.5, Fig 8a)."""

    def test_range_encoding_bounds_dense_lists(self):
        """A fully contiguous selection encodes to O(1) bytes with ranges,
        O(n) without."""
        ids = IdList.from_range(0, 100_000)
        with_ranges = get_codec("ranges+vb+diff").encoded_size(ids)
        without = get_codec("vb+diff").encoded_size(ids)
        assert with_ranges < 20
        assert without > 50_000

    def test_range_encoding_bloats_sparse_lists(self):
        """Isolated IDs cost two numbers under range encoding -- the reason
        Seabed drops ranges on the group-by path."""
        sparse = IdList.from_ids(list(range(0, 10_000, 7)))  # no two adjacent
        with_ranges = get_codec("ranges+vb").encoded_size(sparse)
        without = get_codec("vb").encoded_size(sparse)
        assert with_ranges > without

    def test_alternating_ids_compress_with_deflate(self):
        """Paper Section 6.1: every-other-row selection looks adversarial
        for range encoding but deflate exploits the regular structure."""
        alternating = IdList.from_ids(list(range(0, 40_000, 2)))
        plain = get_codec("ranges+vb+diff").encoded_size(alternating)
        deflated = get_codec("ranges+vb+diff+deflate_fast").encoded_size(alternating)
        assert deflated < plain / 10

    def test_compact_deflate_not_larger_than_fast(self):
        rng = np.random.default_rng(0)
        ids = IdList.from_mask(rng.random(50_000) < 0.5)
        fast = get_codec("ranges+vb+diff+deflate_fast").encoded_size(ids)
        compact = get_codec("ranges+vb+diff+deflate_compact").encoded_size(ids)
        assert compact <= fast

    def test_fixed64_is_the_upper_baseline(self):
        ids = IdList.from_ids(list(range(0, 9_000, 3)))
        fixed = get_codec("fixed64").encoded_size(ids)
        assert fixed >= 8 * ids.count()

    def test_bitmap_good_when_dense_bad_when_wide(self):
        dense = IdList.from_range(0, 8_000)
        assert get_codec("bitmap").encoded_size(dense) <= 8_000 / 8 + 16
        wide = IdList.from_ids([0, 10_000_000])
        assert get_codec("bitmap").encoded_size(wide) > 1_000_000
        # WAH fixes the wide case via fill words
        assert get_codec("bitmap_wah").encoded_size(wide) < 100


class TestErrors:
    def test_unknown_codec(self):
        with pytest.raises(EncodingError, match="unknown ID-list codec"):
            get_codec("gzip9000")

    def test_empty_payload(self):
        with pytest.raises(EncodingError, match="empty"):
            decode(b"")


@pytest.mark.parametrize("name", ALL_CODEC_NAMES)
@given(ids=id_sets)
@settings(max_examples=25, deadline=None)
def test_property_round_trip(name, ids):
    codec = get_codec(name)
    lst = IdList.from_ids(sorted(ids))
    assert codec.decode(codec.encode(lst)) == lst


class TestIdSpans:
    """The partition-store span serialisation (manifest row-ID intervals)."""

    def test_round_trip(self):
        from repro.idlist.codec import decode_id_spans, encode_id_spans

        starts = np.array([0, 100, 250, 1000], dtype=np.uint64)
        counts = np.array([100, 150, 750, 3], dtype=np.uint64)
        out_starts, out_counts = decode_id_spans(encode_id_spans(starts, counts))
        assert np.array_equal(out_starts, starts)
        assert np.array_equal(out_counts, counts)

    def test_empty(self):
        from repro.idlist.codec import decode_id_spans, encode_id_spans

        starts, counts = decode_id_spans(
            encode_id_spans(np.empty(0, np.uint64), np.empty(0, np.uint64))
        )
        assert starts.size == 0 and counts.size == 0

    def test_mismatched_lengths_rejected(self):
        from repro.idlist.codec import encode_id_spans

        with pytest.raises(EncodingError, match="one count per start"):
            encode_id_spans(np.array([0, 5], np.uint64), np.array([1], np.uint64))

    def test_unsorted_starts_rejected(self):
        from repro.idlist.codec import encode_id_spans

        with pytest.raises(EncodingError, match="sorted"):
            encode_id_spans(np.array([5, 0], np.uint64), np.array([1, 1], np.uint64))

    def test_bad_payload_rejected(self):
        from repro.idlist.codec import decode_id_spans

        with pytest.raises(EncodingError, match="id-span"):
            decode_id_spans(b"\x40abc")

    @given(spans=st.lists(
        st.tuples(st.integers(0, 5000), st.integers(0, 10_000)), max_size=40
    ))
    @settings(deadline=None, max_examples=50)
    def test_property_round_trip(self, spans):
        from repro.idlist.codec import decode_id_spans, encode_id_spans

        gaps = np.array([g for g, _ in spans], dtype=np.uint64)
        counts = np.array([c for _, c in spans], dtype=np.uint64)
        starts = np.cumsum(gaps, dtype=np.uint64)
        out_starts, out_counts = decode_id_spans(encode_id_spans(starts, counts))
        assert np.array_equal(out_starts, starts)
        assert np.array_equal(out_counts, counts)
