"""Tests for the run-compressed IdList (repro.idlist.idlist)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.idlist import IdList

id_sets = st.sets(st.integers(min_value=0, max_value=10_000), max_size=200)


def make(ids) -> IdList:
    return IdList.from_ids(sorted(ids))


class TestConstruction:
    def test_empty(self):
        ids = IdList.empty()
        assert ids.is_empty() and ids.count() == 0 and len(ids) == 0

    def test_from_range(self):
        ids = IdList.from_range(5, 10)
        assert ids.count() == 5
        assert list(ids.runs()) == [(5, 9)]

    def test_from_empty_range(self):
        assert IdList.from_range(7, 7).is_empty()

    def test_from_ids_finds_runs(self):
        ids = IdList.from_ids([2, 3, 4, 9, 23])
        assert list(ids.runs()) == [(2, 4), (9, 9), (23, 23)]
        assert ids.num_runs == 3

    def test_from_ids_rejects_unsorted(self):
        with pytest.raises(EncodingError, match="strictly increasing"):
            IdList.from_ids([3, 2])

    def test_from_ids_rejects_duplicates(self):
        with pytest.raises(EncodingError, match="strictly increasing"):
            IdList.from_ids([2, 2])

    def test_from_mask(self):
        mask = np.array([True, False, True, True, False])
        ids = IdList.from_mask(mask, offset=100)
        assert ids.to_ids().tolist() == [100, 102, 103]

    def test_from_all_false_mask(self):
        assert IdList.from_mask(np.zeros(5, dtype=bool)).is_empty()

    def test_run_validation(self):
        with pytest.raises(EncodingError, match="end below"):
            IdList(np.array([5]), np.array([3]))
        with pytest.raises(EncodingError, match="overlap"):
            IdList(np.array([1, 2]), np.array([5, 9]))


class TestAccessors:
    def test_to_ids_round_trip(self):
        original = [1, 2, 3, 7, 8, 100]
        assert IdList.from_ids(original).to_ids().tolist() == original

    def test_contains(self):
        ids = IdList.from_ids([2, 3, 4, 9])
        assert ids.contains(3) and ids.contains(9)
        assert not ids.contains(5) and not ids.contains(1) and not ids.contains(10)

    def test_contains_on_empty(self):
        assert not IdList.empty().contains(0)

    def test_repr_is_compact(self):
        text = repr(IdList.from_ids([1, 2, 3, 10]))
        assert "1-3" in text and "runs=2" in text


class TestUnion:
    def test_disjoint(self):
        a = IdList.from_range(0, 5)
        b = IdList.from_range(10, 15)
        assert a.union(b).to_ids().tolist() == list(range(5)) + list(range(10, 15))

    def test_adjacent_runs_coalesce(self):
        a = IdList.from_range(0, 5)
        b = IdList.from_range(5, 10)
        u = a.union(b)
        assert u.num_runs == 1
        assert u.count() == 10

    def test_overlapping(self):
        a = IdList.from_range(0, 6)
        b = IdList.from_range(3, 10)
        u = a.union(b)
        assert u.num_runs == 1 and u.count() == 10

    def test_with_empty(self):
        a = IdList.from_range(3, 6)
        assert a.union(IdList.empty()) == a
        assert IdList.empty().union(a) == a

    def test_union_all(self):
        parts = [IdList.from_range(i * 10, i * 10 + 5) for i in range(4)]
        u = IdList.union_all(parts)
        assert u.count() == 20 and u.num_runs == 4

    def test_union_all_contiguous_partitions_single_run(self):
        """Driver merging contiguous partition results gets one run --
        this is what makes full-table ASHE decryption two PRF calls."""
        parts = [IdList.from_range(i * 100, (i + 1) * 100) for i in range(10)]
        u = IdList.union_all(parts)
        assert u.num_runs == 1 and u.count() == 1000

    def test_union_all_empty_input(self):
        assert IdList.union_all([]).is_empty()
        assert IdList.union_all([IdList.empty()]).is_empty()


class TestEquality:
    def test_eq_and_hash(self):
        a = IdList.from_ids([1, 2, 3])
        b = IdList.from_range(1, 4)
        assert a == b and hash(a) == hash(b)

    def test_neq(self):
        assert IdList.from_ids([1]) != IdList.from_ids([2])

    def test_eq_other_type(self):
        assert IdList.empty() != "not an idlist"


@given(a=id_sets, b=id_sets)
@settings(max_examples=80, deadline=None)
def test_property_union_matches_set_union(a, b):
    got = make(a).union(make(b))
    assert got.to_ids().tolist() == sorted(a | b)


@given(ids=id_sets)
@settings(max_examples=80, deadline=None)
def test_property_roundtrip_and_count(ids):
    lst = make(ids)
    assert lst.to_ids().tolist() == sorted(ids)
    assert lst.count() == len(ids)


@given(ids=id_sets)
@settings(max_examples=50, deadline=None)
def test_property_runs_partition_the_ids(ids):
    lst = make(ids)
    reconstructed = []
    for s, e in lst.runs():
        assert s <= e
        reconstructed.extend(range(s, e + 1))
    assert reconstructed == sorted(ids)
