"""Tests for range/diff transforms (repro.idlist.encoding) -- the paper's
Table 3 examples are checked verbatim."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.idlist import encoding
from repro.idlist.idlist import IdList

id_sets = st.sets(st.integers(min_value=0, max_value=50_000), min_size=1, max_size=150)


class TestTable3Examples:
    """The exact examples from Table 3 of the paper."""

    def test_range_encoding(self):
        # [2...14, 19...23] -> [2-14, 19-23]
        ids = IdList.from_ids(list(range(2, 15)) + list(range(19, 24)))
        assert encoding.ranges_flatten(ids).tolist() == [2, 14, 19, 23]

    def test_diff_encoding(self):
        # [2,3,4,9,23] -> [2,1,1,5,14]
        arr = np.array([2, 3, 4, 9, 23], dtype=np.uint64)
        assert encoding.diff_encode(arr).tolist() == [2, 1, 1, 5, 14]

    def test_combination(self):
        # [2...14, 19...23] -> [2-12, 5-4]
        ids = IdList.from_ids(list(range(2, 15)) + list(range(19, 24)))
        assert encoding.combination_encode(ids).tolist() == [2, 12, 5, 4]


class TestInverses:
    def test_ranges_round_trip(self):
        ids = IdList.from_ids([1, 2, 3, 7, 9, 10])
        assert encoding.ranges_unflatten(encoding.ranges_flatten(ids)) == ids

    def test_diff_round_trip(self):
        arr = np.array([5, 6, 100, 1000], dtype=np.uint64)
        assert encoding.diff_decode(encoding.diff_encode(arr)).tolist() == arr.tolist()

    def test_combination_round_trip(self):
        ids = IdList.from_ids([0, 1, 5, 6, 7, 99])
        assert encoding.combination_decode(encoding.combination_encode(ids)) == ids

    def test_empty_cases(self):
        assert encoding.combination_encode(IdList.empty()).size == 0
        assert encoding.combination_decode(np.empty(0, np.uint64)).is_empty()
        assert encoding.diff_encode(np.empty(0, np.uint64)).size == 0
        assert encoding.diff_decode(np.empty(0, np.uint64)).size == 0


class TestValidation:
    def test_odd_range_sequence(self):
        with pytest.raises(EncodingError, match="even"):
            encoding.ranges_unflatten(np.array([1, 2, 3], dtype=np.uint64))

    def test_odd_combination_sequence(self):
        with pytest.raises(EncodingError, match="even"):
            encoding.combination_decode(np.array([1, 2, 3], dtype=np.uint64))


@given(ids=id_sets)
@settings(max_examples=100, deadline=None)
def test_property_combination_round_trip(ids):
    lst = IdList.from_ids(sorted(ids))
    assert encoding.combination_decode(encoding.combination_encode(lst)) == lst


@given(ids=id_sets)
@settings(max_examples=100, deadline=None)
def test_property_ranges_round_trip(ids):
    lst = IdList.from_ids(sorted(ids))
    assert encoding.ranges_unflatten(encoding.ranges_flatten(lst)) == lst


@given(values=st.lists(st.integers(min_value=0, max_value=2**40), min_size=1,
                       max_size=100))
@settings(max_examples=100, deadline=None)
def test_property_diff_round_trip_sorted(values):
    arr = np.array(sorted(values), dtype=np.uint64)
    assert encoding.diff_decode(encoding.diff_encode(arr)).tolist() == arr.tolist()
