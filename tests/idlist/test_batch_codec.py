"""Tests for the batched group-codec paths (repro.idlist.codec):
``encode_groups_vb_diff`` / ``decode_chunks_batch`` / varbyte offsets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idlist import IdList, get_codec
from repro.idlist.codec import (
    decode,
    decode_chunks_batch,
    encode_groups_vb_diff,
    encode_multiset,
)
from repro.idlist.varbyte import encode_with_offsets


class TestEncodeWithOffsets:
    def test_offsets_delimit_values(self):
        values = np.array([1, 200, 3, 2**40], dtype=np.uint64)
        payload, offsets = encode_with_offsets(values)
        assert len(offsets) == 5
        assert offsets[-1] == len(payload)
        from repro.idlist.varbyte import decode as vb_decode

        for i, v in enumerate(values.tolist()):
            piece = payload[offsets[i]:offsets[i + 1]]
            assert vb_decode(piece).tolist() == [v]

    def test_empty(self):
        payload, offsets = encode_with_offsets(np.empty(0, np.uint64))
        assert payload == b"" and offsets.tolist() == [0]


def _grouped_ids(rng, ngroups, per_group):
    """Sorted-by-(group, id) ids with group boundaries."""
    all_ids = []
    starts = []
    cursor = 0
    for g in range(ngroups):
        n = int(per_group[g])
        ids = np.sort(rng.choice(10_000, n, replace=False)) + g * 20_000
        starts.append(cursor)
        cursor += n
        all_ids.append(ids)
    bounds = np.append(np.asarray(starts), cursor)
    return np.concatenate(all_ids).astype(np.uint64), np.asarray(starts), bounds


class TestEncodeGroups:
    def test_chunks_decode_to_their_groups(self):
        rng = np.random.default_rng(0)
        ids, starts, bounds = _grouped_ids(rng, 5, [3, 10, 1, 7, 4])
        chunks = encode_groups_vb_diff(ids, starts, bounds)
        assert len(chunks) == 5
        for g, chunk in enumerate(chunks):
            lo, hi = int(bounds[g]), int(bounds[g + 1])
            assert decode(chunk).to_ids().tolist() == ids[lo:hi].tolist()

    def test_matches_per_group_codec(self):
        """Sliced chunks are byte-identical to individually encoded ones."""
        rng = np.random.default_rng(1)
        ids, starts, bounds = _grouped_ids(rng, 3, [4, 4, 4])
        chunks = encode_groups_vb_diff(ids, starts, bounds)
        codec = get_codec("groupby")
        for g, chunk in enumerate(chunks):
            lo, hi = int(bounds[g]), int(bounds[g + 1])
            individual = codec.encode(IdList.from_ids(ids[lo:hi]))
            assert chunk == individual

    def test_empty_input(self):
        assert encode_groups_vb_diff(
            np.empty(0, np.uint64), np.empty(0, np.int64), np.zeros(1, np.int64)
        ) == []


class TestDecodeChunksBatch:
    def test_fast_path_matches_scalar(self):
        rng = np.random.default_rng(2)
        ids, starts, bounds = _grouped_ids(rng, 6, [2, 9, 1, 5, 3, 8])
        chunks = encode_groups_vb_diff(ids, starts, bounds)
        batch_ids, counts = decode_chunks_batch(chunks)
        assert batch_ids.tolist() == ids.tolist()
        assert counts.tolist() == np.diff(bounds).tolist()

    def test_mixed_formats_fall_back(self):
        codec = get_codec("seabed")
        a = codec.encode(IdList.from_range(0, 10))
        b = encode_multiset(np.array([5, 5, 7], dtype=np.uint64))
        ids, counts = decode_chunks_batch([a, b])
        assert counts.tolist() == [10, 3]
        assert ids[:10].tolist() == list(range(10))
        assert ids[10:].tolist() == [5, 5, 7]

    def test_empty_list(self):
        ids, counts = decode_chunks_batch([])
        assert ids.size == 0 and counts.size == 0

    def test_single_chunk(self):
        chunks = encode_groups_vb_diff(
            np.array([42], dtype=np.uint64), np.array([0]), np.array([0, 1])
        )
        ids, counts = decode_chunks_batch(chunks)
        assert ids.tolist() == [42] and counts.tolist() == [1]


@given(
    per_group=st.lists(st.integers(min_value=1, max_value=30), min_size=1,
                       max_size=20),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_property_batch_round_trip(per_group, seed):
    rng = np.random.default_rng(seed)
    ids, starts, bounds = _grouped_ids(rng, len(per_group), per_group)
    chunks = encode_groups_vb_diff(ids, starts, bounds)
    batch_ids, counts = decode_chunks_batch(chunks)
    assert batch_ids.tolist() == ids.tolist()
    assert counts.tolist() == per_group
