"""The span-group codec: multi-span row-ID ranges per partition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.idlist.codec import (
    decode_id_spans,
    decode_span_groups,
    encode_id_spans,
    encode_span_groups,
)


def test_round_trip_single_span_groups():
    groups = [[(0, 10)], [(10, 5)], [(15, 100)]]
    assert decode_span_groups(encode_span_groups(groups)) == groups


def test_round_trip_multi_span_groups():
    # A compacted partition absorbing three source partitions' spans.
    groups = [[(0, 4), (4, 4), (8, 2)], [(10, 6), (16, 1)]]
    assert decode_span_groups(encode_span_groups(groups)) == groups


def test_gaps_between_spans_allowed():
    groups = [[(5, 2)], [(100, 3), (2000, 1)]]
    assert decode_span_groups(encode_span_groups(groups)) == groups


def test_empty_group_list():
    assert decode_span_groups(encode_span_groups([])) == []


def test_empty_group_rejected():
    with pytest.raises(EncodingError, match="at least one span"):
        encode_span_groups([[(0, 4)], []])


def test_unsorted_starts_rejected():
    with pytest.raises(EncodingError, match="sorted"):
        encode_span_groups([[(10, 4)], [(0, 4)]])


def test_wrong_payload_rejected():
    with pytest.raises(EncodingError, match="span-group"):
        decode_span_groups(encode_id_spans(
            np.asarray([0], dtype=np.uint64), np.asarray([4], dtype=np.uint64)
        ))
    with pytest.raises(EncodingError, match="span-group"):
        decode_span_groups(b"")


def test_truncated_payload_rejected():
    payload = encode_span_groups([[(0, 4), (4, 4)]])
    with pytest.raises(EncodingError, match="truncated"):
        decode_span_groups(payload[:-1])


def test_header_distinct_from_id_span_codec():
    spans = encode_id_spans(
        np.asarray([0, 8], dtype=np.uint64), np.asarray([8, 8], dtype=np.uint64)
    )
    grouped = encode_span_groups([[(0, 8)], [(8, 8)]])
    assert spans[0] != grouped[0]
    # and the plain span codec refuses the grouped payload
    with pytest.raises(EncodingError):
        decode_id_spans(grouped)


@given(
    st.lists(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 20),
                st.integers(min_value=0, max_value=1 << 16),
            ),
            min_size=1, max_size=4,
        ),
        min_size=0, max_size=8,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_round_trip(raw):
    # Make starts globally sorted (the tiling invariant the codec checks).
    flat = sorted(start for group in raw for start, _ in group)
    it = iter(flat)
    groups = [[(next(it), count) for _, count in group] for group in raw]
    assert decode_span_groups(encode_span_groups(groups)) == groups
