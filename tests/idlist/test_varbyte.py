"""Tests for vectorised variable-byte coding (repro.idlist.varbyte)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.idlist import varbyte

u64_lists = st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=300)


class TestKnownEncodings:
    def test_small_values_one_byte(self):
        assert varbyte.encode(np.array([0, 1, 127], dtype=np.uint64)) == bytes(
            [0, 1, 127]
        )

    def test_128_takes_two_bytes(self):
        assert varbyte.encode(np.array([128], dtype=np.uint64)) == bytes([0x80, 0x01])

    def test_empty(self):
        assert varbyte.encode(np.empty(0, dtype=np.uint64)) == b""
        assert varbyte.decode(b"").size == 0

    def test_max_uint64_takes_ten_bytes(self):
        data = varbyte.encode(np.array([2**64 - 1], dtype=np.uint64))
        assert len(data) == 10
        assert varbyte.decode(data).tolist() == [2**64 - 1]

    def test_minimum_bytes_used(self):
        # Value v needs ceil(bitlen/7) bytes.
        for v in (1, 127, 128, 2**14 - 1, 2**14, 2**21 - 1, 2**21):
            encoded = varbyte.encode(np.array([v], dtype=np.uint64))
            expected = max(1, -(-v.bit_length() // 7))
            assert len(encoded) == expected, v


class TestErrors:
    def test_truncated_stream(self):
        with pytest.raises(EncodingError, match="truncated"):
            varbyte.decode(bytes([0x80]))

    def test_overlong_group(self):
        with pytest.raises(EncodingError, match="longer than 10"):
            varbyte.decode(bytes([0x80] * 11 + [0x01]))

    def test_scalar_rejects_negative(self):
        with pytest.raises(EncodingError, match="unsigned"):
            varbyte.encode_scalar([-1])

    def test_scalar_truncated(self):
        with pytest.raises(EncodingError, match="truncated"):
            varbyte.decode_scalar(bytes([0x80]))


@given(values=u64_lists)
@settings(max_examples=100, deadline=None)
def test_property_round_trip(values):
    arr = np.array(values, dtype=np.uint64)
    assert varbyte.decode(varbyte.encode(arr)).tolist() == values


@given(values=u64_lists)
@settings(max_examples=100, deadline=None)
def test_property_vectorised_matches_scalar_reference(values):
    arr = np.array(values, dtype=np.uint64)
    assert varbyte.encode(arr) == varbyte.encode_scalar(values)
    encoded = varbyte.encode_scalar(values)
    assert varbyte.decode_scalar(encoded) == values
