"""Integration tests for the two-round-trip linear regression (2R)."""

import numpy as np
import pytest

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.errors import TranslationError


@pytest.fixture(scope="module")
def client():
    rng = np.random.default_rng(8)
    n = 2000
    x = rng.integers(0, 1000, n)
    noise = rng.integers(-40, 40, n)
    y = (3 * x + 250 + noise).astype(np.int64)
    year = rng.integers(2014, 2017, n)
    schema = TableSchema("points", [
        ColumnSpec("x", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("y", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("year", dtype="int", sensitive=False),
    ])
    client = SeabedClient(master_key=b"r" * 32, mode="seabed", seed=4)
    client.create_plan(schema, [
        "SELECT sum(x), sum(y), count(*) FROM points",
    ])
    client.upload("points", {"x": x, "y": y, "year": year}, num_partitions=4)
    client._ground_truth = (x, y, year)  # test-only stash
    return client


def test_recovers_slope_and_intercept(client):
    x, y, _ = client._ground_truth
    fit = client.linear_regression("points", "x", "y")
    slope, intercept = np.polyfit(x.astype(float), y.astype(float), 1)
    assert fit.slope == pytest.approx(slope, rel=1e-9)
    assert fit.intercept == pytest.approx(intercept, rel=1e-9)
    assert fit.r_squared > 0.99
    assert fit.n == len(x)


def test_two_round_trips_accounted(client):
    fit = client.linear_regression("points", "x", "y")
    assert fit.round_trips == 2
    assert len(fit.request_metrics) == 2
    assert fit.total_time > 0


def test_filtered_regression(client):
    x, y, year = client._ground_truth
    fit = client.linear_regression("points", "x", "y", where="year = 2015")
    mask = year == 2015
    slope, intercept = np.polyfit(x[mask].astype(float), y[mask].astype(float), 1)
    assert fit.slope == pytest.approx(slope, rel=1e-9)
    assert fit.n == int(mask.sum())


def test_empty_selection_rejected(client):
    with pytest.raises(TranslationError, match="empty selection"):
        client.linear_regression("points", "x", "y", where="year = 1900")


def test_zero_variance_rejected():
    schema = TableSchema("flat", [
        ColumnSpec("x", dtype="int", sensitive=True),
        ColumnSpec("y", dtype="int", sensitive=True),
    ])
    client = SeabedClient(mode="seabed", seed=1)
    client.create_plan(schema, ["SELECT sum(x), sum(y), count(*) FROM flat"])
    client.upload("flat", {"x": np.full(10, 5), "y": np.arange(10)})
    with pytest.raises(TranslationError, match="zero variance"):
        client.linear_regression("flat", "x", "y")
