"""Sharded scatter-gather must be bit-identical to single-store execution.

One dataset, two deployments: a plain in-memory single-store session and
a sharded session (same master key, same seed, same plan) whose table is
split across process-isolated shard workers.  Every query -- ASHE sums,
grouped partials, ORE extremes and medians, routed DET point lookups --
must decrypt to exactly the single-store answer, across worker-internal
execution backends and across appended and compacted shard generations.
A hypothesis sweep then compares random queries against the plaintext
executor directly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.query import execute_plain
from repro.query.ast import Aggregate, ColumnRef, Comparison, InList, Query

REGIONS = ["ber", "del", "lag", "lim", "osl", "rio", "sfo", "tok"]
KEY = b"s" * 32
N = 360


def _batch(seed, n=N):
    rng = np.random.default_rng(seed)
    return {
        "region": rng.choice(REGIONS, n).tolist(),
        "day": rng.integers(0, 60, n),
        "amount": rng.integers(-50, 900, n),
    }


BATCHES = [_batch(3), _batch(4), _batch(5)]
ALL_DATA = {
    col: np.concatenate([np.asarray(b[col]) for b in BATCHES])
    for col in BATCHES[0]
}

SCHEMA = TableSchema("sales", [
    ColumnSpec("region", dtype="str", sensitive=True),
    ColumnSpec("day", dtype="int", sensitive=True, nbits=16),
    ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
])
SAMPLE_QUERIES = [
    "SELECT sum(amount) FROM sales WHERE region = 'rio'",
    "SELECT region, sum(amount), count(*) FROM sales GROUP BY region",
    "SELECT sum(amount), var(amount) FROM sales WHERE day > 10",
    "SELECT min(amount), max(amount), median(amount) FROM sales",
]
CHECK_QUERIES = [
    "SELECT sum(amount) FROM sales WHERE region = 'rio'",
    "SELECT sum(amount), count(*) FROM sales WHERE region IN ('ber', 'tok')",
    "SELECT region, sum(amount), count(*) FROM sales GROUP BY region",
    "SELECT sum(amount), avg(amount), var(amount) FROM sales WHERE day > 10",
    "SELECT sum(amount) FROM sales WHERE day >= 12 AND day < 40",
    "SELECT min(amount), max(amount), median(amount) FROM sales",
    "SELECT sum(amount) FROM sales WHERE region = 'osl' AND day < 30",
]


def _rows_key(row):
    return sorted(row.items(), key=lambda kv: kv[0])


def assert_same_rows(got, want):
    assert len(got) == len(want)
    for g, w in zip(
        sorted(got, key=_rows_key), sorted(want, key=_rows_key)
    ):
        assert set(g) == set(w)
        for key, value in w.items():
            if isinstance(value, float):
                assert g[key] == pytest.approx(value, rel=1e-9, abs=1e-9)
            else:
                assert g[key] == value


def make_single():
    session = SeabedSession(master_key=KEY, seed=1)
    session.create_plan(SCHEMA, SAMPLE_QUERIES)
    for batch in BATCHES:
        session.upload("sales", batch)
    return session


def make_sharded(tmp_path, backend="serial", replicas=2, num_shards=4):
    config = ClusterConfig(
        storage_dir=str(tmp_path), backend=backend, workers=2,
        append_partition_rows=128,
    )
    session = SeabedSession(
        master_key=KEY, seed=1, cluster=SimulatedCluster(config)
    )
    session.create_plan(SCHEMA, SAMPLE_QUERIES)
    session.shard_table(
        "sales", "region", num_shards=num_shards, replicas=replicas
    )
    for batch in BATCHES:
        session.upload("sales", batch)
    return session


@pytest.fixture(scope="module")
def single():
    return make_single()


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    session = make_sharded(tmp_path_factory.mktemp("shardstore"))
    yield session
    session.close()


class TestEquivalence:
    @pytest.mark.parametrize("query", CHECK_QUERIES)
    def test_query_matches_single_store(self, single, sharded, query):
        assert_same_rows(
            sharded.query(query).rows, single.query(query).rows
        )

    def test_scan_matches_single_store(self, single, sharded):
        query = "SELECT region, amount FROM sales WHERE region = 'lag'"
        got = sharded.scan(query).rows
        want = single.scan(query).rows
        assert sorted(map(_rows_key, got)) == sorted(map(_rows_key, want))

    def test_rows_distributed_across_shards(self, sharded):
        table = sharded.sharded_table("sales")
        per_shard = table.shard_rows()
        assert sum(per_shard.values()) == len(BATCHES) * N
        assert sum(1 for n in per_shard.values() if n > 0) >= 2

    def test_point_query_routes_and_skips_shards(self, sharded):
        result = sharded.query(
            "SELECT sum(amount) FROM sales WHERE region = 'rio'"
        )
        metrics = result.request_metrics[0]
        assert metrics.shards_total == 4
        assert metrics.shards_skipped > 0
        assert metrics.failovers == 0

    def test_range_query_prunes_through_rollups(self, sharded):
        result = sharded.query(
            "SELECT sum(amount) FROM sales WHERE day > 1000"
        )
        metrics = result.request_metrics[0]
        # Every shard's rolled-up ORE envelope excludes day > 1000; the
        # empty sum decrypts to None exactly as single-store does.
        assert metrics.shards_skipped == metrics.shards_total
        assert_same_rows(result.rows, [{"sum(amount)": None}])


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_worker_internal_backends_equivalent(tmp_path, single, backend):
    session = make_sharded(tmp_path, backend=backend)
    try:
        for query in CHECK_QUERIES[:4]:
            assert_same_rows(
                session.query(query).rows, single.query(query).rows
            )
    finally:
        session.close()


def test_compacted_generations_equivalent(tmp_path, single):
    session = make_sharded(tmp_path)
    try:
        table = session.sharded_table("sales")
        stats = table.compact()
        assert any(s is not None for s in stats.values())
        for query in CHECK_QUERIES:
            assert_same_rows(
                session.query(query).rows, single.query(query).rows
            )
    finally:
        session.close()


def test_reattach_equivalent(tmp_path, single):
    session = make_sharded(tmp_path)
    session.close()
    config = ClusterConfig(storage_dir=str(tmp_path))
    fresh = SeabedSession(
        master_key=KEY, seed=1, cluster=SimulatedCluster(config)
    )
    try:
        table = fresh.open_sharded("sales")
        assert table.num_rows == len(BATCHES) * N
        for query in CHECK_QUERIES:
            assert_same_rows(
                fresh.query(query).rows, single.query(query).rows
            )
    finally:
        fresh.close()


def test_uncommitted_append_rolled_back_on_reattach(tmp_path, single):
    session = make_sharded(tmp_path)
    # A writer that dies after appending to shard stores but before the
    # sharded sidecar commit must leave no trace after re-attach.
    session._write_sharded_sidecar = lambda root, table: None
    with pytest.raises(Exception):
        session.upload("sales", _batch(9))
        raise RuntimeError("commit suppressed; simulated writer crash")
    session.close()
    config = ClusterConfig(storage_dir=str(tmp_path))
    fresh = SeabedSession(
        master_key=KEY, seed=1, cluster=SimulatedCluster(config)
    )
    try:
        table = fresh.open_sharded("sales")
        assert table.num_rows == len(BATCHES) * N
        assert sum(table.shard_rows().values()) == len(BATCHES) * N
        assert_same_rows(
            fresh.query(CHECK_QUERIES[2]).rows,
            single.query(CHECK_QUERIES[2]).rows,
        )
    finally:
        fresh.close()


# -- hypothesis sweep vs the plaintext executor -------------------------------

region_predicates = st.one_of(
    # Only seen values: an unseen string has no dictionary code, which
    # raises identically on single-store and sharded sessions.
    st.builds(Comparison, column=st.just("region"), op=st.just("="),
              value=st.sampled_from(REGIONS)),
    st.builds(lambda vs: InList("region", tuple(vs)),
              st.lists(st.sampled_from(REGIONS), min_size=1, max_size=3,
                       unique=True)),
)
day_predicates = st.builds(
    Comparison,
    column=st.just("day"),
    op=st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
    value=st.integers(min_value=-2, max_value=65),
)
aggregates = st.lists(
    st.sampled_from([
        Aggregate("sum", "amount", "s"),
        Aggregate("count", None, "c"),
        Aggregate("avg", "amount", "a"),
        Aggregate("min", "amount", "lo"),
        Aggregate("max", "amount", "hi"),
    ]),
    min_size=1, max_size=3, unique_by=lambda a: a.alias,
)


@given(aggs=aggregates,
       where=st.one_of(st.none(), region_predicates, day_predicates))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_random_queries_match_plaintext(sharded, aggs, where):
    query = Query(select=tuple(aggs), table="sales", where=where)
    want = execute_plain({"sales": ALL_DATA}, query)
    got = sharded.query(query)
    assert_same_rows(got.rows, want)


@given(where=st.one_of(st.none(), day_predicates))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_random_grouped_queries_match_plaintext(sharded, where):
    query = Query(
        select=(ColumnRef("region"), Aggregate("sum", "amount", "s"),
                Aggregate("count", None, "c")),
        table="sales", where=where, group_by=("region",),
    )
    want = execute_plain({"sales": ALL_DATA}, query)
    got = sharded.query(query)
    assert_same_rows(got.rows, want)
