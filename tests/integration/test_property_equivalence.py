"""Property-based equivalence: random queries, encrypted vs plaintext.

Hypothesis generates random aggregation queries (aggregates, predicates,
optional group-by) over a fixed dataset; the Seabed pipeline must return
exactly the plaintext executor's answer for every one of them.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.query import execute_plain
from repro.query.ast import (
    Aggregate,
    And,
    Between,
    Comparison,
    InList,
    Or,
    Query,
)

COUNTRIES = ["us", "ca", "in", "uk"]
N = 400


def _dataset():
    rng = np.random.default_rng(17)
    return {
        "country": rng.choice(COUNTRIES, N, p=[0.4, 0.3, 0.2, 0.1]),
        "amount": rng.integers(-100, 500, N),
        "ts": rng.integers(0, 100, N),
        "year": rng.integers(2014, 2017, N),
    }


DATA = _dataset()


@pytest.fixture(scope="module")
def client():
    schema = TableSchema("sales", [
        ColumnSpec("country", dtype="str", sensitive=True,
                   distinct_values=COUNTRIES,
                   value_counts={c: int((DATA["country"] == c).sum())
                                 for c in COUNTRIES}),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("ts", dtype="int", sensitive=True, nbits=16),
        ColumnSpec("year", dtype="int", sensitive=False),
    ])
    client = SeabedClient(master_key=b"p" * 32, mode="seabed", seed=6)
    client.create_plan(schema, [
        "SELECT sum(amount), var(amount) FROM sales WHERE country = 'us'",
        "SELECT sum(amount) FROM sales WHERE ts > 5",
        "SELECT country, sum(amount) FROM sales GROUP BY country",
        "SELECT year, sum(amount) FROM sales GROUP BY year",
        "SELECT min(amount), max(amount), median(amount) FROM sales",
    ])
    client.upload("sales", DATA, num_partitions=3)
    return client


# -- query strategies ---------------------------------------------------------

range_predicates = st.builds(
    Comparison,
    column=st.just("ts"),
    op=st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
    value=st.integers(min_value=-5, max_value=105),
)
between_predicates = st.builds(
    lambda lo, width: Between("ts", lo, lo + width),
    lo=st.integers(min_value=0, max_value=90),
    width=st.integers(min_value=0, max_value=40),
)
year_predicates = st.builds(
    Comparison,
    column=st.just("year"),
    op=st.sampled_from(["=", "!=", "<", ">="]),
    value=st.integers(min_value=2014, max_value=2016),
)
amount_predicates = st.builds(
    Comparison,
    column=st.just("amount"),
    op=st.sampled_from(["<", ">", ">="]),
    value=st.integers(min_value=-150, max_value=550),
)
splashe_predicates = st.one_of(
    st.builds(Comparison, column=st.just("country"), op=st.just("="),
              value=st.sampled_from(COUNTRIES + ["zz"])),
    st.builds(lambda vs: InList("country", tuple(vs)),
              st.lists(st.sampled_from(COUNTRIES), min_size=1, max_size=3,
                       unique=True)),
)
filter_only = st.one_of(range_predicates, between_predicates, year_predicates,
                        amount_predicates)
nested_filters = st.one_of(
    filter_only,
    st.builds(lambda a, b: And((a, b)), filter_only, filter_only),
    st.builds(lambda a, b: Or((a, b)), filter_only, filter_only),
)

aggregates = st.lists(
    st.sampled_from([
        Aggregate("sum", "amount", "s"),
        Aggregate("count", None, "c"),
        Aggregate("avg", "amount", "a"),
        Aggregate("var", "amount", "v"),
        Aggregate("min", "amount", "lo"),
        Aggregate("max", "amount", "hi"),
    ]),
    min_size=1, max_size=3, unique_by=lambda a: a.alias,
)


def assert_rows_match(got, want):
    """Rows equal, with float aggregates compared within a tolerance:
    the encrypted path reconstitutes averages/variances from exact int64
    sums while the plaintext executor works in floats, so the two can
    differ in the last ulp (which naive round()-then-compare turns into
    a spurious mismatch whenever a value sits on a rounding boundary)."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert set(g) == set(w)
        for key, value in w.items():
            if isinstance(value, float):
                assert g[key] == pytest.approx(value, rel=1e-9, abs=1e-9), key
            else:
                assert g[key] == value, key


@given(aggs=aggregates, where=st.one_of(st.none(), nested_filters))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_flat_queries_equivalent(client, aggs, where):
    query = Query(select=tuple(aggs), table="sales", where=where)
    want = execute_plain({"sales": DATA}, query)
    got = client.query(query)
    assert_rows_match(got.rows, want)


@given(where=st.one_of(st.none(), splashe_predicates, filter_only))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_sum_count_with_splashe_filters_equivalent(client, where):
    if where is not None and isinstance(where, (Comparison, InList)) \
            and where.column == "country":
        select = (Aggregate("sum", "amount", "s"), Aggregate("count", None, "c"))
    else:
        select = (Aggregate("sum", "amount", "s"),)
    query = Query(select=select, table="sales", where=where)
    want = execute_plain({"sales": DATA}, query)
    got = client.query(query)
    assert_rows_match(got.rows, want)


@given(dim=st.sampled_from(["country", "year"]),
       where=st.one_of(st.none(), filter_only))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_grouped_queries_equivalent(client, dim, where):
    from repro.query.ast import ColumnRef

    query = Query(
        select=(ColumnRef(dim), Aggregate("sum", "amount", "s"),
                Aggregate("count", None, "c")),
        table="sales", where=where, group_by=(dim,),
    )
    want = execute_plain({"sales": DATA}, query)
    got = client.query(query, expected_groups=4)
    assert_rows_match(got.rows, want)
