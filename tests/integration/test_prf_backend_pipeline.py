"""The cryptographically honest PRF backend through the whole pipeline.

Most tests use the vectorised SplitMix64 stand-in; this suite runs the
complete plan/upload/query loop with ``prf_backend="blake2"`` (a real
keyed PRF) to guarantee the honest configuration is never broken by the
fast path's shortcuts, and checks backend choice is invisible in results.
"""

import numpy as np
import pytest

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.query import execute_plain, parse_query


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(21)
    n = 300
    return {
        "grp": rng.integers(0, 4, n),
        "amount": rng.integers(-100, 100, n),
    }


def build(backend, data):
    schema = TableSchema("t", [
        ColumnSpec("grp", dtype="int", sensitive=True),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=16),
    ])
    client = SeabedClient(master_key=b"h" * 32, mode="seabed",
                          prf_backend=backend, seed=9)
    client.create_plan(schema, [
        "SELECT grp, sum(amount) FROM t GROUP BY grp",
        "SELECT sum(amount) FROM t WHERE amount > 0",
    ])
    client.upload("t", data, num_partitions=3)
    return client


QUERIES = [
    "SELECT sum(amount), count(*) FROM t",
    "SELECT sum(amount) FROM t WHERE amount > 10",
    "SELECT grp, sum(amount), avg(amount) FROM t GROUP BY grp",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_blake2_backend_matches_ground_truth(data, sql):
    client = build("blake2", data)
    want = execute_plain({"t": data}, parse_query(sql))
    got = client.query(sql, expected_groups=4)

    def norm(rows):
        return [
            {k: (round(v, 6) if isinstance(v, float) else v) for k, v in r.items()}
            for r in rows
        ]

    assert norm(got.rows) == norm(want)


def test_backends_agree_with_each_other(data):
    sql = "SELECT grp, sum(amount) FROM t GROUP BY grp"
    rows_by_backend = {
        backend: build(backend, data).query(sql, expected_groups=4).rows
        for backend in ("blake2", "splitmix64")
    }
    assert rows_by_backend["blake2"] == rows_by_backend["splitmix64"]


def test_backends_produce_different_ciphertexts(data):
    """Same key, different PRF backends: server-visible bytes differ."""
    a = build("blake2", data).server.table("t").column("amount__ashe")
    b = build("splitmix64", data).server.table("t").column("amount__ashe")
    assert not np.array_equal(a, b)
