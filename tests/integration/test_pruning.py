"""Pruned execution is bit-identical to a full scan -- always.

The zone-map index may only ever *skip work*, never change an answer:
across random predicates (hypothesis), across serial/threads/processes
backends, across append/compact store generations, and under injected
bloom false positives.  Every test here runs the same query with
pruning on and off and requires exactly equal rows.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.index.bloom import BloomFilter
from repro.query.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Not,
    Or,
    Query,
)
from repro.workloads.synthetic import clustered_ids

MASTER_KEY = b"pruning-equivalence-master-key-3"
COUNTRIES = ["us", "ca", "in", "uk"]
BACKENDS = ["serial", "threads", "processes"]
N = 600
USERS = 40
SESSIONS = 3000  # high cardinality: per-partition DET stats become blooms

SAMPLES = [
    "SELECT sum(amount) FROM sales WHERE user = 1",
    "SELECT sum(amount) FROM sales WHERE sess = 1",
    "SELECT sum(amount), min(amount), max(amount) FROM sales "
    "WHERE ts > 5 AND amount > 3",
    "SELECT country, sum(amount) FROM sales GROUP BY country",
    "SELECT year, sum(amount) FROM sales GROUP BY year",
    "SELECT sum(amount) FROM sales WHERE country = 'us'",
]


def dataset(rows, seed, ts_base=0):
    rng = np.random.default_rng(seed)
    return {
        "user": clustered_ids(rows, USERS, seed=seed),
        "sess": clustered_ids(rows, SESSIONS, seed=seed + 1),
        "ts": (ts_base + np.sort(rng.integers(0, 5000, rows))).astype(np.int64),
        "amount": rng.integers(-50, 400, rows).astype(np.int64),
        "year": np.sort(rng.integers(2013, 2017, rows)).astype(np.int64),
        "country": rng.choice(COUNTRIES, rows, p=[0.4, 0.3, 0.2, 0.1]),
    }


def schema():
    # Basic SPLASHE for country (no value_counts): small append batches
    # with skewed draws cannot always be balanced for the enhanced mode.
    return TableSchema("sales", [
        ColumnSpec("user", dtype="int", sensitive=True),
        ColumnSpec("sess", dtype="int", sensitive=True),
        ColumnSpec("ts", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("year", dtype="int", sensitive=False),
        ColumnSpec("country", dtype="str", sensitive=True,
                   distinct_values=COUNTRIES),
    ])


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """Three store states: freshly written, after appends, after compaction."""
    root = tmp_path_factory.mktemp("pruning-stores")
    paths = {}
    for name, appends, compact in [
        ("base", 0, False), ("appended", 2, False), ("compacted", 3, True),
    ]:
        writer = SeabedSession(mode="seabed", master_key=MASTER_KEY, seed=2)
        writer.create_plan(schema(), SAMPLES)
        writer.upload("sales", dataset(N, seed=1), num_partitions=6)
        path = str(root / name)
        writer.save_table("sales", path)
        for i in range(appends):
            writer.append_rows(
                "sales", dataset(120, seed=20 + i, ts_base=5000 * (i + 1))
            )
        if compact:
            assert writer.compact_table("sales") is not None
        paths[name] = path
    return paths


def attach(path, backend="serial", workers=2):
    cluster = SimulatedCluster(ClusterConfig(backend=backend, workers=workers))
    session = SeabedSession(mode="seabed", master_key=MASTER_KEY, cluster=cluster)
    session.open_table(path)
    return session


@pytest.fixture(scope="module")
def sessions(stores):
    built = {}
    for backend in BACKENDS:
        built[backend] = attach(stores["appended"], backend)
    yield built
    for session in built.values():
        session.cluster.close()


def run_both(session, query, expected_groups=None, scan=False):
    """Execute with and without pruning; assert bit-identical rows and
    return how many partitions the pruned run skipped."""
    runner = session.scan if scan else (
        lambda q: session.query(q, expected_groups=expected_groups)
    )
    session.server.pruning = True
    try:
        pruned = runner(query)
        session.server.pruning = False
        full = runner(query)
    finally:
        session.server.pruning = True
    assert pruned.rows == full.rows
    assert all(m.partitions_skipped == 0 for m in full.request_metrics)
    skipped = sum(m.partitions_skipped for m in pruned.request_metrics)
    total = sum(m.partitions_total for m in pruned.request_metrics)
    assert 0 <= skipped <= total
    return skipped


# -- random queries (hypothesis) ----------------------------------------------

ts_predicates = st.builds(
    Comparison, column=st.just("ts"),
    op=st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
    value=st.integers(min_value=-10, max_value=16_000),
)
ts_between = st.builds(
    lambda lo, width: Between("ts", lo, lo + width),
    lo=st.integers(min_value=0, max_value=15_000),
    width=st.integers(min_value=0, max_value=4_000),
)
amount_predicates = st.builds(
    Comparison, column=st.just("amount"),
    op=st.sampled_from(["<", ">", ">=", "!="]),
    value=st.integers(min_value=-60, max_value=420),
)
user_predicates = st.one_of(
    st.builds(Comparison, column=st.just("user"),
              op=st.sampled_from(["=", "!="]),
              value=st.integers(min_value=0, max_value=USERS + 3)),
    st.builds(lambda vs: InList("user", tuple(vs)),
              st.lists(st.integers(min_value=0, max_value=USERS + 3),
                       min_size=1, max_size=3, unique=True)),
)
sess_predicates = st.builds(
    Comparison, column=st.just("sess"), op=st.just("="),
    value=st.integers(min_value=0, max_value=SESSIONS + 5),
)
year_predicates = st.builds(
    Comparison, column=st.just("year"),
    op=st.sampled_from(["=", "!=", "<", ">="]),
    value=st.integers(min_value=2012, max_value=2018),
)
leaves = st.one_of(ts_predicates, ts_between, amount_predicates,
                   user_predicates, sess_predicates, year_predicates)
predicates = st.one_of(
    leaves,
    st.builds(lambda a, b: And((a, b)), leaves, leaves),
    st.builds(lambda a, b: Or((a, b)), leaves, leaves),
    st.builds(lambda a: Not(a), leaves),
)
aggregates = st.lists(
    st.sampled_from([
        Aggregate("sum", "amount", "s"),
        Aggregate("count", None, "c"),
        Aggregate("avg", "amount", "a"),
        Aggregate("min", "amount", "lo"),
        Aggregate("max", "amount", "hi"),
    ]),
    min_size=1, max_size=3, unique_by=lambda a: a.alias,
)


@pytest.mark.parametrize("backend", BACKENDS)
@given(aggs=aggregates, where=st.one_of(st.none(), predicates))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_flat_pruning_bit_identical(sessions, backend, aggs, where):
    query = Query(select=tuple(aggs), table="sales", where=where)
    run_both(sessions[backend], query)


@given(dim=st.sampled_from(["year", "country"]),
       where=st.one_of(st.none(), leaves))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_grouped_pruning_bit_identical(sessions, dim, where):
    query = Query(
        select=(ColumnRef(dim), Aggregate("sum", "amount", "s"),
                Aggregate("count", None, "c")),
        table="sales", where=where, group_by=(dim,),
    )
    run_both(sessions["serial"], query, expected_groups=4)


@given(where=st.one_of(ts_predicates, user_predicates, year_predicates))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_scan_pruning_bit_identical(sessions, where):
    query = Query(
        select=(ColumnRef("user"), ColumnRef("amount")),
        table="sales", where=where,
    )
    run_both(sessions["serial"], query, scan=True)


# -- generations and backends (deterministic) ---------------------------------

SELECTIVE = [
    ("SELECT sum(amount), count(*) FROM sales WHERE user = 2", None),
    ("SELECT sum(amount) FROM sales WHERE ts BETWEEN 100 AND 900", None),
    ("SELECT year, sum(amount) FROM sales WHERE ts < 2000 GROUP BY year", 4),
    ("SELECT min(amount), max(amount) FROM sales", None),
]


@pytest.mark.parametrize("store", ["base", "appended", "compacted"])
def test_every_generation_state_prunes_identically(stores, store):
    session = attach(stores[store])
    try:
        skipped = [
            run_both(session, sql, expected_groups=groups)
            for sql, groups in SELECTIVE
        ]
        # Selective point/range queries actually skip work on every
        # store state (the floors; equality is asserted inside run_both).
        assert skipped[0] > 0 and skipped[1] > 0
    finally:
        session.cluster.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_every_backend_prunes_identically(sessions, backend):
    for sql, groups in SELECTIVE:
        skipped = run_both(sessions[backend], sql, expected_groups=groups)
        if "WHERE user" in sql:
            assert skipped > 0


def test_backends_agree_on_pruned_rows(sessions):
    for sql, groups in SELECTIVE:
        rows = [
            sessions[b].query(sql, expected_groups=groups).rows
            for b in BACKENDS
        ]
        assert rows[0] == rows[1] == rows[2]


# -- bloom false positives ----------------------------------------------------

def test_bloom_false_positives_never_drop_rows(sessions, monkeypatch):
    """A bloom 'maybe' on an absent token keeps the partition: saturating
    every bloom answer to 'maybe' must cost skips, never rows."""
    session = sessions["serial"]
    sql = "SELECT sum(amount), count(*) FROM sales WHERE sess = :s"
    values = [7, 123, 1500, SESSIONS + 5]
    baseline = {
        v: (session.query(sql, s=v).rows,
            sum(m.partitions_skipped
                for m in session.query(sql, s=v).request_metrics))
        for v in values
    }
    monkeypatch.setattr(BloomFilter, "might_contain", lambda self, token: True)
    for v in values:
        result = session.query(sql, s=v)
        skipped = sum(m.partitions_skipped for m in result.request_metrics)
        assert result.rows == baseline[v][0]  # rows never change
        assert skipped <= baseline[v][1]  # false positives only cost scans


def test_bloom_artifacts_exist_on_the_high_cardinality_column(sessions):
    summary = sessions["serial"].stats("sales")
    det = summary["columns"]["sess__det"]
    assert det["blooms"] > 0
    assert summary["partitions_with_stats"] == summary["partitions"]


def test_in_memory_tables_are_unaffected():
    session = SeabedSession(mode="seabed", master_key=MASTER_KEY)
    session.create_plan(schema(), SAMPLES)
    session.upload("sales", dataset(N, seed=1), num_partitions=4)
    result = session.query("SELECT sum(amount) FROM sales WHERE user = 2")
    assert all(m.partitions_skipped == 0 for m in result.request_metrics)
    stats = session.stats("sales")
    assert stats["partitions_with_stats"] == 0


def test_rebuild_index_after_attaching_a_pre_v3_store(stores, tmp_path):
    import json
    import os
    import shutil

    from repro.engine.store import MANIFEST_NAME

    # Downgrade a copy of the base store to v2 (no stats).
    path = str(tmp_path / "v2")
    shutil.copytree(stores["base"], path)
    manifest_path = os.path.join(path, MANIFEST_NAME)
    manifest = json.load(open(manifest_path))
    manifest["version"] = 2
    for gen in manifest["generations"]:
        for part in gen["partitions"]:
            part.pop("stats", None)
    json.dump(manifest, open(manifest_path, "w"))

    session = attach(path)
    try:
        sql = "SELECT sum(amount), count(*) FROM sales WHERE user = 2"
        before = session.query(sql)
        assert sum(m.partitions_skipped for m in before.request_metrics) == 0
        assert session.stats("sales")["partitions_with_stats"] == 0

        summary = session.encrypted_table("sales").rebuild_index()
        assert summary["partitions_with_stats"] == summary["partitions"] > 0

        after = session.query(sql)
        assert after.rows == before.rows
        assert sum(m.partitions_skipped for m in after.request_metrics) > 0
    finally:
        session.cluster.close()
