"""End-to-end tracing: one remote sharded query must produce one
stitched trace whose spans cover client encode, the wire, the service
queue, the server's stages, and every contacted shard worker -- with
span parentage holding across at least three OS processes (client,
asyncio service, fork+pipe shard workers).

Also covered: the ``metrics``/``trace`` introspection RPCs (Prometheus
text a scraper can parse, kernel counters included), failover
annotations on traces that survive a shard-worker death, version-skew
degradation (a peer that never sends trace context yields a local-only
trace, not an error), and the leakage audit over live exports.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.attacks.telemetry import audit_telemetry
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.net.client import RemoteTransport
from repro.obs import trace as obs_trace
from repro.obs.trace import chrome_trace

KEY = b"w" * 32
TOKEN = "integration-token"
REGIONS = ["ber", "del", "lag", "lim", "osl", "rio", "sfo", "tok"]
N = 360

SCHEMA = TableSchema("sales", [
    ColumnSpec("region", dtype="str", sensitive=True),
    ColumnSpec("day", dtype="int", sensitive=True, nbits=16),
    ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
])
SAMPLES = [
    "SELECT sum(amount) FROM sales WHERE region = 'rio'",
    "SELECT region, sum(amount), count(*) FROM sales GROUP BY region",
    "SELECT sum(amount), var(amount) FROM sales WHERE day > 10",
    "SELECT min(amount), max(amount), median(amount) FROM sales",
]
GROUPED = "SELECT region, sum(amount), count(*) FROM sales GROUP BY region"
FILTERED = "SELECT sum(amount) FROM sales WHERE region = 'rio'"


def _data(seed=3, n=N):
    rng = np.random.default_rng(seed)
    return {
        "region": rng.choice(REGIONS, n).tolist(),
        "day": rng.integers(0, 60, n),
        "amount": rng.integers(-50, 900, n),
    }


def _plan(session):
    session.create_plan(SCHEMA, SAMPLES)
    return session


def _spawn_server(tmp_path, *args):
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    info = str(tmp_path / "info.json")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.net.service",
         "--grant", f"alice:{TOKEN}", "--info-file", info, *args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 60
    while not os.path.exists(info):
        if proc.poll() is not None or time.monotonic() > deadline:
            out = proc.stdout.read() if proc.stdout else ""
            proc.kill()
            raise RuntimeError(f"service process failed to start:\n{out}")
        time.sleep(0.05)
    with open(info) as fh:
        addr = json.load(fh)
    return proc, (addr["host"], addr["port"])


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs_trace.set_enabled(True)
    obs_trace.get_tracer().clear()
    yield
    obs_trace.set_enabled(True)
    obs_trace.get_tracer().clear()


@pytest.fixture(scope="module")
def sharded_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("trace-sharded")
    config = ClusterConfig(storage_dir=str(root), append_partition_rows=128)
    writer = SeabedSession(master_key=KEY, seed=1, cluster=SimulatedCluster(config))
    _plan(writer)
    writer.shard_table("sales", "region", num_shards=4, replicas=1)
    writer.upload("sales", _data())
    path = writer.sharded_table("sales").root
    writer.close()
    return path


@pytest.fixture(scope="module")
def sharded_server(sharded_root, tmp_path_factory):
    proc, address = _spawn_server(
        tmp_path_factory.mktemp("trace-srv"), "--sharded", sharded_root,
    )
    yield address, sharded_root
    proc.terminate()
    proc.wait(timeout=15)


@pytest.fixture
def remote(sharded_server):
    address, root = sharded_server
    session = repro.connect(address, TOKEN, master_key=KEY, seed=1)
    session.open_sharded(root)
    yield session
    session.close()


def _traced_query(session, sql):
    """Run ``sql`` under a root span; return (result, stitched spans)."""
    with obs_trace.span("test:root"):
        result = session.query(sql)
        ctx = obs_trace.current_context()
    spans = obs_trace.get_tracer().spans(trace_id=ctx["trace_id"])
    return result, spans


class TestStitchedTrace:
    def test_one_query_one_trace_across_three_processes(self, remote):
        result, spans = _traced_query(remote, GROUPED)
        assert result.rows  # the query itself worked

        # One trace: every span carries the same trace id.
        assert len({s.trace_id for s in spans}) == 1

        # ...across at least three OS processes: client, service, and at
        # least one forked shard worker.
        pids = {s.pid for s in spans}
        assert len(pids) >= 3, f"expected >=3 processes, saw {pids}"
        labels = {s.process for s in spans}
        assert "seabed-service" in labels
        workers = {p for p in labels if p.startswith("shard-node-")}
        assert workers, labels

        # The span set covers every layer the query crossed.
        names = {s.name for s in spans}
        for expected in ("test:root", "query:aggregate", "client:bind",
                         "wire:execute", "service:execute", "server:execute",
                         "worker:execute", "client:decrypt"):
            assert expected in names, f"missing {expected}: {sorted(names)}"

    def test_span_parentage_crosses_process_boundaries(self, remote):
        _, spans = _traced_query(remote, GROUPED)
        by_id = {s.span_id: s for s in spans}
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)

        def one(name):
            assert len(by_name.get(name, [])) == 1, name
            return by_name[name][0]

        # client chain: root -> aggregate -> wire
        assert one("query:aggregate").parent_id == one("test:root").span_id
        wire = one("wire:execute")
        assert wire.parent_id == one("query:aggregate").span_id

        # wire -> service (first process hop)
        service = one("service:execute")
        assert service.parent_id == wire.span_id
        assert service.pid != wire.pid

        # service -> workers (second process hop).  Every worker:execute
        # span parents under a span recorded by the service process.
        worker_spans = by_name["worker:execute"]
        assert worker_spans
        for w in worker_spans:
            assert w.trace_id == wire.trace_id
            assert by_id[w.parent_id].pid == service.pid
            assert w.pid != service.pid

        # Global stitching: every span's parent chain resolves inside the
        # trace and terminates at the client-side root -- across all
        # three processes, nothing is orphaned.
        root = one("test:root")
        for s in spans:
            hops = 0
            while s.span_id != root.span_id:
                assert s.parent_id in by_id, f"orphaned span {s.name}"
                s = by_id[s.parent_id]
                hops += 1
                assert hops < len(spans), "parent cycle"

    def test_every_contacted_shard_worker_appears(self, remote):
        # The unfiltered GROUP BY fans out to every populated shard; each
        # contacted worker process must contribute spans to the trace.
        result, spans = _traced_query(remote, GROUPED)
        contacted = sum(
            (m.shards_total - m.shards_skipped) for m in result.request_metrics
        )
        worker_nodes = {s.process for s in spans
                        if s.process.startswith("shard-node-")}
        assert contacted > 0
        assert len(worker_nodes) >= min(contacted, 2)

        # A selective filter touches fewer shards; the trace narrows too.
        pruned_result, pruned_spans = _traced_query(remote, FILTERED)
        pruned_nodes = {s.process for s in pruned_spans
                        if s.process.startswith("shard-node-")}
        assert len(pruned_nodes) <= len(worker_nodes)

    def test_chrome_trace_export_of_stitched_trace(self, remote):
        _, spans = _traced_query(remote, GROUPED)
        doc = chrome_trace(spans)
        json.dumps(doc)  # Perfetto loads files, so it must serialise
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(metas) >= 3  # one named process row per OS process
        names = {e["args"]["name"] for e in metas}
        assert "seabed-service" in names

    def test_queue_wait_span_when_measured(self, remote):
        # The service records its queue wait; the span appears whenever
        # the measured wait is nonzero (it is sub-millisecond here, but
        # measured nonzero in practice -- tolerate a zero-read skip).
        _, spans = _traced_query(remote, GROUPED)
        queue = [s for s in spans if s.name == "service:queue_wait"]
        for q in queue:
            assert q.process == "seabed-service"
            assert q.duration >= 0.0


class TestIntrospectionOps:
    def test_metrics_rpc_prometheus_text(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("metrics-store")
        writer = _plan(SeabedSession(master_key=KEY, seed=1))
        writer.upload("sales", _data())
        store = writer.encrypted_table("sales").save(str(root / "sales"))
        proc, address = _spawn_server(
            tmp_path_factory.mktemp("metrics-srv"), "--store", store,
        )
        try:
            remote = repro.connect(address, TOKEN, master_key=KEY, seed=1)
            remote.open_table(store)
            remote.query(FILTERED)  # DET filter -> server-side kernel work
            remote.query(GROUPED)

            reply = remote.transport.server_metrics()
            assert reply["fmt"] == "prometheus"
            samples = {}
            for line in reply["text"].splitlines():
                if line and not line.startswith("#"):
                    key, value = line.rsplit(" ", 1)
                    samples[key] = float(value)

            # Query-latency histogram, labelled by op and tenant.
            count_key = 'seabed_service_request_seconds_count{op="execute",tenant="alice"}'
            assert samples[count_key] >= 2
            sum_key = 'seabed_service_request_seconds_sum{op="execute",tenant="alice"}'
            assert samples[sum_key] > 0

            # Kernel counters from the DET filter evaluated server-side.
            kernel_key = ('seabed_kernel_values_total'
                          '{scheme="det",op="compare_column"}')
            assert samples[kernel_key] >= N
            kernel_count = ('seabed_kernel_ns_per_op_count'
                            '{scheme="det",op="compare_column"}')
            assert samples[kernel_count] >= 1

            # JSON snapshot serves the same registry.
            snap = remote.transport.server_metrics(fmt="json")
            assert snap["fmt"] == "json"
            assert "seabed_service_request_seconds" in snap["metrics"]

            remote.close()
        finally:
            proc.terminate()
            proc.wait(timeout=15)

    def test_trace_rpc_serves_local_only_traces(self, remote):
        # An untraced client (kill switch off) sends no trace context, so
        # the serving process keeps its spans -- the trace RPC shows them.
        obs_trace.set_enabled(False)
        remote.query(GROUPED)
        obs_trace.set_enabled(True)

        reply = remote.transport.server_trace()
        spans = reply["spans"]
        assert spans, "service retained no spans"
        names = {s["name"] for s in spans}
        assert "service:execute" in names
        # Spans fetched this way are dicts the client can re-ingest.
        absorbed = obs_trace.get_tracer().ingest(spans)
        assert absorbed == len(spans)

    def test_metrics_and_trace_ops_require_auth(self, sharded_server):
        # The introspection ops sit behind the same bearer-token gate as
        # every other RPC: an unauthenticated transport never reaches
        # them (the handshake itself is rejected).
        from repro.errors import AuthError

        address, _ = sharded_server
        with pytest.raises(AuthError):
            RemoteTransport(address, token="wrong-token")

    def test_live_exports_pass_leakage_audit(self, remote):
        _, spans = _traced_query(remote, GROUPED)
        text = remote.transport.server_metrics()["text"]
        server_spans = remote.transport.server_trace()["spans"]
        result = audit_telemetry(list(spans) + list(server_spans), text)
        assert result.ok, result.violations
        assert result.spans_checked >= len(spans)
        assert result.labels_checked > 0


class TestFailoverTracing:
    @pytest.fixture
    def replicated(self, tmp_path):
        config = ClusterConfig(storage_dir=str(tmp_path), workers=2)
        session = SeabedSession(master_key=KEY, seed=2,
                                cluster=SimulatedCluster(config))
        _plan(session)
        table = session.shard_table("sales", "region", num_shards=4, replicas=2)
        session.upload("sales", _data(seed=11, n=500))
        yield session, table
        session.close()

    def test_failover_is_annotated_on_the_trace(self, replicated):
        session, table = replicated
        populated = [s for s, n in table.shard_rows().items() if n > 0]
        primary = table.store.replica_nodes(populated[0])[0]
        table.arm_exit(primary, "execute", after=1)

        result, spans = _traced_query(session, GROUPED)
        assert result.rows
        assert sum(m.failovers for m in result.request_metrics) == 1

        # The span context survived the worker death: the trace carries a
        # failover annotation naming the dead node, plus live spans from
        # the replica that took over -- all under the same trace id.
        failovers = [s for s in spans if s.name == "shard:failover"]
        assert len(failovers) == 1
        note = failovers[0]
        assert note.attributes["dead_node"] == primary
        assert note.attributes["method"] == "execute"
        assert "shard" in note.attributes
        worker_pids = {s.pid for s in spans if s.name == "worker:execute"}
        assert worker_pids, "no worker spans survived the failover"


class TestVersionSkew:
    def test_legacy_client_gets_local_only_trace(self, remote, monkeypatch):
        # A peer built before tracing sends no trace context.  The query
        # must succeed with no error of any kind -- the trace is simply
        # local-only (no service or worker spans stitched in).
        monkeypatch.setattr(RemoteTransport, "_trace_context", lambda self: None)
        result, spans = _traced_query(remote, GROUPED)
        assert result.rows
        names = {s.name for s in spans}
        assert "wire:execute" in names  # client-side tracing still works
        assert "service:execute" not in names
        assert not any(n.startswith("worker:") for n in names)
        assert {s.pid for s in spans} == {os.getpid()}

    def test_tracing_disabled_client_still_correct(self, remote):
        baseline, _ = _traced_query(remote, GROUPED)
        obs_trace.set_enabled(True)
        obs_trace.get_tracer().clear()
        obs_trace.set_enabled(False)
        result = remote.query(GROUPED)
        assert result.rows == baseline.rows
        assert len(obs_trace.get_tracer()) == 0
