"""End-to-end integration: every mode's pipeline against ground truth.

The single most important invariant in the repository: for every supported
query shape, ``SeabedClient.query`` over encrypted data returns exactly
what the plaintext executor returns, in all three modes (NoEnc, Seabed,
Paillier baseline).
"""

import numpy as np
import pytest

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.query import execute_plain, parse_query

COUNTRIES = ["us", "ca", "in", "uk", "de"]


def normalise(rows):
    return [
        {k: (round(v, 6) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    n = 1500
    data = {
        "country": rng.choice(COUNTRIES, n, p=[0.45, 0.3, 0.1, 0.1, 0.05]),
        "amount": rng.integers(-50, 1000, n),
        "year": rng.integers(2014, 2017, n),
    }
    counts = {c: int((data["country"] == c).sum()) for c in COUNTRIES}
    schema = TableSchema("sales", [
        ColumnSpec("country", dtype="str", sensitive=True,
                   distinct_values=COUNTRIES, value_counts=counts),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("year", dtype="int", sensitive=False),
    ])
    samples = [
        "SELECT sum(amount) FROM sales WHERE country = 'us'",
        "SELECT avg(amount), var(amount) FROM sales WHERE year = 2015",
        "SELECT country, sum(amount) FROM sales GROUP BY country",
        "SELECT min(amount), max(amount), median(amount) FROM sales",
        "SELECT count(*) FROM sales WHERE amount > 500",
    ]
    return data, schema, samples


def build_client(mode, dataset, partitions=5):
    data, schema, samples = dataset
    client = SeabedClient(master_key=b"q" * 32, mode=mode,
                          paillier_bits=256, seed=3)
    client.create_plan(schema, samples)
    client.upload("sales", data, num_partitions=partitions)
    return client


@pytest.fixture(scope="module", params=["plain", "seabed", "paillier"])
def client(request, dataset):
    return build_client(request.param, dataset)


QUERIES = [
    "SELECT sum(amount) FROM sales",
    "SELECT sum(amount), count(*) FROM sales WHERE year = 2015",
    "SELECT sum(amount) FROM sales WHERE country = 'us'",
    "SELECT sum(amount) FROM sales WHERE country = 'de'",
    "SELECT sum(amount), count(*) FROM sales WHERE country = 'in' AND year = 2016",
    "SELECT count(*) FROM sales WHERE country IN ('ca', 'de')",
    "SELECT count(*) FROM sales WHERE country != 'us'",
    "SELECT avg(amount) FROM sales WHERE year = 2014",
    "SELECT var(amount), stddev(amount) FROM sales WHERE year = 2016",
    "SELECT min(amount), max(amount) FROM sales",
    "SELECT median(amount) FROM sales WHERE year = 2015",
    "SELECT sum(amount) FROM sales WHERE amount > 500",
    "SELECT sum(amount) FROM sales WHERE amount BETWEEN 100 AND 200",
    "SELECT count(*) FROM sales WHERE year = 2015 AND amount >= 0",
    "SELECT count(*) FROM sales WHERE NOT year = 2015",
    "SELECT sum(amount) FROM sales WHERE year = 2014 OR year = 2016",
    "SELECT year, sum(amount), count(*) FROM sales GROUP BY year",
    "SELECT year, avg(amount) FROM sales GROUP BY year",
    "SELECT year, var(amount) FROM sales GROUP BY year",
    "SELECT country, sum(amount) FROM sales GROUP BY country",
    "SELECT country, count(*) FROM sales GROUP BY country",
    "SELECT country, avg(amount) FROM sales GROUP BY country",
    "SELECT year, sum(amount) FROM sales WHERE amount > 300 GROUP BY year",
    "SELECT year, sum(amount) AS total FROM sales GROUP BY year ORDER BY total DESC LIMIT 2",
    "SELECT sum(amount) FROM sales WHERE year = 1999",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_query_matches_ground_truth(client, dataset, sql):
    data = dataset[0]
    if client.mode != "seabed" and "GROUP BY country" in sql and "var" in sql:
        pytest.skip("not applicable")
    want = execute_plain({"sales": data}, parse_query(sql))
    got = client.query(sql, expected_groups=8)
    assert normalise(got.rows) == normalise(want), sql


class TestIncrementalUpload:
    def test_second_batch_extends_results(self, dataset):
        data, schema, samples = dataset
        client = SeabedClient(master_key=b"q" * 32, mode="seabed", seed=3)
        client.create_plan(schema, samples)
        half = {k: v[:700] for k, v in data.items()}
        rest = {k: v[700:] for k, v in data.items()}
        client.upload("sales", half, num_partitions=3)
        client.upload("sales", rest, num_partitions=3)
        want = execute_plain({"sales": data}, parse_query(QUERIES[0]))
        got = client.query(QUERIES[0])
        assert normalise(got.rows) == normalise(want)


class TestMetrics:
    def test_latency_breakdown_present(self, dataset):
        client = build_client("seabed", dataset)
        result = client.query("SELECT sum(amount) FROM sales")
        assert result.server_time > 0
        assert result.client_time > 0
        assert result.total_time >= result.server_time
        assert result.result_bytes > 0

    def test_seabed_result_smaller_than_paillier(self, dataset):
        seabed = build_client("seabed", dataset)
        paillier = build_client("paillier", dataset)
        sql = "SELECT sum(amount) FROM sales"
        # Full-table aggregation: Seabed's range-encoded ID list is tiny;
        # Paillier returns one 512-bit ciphertext.  Both are small, but the
        # paper's key claim is server compute, checked below.  Compare the
        # measured task compute, not server_time: the simulated makespan
        # adds a shared scheduling constant that swamps the ~10x compute
        # gap at this scale and makes the comparison load-sensitive.
        def server_compute(result):
            return sum(
                stage.total_cpu
                for metrics in result.request_metrics
                for stage in metrics.stages
            )

        r_seabed = seabed.query(sql)
        r_paillier = paillier.query(sql)
        assert server_compute(r_seabed) < server_compute(r_paillier)

    def test_group_inflation_changes_request(self, dataset):
        client = build_client("seabed", dataset)
        result = client.query(
            "SELECT year, sum(amount) FROM sales GROUP BY year",
            expected_groups=3,
        )
        assert result.translation.inflation > 1
        # Rows still correct (checked in the parametrised test); here we
        # confirm the inflated request really went out.
        assert result.translation.requests[0].inflation > 1


class TestCompressionSiteAblation:
    def test_driver_compression_same_answer(self, dataset):
        data, _, _ = dataset
        client = build_client("seabed", dataset)
        sql = "SELECT sum(amount) FROM sales WHERE amount > 250"
        want = execute_plain({"sales": data}, parse_query(sql))
        got = client.query(sql, compress_at="driver")
        assert normalise(got.rows) == normalise(want)


class TestSecurityPosture:
    def test_server_never_sees_plaintext_columns(self, dataset):
        client = build_client("seabed", dataset)
        table = client.server.table("sales")
        assert "amount" not in table.column_names
        assert "country" not in table.column_names
        # year is public by the schema, so it may appear in the clear.
        assert "year" in table.column_names

    def test_splashe_det_column_is_balanced(self, dataset):
        from repro.attacks.frequency import uniformity_chi2

        client = build_client("seabed", dataset)
        det_col = client.server.table("sales").column("country__det")
        assert uniformity_chi2(det_col) > 0.5

    def test_wrong_key_decrypts_garbage(self, dataset):
        data, schema, samples = dataset
        right = build_client("seabed", dataset)
        wrong = SeabedClient(master_key=b"x" * 32, mode="seabed", seed=3)
        wrong.create_plan(schema, samples)
        # Hand the wrong-key client the right client's server state.
        wrong.server = right.server
        wrong._states["sales"].next_row_id = right._states["sales"].next_row_id
        wrong._states["sales"].dictionaries = right._states["sales"].dictionaries
        got = wrong.query("SELECT sum(amount) FROM sales")
        want = execute_plain({"sales": data}, parse_query("SELECT sum(amount) FROM sales"))
        assert got.rows[0]["sum(amount)"] != want[0]["sum(amount)"]
