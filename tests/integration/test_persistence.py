"""Save / attach round trips through the whole stack.

A table saved with ``EncryptedTable.save`` must re-open in a fresh
session (same master key, possibly another process or another execution
backend) and answer queries *identically* to the in-memory path, with
zero re-encryption -- the paper's upload-once deployment model.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.persistence import SIDECAR_NAME
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.crypto.paillier import PaillierKeyPair
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.errors import StorageError
from repro.ops import OPS

BACKENDS = ["serial", "threads", "processes"]
COUNTRIES = ["us", "ca", "in", "uk"]
MASTER_KEY = b"integration-master-key-32-bytes!"

GROUPED = "SELECT country, sum(amount), count(*) FROM sales GROUP BY country"
FLAT = "SELECT sum(amount), min(amount), max(amount) FROM sales WHERE year = 2015"
# country is SPLASHE-planned under these samples, so the scan projects
# the ASHE measure and the plain year only.
SCAN = "SELECT amount, year FROM sales WHERE amount > 900"

SAMPLES = [
    GROUPED,
    FLAT,
    "SELECT min(amount), max(amount) FROM sales",
]


def dataset(n=600, seed=5):
    rng = np.random.default_rng(seed)
    data = {
        "country": rng.choice(COUNTRIES, n),
        "amount": rng.integers(0, 1000, n),
        "year": rng.integers(2014, 2017, n),
    }
    schema = TableSchema("sales", [
        ColumnSpec("country", dtype="str", sensitive=True,
                   distinct_values=COUNTRIES),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("year", dtype="int", sensitive=False),
    ])
    return schema, data


def build_session(mode="seabed", cluster=None, **kwargs):
    schema, data = dataset()
    session = SeabedSession(
        mode=mode, master_key=MASTER_KEY, cluster=cluster, seed=3, **kwargs
    )
    session.create_plan(schema, SAMPLES)
    session.upload("sales", data, num_partitions=5)
    return session


def rows_of(session, sql, **kwargs):
    return sorted(map(str, session.query(sql, **kwargs).rows))


class TestRoundTrip:
    def test_identical_results_zero_reencryption(self, tmp_path):
        writer = build_session()
        expected_grouped = rows_of(writer, GROUPED, expected_groups=4)
        expected_flat = rows_of(writer, FLAT)
        path = writer.save_table("sales", tmp_path / "sales")

        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        before = OPS.snapshot()
        handle = fresh.open_table(path)
        assert rows_of(fresh, GROUPED, expected_groups=4) == expected_grouped
        assert rows_of(fresh, FLAT) == expected_flat
        delta = OPS.delta(before)
        assert not any(op.startswith("encrypt") for op in delta), delta
        assert handle.num_rows == 600
        assert handle.store_path == os.path.abspath(path)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_for_bit_across_backends(self, tmp_path, backend):
        writer = build_session()
        expected = {
            GROUPED: rows_of(writer, GROUPED, expected_groups=4),
            FLAT: rows_of(writer, FLAT),
        }
        expected_scan = sorted(map(str, writer.scan(SCAN).rows))
        path = writer.save_table("sales", tmp_path / "sales")

        cluster = SimulatedCluster(ClusterConfig(backend=backend, workers=2))
        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY, cluster=cluster)
        fresh.open_table(path)
        try:
            for sql, rows in expected.items():
                groups = 4 if sql is GROUPED else None
                assert rows_of(fresh, sql, expected_groups=groups) == rows
            assert sorted(map(str, fresh.scan(SCAN).rows)) == expected_scan
        finally:
            cluster.close()

    def test_prepared_queries_on_attached_table(self, tmp_path):
        writer = build_session()
        path = writer.save_table("sales", tmp_path / "sales")
        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        fresh.open_table(path)
        prepared = fresh.prepare(
            "SELECT sum(amount) FROM sales WHERE year BETWEEN :lo AND :hi"
        )
        for lo, hi in [(2014, 2014), (2015, 2016)]:
            got = prepared.execute(lo=lo, hi=hi).rows
            want = writer.query(
                f"SELECT sum(amount) FROM sales WHERE year BETWEEN {lo} AND {hi}"
            ).rows
            assert got == want

    def test_incremental_upload_after_attach(self, tmp_path):
        writer = build_session()
        path = writer.save_table("sales", tmp_path / "sales")
        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        fresh.open_table(path)
        _, data = dataset(n=100, seed=11)
        fresh.upload("sales", data, num_partitions=2)
        got = fresh.query("SELECT count(*) FROM sales").rows[0]["count(*)"]
        assert got == 700  # 600 mapped from disk + 100 appended in memory

    def test_resave_after_attach_keeps_prf_backend(self, tmp_path):
        """A table encrypted under a non-default PRF must keep that PRF
        through an attach + re-save cycle (the sidecar records the
        *table's* factory backend, not the session default)."""
        writer = build_session(prf_backend="blake2")
        expected = rows_of(writer, FLAT)
        first = writer.save_table("sales", tmp_path / "first")

        middle = SeabedSession(mode="seabed", master_key=MASTER_KEY)  # splitmix64
        middle.open_table(first)
        second = middle.save_table("sales", tmp_path / "second")

        third = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        third.open_table(second)
        assert rows_of(third, FLAT) == expected

    def test_attach_keeps_other_tables_translation_cache(self, tmp_path):
        writer = build_session()
        sales_path = writer.save_table("sales", tmp_path / "sales")

        helper = SeabedSession(mode="seabed", master_key=MASTER_KEY, seed=3)
        extras_schema = TableSchema("extras", [
            ColumnSpec("v", dtype="int", sensitive=True, nbits=16),
        ])
        helper.create_plan(extras_schema, ["SELECT sum(v) FROM extras"])
        helper.upload("extras", {"v": np.arange(50)}, num_partitions=2)
        extras_path = helper.save_table("extras", tmp_path / "extras")

        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        fresh.open_table(sales_path)
        fresh.query(FLAT)
        fresh.query(FLAT)
        hits_before = fresh.cache_stats()["hits"]
        assert hits_before >= 1
        # Attaching another store must not evict the hot template.
        fresh.open_table(extras_path)
        fresh.query(FLAT)
        assert fresh.cache_stats()["hits"] == hits_before + 1

    def test_storage_dir_resolution(self, tmp_path):
        cluster = SimulatedCluster(
            ClusterConfig(storage_dir=os.fspath(tmp_path / "bucket"))
        )
        writer = build_session(cluster=cluster)
        path = writer.encrypted_table("sales").save()
        assert path == os.path.abspath(tmp_path / "bucket" / "sales")
        fresh = SeabedSession(
            mode="seabed", master_key=MASTER_KEY,
            cluster=SimulatedCluster(
                ClusterConfig(storage_dir=os.fspath(tmp_path / "bucket"))
            ),
        )
        handle = fresh.open_table("sales")
        assert handle.name == "sales"


class TestPaillierMode:
    def test_round_trip_with_shared_keys(self, tmp_path):
        keys = PaillierKeyPair.generate(bits=256, seed=9)
        writer = build_session(mode="paillier", paillier_keys=keys)
        expected = rows_of(writer, "SELECT sum(amount), count(*) FROM sales")
        path = writer.save_table("sales", tmp_path / "sales")

        fresh = SeabedSession(
            mode="paillier", master_key=MASTER_KEY, paillier_keys=keys, seed=3
        )
        fresh.open_table(path)
        assert rows_of(fresh, "SELECT sum(amount), count(*) FROM sales") == expected

    def test_different_keys_rejected(self, tmp_path):
        writer = build_session(
            mode="paillier", paillier_keys=PaillierKeyPair.generate(bits=256, seed=9)
        )
        path = writer.save_table("sales", tmp_path / "sales")
        other = SeabedSession(
            mode="paillier", master_key=MASTER_KEY,
            paillier_keys=PaillierKeyPair.generate(bits=256, seed=10),
        )
        with pytest.raises(StorageError, match="Paillier key pair"):
            other.open_table(path)


class TestAttachGuards:
    def test_wrong_master_key(self, tmp_path):
        writer = build_session()
        path = writer.save_table("sales", tmp_path / "sales")
        other = SeabedSession(
            mode="seabed", master_key=b"another-master-key-of-32-bytes!!"
        )
        with pytest.raises(StorageError, match="key-check"):
            other.open_table(path)

    def test_mode_mismatch(self, tmp_path):
        writer = build_session()
        path = writer.save_table("sales", tmp_path / "sales")
        plain = SeabedSession(mode="plain", master_key=MASTER_KEY)
        with pytest.raises(StorageError, match="mode"):
            plain.open_table(path)

    def test_duplicate_registration(self, tmp_path):
        writer = build_session()
        path = writer.save_table("sales", tmp_path / "sales")
        with pytest.raises(StorageError, match="already registered"):
            writer.open_table(path)

    def test_missing_sidecar(self, tmp_path):
        writer = build_session()
        path = writer.save_table("sales", tmp_path / "sales")
        os.remove(os.path.join(path, SIDECAR_NAME))
        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        with pytest.raises(StorageError, match="sidecar"):
            fresh.open_table(path)

    def test_stale_store_row_count(self, tmp_path):
        writer = build_session()
        path = writer.save_table("sales", tmp_path / "sales")
        sidecar = os.path.join(path, SIDECAR_NAME)
        data = json.load(open(sidecar))
        data["num_rows"] = 599
        json.dump(data, open(sidecar, "w"))
        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        with pytest.raises(StorageError, match="stale or corrupt"):
            fresh.open_table(path)


class TestCrossProcess:
    def test_attach_store_written_by_another_process(self, tmp_path):
        """A store written by a separate interpreter attaches cleanly."""
        store_dir = tmp_path / "proc-store"
        script = f"""
import numpy as np
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession

rng = np.random.default_rng(5)
n = 600
data = {{
    "country": rng.choice({COUNTRIES!r}, n),
    "amount": rng.integers(0, 1000, n),
    "year": rng.integers(2014, 2017, n),
}}
schema = TableSchema("sales", [
    ColumnSpec("country", dtype="str", sensitive=True,
               distinct_values={COUNTRIES!r}),
    ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
    ColumnSpec("year", dtype="int", sensitive=False),
])
session = SeabedSession(mode="seabed", master_key={MASTER_KEY!r}, seed=3)
session.create_plan(schema, {SAMPLES!r})
session.upload("sales", data, num_partitions=5)
print(session.save_table("sales", {os.fspath(store_dir)!r}))
"""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        path = proc.stdout.strip().splitlines()[-1]

        session = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        session.open_table(path)
        local = build_session()
        assert rows_of(session, GROUPED, expected_groups=4) == rows_of(
            local, GROUPED, expected_groups=4
        )
