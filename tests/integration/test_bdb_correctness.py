"""The Big Data Benchmark queries checked for value correctness (not just
timing) against the plaintext executor, across all three systems."""

import numpy as np
import pytest

from repro.core.proxy import SeabedClient
from repro.query import execute_plain, parse_query
from repro.workloads import bdb


def normalise(rows):
    return [
        {k: (round(v, 5) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]


@pytest.fixture(scope="module")
def data():
    return bdb.generate(num_rankings=80, num_uservisits=600, seed=5)


@pytest.fixture(scope="module", params=["plain", "seabed", "paillier"])
def client(request, data):
    client = SeabedClient(master_key=b"b" * 32, mode=request.param,
                          paillier_bits=256, seed=6)
    client.create_plan(data.uservisits_schema, bdb.sample_queries())
    client.create_plan(data.rankings_schema, bdb.sample_queries())
    client.upload("rankings", data.rankings, num_partitions=2)
    client.upload("uservisits", data.uservisits, num_partitions=4)
    return client


@pytest.fixture(scope="module")
def plain_tables(data):
    return {"rankings": data.rankings, "uservisits": data.uservisits}


@pytest.mark.parametrize("variant", ["A", "B", "C"])
def test_q1_scan(client, plain_tables, variant):
    threshold = bdb.Q1_THRESHOLDS[variant]
    sql = f"SELECT pageURL, pageRank FROM rankings WHERE pageRank > {threshold}"
    want = execute_plain(plain_tables, parse_query(sql))
    got = client.scan(sql)
    assert {r["pageURL"]: r["pageRank"] for r in got.rows} == {
        r["pageURL"]: r["pageRank"] for r in want
    }


@pytest.mark.parametrize("variant", ["A", "B", "C"])
def test_q2_prefix_aggregation(client, plain_tables, variant):
    sql = bdb.query_q2(variant)
    want = execute_plain(plain_tables, parse_query(sql))
    got = client.query(sql, expected_groups=200)
    assert normalise(got.rows) == normalise(want)


@pytest.mark.parametrize("variant", ["A", "B"])
def test_q3_join(client, plain_tables, variant):
    sql = bdb.query_q3(variant)
    want = execute_plain(plain_tables, parse_query(sql))
    got = client.query(sql, expected_groups=50)
    assert normalise(got.rows) == normalise(want)


def test_q4_phase2_aggregation(data):
    """Phase 1 runs plaintext (paper's simplification); phase 2 aggregates
    the link counts under encryption and must match a direct recount."""
    from collections import Counter

    from repro.core.schema import ColumnSpec, TableSchema
    from repro.engine.rdd import RDD

    client = SeabedClient(master_key=b"b" * 32, mode="seabed", seed=6)
    docs = bdb.generate_crawl_documents(60, data.rankings["pageURL"], seed=2)
    rdd = RDD.parallelize(client.cluster, docs, num_partitions=3)
    counted = dict(
        rdd.flat_map(bdb.extract_links).reduce_by_key(lambda a, b: a + b).collect()
    )
    expected = Counter()
    for doc in docs:
        for url, one in bdb.extract_links(doc):
            expected[url] += one
    assert counted == dict(expected)

    urls = sorted(counted)
    schema = TableSchema("linkcounts", [
        ColumnSpec("target", dtype="str", sensitive=True, distinct_values=urls),
        ColumnSpec("hits", dtype="int", sensitive=True),
    ])
    client.create_plan(schema, ["SELECT sum(hits) FROM linkcounts WHERE target = 'x'"])
    client.upload("linkcounts", {
        "target": np.array(urls, dtype=object),
        "hits": np.array([counted[u] for u in urls], dtype=np.int64),
    }, num_partitions=2)
    total = client.query("SELECT sum(hits) FROM linkcounts").rows[0]["sum(hits)"]
    assert total == sum(counted.values())
