"""Backend equivalence: serial, threads, and processes must agree.

The execution backend decides only *how* stage task bodies run on the
host; the rows a query returns, the simulated-schedule structure, and the
byte accounting must be identical across backends for every query shape
(flat aggregation, group-by, join, scan) and for the batched
``query_many`` path.
"""

import numpy as np
import pytest

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.query import execute_plain, parse_query

BACKENDS = ["serial", "threads", "processes"]

COUNTRIES = ["us", "ca", "in", "uk"]

FLAT = "SELECT sum(amount), count(*) FROM sales WHERE year = 2015"
GROUPED = "SELECT country, sum(amount) FROM sales GROUP BY country"
JOINED = ("SELECT sum(amount), sum(rate), count(*) FROM sales "
          "JOIN fx ON country = code WHERE year = 2016")
SCAN = "SELECT country, amount FROM sales WHERE amount > 900"

SAMPLES = [
    FLAT,
    GROUPED,
    JOINED,
    # Join + range sample so amount gets an ORE companion for the scan.
    "SELECT sum(amount) FROM sales JOIN fx ON country = code WHERE amount > 10",
]


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(23)
    n = 800
    sales = {
        "country": rng.choice(COUNTRIES, n),
        "amount": rng.integers(0, 1000, n),
        "year": rng.integers(2014, 2017, n),
    }
    fx = {
        "code": np.array(COUNTRIES, dtype=object),
        "rate": np.array([7, 9, 81, 8]),
    }
    sales_schema = TableSchema("sales", [
        ColumnSpec("country", dtype="str", sensitive=True,
                   distinct_values=COUNTRIES),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("year", dtype="int", sensitive=False),
    ])
    fx_schema = TableSchema("fx", [
        ColumnSpec("code", dtype="str", sensitive=True,
                   distinct_values=COUNTRIES),
        ColumnSpec("rate", dtype="int", sensitive=True, nbits=16),
    ])
    return sales, fx, sales_schema, fx_schema


def build_client(backend, dataset, workers=2):
    sales, fx, sales_schema, fx_schema = dataset
    cluster = SimulatedCluster(ClusterConfig(backend=backend, workers=workers))
    client = SeabedClient(master_key=b"b" * 32, mode="seabed",
                          cluster=cluster, seed=9)
    client.create_plan(sales_schema, SAMPLES)
    client.create_plan(fx_schema, SAMPLES)
    client.upload("sales", sales, num_partitions=6)
    client.upload("fx", fx, num_partitions=1)
    return client


@pytest.fixture(scope="module")
def reference(dataset):
    """Ground truth from the serial backend (bit-for-bit the seed path)."""
    client = build_client("serial", dataset)
    return {
        "flat": client.query(FLAT).rows,
        "grouped": client.query(GROUPED).rows,
        "joined": client.query(JOINED).rows,
        "scan": client.scan(SCAN).rows,
    }


def normalise(rows):
    return sorted(
        tuple(sorted(
            (k, round(v, 6) if isinstance(v, float) else v) for k, v in r.items()
        ))
        for r in rows
    )


def check_metrics(result):
    for m in result.request_metrics:
        assert m.stages, "every request runs at least one stage"
        assert m.server_time > 0.0
        assert m.real_time >= 0.0
        assert m.result_bytes > 0
        for stage in m.stages:
            assert stage.wall_time >= 0.0
            assert len(stage.task_times) == stage.num_tasks
            assert stage.makespan <= stage.total_cpu + 1e-12


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendEquivalence:
    def test_flat(self, backend, dataset, reference):
        client = build_client(backend, dataset)
        result = client.query(FLAT)
        assert normalise(result.rows) == normalise(reference["flat"])
        check_metrics(result)
        client.cluster.close()

    def test_grouped(self, backend, dataset, reference):
        client = build_client(backend, dataset)
        result = client.query(GROUPED)
        assert normalise(result.rows) == normalise(reference["grouped"])
        check_metrics(result)
        client.cluster.close()

    def test_joined(self, backend, dataset, reference):
        client = build_client(backend, dataset)
        result = client.query(JOINED)
        assert normalise(result.rows) == normalise(reference["joined"])
        check_metrics(result)
        client.cluster.close()

    def test_scan(self, backend, dataset, reference):
        client = build_client(backend, dataset)
        result = client.scan(SCAN)
        assert normalise(result.rows) == normalise(reference["scan"])
        check_metrics(result)
        client.cluster.close()

    def test_matches_plaintext_executor(self, backend, dataset):
        sales, fx, *_ = dataset
        client = build_client(backend, dataset)
        for sql in (FLAT, GROUPED, JOINED):
            want = execute_plain({"sales": sales, "fx": fx}, parse_query(sql))
            got = client.query(sql).rows
            assert normalise(got) == normalise(want), sql
        client.cluster.close()


class TestQueryMany:
    QUERIES = [FLAT, GROUPED, JOINED, FLAT, GROUPED]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_matches_sequential(self, backend, dataset):
        client = build_client(backend, dataset, workers=3)
        sequential = [client.query(q).rows for q in self.QUERIES]
        batch = client.query_many(self.QUERIES)
        assert len(batch) == len(self.QUERIES)
        for got, want in zip(batch, sequential):
            assert normalise(got.rows) == normalise(want)
            check_metrics(got)
        client.cluster.close()

    def test_empty_batch(self, dataset):
        client = build_client("serial", dataset)
        assert client.query_many([]) == []

    def test_threads_batch_is_concurrent_safe_repeatedly(self, dataset):
        # Hammer the concurrent path a few times to surface races.
        client = build_client("threads", dataset, workers=4)
        want = normalise(client.query(GROUPED).rows)
        for _ in range(3):
            results = client.query_many([GROUPED] * 6)
            assert all(normalise(r.rows) == want for r in results)
        client.cluster.close()
