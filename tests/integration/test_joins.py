"""Integration tests for join queries (Big Data Benchmark query 3 shape)."""

import numpy as np
import pytest

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.query import execute_plain, parse_query


def normalise(rows):
    return [
        {k: (round(v, 5) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]


@pytest.fixture(scope="module")
def tables():
    rng = np.random.default_rng(11)
    n_rank, n_visits = 40, 300
    urls = [f"url{i}" for i in range(n_rank)]
    rankings = {
        "pageURL": np.array(urls, dtype=object),
        "pageRank": rng.integers(1, 100, n_rank),
    }
    uservisits = {
        "destURL": rng.choice(urls, n_visits),
        "adRevenue": rng.integers(1, 500, n_visits),
        "visitDate": rng.integers(0, 365, n_visits),
        "sourceIP": rng.choice([f"ip{i}" for i in range(15)], n_visits),
    }
    return rankings, uservisits


@pytest.fixture(scope="module")
def schemas():
    rankings = TableSchema("rankings", [
        ColumnSpec("pageURL", dtype="str", sensitive=True),
        ColumnSpec("pageRank", dtype="int", sensitive=True, nbits=16),
    ])
    uservisits = TableSchema("uservisits", [
        ColumnSpec("destURL", dtype="str", sensitive=True),
        ColumnSpec("adRevenue", dtype="int", sensitive=True),
        ColumnSpec("visitDate", dtype="int", sensitive=True, nbits=16),
        ColumnSpec("sourceIP", dtype="str", sensitive=True),
    ])
    return rankings, uservisits


Q3 = ("SELECT sourceIP, sum(adRevenue), avg(pageRank) FROM uservisits "
      "JOIN rankings ON destURL = pageURL "
      "WHERE visitDate BETWEEN 30 AND 200 GROUP BY sourceIP")
Q3_FLAT = ("SELECT sum(adRevenue), sum(pageRank), count(*) FROM uservisits "
           "JOIN rankings ON destURL = pageURL WHERE visitDate < 100")
SAMPLES = [Q3, Q3_FLAT]


def build_client(mode, tables, schemas):
    rankings, uservisits = tables
    r_schema, v_schema = schemas
    client = SeabedClient(master_key=b"j" * 32, mode=mode,
                          paillier_bits=256, seed=5)
    client.create_plan(v_schema, SAMPLES)
    client.create_plan(r_schema, SAMPLES)
    client.upload("rankings", rankings, num_partitions=2)
    client.upload("uservisits", uservisits, num_partitions=4)
    return client


@pytest.mark.parametrize("mode", ["plain", "seabed", "paillier"])
@pytest.mark.parametrize("sql", [Q3_FLAT, Q3])
def test_join_matches_ground_truth(mode, sql, tables, schemas):
    rankings, uservisits = tables
    client = build_client(mode, tables, schemas)
    want = execute_plain(
        {"rankings": rankings, "uservisits": uservisits}, parse_query(sql)
    )
    got = client.query(sql, expected_groups=15)
    assert normalise(got.rows) == normalise(want)


def test_join_ciphertexts_match_across_tables(tables, schemas):
    """The shared join group gives both DET columns the same key, so the
    server can match ciphertexts without learning URLs."""
    client = build_client("seabed", tables, schemas)
    probe = client.server.table("uservisits").column("destURL__det")
    build = client.server.table("rankings").column("pageURL__det")
    assert set(probe.tolist()) <= set(build.tolist())


def test_join_multiset_ids_used(tables, schemas):
    """Build-side aggregation carries a multiset ID collection (a URL's
    pageRank counts once per matching visit)."""
    client = build_client("seabed", tables, schemas)
    result = client.query(Q3_FLAT)
    aggs = result.translation.requests[0].aggs
    multisets = [a for a in aggs if getattr(a, "multiset", False)]
    assert len(multisets) == 1
    assert multisets[0].column == "pageRank__ashe"


def test_incremental_upload_after_join_plan(tables, schemas):
    rankings, uservisits = tables
    client = build_client("seabed", tables, schemas)
    extra = {k: v[:50] for k, v in uservisits.items()}
    client.upload("uservisits", extra, num_partitions=1)
    merged = {
        k: np.concatenate([np.asarray(uservisits[k]), np.asarray(extra[k])])
        for k in uservisits
    }
    want = execute_plain(
        {"rankings": rankings, "uservisits": merged}, parse_query(Q3_FLAT)
    )
    got = client.query(Q3_FLAT)
    assert normalise(got.rows) == normalise(want)
