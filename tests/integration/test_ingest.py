"""Incremental encrypted ingestion through the whole stack.

``SeabedSession.append_rows`` must encrypt only its batch (proved via
the OPS counters), publish it atomically (a writer killed at any labelled
crash point leaves a store that reopens cleanly at the committed state),
keep concurrent readers on consistent snapshots across every execution
backend, and compose with compaction and v1-era stores.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.engine.store import (
    CRASH_POINT_ENV,
    FORMAT_NAME,
    MANIFEST_NAME,
    store_generations,
    store_num_rows,
)
from repro.errors import StorageError
from repro.ops import OPS

BACKENDS = ["serial", "threads", "processes"]
COUNTRIES = ["us", "ca", "in", "uk"]
MASTER_KEY = b"ingest-tests-master-key-32-byte!"

COUNT = "SELECT count(*) FROM sales"
TOTAL = "SELECT sum(amount), count(*) FROM sales"
GROUPED = "SELECT country, sum(amount), count(*) FROM sales GROUP BY country"

SAMPLES = [
    GROUPED,
    "SELECT sum(amount) FROM sales WHERE year = 2015",
    "SELECT min(amount), max(amount) FROM sales",
]


CITIES = ["nyc", "sea", "lon"]


def dataset(n=600, seed=5, cities=CITIES):
    rng = np.random.default_rng(seed)
    return {
        "country": rng.choice(COUNTRIES, n),
        "city": rng.choice(cities, n),
        "amount": rng.integers(0, 1000, n),
        "year": rng.integers(2014, 2017, n),
    }


def schema():
    return TableSchema("sales", [
        ColumnSpec("country", dtype="str", sensitive=True,
                   distinct_values=COUNTRIES),
        ColumnSpec("city", dtype="str", sensitive=False),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("year", dtype="int", sensitive=False),
    ])


def build_writer(tmp_path, cluster=None, n=600):
    session = SeabedSession(
        mode="seabed", master_key=MASTER_KEY, cluster=cluster, seed=3
    )
    session.create_plan(schema(), SAMPLES)
    session.upload("sales", dataset(n=n), num_partitions=5)
    path = session.save_table("sales", tmp_path / "sales")
    return session, path


def rows_of(session, sql, **kwargs):
    return sorted(map(str, session.query(sql, **kwargs).rows))


class TestAppendRows:
    def test_append_encrypts_only_the_batch(self, tmp_path):
        writer, path = build_writer(tmp_path)
        batch = dataset(n=100, seed=11)
        before = OPS.snapshot()
        stats = writer.append_rows("sales", batch)
        delta = OPS.delta(before)
        assert delta.get("encrypt_rows") == 100
        assert delta.get("encrypt_batch") == 1
        assert stats.rows == 100
        assert stats.generation == 2
        assert writer.query(COUNT).rows[0]["count(*)"] == 700

    def test_appended_rows_answer_identically_to_bulk_upload(self, tmp_path):
        writer, _ = build_writer(tmp_path, n=500)
        for seed in (21, 22):
            writer.append_rows("sales", dataset(n=100, seed=seed))

        bulk = SeabedSession(mode="seabed", master_key=MASTER_KEY, seed=3)
        bulk.create_plan(schema(), SAMPLES)
        merged = {
            k: np.concatenate([
                dataset(n=500)[k], dataset(n=100, seed=21)[k],
                dataset(n=100, seed=22)[k],
            ])
            for k in ("country", "city", "amount", "year")
        }
        bulk.upload("sales", merged, num_partitions=5)
        assert rows_of(writer, GROUPED, expected_groups=4) == rows_of(
            bulk, GROUPED, expected_groups=4
        )
        assert rows_of(writer, TOTAL) == rows_of(bulk, TOTAL)

    def test_append_grows_dictionaries(self, tmp_path):
        """A batch holding a never-seen string value extends the column
        dictionary; the updated sidecar lets a fresh attach decode it.
        (SPLASHE dimensions keep their declared domain -- dictionary
        growth applies to dictionary-encoded columns.)"""
        writer, path = build_writer(tmp_path)
        extended = dataset(n=50, seed=13, cities=CITIES + ["ber"])
        extended["city"][0] = "ber"
        writer.append_rows("sales", extended)
        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        fresh.open_table(path)
        got = {
            r["city"]: r["count(*)"]
            for r in fresh.query(
                "SELECT city, count(*) FROM sales GROUP BY city",
                expected_groups=4,
            ).rows
        }
        assert "ber" in got
        assert sum(got.values()) == 650

    def test_append_requires_store_backed_table(self):
        session = SeabedSession(mode="seabed", master_key=MASTER_KEY, seed=3)
        session.create_plan(schema(), SAMPLES)
        session.upload("sales", dataset(), num_partitions=5)
        with pytest.raises(StorageError, match="not store-backed"):
            session.append_rows("sales", dataset(n=10, seed=9))

    def test_empty_batch_rejected(self, tmp_path):
        writer, _ = build_writer(tmp_path)
        with pytest.raises(StorageError, match="empty"):
            writer.append_rows("sales", {k: v[:0] for k, v in dataset().items()})

    def test_append_partition_sizing_from_config(self, tmp_path):
        cluster = SimulatedCluster(ClusterConfig(append_partition_rows=40))
        writer, path = build_writer(tmp_path, cluster=cluster)
        writer.append_rows("sales", dataset(n=100, seed=17))
        assert store_generations(path)[-1]["num_partitions"] == 3  # ceil(100/40)

    def test_upload_routes_through_append_once_store_backed(self, tmp_path):
        """upload() on a saved/attached table must not silently diverge
        from the store: it lands durably as an append generation."""
        writer, path = build_writer(tmp_path)
        stats = writer.upload("sales", dataset(n=100, seed=27))
        assert stats.rows == 100
        assert len(writer.encrypted_table("sales").generations) == 2
        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        fresh.open_table(path)
        assert fresh.query(COUNT).rows[0]["count(*)"] == 700

    def test_attach_then_append(self, tmp_path):
        writer, path = build_writer(tmp_path)
        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        fresh.open_table(path)
        fresh.append_rows("sales", dataset(n=100, seed=19))
        assert fresh.query(COUNT).rows[0]["count(*)"] == 700
        again = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        again.open_table(path)
        assert again.query(COUNT).rows[0]["count(*)"] == 700


class TestConcurrentReaders:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reader_pinned_to_its_snapshot_during_append(self, tmp_path, backend):
        """A session attached before an append keeps answering from its
        own snapshot on every backend -- wholly pre-append, never torn --
        and a re-attach sees the append in full."""
        writer, path = build_writer(tmp_path)
        expected_before = rows_of(writer, TOTAL)

        cluster = SimulatedCluster(ClusterConfig(backend=backend, workers=2))
        pinned = SeabedSession(
            mode="seabed", master_key=MASTER_KEY, cluster=cluster
        )
        pinned.open_table(path)
        try:
            writer.append_rows("sales", dataset(n=100, seed=23))
            assert rows_of(pinned, TOTAL) == expected_before
            assert pinned.query(COUNT).rows[0]["count(*)"] == 600
        finally:
            cluster.close()

        after = SeabedSession(
            mode="seabed", master_key=MASTER_KEY,
            cluster=SimulatedCluster(ClusterConfig(backend=backend, workers=2)),
        )
        after.open_table(path)
        try:
            assert after.query(COUNT).rows[0]["count(*)"] == 700
            assert rows_of(after, TOTAL) == rows_of(writer, TOTAL)
        finally:
            after.cluster.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_writer_sees_appends_immediately(self, tmp_path, backend):
        cluster = SimulatedCluster(ClusterConfig(backend=backend, workers=2))
        writer, path = build_writer(tmp_path, cluster=cluster)
        try:
            total = 600
            for seed in (31, 32, 33):
                writer.append_rows("sales", dataset(n=50, seed=seed))
                total += 50
                assert writer.query(COUNT).rows[0]["count(*)"] == total
        finally:
            cluster.close()

    def test_interleaved_reads_never_torn(self, tmp_path):
        """Re-attaching between appends only ever observes generation
        boundaries: each observed count is a valid committed total."""
        writer, path = build_writer(tmp_path)
        valid = {600}
        observed = set()
        total = 600
        for seed in range(41, 47):
            writer.append_rows("sales", dataset(n=25, seed=seed))
            total += 25
            valid.add(total)
            probe = SeabedSession(mode="seabed", master_key=MASTER_KEY)
            probe.open_table(path)
            observed.add(probe.query(COUNT).rows[0]["count(*)"])
        assert observed <= valid


class TestMultiWriter:
    def test_stale_session_cannot_truncate_committed_appends(self, tmp_path):
        """The on-disk sidecar is the commit record: a session whose
        in-memory watermark went stale (another writer appended since it
        attached) must get an error, not silently roll the committed
        generation back."""
        writer, path = build_writer(tmp_path)
        stale = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        stale.open_table(path)
        writer.append_rows("sales", dataset(n=100, seed=81))

        with pytest.raises(StorageError, match="another writer"):
            stale.append_rows("sales", dataset(n=50, seed=82))
        with pytest.raises(StorageError, match="another writer"):
            stale.compact_table("sales")
        # The committed append survived untouched...
        assert store_num_rows(path) == 700
        # ...and a re-opened session continues the sequence cleanly.
        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        fresh.open_table(path)
        fresh.append_rows("sales", dataset(n=50, seed=82))
        assert fresh.query(COUNT).rows[0]["count(*)"] == 750


class TestCompaction:
    def test_compact_preserves_answers(self, tmp_path):
        writer, path = build_writer(tmp_path)
        for seed in range(51, 57):
            writer.append_rows("sales", dataset(n=20, seed=seed))
        expected = rows_of(writer, GROUPED, expected_groups=4)
        parts_before = sum(
            g["num_partitions"] for g in store_generations(path)
        )
        stats = writer.compact_table("sales")
        assert stats is not None
        assert stats["partitions_after"] < parts_before
        assert rows_of(writer, GROUPED, expected_groups=4) == expected

        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        fresh.open_table(path)
        assert rows_of(fresh, GROUPED, expected_groups=4) == expected

    def test_compact_noop_without_small_generations(self, tmp_path):
        writer, _ = build_writer(tmp_path)
        assert writer.compact_table("sales") is None

    def test_ingest_stream_replays_the_flagship_workload(self, tmp_path):
        """The ad-analytics table replayed as arriving traffic: first
        batch bulk-uploaded, the rest appended, compaction inline."""
        from repro.workloads import adanalytics
        from repro.workloads.persist import ingest_stream

        data = adanalytics.generate(rows=2000, seed=4)
        batches = list(adanalytics.stream_batches(data, 4))
        assert sum(len(b["hour"]) for b in batches) == 2000

        session = SeabedSession(mode="seabed", master_key=MASTER_KEY, seed=3)
        # The paper's storage budget (as in the Figure 10 benchmarks):
        # every batch must balance its enhanced-SPLASHE dummies alone, so
        # the k the planner picks needs the budget's slack.
        session.create_plan(
            data.schema, adanalytics.sample_queries(data), storage_budget=10.0
        )
        session.upload("ad_analytics", batches[0], num_partitions=4)
        session.save_table("ad_analytics", tmp_path / "ada")
        stats = ingest_stream(
            session, "ad_analytics", batches[1:], compact_every=2
        )
        assert len(stats) == 3
        sql = "SELECT hour, sum(measure00) FROM ad_analytics GROUP BY hour"
        got = session.query(sql, expected_groups=24).rows
        want_total = int(np.asarray(data.columns["measure00"]).sum())
        assert sum(r["sum(measure00)"] for r in got) == want_total


CRASH_SCRIPT = """
import numpy as np
from repro.core.session import SeabedSession

rng = np.random.default_rng(61)
batch = {{
    "country": rng.choice({countries!r}, 100),
    "city": rng.choice(["nyc", "sea", "lon"], 100),
    "amount": rng.integers(0, 1000, 100),
    "year": rng.integers(2014, 2017, 100),
}}
session = SeabedSession(mode="seabed", master_key={key!r})
session.open_table({path!r})
session.append_rows("sales", batch)
"""


class TestCrashSafety:
    @pytest.mark.parametrize("point", [
        "append:before-rename", "append:after-rename", "append:after-manifest",
    ])
    def test_killed_writer_rolls_back_cleanly(self, tmp_path, point):
        writer, path = build_writer(tmp_path)
        expected = rows_of(writer, TOTAL)

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        env[CRASH_POINT_ENV] = point
        proc = subprocess.run(
            [sys.executable, "-c", CRASH_SCRIPT.format(
                countries=COUNTRIES, key=MASTER_KEY, path=path,
            )],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 70, proc.stderr

        # A fresh session attaches at the committed state regardless of
        # how far the dead writer got (the sidecar watermark is the
        # commit record)...
        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        fresh.open_table(path)
        assert fresh.query(COUNT).rows[0]["count(*)"] == 600
        assert rows_of(fresh, TOTAL) == expected

        # ...and the next append rolls back any published-but-unacked
        # generation before continuing the row-ID sequence.
        fresh.append_rows("sales", dataset(n=50, seed=63))
        assert fresh.query(COUNT).rows[0]["count(*)"] == 650
        assert store_num_rows(path) == 650
        again = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        again.open_table(path)
        assert rows_of(again, TOTAL) == rows_of(fresh, TOTAL)


class TestV1StoreCompat:
    def downgrade(self, path):
        manifest_path = os.path.join(path, MANIFEST_NAME)
        manifest = json.load(open(manifest_path))
        gen = manifest["generations"][0]
        json.dump({
            "format": FORMAT_NAME,
            "version": 1,
            "table": manifest["table"],
            "num_rows": manifest["num_rows"],
            "spans_hex": gen["spans_hex"],
            "columns": manifest["columns"],
            "partitions": gen["partitions"],
        }, open(manifest_path, "w"))

    def test_v1_store_attaches_and_upgrades_on_append(self, tmp_path):
        writer, path = build_writer(tmp_path)
        expected = rows_of(writer, TOTAL)
        self.downgrade(path)

        fresh = SeabedSession(mode="seabed", master_key=MASTER_KEY)
        fresh.open_table(path)
        assert rows_of(fresh, TOTAL) == expected

        fresh.append_rows("sales", dataset(n=100, seed=71))
        from repro.engine.store import FORMAT_VERSION

        manifest = json.load(open(os.path.join(path, MANIFEST_NAME)))
        assert manifest["version"] == FORMAT_VERSION
        assert [g["id"] for g in manifest["generations"]] == [1, 2]
        assert fresh.query(COUNT).rows[0]["count(*)"] == 700
