"""Remote transport equivalence: a session over the wire must be
bit-identical to a session over LocalTransport on the same store.

One persisted ciphertext store (plus one sharded root), three server
processes -- one per execution backend -- each launched with
``python -m repro.net.service`` in its own OS process.  Every query,
scan and aggregate, including prepared-query reuse and sharded
scatter-gather, must return exactly what a local session attached to
the same store returns; the serving processes must prove keyless over
the audit RPC; and remote appends must commit durably."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster

KEY = b"w" * 32
TOKEN = "integration-token"
REGIONS = ["ber", "del", "lag", "lim", "osl", "rio", "sfo", "tok"]
N = 360

SCHEMA = TableSchema("sales", [
    ColumnSpec("region", dtype="str", sensitive=True),
    ColumnSpec("day", dtype="int", sensitive=True, nbits=16),
    ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
])
SAMPLES = [
    "SELECT sum(amount) FROM sales WHERE region = 'rio'",
    "SELECT region, sum(amount), count(*) FROM sales GROUP BY region",
    "SELECT sum(amount), var(amount) FROM sales WHERE day > 10",
    "SELECT min(amount), max(amount), median(amount) FROM sales",
]
QUERIES = [
    "SELECT sum(amount) FROM sales",
    "SELECT sum(amount) FROM sales WHERE region = 'rio'",
    "SELECT sum(amount), count(*) FROM sales WHERE region IN ('ber', 'tok')",
    "SELECT region, sum(amount), count(*) FROM sales GROUP BY region",
    "SELECT sum(amount), avg(amount), var(amount) FROM sales WHERE day > 10",
    "SELECT sum(amount) FROM sales WHERE day >= 12 AND day < 40",
    "SELECT min(amount), max(amount), median(amount) FROM sales",
]
SCAN = "SELECT region, amount FROM sales WHERE region = 'lag'"


def _data(seed=3, n=N):
    rng = np.random.default_rng(seed)
    return {
        "region": rng.choice(REGIONS, n).tolist(),
        "day": rng.integers(0, 60, n),
        "amount": rng.integers(-50, 900, n),
    }


def _plan(session):
    session.create_plan(SCHEMA, SAMPLES)
    return session


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    """One persisted single-store table every server and session shares."""
    root = tmp_path_factory.mktemp("remote-store")
    writer = _plan(SeabedSession(master_key=KEY, seed=1))
    writer.upload("sales", _data())
    return writer.encrypted_table("sales").save(str(root / "sales"))


@pytest.fixture(scope="module")
def sharded_root(tmp_path_factory):
    """A persisted sharded table (4 shards) for scatter-gather hosting."""
    root = tmp_path_factory.mktemp("remote-sharded")
    config = ClusterConfig(storage_dir=str(root), append_partition_rows=128)
    writer = SeabedSession(master_key=KEY, seed=1, cluster=SimulatedCluster(config))
    _plan(writer)
    writer.shard_table("sales", "region", num_shards=4, replicas=1)
    writer.upload("sales", _data())
    path = writer.sharded_table("sales").root
    writer.close()
    return path


def _spawn_server(tmp_path, *args):
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    info = str(tmp_path / "info.json")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.net.service",
         "--grant", f"alice:{TOKEN}", "--info-file", info, *args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 60
    while not os.path.exists(info):
        if proc.poll() is not None or time.monotonic() > deadline:
            out = proc.stdout.read() if proc.stdout else ""
            proc.kill()
            raise RuntimeError(f"service process failed to start:\n{out}")
        time.sleep(0.05)
    with open(info) as fh:
        addr = json.load(fh)
    return proc, (addr["host"], addr["port"])


@pytest.fixture(scope="module", params=["serial", "threads", "processes"])
def server(request, store_path, tmp_path_factory):
    proc, address = _spawn_server(
        tmp_path_factory.mktemp(f"srv-{request.param}"),
        "--store", store_path, "--backend", request.param, "--workers", "2",
    )
    yield address
    proc.terminate()
    proc.wait(timeout=15)


@pytest.fixture(scope="module")
def local(store_path):
    # readers restore the plan from the store's sidecar -- no create_plan
    session = SeabedSession(master_key=KEY, seed=1)
    session.open_table(store_path)
    return session


@pytest.fixture
def remote(server, store_path):
    session = repro.connect(server, TOKEN, master_key=KEY, seed=1)
    session.open_table(store_path)
    yield session
    session.close()


class TestBitIdentity:
    @pytest.mark.parametrize("query", QUERIES)
    def test_queries_bit_identical(self, local, remote, query):
        assert remote.query(query).rows == local.query(query).rows

    def test_scan_bit_identical(self, local, remote):
        assert remote.scan(SCAN).rows == local.scan(SCAN).rows

    def test_prepared_reuse_bit_identical(self, local, remote):
        sql = "SELECT sum(amount), count(*) FROM sales WHERE day > :cut"
        p_local, p_remote = local.prepare(sql), remote.prepare(sql)
        for cut in (0, 17, 45):
            assert p_remote.execute(cut=cut).rows == p_local.execute(cut=cut).rows

    def test_query_many_bit_identical(self, local, remote):
        got = remote.query_many(QUERIES[:4])
        want = local.query_many(QUERIES[:4])
        assert [r.rows for r in got] == [r.rows for r in want]

    def test_wire_time_accounted_remotely_only(self, local, remote):
        q = "SELECT sum(amount) FROM sales"
        assert local.query(q).wire_time == 0.0
        assert remote.query(q).wire_time > 0.0


class TestKeylessAcrossProcess:
    def test_server_process_holds_no_keys(self, remote):
        """The audit runs inside the *other* OS process over the RPC."""
        audit = remote.transport.audit_server()
        assert audit["ok"], audit["flagged"]
        assert audit["objects_walked"] > 50


class TestRemoteAppend:
    def test_append_commits_durably(self, store_path, tmp_path_factory):
        import shutil

        # appends mutate the store on disk: work on a private copy so the
        # bit-identity fixtures keep their snapshot
        store = str(tmp_path_factory.mktemp("append-copy") / "sales")
        shutil.copytree(store_path, store)
        store_path = store
        proc, address = _spawn_server(
            tmp_path_factory.mktemp("srv-append"), "--store", store_path,
        )
        try:
            session = repro.connect(address, TOKEN, master_key=KEY, seed=1)
            session.open_table(store_path)
            before = session.query("SELECT count(*) FROM sales").rows[0]["count(*)"]
            extra = _data(seed=11, n=90)
            stats = session.append_rows("sales", extra)
            assert stats.rows == 90
            after = session.query("SELECT count(*) FROM sales").rows[0]["count(*)"]
            assert after == before + 90
            session.close()
            # a second remote session sees the committed rows
            again = repro.connect(address, TOKEN, master_key=KEY, seed=1)
            again.open_table(store_path)
            assert again.query(
                "SELECT count(*) FROM sales"
            ).rows[0]["count(*)"] == before + 90
            again.close()
        finally:
            proc.terminate()
            proc.wait(timeout=15)


class TestRemoteSharded:
    def test_scatter_gather_bit_identical(self, sharded_root, tmp_path_factory):
        proc, address = _spawn_server(
            tmp_path_factory.mktemp("srv-sharded"), "--sharded", sharded_root,
        )
        baseline = None
        try:
            # local fleet on the same root is the reference
            local = SeabedSession(master_key=KEY, seed=1)
            local.open_sharded(sharded_root)
            baseline = {q: local.query(q).rows for q in QUERIES}
            remote = repro.connect(address, TOKEN, master_key=KEY, seed=1)
            remote.open_sharded(sharded_root)
            for q, want in baseline.items():
                assert remote.query(q).rows == want
            # the hosted fleet is keyless too
            audit = remote.transport.audit_server()
            assert audit["ok"], audit["flagged"]
            # sharded writes are a serving-process operation
            from repro.errors import TransportError

            with pytest.raises(TransportError, match="serving process"):
                remote.append_sharded("sales", _data(seed=12, n=10))
            remote.close()
            local.close()
        finally:
            proc.terminate()
            proc.wait(timeout=15)
