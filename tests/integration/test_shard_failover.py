"""Replica failover: killed shard workers must not change any answer.

Fail points kill one worker process mid-RPC (the reply is never sent);
the coordinator must detect the dead pipe, mark the node, retry the
shard's stage on the next replica, and still return exactly the
single-store answer -- with ``JobMetrics.failovers`` recording the
recovery.  Appends, by contrast, must refuse to proceed with any dead
replica in the chain (a partially acked write would fork the replicas).
"""

import numpy as np
import pytest

from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.errors import ExecutionError

REGIONS = ["ber", "del", "lag", "lim", "osl", "rio", "sfo", "tok"]
KEY = b"f" * 32
N = 500

SCHEMA = TableSchema("sales", [
    ColumnSpec("region", dtype="str", sensitive=True),
    ColumnSpec("day", dtype="int", sensitive=True, nbits=16),
    ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
])
SAMPLE_QUERIES = [
    "SELECT sum(amount) FROM sales WHERE region = 'rio'",
    "SELECT region, sum(amount), count(*) FROM sales GROUP BY region",
    "SELECT sum(amount) FROM sales WHERE day > 10",
    "SELECT min(amount), max(amount) FROM sales",
]
GROUPED = "SELECT region, sum(amount), count(*) FROM sales GROUP BY region"


def _batch(seed=11):
    rng = np.random.default_rng(seed)
    return {
        "region": rng.choice(REGIONS, N).tolist(),
        "day": rng.integers(0, 60, N),
        "amount": rng.integers(0, 900, N),
    }


def _rows_key(row):
    return sorted(row.items(), key=lambda kv: kv[0])


def _sorted_rows(result):
    return sorted(result.rows, key=_rows_key)


@pytest.fixture
def sessions(tmp_path):
    """(sharded session, its table handle, single-store baseline)."""
    baseline = SeabedSession(master_key=KEY, seed=2)
    baseline.create_plan(SCHEMA, SAMPLE_QUERIES)
    baseline.upload("sales", _batch())

    config = ClusterConfig(storage_dir=str(tmp_path), workers=2)
    session = SeabedSession(
        master_key=KEY, seed=2, cluster=SimulatedCluster(config)
    )
    session.create_plan(SCHEMA, SAMPLE_QUERIES)
    table = session.shard_table("sales", "region", num_shards=4, replicas=2)
    session.upload("sales", _batch())
    yield session, table, baseline
    session.close()


def _populated(table):
    return [s for s, n in table.shard_rows().items() if n > 0]


class TestQueryFailover:
    def test_worker_killed_mid_query_fails_over(self, sessions):
        session, table, baseline = sessions
        primary = table.store.replica_nodes(_populated(table)[0])[0]
        table.arm_exit(primary, "execute", after=1)
        result = session.query(GROUPED)
        assert _sorted_rows(result) == _sorted_rows(baseline.query(GROUPED))
        assert sum(m.failovers for m in result.request_metrics) == 1
        assert primary in table.store.dead
        # Later queries skip the dead node without counting new failovers.
        again = session.query(GROUPED)
        assert _sorted_rows(again) == _sorted_rows(baseline.query(GROUPED))
        assert sum(m.failovers for m in again.request_metrics) == 0

    def test_hard_killed_node_is_survivable(self, sessions):
        session, table, baseline = sessions
        table.kill_node(table.store.replica_nodes(_populated(table)[0])[0])
        for query in SAMPLE_QUERIES:
            assert _sorted_rows(session.query(query)) == _sorted_rows(
                baseline.query(query)
            )

    def test_scan_fails_over_too(self, sessions):
        session, table, baseline = sessions
        query = "SELECT region, amount FROM sales WHERE day < 20"
        want = sorted(map(_rows_key, baseline.scan(query).rows))
        primary = table.store.replica_nodes(_populated(table)[0])[0]
        table.arm_exit(primary, "scan", after=1)
        got = session.scan(query)
        assert sorted(map(_rows_key, got.rows)) == want
        assert sum(m.failovers for m in got.request_metrics) == 1

    def test_whole_chain_dead_is_an_error(self, sessions):
        session, table, _ = sessions
        shard = _populated(table)[0]
        for node in table.store.replica_nodes(shard):
            table.kill_node(node)
        with pytest.raises(ExecutionError, match="replica"):
            session.query(GROUPED)

    def test_metrics_record_shard_counters(self, sessions):
        session, table, _ = sessions
        primary = table.store.replica_nodes(_populated(table)[0])[0]
        table.arm_exit(primary, "execute", after=1)
        result = session.query(GROUPED)
        metrics = result.request_metrics[0]
        assert metrics.shards_total == 4
        summary = metrics.summary()
        assert summary["shards_total"] == 4.0
        assert summary["failovers"] + sum(
            m.failovers for m in result.request_metrics[1:]
        ) == 1.0


class TestAppendSafety:
    def test_append_refuses_dead_replica(self, sessions):
        session, table, _ = sessions
        table.kill_node(table.store.replica_nodes(_populated(table)[0])[0])
        with pytest.raises(ExecutionError, match="full replica chain"):
            session.upload("sales", _batch(12))

    def test_append_crash_rolls_back_cleanly(self, sessions, tmp_path):
        session, table, baseline = sessions
        want = _sorted_rows(baseline.query(GROUPED))
        rows_before = table.shard_rows()
        # The primary of some populated shard dies while acking the
        # append: the session must roll its cursors back and the store
        # reconcile must leave every shard at its committed row count.
        victim = table.store.replica_nodes(_populated(table)[0])[0]
        table.arm_exit(victim, "append", after=1)
        with pytest.raises(ExecutionError, match="replica"):
            session.upload("sales", _batch(13))
        assert table.num_rows == N
        # Queries still answer from the replicas, unchanged.
        assert _sorted_rows(session.query(GROUPED)) == want
        # A fresh session sees only committed rows on every live replica.
        session.close()
        fresh = SeabedSession(
            master_key=KEY, seed=2,
            cluster=SimulatedCluster(ClusterConfig(storage_dir=str(tmp_path))),
        )
        try:
            reopened = fresh.open_sharded("sales")
            assert reopened.num_rows == N
            assert sum(reopened.shard_rows().values()) == sum(
                rows_before.values()
            )
            assert _sorted_rows(fresh.query(GROUPED)) == want
        finally:
            fresh.close()
