"""Integration tests for projection (scan) queries -- the BDB Q1 shape."""

import numpy as np
import pytest

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.errors import TranslationError
from repro.query import execute_plain, parse_query


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(3)
    n = 500
    data = {
        "pageURL": np.array([f"url{i}" for i in range(n)], dtype=object),
        "pageRank": rng.integers(1, 1000, n),
        "site": rng.choice(["a", "b"], n),
    }
    schema = TableSchema("rankings", [
        ColumnSpec("pageURL", dtype="str", sensitive=True),
        ColumnSpec("pageRank", dtype="int", sensitive=True, nbits=16),
        ColumnSpec("site", dtype="str", sensitive=False),
    ])
    samples = [
        # Join + range samples make the planner give pageURL DET and
        # pageRank an ORE companion.
        "SELECT sum(pageRank) FROM rankings JOIN x ON pageURL = y WHERE pageRank > 10",
    ]
    return data, schema, samples


def make_client(mode, setup):
    data, schema, samples = setup
    client = SeabedClient(master_key=b"s" * 32, mode=mode,
                          paillier_bits=256, seed=1)
    client.create_plan(schema, samples)
    client.upload("rankings", data, num_partitions=3)
    return client


@pytest.mark.parametrize("mode", ["plain", "seabed", "paillier"])
def test_scan_matches_ground_truth(mode, setup):
    data = setup[0]
    client = make_client(mode, setup)
    sql = "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 900"
    want = execute_plain({"rankings": data}, parse_query(sql))
    got = client.scan(sql)
    assert sorted(r["pageURL"] for r in got.rows) == sorted(
        r["pageURL"] for r in want
    )
    assert {r["pageURL"]: r["pageRank"] for r in got.rows} == {
        r["pageURL"]: r["pageRank"] for r in want
    }


def test_scan_with_plain_filter(setup):
    data = setup[0]
    client = make_client("seabed", setup)
    sql = "SELECT pageRank FROM rankings WHERE site = 'a'"
    want = execute_plain({"rankings": data}, parse_query(sql))
    got = client.scan(sql)
    assert sorted(r["pageRank"] for r in got.rows) == sorted(
        r["pageRank"] for r in want
    )


def test_scan_rejects_aggregates(setup):
    client = make_client("seabed", setup)
    with pytest.raises(TranslationError, match="projection"):
        client.scan("SELECT sum(pageRank) FROM rankings")


def test_scan_metrics(setup):
    client = make_client("seabed", setup)
    result = client.scan("SELECT pageRank FROM rankings WHERE pageRank > 500")
    assert result.server_time > 0
    assert result.result_bytes > 0
    assert result.client_time > 0
