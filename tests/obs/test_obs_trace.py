"""Unit tests for :mod:`repro.obs.trace`: span nesting, the ambient
contextvars parent, cross-process context helpers, the kill switch, and
both exporters."""

from __future__ import annotations

import contextvars
import json
import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    Span,
    Tracer,
    chrome_trace,
    continue_context,
    current_context,
    record_span,
    render_tree,
    span,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs_trace.set_enabled(True)
    obs_trace.get_tracer().clear()
    yield
    obs_trace.set_enabled(True)
    obs_trace.get_tracer().clear()


class TestSpanNesting:
    def test_root_span_has_no_parent(self):
        with span("root") as sp:
            assert sp is not None
            assert sp.parent_id is None
            assert sp.trace_id

    def test_child_parents_under_ambient(self):
        with span("root") as root:
            with span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id

    def test_siblings_share_parent_not_ids(self):
        with span("root") as root:
            with span("a") as a:
                pass
            with span("b") as b:
                pass
        assert a.parent_id == b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_ambient_restored_after_exit(self):
        assert current_context() is None
        with span("root"):
            assert current_context() is not None
        assert current_context() is None

    def test_span_recorded_with_monotonic_bounds(self):
        with span("timed"):
            pass
        (sp,) = obs_trace.get_tracer().spans()
        assert sp.end >= sp.start
        assert sp.duration >= 0.0

    def test_exception_marks_error_and_records(self):
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("no")
        (sp,) = obs_trace.get_tracer().spans()
        assert sp.attributes["error"] is True

    def test_attributes_filtered_to_scalars(self):
        with span("attrs", rows=3, table="sales", secret=b"\x00", blob=[1, 2]) as sp:
            pass
        assert sp.attributes == {"rows": 3, "table": "sales"}

    def test_record_span_children_ambient(self):
        with span("root") as root:
            sp = record_span("measured", 1.0, 2.0, tasks=4)
        assert sp.parent_id == root.span_id
        assert sp.duration == 1.0
        assert sp.attributes == {"tasks": 4}

    def test_record_span_without_ambient_is_fresh_root(self):
        sp = record_span("orphan", 0.0, 1.0)
        assert sp.parent_id is None
        assert sp.trace_id


class TestKillSwitch:
    def test_disabled_span_yields_none_and_records_nothing(self):
        obs_trace.set_enabled(False)
        with span("off") as sp:
            assert sp is None
        assert record_span("off", 0.0, 1.0) is None
        assert len(obs_trace.get_tracer()) == 0

    def test_package_switch_toggles_trace_and_metrics(self):
        import repro.obs
        from repro.obs import metrics as obs_metrics

        repro.obs.set_enabled(False)
        try:
            assert not obs_trace.enabled()
            assert not obs_metrics.enabled()
        finally:
            repro.obs.set_enabled(True)
        assert obs_trace.enabled() and obs_metrics.enabled()


class TestContextPropagation:
    def test_current_context_roundtrip(self):
        with span("root") as root:
            ctx = current_context()
        assert ctx == {"trace_id": root.trace_id, "span_id": root.span_id}

    def test_continue_context_adopts_remote_parent(self):
        ctx = {"trace_id": "t" * 16, "span_id": "abc.1"}
        with continue_context(ctx):
            with span("remote-child") as sp:
                assert sp.trace_id == ctx["trace_id"]
                assert sp.parent_id == ctx["span_id"]
        assert current_context() is None

    @pytest.mark.parametrize("ctx", [None, {}, {"trace_id": 7}, "bogus", {"span_id": "x"}])
    def test_continue_context_tolerates_garbage(self, ctx):
        with continue_context(ctx):
            with span("local") as sp:
                assert sp.parent_id is None  # degraded to a local root

    def test_context_crosses_copied_threads_only(self):
        seen = {}

        def worker(label):
            seen[label] = current_context()

        with span("root") as root:
            ctx = contextvars.copy_context()
            t1 = threading.Thread(target=ctx.run, args=(worker, "copied"))
            t2 = threading.Thread(target=worker, args=("plain",))
            t1.start(), t2.start()
            t1.join(), t2.join()
        assert seen["copied"]["span_id"] == root.span_id
        assert seen["plain"] is None


class TestTracer:
    def test_bounded_capacity(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.record(Span(name=f"s{i}", trace_id="t", span_id=str(i)))
        assert len(tr) == 4
        assert [s.name for s in tr.spans()] == ["s6", "s7", "s8", "s9"]

    def test_spans_filter_and_limit(self):
        tr = Tracer()
        for i in range(6):
            tr.record(Span(name=f"s{i}", trace_id="a" if i % 2 else "b", span_id=str(i)))
        assert len(tr.spans(trace_id="a")) == 3
        assert [s.name for s in tr.spans(trace_id="a", limit=2)] == ["s3", "s5"]

    def test_take_drains_only_matching(self):
        tr = Tracer()
        tr.record(Span(name="mine", trace_id="a", span_id="1"))
        tr.record(Span(name="other", trace_id="b", span_id="2"))
        out = tr.take("a")
        assert [s.name for s in out] == ["mine"]
        assert [s.name for s in tr.spans()] == ["other"]
        assert tr.take("a") == []

    def test_ingest_skips_malformed(self):
        tr = Tracer()
        good = Span(name="ok", trace_id="t", span_id="1").to_dict()
        assert tr.ingest([good, {"name": "no-ids"}, "junk", None]) == 1
        assert [s.name for s in tr.spans()] == ["ok"]

    def test_ingest_tolerates_none_payload(self):
        assert Tracer().ingest(None) == 0

    def test_span_dict_roundtrip(self):
        sp = Span(name="n", trace_id="t", span_id="s", parent_id="p",
                  start=1.5, end=2.0, attributes={"rows": 2}, process="svc", pid=42)
        assert Span.from_dict(json.loads(json.dumps(sp.to_dict()))) == sp


class TestExporters:
    def _trace(self):
        with span("root", table="sales"):
            with span("child", rows=7):
                pass
        return obs_trace.get_tracer().spans()

    def test_chrome_trace_shape(self):
        doc = chrome_trace(self._trace())
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(metas) == 1 and metas[0]["name"] == "process_name"
        assert {e["name"] for e in xs} == {"root", "child"}
        child = next(e for e in xs if e["name"] == "child")
        assert child["args"]["rows"] == 7
        assert child["args"]["parent_id"]
        assert child["dur"] >= 0
        json.dumps(doc)  # must be serialisable as-is

    def test_render_tree_indents_children(self):
        text = render_tree(self._trace())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "rows=7" in lines[1]

    def test_render_tree_orphan_parent_renders_as_root(self):
        spans = [Span(name="child", trace_id="t", span_id="c", parent_id="never-arrived",
                      start=0.0, end=1.0)]
        assert render_tree(spans).startswith("child")


class TestProcessLabel:
    def test_default_label_is_pid(self, monkeypatch):
        monkeypatch.setattr(obs_trace, "_PROCESS_LABEL", None)
        assert obs_trace.process_label().startswith("pid-")

    def test_set_label_applies_to_new_spans(self, monkeypatch):
        monkeypatch.setattr(obs_trace, "_PROCESS_LABEL", None)
        obs_trace.set_process_label("shard-node-9")
        try:
            with span("labelled") as sp:
                pass
            assert sp.process == "shard-node-9"
        finally:
            monkeypatch.setattr(obs_trace, "_PROCESS_LABEL", None)
