"""Unit tests for :mod:`repro.obs.metrics`, the scoped ``OPS`` handle,
and the structured event logger."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.ops import DEFAULT_OPS, OPS, OpCounter, scoped


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestPrimitives:
    def test_counter_labels_accumulate(self, reg):
        c = reg.counter("reqs", labelnames=("op",))
        c.inc(op="query")
        c.inc(2.0, op="query")
        c.inc(op="scan")
        assert c.value(op="query") == 3.0
        assert c.value(op="scan") == 1.0
        assert c.total() == 4.0

    def test_gauge_set_and_inc(self, reg):
        g = reg.gauge("depth")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3.0

    def test_histogram_buckets_and_sum(self, reg):
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())

    def test_disabled_updates_are_dropped(self, reg):
        c = reg.counter("c")
        g = reg.gauge("g")
        h = reg.histogram("h")
        obs_metrics.set_enabled(False)
        try:
            c.inc()
            g.set(9)
            h.observe(1.0)
        finally:
            obs_metrics.set_enabled(True)
        assert c.total() == 0.0
        assert g.value() == 0.0
        assert h.count() == 0


class TestRegistry:
    def test_get_or_create_returns_same_object(self, reg):
        assert reg.counter("x", labelnames=("a",)) is reg.counter("x", labelnames=("a",))

    def test_kind_conflict_raises(self, reg):
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_labelnames_conflict_raises(self, reg):
        reg.counter("x", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("x", labelnames=("b",))

    def test_clear_drops_everything(self, reg):
        reg.counter("x").inc()
        reg.clear()
        assert reg.metrics() == []


def _parse_prometheus(text):
    """name{labels} -> float for every sample line."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self, reg):
        reg.counter("hits", "Cache hits.", labelnames=("op",)).inc(3, op="plan")
        reg.gauge("depth").set(2.5)
        text = reg.prometheus()
        assert "# HELP hits Cache hits." in text
        assert "# TYPE hits counter" in text
        samples = _parse_prometheus(text)
        assert samples['hits{op="plan"}'] == 3
        assert samples["depth"] == 2.5

    def test_histogram_cumulative_buckets(self, reg):
        h = reg.histogram("lat", labelnames=("op",), buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v, op="q")
        samples = _parse_prometheus(reg.prometheus())
        assert samples['lat_bucket{op="q",le="0.1"}'] == 1
        assert samples['lat_bucket{op="q",le="1"}'] == 2
        assert samples['lat_bucket{op="q",le="+Inf"}'] == 3
        assert samples['lat_count{op="q"}'] == 3
        assert samples['lat_sum{op="q"}'] == pytest.approx(5.55)

    def test_empty_label_values_are_omitted(self, reg):
        reg.counter("c", labelnames=("table", "tenant")).inc(table="sales")
        samples = _parse_prometheus(reg.prometheus())
        assert samples['c{table="sales"}'] == 1

    def test_unlabelled_counter_exports_zero(self, reg):
        reg.counter("zero")
        assert _parse_prometheus(reg.prometheus())["zero"] == 0

    def test_snapshot_is_json_roundtrippable(self, reg):
        reg.counter("c", labelnames=("op",)).inc(op="a")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c"]["values"]['{"op": "a"}'] == 1.0
        assert snap["h"]["values"]["{}"]["count"] == 1


class _FakeJob:
    """Duck-typed stand-in for JobMetrics."""

    total_time = 0.5
    server_time = 0.3
    client_time = 0.1
    network_time = 0.05
    queue_wait = 0.01
    wire_time = 0.02
    partitions_total = 8
    partitions_skipped = 5
    shards_total = 4
    shards_skipped = 1
    failovers = 1
    result_bytes = 1024


class TestObserveJob:
    def test_phases_and_counters_land(self, monkeypatch):
        reg = MetricsRegistry()
        monkeypatch.setattr(obs_metrics, "_REGISTRY", reg)
        obs_metrics.observe_job(_FakeJob(), table="sales", transport="Local")
        samples = _parse_prometheus(reg.prometheus())
        for phase in ("total", "server", "client", "network", "queue_wait", "wire"):
            key = (f'seabed_query_seconds_count{{phase="{phase}",table="sales",'
                   f'transport="Local"}}')
            assert samples[key] == 1, key
        assert samples['seabed_partitions_skipped_total{table="sales"}'] == 5
        assert samples['seabed_failovers_total{table="sales"}'] == 1
        assert samples['seabed_result_bytes_total{table="sales"}'] == 1024

    def test_none_job_and_disabled_are_noops(self, monkeypatch):
        reg = MetricsRegistry()
        monkeypatch.setattr(obs_metrics, "_REGISTRY", reg)
        obs_metrics.observe_job(None)
        obs_metrics.set_enabled(False)
        try:
            obs_metrics.observe_job(_FakeJob())
        finally:
            obs_metrics.set_enabled(True)
        assert reg.metrics() == []


class TestScopedOps:
    def test_scoped_isolates_from_default(self):
        before = DEFAULT_OPS.snapshot()
        with scoped() as mine:
            OPS.bump("translate")
            assert mine.get("translate") == 1
        assert DEFAULT_OPS.delta(before) == {}

    def test_default_receives_bumps_outside_scope(self):
        before = DEFAULT_OPS.snapshot()
        OPS.bump("test-op-outside", 2)
        assert DEFAULT_OPS.delta(before) == {"test-op-outside": 2}

    def test_scopes_nest(self):
        with scoped() as outer:
            OPS.bump("a")
            with scoped() as inner:
                OPS.bump("b")
            OPS.bump("a")
        assert outer.snapshot() == {"a": 2}
        assert inner.snapshot() == {"b": 1}

    def test_caller_supplied_counter(self):
        counter = OpCounter()
        with scoped(counter) as active:
            assert active is counter
            OPS.bump("x", 3)
        assert counter.get("x") == 3

    def test_bumps_mirror_into_metrics_registry(self):
        c = obs_metrics.get_registry().counter("seabed_client_ops_total",
                                               labelnames=("op",))
        before = c.value(op="mirror-test")
        with scoped():
            OPS.bump("mirror-test")
        assert c.value(op="mirror-test") == before + 1


class TestLogEvent:
    def test_event_renders_sorted_fields(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            obs_log.log_event("slow_query", level=logging.WARNING,
                              table="sales", server_s=1.23456789, rows=10)
        (record,) = caplog.records
        assert record.message == "slow_query rows=10 server_s=1.23457 table=sales"
        assert record.event == "slow_query"
        assert record.fields["table"] == "sales"

    def test_disabled_level_skips_formatting(self, caplog):
        logger = obs_log.get_logger("quiet")
        logger.setLevel(logging.ERROR)
        with caplog.at_level(logging.ERROR, logger="repro.obs.quiet"):
            obs_log.log_event("noise", level=logging.DEBUG, logger=logger)
        assert caplog.records == []

    def test_child_logger_name(self):
        assert obs_log.get_logger("slow").name == "repro.obs.slow"
        assert obs_log.get_logger().name == "repro.obs"
