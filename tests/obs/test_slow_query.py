"""The slow-query log: queries whose simulated server time crosses
``ClusterConfig.slow_query_s`` emit one structured ``slow_query`` event
on the ``repro.obs.slow`` logger and bump the slow-query counter."""

from __future__ import annotations

import logging

import pytest

from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.errors import ExecutionError
from repro.obs import metrics as obs_metrics

KEY = b"s" * 32

SCHEMA = TableSchema("sales", [
    ColumnSpec("region", dtype="str", sensitive=True),
    ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
])
SAMPLES = ["SELECT sum(amount) FROM sales WHERE region = 'rio'"]
QUERY = "SELECT sum(amount) FROM sales"


def _session(**config):
    session = SeabedSession(
        master_key=KEY, seed=4, cluster=SimulatedCluster(ClusterConfig(**config))
    )
    session.create_plan(SCHEMA, SAMPLES)
    session.upload("sales", {
        "region": ["rio", "ber", "rio", "tok"] * 25,
        "amount": list(range(100)),
    })
    return session


class TestSlowQueryLog:
    def test_crossing_threshold_logs_and_counts(self, caplog):
        counter = obs_metrics.get_registry().counter(
            "seabed_slow_queries_total", labelnames=("table",)
        )
        before = counter.value(table="sales")
        session = _session(slow_query_s=0.0)  # everything is slow
        with caplog.at_level(logging.WARNING, logger="repro.obs.slow"):
            session.query(QUERY)
        events = [r for r in caplog.records if r.event == "slow_query"]
        assert events, "no slow_query event emitted"
        record = events[0]
        assert record.fields["table"] == "sales"
        assert record.fields["server_s"] >= 0.0
        assert record.fields["threshold_s"] == 0.0
        assert "grouped" in record.fields and "filtered" in record.fields
        # Operational fields only -- no plaintext or key material.
        assert not any(k in record.fields for k in ("rows", "values", "key"))
        assert counter.value(table="sales") > before
        session.close()

    def test_below_threshold_stays_quiet(self, caplog):
        session = _session(slow_query_s=1e9)
        with caplog.at_level(logging.WARNING, logger="repro.obs.slow"):
            session.query(QUERY)
        assert not [r for r in caplog.records
                    if getattr(r, "event", None) == "slow_query"]
        session.close()

    def test_default_config_disables_the_log(self, caplog):
        session = _session()  # slow_query_s defaults to None
        with caplog.at_level(logging.WARNING, logger="repro.obs.slow"):
            session.query(QUERY)
        assert not [r for r in caplog.records
                    if getattr(r, "event", None) == "slow_query"]
        session.close()

    def test_negative_threshold_rejected(self):
        with pytest.raises(ExecutionError, match="slow_query_s"):
            ClusterConfig(slow_query_s=-0.1)
