"""Tests for the frequency attack (repro.attacks.frequency) -- and the
SPLASHE defence, the paper's core security claim."""

import numpy as np
import pytest

from repro.attacks.frequency import frequency_attack, uniformity_chi2
from repro.core import splashe
from repro.crypto.det import DetScheme
from repro.errors import SeabedError

KEY = b"0123456789abcdef0123456789abcdef"


def skewed_column(rng, dist: dict[str, float], rows: int) -> np.ndarray:
    values = list(dist)
    probs = np.array([dist[v] for v in values])
    return rng.choice(values, rows, p=probs / probs.sum())


class TestAttackOnDet:
    """Naveed-style attack succeeds against plain DET (paper Section 3.3)."""

    @pytest.mark.parametrize("method", ["sort", "optimal"])
    def test_recovers_skewed_column(self, method):
        rng = np.random.default_rng(0)
        dist = {"us": 0.55, "ca": 0.25, "in": 0.12, "uk": 0.06, "de": 0.02}
        plain = skewed_column(rng, dist, 5000)
        det = DetScheme(KEY)
        codes = {v: i for i, v in enumerate(dist)}
        cipher = det.encrypt_column(np.array([codes[v] for v in plain]))
        true_map = {det.encrypt_one(codes[v]): v for v in dist}
        result = frequency_attack(cipher, dist, true_mapping=true_map, method=method)
        assert result.value_accuracy == 1.0
        assert result.row_accuracy == 1.0

    def test_gender_example_from_paper(self):
        """Section 1: a two-value gender column falls immediately."""
        rng = np.random.default_rng(1)
        plain = skewed_column(rng, {"m": 0.7, "f": 0.3}, 1000)
        det = DetScheme(KEY)
        cipher = det.encrypt_column(np.array([0 if v == "m" else 1 for v in plain]))
        true_map = {det.encrypt_one(0): "m", det.encrypt_one(1): "f"}
        result = frequency_attack(cipher, {"m": 0.7, "f": 0.3}, true_mapping=true_map)
        assert result.value_accuracy == 1.0


class TestSplasheDefence:
    """The same attack is at chance against the balanced DET column."""

    def test_balanced_column_defeats_attack(self):
        np_rng = np.random.default_rng(3)
        # Distribution over 6 values: 0 and 1 frequent, 2..5 skewed among
        # themselves -- exactly the case a frequency attacker exploits.
        codes = np.concatenate([
            np.zeros(400, dtype=np.int64),
            np.ones(350, dtype=np.int64),
            np.full(120, 2), np.full(80, 3), np.full(40, 4), np.full(10, 5),
        ])
        np_rng.shuffle(codes)
        balanced = splashe.balance_det_codes(codes, [0, 1], 6, np_rng)
        det = DetScheme(KEY)
        cipher = det.encrypt_column(balanced)
        true_map = {det.encrypt_one(c): c for c in range(6)}
        aux = {2: 120, 3: 80, 4: 40, 5: 10}  # attacker's auxiliary knowledge
        result = frequency_attack(cipher, aux, true_mapping=true_map)
        # All infrequent ciphertext frequencies are equal (+-1): matching by
        # rank carries no information, so accuracy is ~1/4 (chance).
        assert result.value_accuracy <= 0.5

    def test_balanced_histogram_is_uniform(self):
        np_rng = np.random.default_rng(4)
        codes = np.concatenate([
            np.zeros(500, dtype=np.int64),
            np_rng.integers(1, 5, 120),
        ])
        np_rng.shuffle(codes)
        balanced = splashe.balance_det_codes(codes, [0], 5, np_rng)
        p_value = uniformity_chi2(balanced)
        assert p_value > 0.9  # counts within +-1 of each other

    def test_raw_det_histogram_is_not_uniform(self):
        np_rng = np.random.default_rng(5)
        codes = np.concatenate([
            np.zeros(500, dtype=np.int64),
            np_rng.integers(1, 5, 120),
        ])
        assert uniformity_chi2(codes) < 1e-6


class TestValidation:
    def test_empty_column_rejected(self):
        with pytest.raises(SeabedError, match="empty"):
            frequency_attack([], {"a": 1.0})

    def test_unknown_method_rejected(self):
        with pytest.raises(SeabedError, match="unknown attack method"):
            frequency_attack([1], {"a": 1.0}, method="guess")

    def test_no_truth_gives_zero_scores(self):
        result = frequency_attack([1, 1, 2], {"a": 2, "b": 1})
        assert result.value_accuracy == 0.0
        assert result.guesses  # guesses still produced

    def test_single_value_uniformity(self):
        assert uniformity_chi2([5, 5, 5]) == 1.0
