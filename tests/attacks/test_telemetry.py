"""The telemetry leakage audit: clean exports pass, secrets are flagged."""

from __future__ import annotations

import pytest

from repro.attacks.telemetry import audit_telemetry
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs_trace.get_tracer().clear()
    yield
    obs_trace.get_tracer().clear()


def _span(**attrs):
    return Span(name="op", trace_id="t", span_id="1", attributes=attrs)


class TestCleanExports:
    def test_empty_inputs_are_ok(self):
        result = audit_telemetry()
        assert result.ok
        assert result.spans_checked == 0 and result.labels_checked == 0

    def test_sizes_counts_timings_pass(self):
        result = audit_telemetry([
            _span(rows=100, result_bytes=4096, server_s=0.25, table="sales"),
            _span(tasks=4, makespan_s=0.003, error=True),
        ])
        assert result.ok, result.violations
        assert result.spans_checked == 2

    def test_live_trace_and_metrics_pass(self):
        with obs_trace.span("query:aggregate", table="sales", rows=10):
            pass
        reg = MetricsRegistry()
        reg.counter("seabed_client_ops_total", labelnames=("op",)).inc(op="plan")
        reg.histogram("seabed_query_seconds",
                      labelnames=("phase", "table")).observe(0.1, phase="total",
                                                            table="sales")
        result = audit_telemetry(obs_trace.get_tracer().spans(), reg.prometheus())
        assert result.ok, result.violations
        assert result.labels_checked > 0

    def test_span_dicts_accepted(self):
        result = audit_telemetry([_span(rows=1).to_dict()])
        assert result.ok


class TestViolations:
    def test_raw_bytes_flagged(self):
        result = audit_telemetry([_span(ciphertext=b"\x01" * 32)])
        assert not result.ok
        assert "raw bytes" in result.violations[0]

    def test_overlong_string_flagged(self):
        result = audit_telemetry([_span(note="x" * 65)])
        assert not result.ok
        assert "overlong" in result.violations[0]

    def test_hexlike_key_material_flagged(self):
        leaked = "deadbeef" * 4  # 32 hex chars, key-sized
        result = audit_telemetry([_span(blob=leaked)])
        assert not result.ok
        assert "high-entropy" in result.violations[0]

    def test_forbidden_keys_flagged_regardless_of_value(self):
        for key in ("token", "master_key", "plaintext"):
            result = audit_telemetry([_span(**{key: "short"})])
            assert not result.ok, key

    def test_secret_label_value_flagged(self):
        text = 'seabed_bad_total{token="deadbeefdeadbeefdeadbeefdeadbeef"} 1\n'
        result = audit_telemetry(prometheus_text=text)
        assert not result.ok

    def test_trace_ids_are_exempt(self):
        sp = Span(name="op", trace_id="a" * 16, span_id="1",
                  attributes={"trace_id": "ab" * 20, "span_id": "cd" * 20})
        assert audit_telemetry([sp]).ok

    def test_summary_reports_counts(self):
        result = audit_telemetry([_span(rows=1)])
        assert "1 spans" in result.summary() and "ok" in result.summary()
        bad = audit_telemetry([_span(secret="x")])
        assert "violation" in bad.summary()
