"""Leakage audit of zone-map artifacts (satellite of the frequency
attacks): everything the index publishes must be recomputable by a
keyless server from the ciphertext columns it already stores.
"""

import numpy as np
import pytest

from repro.attacks.frequency import audit_zone_maps
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession

MASTER_KEY = b"audit-zone-maps-master-key-32byt"
COUNTRIES = ["us", "ca", "in", "uk", "de"]


@pytest.fixture(scope="module")
def stored_session(tmp_path_factory):
    rng = np.random.default_rng(11)
    n = 600
    data = {
        "country": rng.choice(COUNTRIES, n, p=[0.5, 0.2, 0.15, 0.1, 0.05]),
        "amount": rng.integers(0, 5000, n).astype(np.int64),
        "user": np.sort(rng.integers(0, 40, n)).astype(np.int64),
        "year": rng.integers(2013, 2017, n).astype(np.int64),
    }
    schema = TableSchema("sales", [
        ColumnSpec("country", dtype="str", sensitive=True,
                   distinct_values=COUNTRIES,
                   value_counts={c: int((data["country"] == c).sum())
                                 for c in COUNTRIES}),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("user", dtype="int", sensitive=True),
        ColumnSpec("year", dtype="int", sensitive=False),
    ])
    session = SeabedSession(mode="seabed", master_key=MASTER_KEY, seed=4)
    session.create_plan(schema, [
        "SELECT sum(amount) FROM sales WHERE country = 'us'",
        "SELECT sum(amount), min(amount), max(amount) FROM sales WHERE amount > 5",
        "SELECT sum(amount) FROM sales WHERE user = 3",
    ])
    session.upload("sales", data, num_partitions=6)
    session.save_table(
        "sales", str(tmp_path_factory.mktemp("audit") / "sales")
    )
    return session


def _table_and_meta(session):
    table = session.server.table("sales")
    meta = session._column_meta(session.table_state("sales"))
    return table, meta


def test_real_store_passes_the_audit(stored_session):
    table, meta = _table_and_meta(stored_session)
    result = audit_zone_maps(table, meta)
    assert result.ok, result.violations
    assert result.partitions_checked == table.num_partitions
    assert result.artifacts_checked > 0
    assert "ok" in result.summary()


def test_manifest_enc_meta_names_real_schemes(stored_session):
    """The manifest records per-physical schemes (not plan kinds), so the
    ORE companion of the ASHE measure is auditable as ORE."""
    _, meta = _table_and_meta(stored_session)
    assert meta["amount__ore"] == "ore"
    assert meta["user__det"] == "det"
    assert meta["amount__ashe"] == "ashe"
    assert meta["year"] == "plain"


def test_plaintext_derived_token_is_flagged(stored_session):
    """A token that never appears in the stored column can only come from
    plaintext knowledge -- the audit must refuse it."""
    table, meta = _table_and_meta(stored_session)
    doctored = [dict(z, columns=dict(z["columns"])) for z in table.zone_maps]
    col = dict(doctored[0]["columns"]["user__det"])
    col["tokens"] = sorted(col["tokens"] + [123456789])
    doctored[0]["columns"]["user__det"] = col
    backup, table.zone_maps = table.zone_maps, doctored
    try:
        result = audit_zone_maps(table, meta)
        assert not result.ok
        assert any("not recomputable" in v for v in result.violations)
    finally:
        table.zone_maps = backup


def test_foreign_ore_bound_is_flagged(stored_session):
    table, meta = _table_and_meta(stored_session)
    doctored = [dict(z, columns=dict(z["columns"])) for z in table.zone_maps]
    col = dict(doctored[0]["columns"]["amount__ore"])
    col["min"] = [0] * len(col["min"])  # not a stored ciphertext row
    doctored[0]["columns"]["amount__ore"] = col
    backup, table.zone_maps = table.zone_maps, doctored
    try:
        result = audit_zone_maps(table, meta)
        assert not result.ok
        assert any("amount__ore" in v for v in result.violations)
    finally:
        table.zone_maps = backup


def test_artifact_on_semantically_secure_column_is_flagged(stored_session):
    """ASHE ciphertexts are semantically secure; *any* published statistic
    on them is treated as leakage even before recomputation."""
    table, meta = _table_and_meta(stored_session)
    doctored = [dict(z, columns=dict(z["columns"])) for z in table.zone_maps]
    doctored[0]["columns"]["amount__ashe"] = {
        "kind": "plain", "min": 0, "max": 10,
    }
    backup, table.zone_maps = table.zone_maps, doctored
    try:
        result = audit_zone_maps(table, meta)
        assert not result.ok
        assert any("semantically secure" in v for v in result.violations)
    finally:
        table.zone_maps = backup


def test_row_count_mismatch_and_phantom_column_flagged(stored_session):
    table, meta = _table_and_meta(stored_session)
    doctored = [dict(z, columns=dict(z["columns"])) for z in table.zone_maps]
    doctored[0]["rows"] = doctored[0]["rows"] + 1
    doctored[1]["columns"]["ghost"] = {"kind": "plain", "min": 0, "max": 1}
    backup, table.zone_maps = table.zone_maps, doctored
    try:
        result = audit_zone_maps(table, meta)
        assert sum("rows" in v for v in result.violations) == 1
        assert any("does not even store" in v for v in result.violations)
    finally:
        table.zone_maps = backup


def test_table_without_zone_maps_audits_clean():
    from repro.engine.table import Table

    table = Table.from_columns(
        "t", {"year": np.arange(4, dtype=np.int64)}, num_partitions=2
    )
    result = audit_zone_maps(table)
    assert result.ok and result.partitions_checked == 0
