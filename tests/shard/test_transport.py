"""Unit tests for the worker transport (repro.engine.transport)."""

import pytest

from repro.engine.transport import RemoteError, WorkerDied, WorkerHandle


def _arith_main(conn, base=0):
    """Module-level worker entry point (picklable for any start method)."""
    from repro.engine import transport

    def add(a, b):
        return base + a + b

    def boom():
        raise ValueError("intentional worker-side failure")

    transport.serve(conn, {"add": add, "boom": boom})


@pytest.fixture
def worker():
    handle = WorkerHandle("test-arith", _arith_main, base=10)
    yield handle
    handle.kill()


class TestCalls:
    def test_roundtrip_with_spawn_kwargs(self, worker):
        assert worker.call("add", a=1, b=2) == 13
        assert worker.alive

    def test_remote_exception_carries_type(self, worker):
        with pytest.raises(RemoteError, match="intentional") as exc_info:
            worker.call("boom")
        assert exc_info.value.remote_type == "ValueError"
        # The worker survives its handler's exception.
        assert worker.call("add", a=0, b=0) == 10

    def test_unknown_method_is_remote_error(self, worker):
        with pytest.raises(RemoteError):
            worker.call("nope")


class TestLifecycle:
    def test_kill_then_call_raises_worker_died(self, worker):
        worker.kill()
        assert not worker.alive
        with pytest.raises(WorkerDied):
            worker.call("add", a=1, b=1)

    def test_shutdown_is_clean(self):
        handle = WorkerHandle("test-shutdown", _arith_main)
        assert handle.call("add", a=2, b=3) == 5
        handle.shutdown()
        assert not handle.alive

    def test_arm_exit_kills_mid_call(self, worker):
        worker.arm_exit("add", after=2)
        assert worker.call("add", a=1, b=1) == 12  # first call survives
        with pytest.raises(WorkerDied):
            worker.call("add", a=1, b=1)  # second dies before replying
        assert not worker.alive
