"""Unit tests for the worker transport (repro.engine.transport)."""

import os

import pytest

from repro.engine.transport import CRASH_STATUS, RemoteError, WorkerDied, WorkerHandle


def _arith_main(conn, base=0):
    """Module-level worker entry point (picklable for any start method)."""
    from repro.engine import transport

    def add(a, b):
        return base + a + b

    def boom():
        raise ValueError("intentional worker-side failure")

    transport.serve(conn, {"add": add, "boom": boom})


def _suicide_main(conn):
    """A worker that dies before serving its first request -- the
    handshake-failure shape: the parent's pipe end is live, the child is
    already gone."""
    os._exit(CRASH_STATUS)


@pytest.fixture
def worker():
    handle = WorkerHandle("test-arith", _arith_main, base=10)
    yield handle
    handle.kill()


class TestCalls:
    def test_roundtrip_with_spawn_kwargs(self, worker):
        assert worker.call("add", a=1, b=2) == 13
        assert worker.alive

    def test_remote_exception_carries_type(self, worker):
        with pytest.raises(RemoteError, match="intentional") as exc_info:
            worker.call("boom")
        assert exc_info.value.remote_type == "ValueError"
        # The worker survives its handler's exception.
        assert worker.call("add", a=0, b=0) == 10

    def test_unknown_method_is_remote_error(self, worker):
        with pytest.raises(RemoteError):
            worker.call("nope")


class TestLifecycle:
    def test_kill_then_call_raises_worker_died(self, worker):
        worker.kill()
        assert not worker.alive
        with pytest.raises(WorkerDied):
            worker.call("add", a=1, b=1)

    def test_shutdown_is_clean(self):
        handle = WorkerHandle("test-shutdown", _arith_main)
        assert handle.call("add", a=2, b=3) == 5
        handle.shutdown()
        assert not handle.alive

    def test_arm_exit_kills_mid_call(self, worker):
        worker.arm_exit("add", after=2)
        assert worker.call("add", a=1, b=1) == 12  # first call survives
        with pytest.raises(WorkerDied):
            worker.call("add", a=1, b=1)  # second dies before replying
        assert not worker.alive


class TestFdHygiene:
    """A worker that dies mid-call must not leak its pipe fds.

    Regression: the ``WorkerDied`` path used to join the child but leave
    the parent-side pipe end open for the handle's lifetime, so a
    coordinator holding handles to dead nodes (it keeps them for the
    failover bookkeeping) accumulated one fd pair per death."""

    @staticmethod
    def _open_fds() -> int:
        return len(os.listdir("/proc/self/fd"))

    def test_handshake_death_releases_pipe_fds(self):
        # Warm up multiprocessing's lazily created machinery (semaphore
        # tracker, resource tracker fds) so the baseline is stable.
        warmup = WorkerHandle("fd-warmup", _arith_main)
        warmup.call("add", a=1, b=1)
        warmup.shutdown()
        baseline = self._open_fds()
        handles = []
        for i in range(5):
            handle = WorkerHandle(f"fd-suicide-{i}", _suicide_main)
            with pytest.raises(WorkerDied):
                handle.call("add", a=1, b=1)
            assert not handle.alive
            handles.append(handle)  # keep referenced, as a coordinator would
        assert self._open_fds() <= baseline

    def test_mid_call_death_releases_pipe_fds(self):
        warmup = WorkerHandle("fd-warmup-2", _arith_main)
        warmup.call("add", a=1, b=1)
        warmup.shutdown()
        baseline = self._open_fds()
        handles = []
        for i in range(3):
            handle = WorkerHandle(f"fd-armed-{i}", _arith_main)
            handle.arm_exit("add", after=1)
            with pytest.raises(WorkerDied):
                handle.call("add", a=1, b=1)
            handles.append(handle)
        assert self._open_fds() <= baseline

    def test_double_kill_and_call_after_kill_stay_typed(self):
        handle = WorkerHandle("fd-double-kill", _arith_main)
        handle.kill()
        handle.kill()  # idempotent on a released handle
        assert not handle.alive
        with pytest.raises(WorkerDied):
            handle.call("add", a=1, b=1)
