"""Property tests for the consistent-hash ring (repro.shard.ring).

The three properties the sharded tier leans on, pinned with hypothesis:
balance (vnode smoothing keeps member loads comparable), minimal key
movement (growing or shrinking the member set only moves keys touching
the changed member's arcs), and deterministic replica placement (two
rings built from the same topology agree on every chain).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.shard.ring import HashRing, hash_key

KEYS = np.arange(5_000, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)


def loads(ring: HashRing, keys: np.ndarray) -> dict[int, int]:
    idx = ring.owners(keys)
    return {m: int((idx == i).sum()) for i, m in enumerate(ring.members)}


class TestValidation:
    def test_empty_members_rejected(self):
        with pytest.raises(ExecutionError, match="at least one member"):
            HashRing([])

    def test_duplicate_members_rejected(self):
        with pytest.raises(ExecutionError, match="duplicate"):
            HashRing([0, 1, 1])

    def test_nonpositive_vnodes_rejected(self):
        with pytest.raises(ExecutionError, match="vnodes"):
            HashRing([0, 1], vnodes=0)

    def test_replicas_bounds(self):
        with pytest.raises(ExecutionError, match="replicas"):
            HashRing([0, 1], replicas=3)
        with pytest.raises(ExecutionError, match="replicas"):
            HashRing([0, 1], replicas=0)

    def test_unknown_member_chain(self):
        with pytest.raises(ExecutionError, match="not a ring member"):
            HashRing([0, 1]).replica_chain(7)


class TestRouting:
    def test_owner_matches_vectorised_owners(self):
        ring = HashRing(list(range(5)), vnodes=32)
        idx = ring.owners(KEYS[:512])
        for key, i in zip(KEYS[:512].tolist(), idx.tolist()):
            assert ring.owner(key) == ring.members[i]

    def test_hash_key_is_a_permutation_step(self):
        # Distinct inputs keep distinct mixes (splitmix64 is bijective).
        mixed = {hash_key(k) for k in range(2_000)}
        assert len(mixed) == 2_000

    def test_rebuilt_ring_routes_identically(self):
        a = HashRing(list(range(6)), vnodes=48, replicas=2)
        b = HashRing(list(range(6)), vnodes=48, replicas=2)
        assert np.array_equal(a.owners(KEYS), b.owners(KEYS))


@given(members=st.integers(min_value=2, max_value=12))
@settings(max_examples=12, deadline=None)
def test_balance_within_bound(members):
    """Vnode smoothing: no member owns more than ~3x its fair share of a
    large uniform key set (and every member owns something)."""
    ring = HashRing(list(range(members)), vnodes=64)
    counts = loads(ring, KEYS)
    fair = len(KEYS) / members
    assert all(c > 0 for c in counts.values())
    assert max(counts.values()) <= 3.0 * fair


@given(members=st.integers(min_value=1, max_value=10))
@settings(max_examples=10, deadline=None)
def test_adding_a_member_only_moves_keys_to_it(members):
    """Minimal movement, exactly: when member N joins, every key either
    keeps its owner or moves to N -- never between survivors."""
    before = HashRing(list(range(members)), vnodes=32)
    after = HashRing(list(range(members + 1)), vnodes=32)
    owners_before = before.owners(KEYS)
    owners_after = after.owners(KEYS)
    moved = owners_before != owners_after
    assert np.all(owners_after[moved] == members)
    if members >= 2:  # with 32 vnodes the newcomer always lands some arc
        assert moved.any()


@given(members=st.integers(min_value=2, max_value=10))
@settings(max_examples=10, deadline=None)
def test_removing_a_member_only_moves_its_keys(members):
    """The inverse direction: dropping the last member reassigns only
    the keys it owned; everyone else's keys stay put."""
    big = HashRing(list(range(members)), vnodes=32)
    small = HashRing(list(range(members - 1)), vnodes=32)
    owners_big = big.owners(KEYS)
    owners_small = small.owners(KEYS)
    kept = owners_big != members - 1
    assert np.array_equal(owners_big[kept], owners_small[kept])


@given(
    members=st.integers(min_value=2, max_value=10),
    replicas=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_replica_chains_deterministic_and_distinct(members, replicas):
    replicas = min(replicas, members)
    a = HashRing(list(range(members)), vnodes=16, replicas=replicas)
    b = HashRing(list(range(members)), vnodes=16, replicas=replicas)
    for m in a.members:
        chain = a.replica_chain(m)
        assert chain == b.replica_chain(m)
        assert chain[0] == m  # the member is its own primary
        assert len(chain) == replicas
        assert len(set(chain)) == replicas  # R *distinct* nodes

    def coverage(ring):
        hosted = {m: 0 for m in ring.members}
        for m in ring.members:
            for node in ring.replica_chain(m):
                hosted[node] += 1
        return hosted

    # Chains walk one shared circle, so hosting duty is exactly R each.
    assert all(n == replicas for n in coverage(a).values())


def test_preference_is_owner_chain():
    ring = HashRing(list(range(4)), vnodes=32, replicas=3)
    for key in KEYS[:64].tolist():
        assert ring.preference(key) == ring.replica_chain(ring.owner(key))
