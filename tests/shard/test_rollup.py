"""Unit tests for shard-level zone-map rollups (repro.index.rollup)."""

import numpy as np

from repro.crypto.ore import OreScheme
from repro.index.bloom import BloomFilter
from repro.index.prune import may_match
from repro.index.rollup import rollup_zone_maps
from repro.index.zonemap import TOKEN_SET_MAX


_ORE = OreScheme(b"r" * 32, nbits=16)


def ore_words(value):
    return list(_ORE.encrypt_one(value))


def stats(rows, columns):
    return {"rows": rows, "nulls": 0, "columns": columns}


class TestMerging:
    def test_ore_envelope_widens(self):
        parts = [
            stats(10, {"c": {"kind": "ore", "min": ore_words(5),
                             "max": ore_words(20)}}),
            stats(10, {"c": {"kind": "ore", "min": ore_words(1),
                             "max": ore_words(9)}}),
        ]
        merged = rollup_zone_maps(parts)
        assert merged["rows"] == 20
        col = merged["columns"]["c"]
        assert tuple(col["min"]) == tuple(ore_words(1))
        assert tuple(col["max"]) == tuple(ore_words(20))

    def test_plain_envelope_widens(self):
        parts = [
            stats(5, {"p": {"kind": "plain", "min": -3, "max": 7}}),
            stats(5, {"p": {"kind": "plain", "min": 0, "max": 40}}),
        ]
        col = rollup_zone_maps(parts)["columns"]["p"]
        assert (col["min"], col["max"]) == (-3, 40)

    def test_det_tokens_union_exactly(self):
        parts = [
            stats(4, {"d": {"kind": "det", "tokens": [1, 2]}}),
            stats(4, {"d": {"kind": "det", "tokens": [2, 9]}}),
        ]
        col = rollup_zone_maps(parts)["columns"]["d"]
        assert col["tokens"] == [1, 2, 9]

    def test_det_union_past_cap_degrades_to_bloom(self):
        a = list(range(TOKEN_SET_MAX))
        b = list(range(TOKEN_SET_MAX, TOKEN_SET_MAX + 10))
        parts = [
            stats(9, {"d": {"kind": "det", "tokens": a}}),
            stats(9, {"d": {"kind": "det", "tokens": b}}),
        ]
        col = rollup_zone_maps(parts)["columns"]["d"]
        assert "tokens" not in col and "bloom" in col
        bloom = BloomFilter.from_dict(col["bloom"])
        # No false negatives over the union.
        assert all(bloom.might_contain(t) for t in a + b)

    def test_bloom_only_partition_drops_the_column(self):
        bloom = BloomFilter.for_capacity(4)
        bloom.add_tokens(np.asarray([1, 2], dtype=np.uint64))
        parts = [
            stats(4, {"d": {"kind": "det", "tokens": [1, 2]}}),
            stats(4, {"d": {"kind": "det", "bloom": bloom.to_dict()}}),
        ]
        merged = rollup_zone_maps(parts)
        assert "d" not in merged["columns"]  # cannot union blooms safely


class TestConservatism:
    def test_uncovered_partition_poisons_the_rollup(self):
        parts = [stats(4, {"p": {"kind": "plain", "min": 0, "max": 1}}), None]
        assert rollup_zone_maps(parts) is None

    def test_no_partitions_is_none(self):
        assert rollup_zone_maps([]) is None
        assert rollup_zone_maps(None) is None

    def test_column_missing_in_one_partition_is_dropped(self):
        parts = [
            stats(4, {"p": {"kind": "plain", "min": 0, "max": 1}}),
            stats(4, {}),
        ]
        assert "p" not in rollup_zone_maps(parts)["columns"]

    def test_empty_partitions_do_not_narrow(self):
        parts = [
            stats(0, {}),
            stats(4, {"p": {"kind": "plain", "min": 2, "max": 3}}),
        ]
        col = rollup_zone_maps(parts)["columns"]["p"]
        assert (col["min"], col["max"]) == (2, 3)


class TestPruningIntegration:
    def test_rollup_flows_through_may_match(self):
        from repro.core.server import PlainCmp

        merged = rollup_zone_maps([
            stats(4, {"p": {"kind": "plain", "min": 0, "max": 9}}),
            stats(4, {"p": {"kind": "plain", "min": 20, "max": 30}}),
        ])
        assert may_match(merged, PlainCmp("p", ">", 25))
        assert not may_match(merged, PlainCmp("p", ">", 31))
