"""Pruning planner unit tests: sound skips, conservative keeps.

Every case is phrased against handcrafted zone maps so the soundness
argument is auditable: a partition may be dropped only when the stats
*prove* no row matches (or, under NOT, that every row matches the
negated child).
"""

import numpy as np

from repro.core.server import (
    DetEq,
    DetIn,
    FilterAnd,
    FilterNot,
    FilterOr,
    OreCmp,
    PlainCmp,
)
from repro.crypto.ore import OreScheme
from repro.index.bloom import BloomFilter
from repro.index.prune import all_match, extreme_candidates, may_match, survivors

KEY = b"prune-unit-test-key-abcdefghijkl"
ORE = OreScheme(KEY, nbits=16)


def det_stats(*tokens):
    return {"rows": 4, "nulls": 0,
            "columns": {"c__det": {"kind": "det", "tokens": sorted(tokens)}}}


def bloom_stats(*tokens):
    bloom = BloomFilter.for_capacity(max(len(tokens), 65))
    bloom.add_tokens(np.asarray(tokens, dtype=np.uint64))
    return {"rows": 4, "nulls": 0,
            "columns": {"c__det": {"kind": "det", "bloom": bloom.to_dict()}}}


def ore_stats(lo, hi, column="t__ore"):
    return {"rows": 4, "nulls": 0, "columns": {column: {
        "kind": "ore",
        "min": list(ORE.encrypt_one(lo)),
        "max": list(ORE.encrypt_one(hi)),
    }}}


def plain_stats(lo, hi):
    return {"rows": 4, "nulls": 0,
            "columns": {"year": {"kind": "plain", "min": lo, "max": hi}}}


class TestDetEquality:
    def test_token_set_membership(self):
        assert may_match(det_stats(3, 7), DetEq("c__det", 7))
        assert not may_match(det_stats(3, 7), DetEq("c__det", 8))

    def test_bloom_membership_is_one_sided(self):
        stats = bloom_stats(3, 7)
        assert may_match(stats, DetEq("c__det", 7))  # never a false negative
        # An absent token is *usually* refuted; either answer is sound.
        assert may_match(stats, DetEq("c__det", 7)) in (True,)

    def test_negation_with_exact_sets(self):
        # Constant partition == token: no row satisfies !=.
        assert not may_match(det_stats(7), DetEq("c__det", 7, negate=True))
        assert may_match(det_stats(3, 7), DetEq("c__det", 7, negate=True))
        # all_match duality: token provably absent -> every row satisfies !=.
        assert all_match(det_stats(3, 9), DetEq("c__det", 7, negate=True))
        assert not all_match(det_stats(3, 7), DetEq("c__det", 7, negate=True))

    def test_in_list(self):
        assert may_match(det_stats(3, 7), DetIn("c__det", (1, 7)))
        assert not may_match(det_stats(3, 7), DetIn("c__det", (1, 2)))
        assert all_match(det_stats(3, 7), DetIn("c__det", (3, 7, 9)))
        assert not all_match(det_stats(3, 7), DetIn("c__det", (3,)))

    def test_missing_or_mismatched_stats_keep(self):
        assert may_match(None, DetEq("c__det", 1))
        assert may_match({"rows": 4, "columns": {}}, DetEq("c__det", 1))
        assert may_match(plain_stats(0, 1), DetEq("year", 1))


class TestOreRanges:
    def tok(self, v):
        return OreCmp("t__ore", self.op, ORE.token(v), 16)

    def test_all_six_operators(self):
        stats = ore_stats(10, 20)
        cases = [
            ("<", 10, False), ("<", 11, True),
            ("<=", 9, False), ("<=", 10, True),
            (">", 20, False), (">", 19, True),
            (">=", 21, False), (">=", 20, True),
            ("=", 9, False), ("=", 15, True), ("=", 21, False),
            ("!=", 15, True),
        ]
        for op, value, keep in cases:
            expr = OreCmp("t__ore", op, ORE.token(value), 16)
            assert may_match(stats, expr) is keep, (op, value)

    def test_constant_partition_not_equal(self):
        stats = ore_stats(15, 15)
        assert not may_match(stats, OreCmp("t__ore", "!=", ORE.token(15), 16))
        assert may_match(stats, OreCmp("t__ore", "!=", ORE.token(16), 16))

    def test_all_match_bounds(self):
        stats = ore_stats(10, 20)
        assert all_match(stats, OreCmp("t__ore", "<", ORE.token(21), 16))
        assert not all_match(stats, OreCmp("t__ore", "<", ORE.token(20), 16))
        assert all_match(stats, OreCmp("t__ore", ">=", ORE.token(10), 16))
        assert all_match(stats, OreCmp("t__ore", "!=", ORE.token(9), 16))
        assert not all_match(stats, OreCmp("t__ore", "!=", ORE.token(12), 16))


class TestPlainAndCombinators:
    def test_plain_bounds(self):
        stats = plain_stats(2014, 2016)
        assert not may_match(stats, PlainCmp("year", "=", 2013))
        assert may_match(stats, PlainCmp("year", "=", 2015))
        assert all_match(stats, PlainCmp("year", ">=", 2014))
        assert may_match(stats, PlainCmp("year", "=", "2015"))  # non-int: keep

    def test_and_intersects_or_unions(self):
        stats = plain_stats(2014, 2016)
        lo = PlainCmp("year", ">=", 2015)
        impossible = PlainCmp("year", ">", 2016)
        assert may_match(stats, FilterAnd((lo,)))
        assert not may_match(stats, FilterAnd((lo, impossible)))
        assert may_match(stats, FilterOr((impossible, lo)))
        assert not may_match(stats, FilterOr((impossible, impossible)))

    def test_not_uses_all_match_duality(self):
        stats = plain_stats(2014, 2016)
        assert not may_match(stats, FilterNot(PlainCmp("year", "<=", 2016)))
        assert may_match(stats, FilterNot(PlainCmp("year", "=", 2015)))
        assert all_match(stats, FilterNot(PlainCmp("year", ">", 2016)))

    def test_unknown_nodes_conservative(self):
        class Mystery:
            pass

        stats = plain_stats(0, 1)
        assert may_match(stats, Mystery())
        assert not all_match(stats, Mystery())


class TestSurvivors:
    MAPS = [plain_stats(2013, 2014), plain_stats(2015, 2016), None]

    def test_mask_keeps_uncertain_partitions(self):
        keep = survivors(self.MAPS, PlainCmp("year", "=", 2016))
        assert keep.tolist() == [False, True, True]

    def test_no_filter_or_no_maps_is_none(self):
        assert survivors(self.MAPS, None) is None
        assert survivors(None, PlainCmp("year", "=", 1)) is None
        assert survivors([None, None], PlainCmp("year", "=", 1)) is None


class TestExtremeCandidates:
    def _aggs(self, kind):
        from repro.core.server import OreExtreme

        return (OreExtreme(kind=kind, ore_column="t__ore",
                           payload_column="p", alias="a"),)

    def test_only_winning_partitions_kept(self):
        maps = [ore_stats(10, 20), ore_stats(5, 8), ore_stats(5, 30)]
        assert extreme_candidates(maps, self._aggs("min")).tolist() == [
            False, True, True,
        ]
        assert extreme_candidates(maps, self._aggs("max")).tolist() == [
            False, False, True,
        ]

    def test_min_and_max_union(self):
        maps = [ore_stats(10, 20), ore_stats(5, 8)]
        aggs = self._aggs("min") + self._aggs("max")
        assert extreme_candidates(maps, aggs).tolist() == [True, True]

    def test_missing_bounds_disable_the_shortcut(self):
        maps = [ore_stats(10, 20), None]
        assert extreme_candidates(maps, self._aggs("min")) is None
        assert extreme_candidates(maps, ()) is None

    def test_non_extreme_aggs_disable_the_shortcut(self):
        from repro.core.server import PlainAgg

        maps = [ore_stats(10, 20)]
        aggs = self._aggs("min") + (PlainAgg(column="p", func="sum", alias="s"),)
        assert extreme_candidates(maps, aggs) is None
