"""Zone-map statistics builder: correctness and ciphertext-only inputs."""

import numpy as np

from repro.crypto.ore import OreScheme
from repro.index.bloom import BloomFilter
from repro.index.zonemap import (
    TOKEN_SET_MAX,
    build_partition_stats,
    classify_column,
    stats_summary,
)

KEY = b"zonemap-unit-test-key-0123456789"


def _part(columns):
    from repro.engine.table import Partition

    return Partition(columns=columns, start_id=0)


def _specs(columns, enc=None):
    specs = {}
    for name, arr in columns.items():
        specs[name] = {
            "dtype": {"uint64": "<u8", "int64": "<i8", "float64": "<f8",
                      "bool": "|b1"}[arr.dtype.name],
            "ndim": arr.ndim,
            "width": 1 if arr.ndim == 1 else arr.shape[1],
        }
        if enc and name in enc:
            specs[name]["enc"] = enc[name]
    return specs


class TestOreStats:
    def test_min_max_match_plaintext_order(self):
        ore = OreScheme(KEY, nbits=16)
        values = np.array([500, -3, 42, 999, -3, 17], dtype=np.int64)
        cipher = ore.encrypt_column(values)
        columns = {"v__ore": cipher}
        stats = build_partition_stats(_part(columns), _specs(columns))
        col = stats["columns"]["v__ore"]
        assert col["kind"] == "ore"
        lo_rows = np.flatnonzero(values == values.min())
        hi_rows = np.flatnonzero(values == values.max())
        assert tuple(col["min"]) in {tuple(int(w) for w in cipher[r]) for r in lo_rows}
        assert tuple(col["max"]) in {tuple(int(w) for w in cipher[r]) for r in hi_rows}
        # The public Compare confirms the bounds bracket every row.
        for row in cipher:
            assert OreScheme.compare_words(tuple(col["min"]), tuple(int(w) for w in row)) <= 0
            assert OreScheme.compare_words(tuple(col["max"]), tuple(int(w) for w in row)) >= 0


class TestDetStats:
    def test_small_cardinality_exact_token_set(self):
        tokens = np.array([5, 9, 5, 5, 9, 123], dtype=np.uint64)
        columns = {"c__det": tokens}
        stats = build_partition_stats(_part(columns), _specs(columns))
        assert stats["columns"]["c__det"] == {"kind": "det", "tokens": [5, 9, 123]}

    def test_large_cardinality_bloom(self):
        tokens = np.arange(TOKEN_SET_MAX + 40, dtype=np.uint64) * np.uint64(7919)
        columns = {"c__det": tokens}
        stats = build_partition_stats(_part(columns), _specs(columns))
        col = stats["columns"]["c__det"]
        assert "tokens" not in col and "bloom" in col
        bloom = BloomFilter.from_dict(col["bloom"])
        assert all(bloom.might_contain(int(t)) for t in tokens)

    def test_ashe_ciphertexts_never_indexed(self):
        columns = {
            "m__ashe": np.arange(10, dtype=np.uint64),
            "d@0__ind": np.arange(10, dtype=np.uint64),
        }
        stats = build_partition_stats(
            _part(columns), _specs(columns, enc={"m__ashe": "ashe"})
        )
        assert stats["columns"] == {}


class TestPlainAndShape:
    def test_plain_bounds_and_counts(self):
        columns = {
            "year": np.array([2014, 2016, 2013], dtype=np.int64),
            "flag": np.array([True, False, True]),
        }
        stats = build_partition_stats(_part(columns), _specs(columns))
        assert stats["rows"] == 3 and stats["nulls"] == 0
        assert stats["columns"]["year"] == {"kind": "plain", "min": 2013, "max": 2016}
        assert stats["columns"]["flag"] == {"kind": "plain", "min": 0, "max": 1}

    def test_empty_partition_has_no_column_stats(self):
        columns = {"year": np.empty(0, dtype=np.int64)}
        stats = build_partition_stats(_part(columns), _specs(columns))
        assert stats == {"rows": 0, "nulls": 0, "columns": {}}

    def test_determinism(self):
        """The leakage audit recomputes stats and expects equality."""
        rng = np.random.default_rng(3)
        columns = {
            "u__det": rng.integers(0, 500, 400, dtype=np.uint64),
            "year": rng.integers(2013, 2017, 400).astype(np.int64),
        }
        part = _part(columns)
        specs = _specs(columns)
        assert build_partition_stats(part, specs) == build_partition_stats(part, specs)


class TestClassify:
    def test_structural_rules(self):
        assert classify_column("x__ore", {"dtype": "<u8", "ndim": 2}) == "ore"
        assert classify_column("x__det", {"dtype": "<u8", "ndim": 1}) == "det"
        assert classify_column("year", {"dtype": "<i8", "ndim": 1}) == "plain"
        assert classify_column("x__ashe", {"dtype": "<u8", "ndim": 1}) is None
        assert classify_column("p", {"dtype": "object", "ndim": 1}) is None
        assert classify_column("f", {"dtype": "<f8", "ndim": 1}) is None

    def test_legacy_plan_kind_meta_still_classifies_companions(self):
        # Pre-v3 manifests recorded the *plan* kind, so an ASHE measure's
        # ORE/DET companion columns say enc=ashe; structure wins.
        assert classify_column(
            "m__ore", {"dtype": "<u8", "ndim": 2, "enc": "ashe"}
        ) == "ore"
        assert classify_column(
            "m__det", {"dtype": "<u8", "ndim": 1, "enc": "ashe"}
        ) == "det"
        assert classify_column(
            "m__ashe", {"dtype": "<u8", "ndim": 1, "enc": "ashe"}
        ) is None


def test_stats_summary_coverage():
    maps = [
        {"rows": 10, "nulls": 0, "columns": {
            "u__det": {"kind": "det", "tokens": [1]},
            "t__ore": {"kind": "ore", "min": [0], "max": [1]},
        }},
        {"rows": 5, "nulls": 0, "columns": {
            "u__det": {"kind": "det", "bloom": {"m": 64, "k": 1, "bits": "00" * 8}},
        }},
        None,
    ]
    summary = stats_summary(maps)
    assert summary["partitions"] == 3
    assert summary["partitions_with_stats"] == 2
    assert summary["rows"] == 15
    assert summary["columns"]["u__det"] == {
        "kind": "det", "partitions": 2, "token_sets": 1, "blooms": 1,
    }
    assert summary["columns"]["t__ore"]["partitions"] == 1
