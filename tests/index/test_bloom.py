"""Bloom filter invariants the pruning contract depends on.

The planner drops a partition on a membership "no", so the one property
that may never break is *no false negatives*.  Everything else --
serialisation, sizing, determinism (which the leakage audit relies on)
-- is checked alongside.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SeabedError
from repro.index.bloom import BloomFilter

tokens_lists = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=300
)


@given(tokens=tokens_lists)
def test_no_false_negatives(tokens):
    bloom = BloomFilter.for_capacity(len(set(tokens)))
    bloom.add_tokens(np.asarray(tokens, dtype=np.uint64))
    assert all(bloom.might_contain(t) for t in tokens)


@given(tokens=tokens_lists)
def test_round_trip_preserves_bits(tokens):
    bloom = BloomFilter.for_capacity(len(set(tokens)))
    bloom.add_tokens(np.asarray(tokens, dtype=np.uint64))
    assert BloomFilter.from_dict(bloom.to_dict()) == bloom


def test_deterministic_for_same_tokens():
    """Recomputability: the audit recomputes blooms from visible tokens
    and expects identical bits, regardless of insertion order."""
    tokens = np.arange(1000, dtype=np.uint64) * np.uint64(0x9E3779B9)
    a = BloomFilter.for_capacity(tokens.size)
    a.add_tokens(tokens)
    b = BloomFilter.for_capacity(tokens.size)
    b.add_tokens(tokens[::-1].copy())
    assert a == b


def test_false_positive_rate_reasonable():
    rng = np.random.default_rng(7)
    members = rng.integers(0, 2**63, 2000, dtype=np.uint64)
    bloom = BloomFilter.for_capacity(members.size)
    bloom.add_tokens(members)
    member_set = set(members.tolist())
    probes = [t for t in rng.integers(0, 2**63, 4000, dtype=np.uint64).tolist()
              if t not in member_set]
    fp = sum(bloom.might_contain(t) for t in probes) / len(probes)
    assert fp < 0.05, f"false-positive rate {fp:.3f} far above the ~1% target"


def test_empty_filter_rejects_everything():
    bloom = BloomFilter.for_capacity(10)
    assert not bloom.might_contain(123)
    assert bloom.fill_ratio == 0.0


def test_saturated_filter_accepts_everything():
    bloom = BloomFilter(64, 4, words=np.full(1, ~np.uint64(0), dtype=np.uint64))
    assert bloom.fill_ratio == 1.0
    assert all(bloom.might_contain(t) for t in range(100))


def test_malformed_payloads_rejected():
    bloom = BloomFilter.for_capacity(4)
    payload = bloom.to_dict()
    with pytest.raises(SeabedError, match="bits"):
        BloomFilter.from_dict({**payload, "m": payload["m"] * 2})
    with pytest.raises(SeabedError, match="malformed"):
        BloomFilter.from_dict({"m": 64})
    with pytest.raises(SeabedError, match="multiple of 64"):
        BloomFilter(63, 2)
    with pytest.raises(SeabedError, match="hash"):
        BloomFilter(64, 0)
