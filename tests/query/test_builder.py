"""The fluent query builder and its parser round-trip guarantee."""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - property test degrades to the grid
    st = None

from repro.errors import TranslationError
from repro.query.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    JoinClause,
    Not,
    Or,
    Param,
    Query,
)
from repro.query.builder import (
    QueryBuilder,
    and_,
    col,
    not_,
    or_,
    render_sql,
)
from repro.query.parser import parse_query


class TestColExpressions:
    def test_comparison_operators(self):
        c = col("rank")
        assert (c > 5) == Comparison("rank", ">", 5)
        assert (c >= 5) == Comparison("rank", ">=", 5)
        assert (c < 5) == Comparison("rank", "<", 5)
        assert (c <= 5) == Comparison("rank", "<=", 5)
        assert (c == 5) == Comparison("rank", "=", 5)
        assert (c != 5) == Comparison("rank", "!=", 5)

    def test_isin_and_between(self):
        assert col("h").isin(1, 2, 3) == InList("h", (1, 2, 3))
        assert col("h").isin([1, 2]) == InList("h", (1, 2))
        assert col("h").between(1, 9) == Between("h", 1, 9)
        with pytest.raises(TranslationError):
            col("h").isin()

    def test_param_values(self):
        assert (col("h") == Param("x")) == Comparison("h", "=", Param("x"))

    def test_combinators_flatten_like_the_parser(self):
        a, b, c = col("x") > 1, col("y") > 2, col("z") > 3
        assert and_(a, b, c) == And((a, b, c))
        assert and_(and_(a, b), c) == And((a, b, c))
        assert or_(or_(a, b), c) == Or((a, b, c))
        assert and_(a) == a
        assert not_(a) == Not(a)


class TestBuilderSurface:
    def test_issue_example_shape(self):
        q = (
            QueryBuilder("uservisits")
            .where(col("pageRank") > 100)
            .group_by("hour")
            .sum("adRevenue")
            .build()
        )
        assert q == parse_query(
            "SELECT hour, sum(adRevenue) FROM uservisits "
            "WHERE pageRank > 100 GROUP BY hour"
        )

    def test_explicit_select_not_duplicated(self):
        q = (
            QueryBuilder("t").select("g").group_by("g").avg("v").build()
        )
        assert q.select == (ColumnRef("g"), Aggregate("avg", "v"))

    def test_alias_and_count_star(self):
        q = QueryBuilder("t").sum("v", alias="total").count().build()
        assert q == parse_query("SELECT sum(v) AS total, count(*) FROM t")

    def test_join_order_limit(self):
        q = (
            QueryBuilder("uservisits")
            .join("rankings", "destURL", "pageURL")
            .where(col("pageRank") > 10)
            .group_by("destURL")
            .sum("adRevenue")
            .order_by("sum(adRevenue)", descending=True)
            .limit(5)
            .build()
        )
        assert q.join == JoinClause("rankings", "destURL", "pageURL")
        assert q.order_by == (("sum(adRevenue)", True),)
        assert q.limit == 5

    def test_repeated_where_ands(self):
        q = (
            QueryBuilder("t")
            .where(col("a") > 1)
            .where(col("b") < 2)
            .count()
            .build()
        )
        assert q.where == And((Comparison("a", ">", 1), Comparison("b", "<", 2)))

    def test_builders_are_immutable(self):
        base = QueryBuilder("t").count()
        narrowed = base.where(col("a") > 1)
        assert base.build().where is None
        assert narrowed.build().where is not None

    def test_empty_select_rejected(self):
        with pytest.raises(TranslationError, match="empty select"):
            QueryBuilder("t").build()

    def test_unbound_builder_cannot_execute(self):
        with pytest.raises(TranslationError, match="not bound to a session"):
            QueryBuilder("t").count().execute()


class TestRenderSql:
    def test_string_escaping_round_trips(self):
        q = QueryBuilder("t").where(col("s") == "o'brien \\ co").count().build()
        assert parse_query(render_sql(q)) == q

    def test_params_render_as_placeholders(self):
        q = QueryBuilder("t").where(col("h") == Param("x")).count().build()
        assert ":x" in render_sql(q)
        assert parse_query(render_sql(q)) == q

    def test_negative_literal_rejected(self):
        q = QueryBuilder("t").where(col("h") > -1).count().build()
        with pytest.raises(TranslationError, match="negative"):
            render_sql(q)
        qf = QueryBuilder("t").where(col("h") > -1.5).count().build()
        with pytest.raises(TranslationError, match="negative"):
            render_sql(qf)

    def test_unrenderable_tiny_float_rejected(self):
        q = QueryBuilder("t").where(col("h") > 1e-12).count().build()
        with pytest.raises(TranslationError, match="cannot be rendered"):
            render_sql(q)
        # Exponent-repr floats that survive the fixed-point form still work.
        q2 = QueryBuilder("t").where(col("h") > 1e20).count().build()
        assert parse_query(render_sql(q2)) == q2

    def test_nested_boolean_precedence(self):
        pred = or_(
            and_(col("a") > 1, or_(col("b") > 2, col("c") > 3)),
            not_(col("d") == 4),
        )
        q = QueryBuilder("t").where(pred).count().build()
        assert parse_query(render_sql(q)) == q


# ---------------------------------------------------------------------------
# Property test: every builder-generated query renders to SQL that parses
# back to an identical AST (the satellite equivalence guarantee).  Runs
# under hypothesis when available; the parametrized grid below anchors the
# same property on realistic SQL either way.
# ---------------------------------------------------------------------------

if st is not None:
    _NAMES = st.sampled_from(["a", "b", "c", "d", "hour", "rank", "revenue"])
    _LITERALS = st.one_of(
        st.integers(min_value=0, max_value=10**6),
        st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        ).map(lambda f: round(f, 4)),
        st.text(
            alphabet=st.characters(
                codec="ascii", exclude_characters="\x00", min_codepoint=32
            ),
            max_size=12,
        ),
        st.builds(Param, st.sampled_from(["p0", "p1", "lo", "hi"])),
    )

    _COMPARISONS = st.builds(
        Comparison,
        _NAMES,
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        _LITERALS,
    )
    _IN_LISTS = st.builds(
        lambda c, vs: InList(c, tuple(vs)),
        _NAMES,
        st.lists(_LITERALS, min_size=1, max_size=4),
    )
    _BETWEENS = st.builds(Between, _NAMES, _LITERALS, _LITERALS)
    _ATOMS = st.one_of(_COMPARISONS, _IN_LISTS, _BETWEENS)

    def _combine(children):
        return st.one_of(
            children.map(not_),
            st.lists(children, min_size=2, max_size=3).map(lambda cs: and_(*cs)),
            st.lists(children, min_size=2, max_size=3).map(lambda cs: or_(*cs)),
        )

    _PREDICATES = st.recursive(_ATOMS, _combine, max_leaves=6)

    _AGGS = st.builds(
        Aggregate,
        st.sampled_from(["sum", "count", "avg", "min", "max", "var", "stddev"]),
        _NAMES,
        st.one_of(st.none(), st.sampled_from(["out", "alias1"])),
    )

    @st.composite
    def _built_queries(draw):
        builder = QueryBuilder(draw(st.sampled_from(["tbl", "uservisits"])))
        if draw(st.booleans()):
            builder = builder.join("other", draw(_NAMES), draw(_NAMES))
        for agg in draw(st.lists(_AGGS, min_size=1, max_size=3)):
            builder = builder.agg(agg.func, agg.column, agg.alias)
        if draw(st.booleans()):
            builder = builder.count()
        if draw(st.booleans()):
            builder = builder.where(draw(_PREDICATES))
        if draw(st.booleans()):
            builder = builder.group_by(draw(_NAMES))
            if draw(st.booleans()):
                builder = builder.order_by(draw(_NAMES), draw(st.booleans()))
            if draw(st.booleans()):
                builder = builder.limit(draw(st.integers(0, 100)))
        return builder.build()

    @settings(max_examples=200, deadline=None)
    @given(_built_queries())
    def test_builder_sql_parser_equivalence(query: Query) -> None:
        """parse_query(render_sql(q)) == q for every builder-producible q."""
        sql = render_sql(query)
        assert parse_query(sql) == query


@pytest.mark.parametrize("sql", [
    "SELECT sum(a) FROM tbl",
    "SELECT count(*) FROM tbl WHERE a = 1",
    "SELECT g, sum(a) FROM tbl WHERE b > 2 AND c < 3 GROUP BY g",
    "SELECT g, avg(a) AS m FROM tbl WHERE b IN (1, 2, 3) GROUP BY g "
    "ORDER BY m DESC LIMIT 10",
    "SELECT sum(a) FROM tbl JOIN o ON x = y WHERE NOT (b = 1 OR c = 2)",
    "SELECT sum(a) FROM tbl WHERE b BETWEEN :lo AND :hi",
    "SELECT min(a), max(a), median(a) FROM tbl WHERE s = 'it\\'s'",
])
def test_parser_sql_render_fixed_point(sql: str) -> None:
    """Rendering a parsed query re-parses to the same AST (grid form of
    the equivalence property, anchored on realistic workload SQL)."""
    q = parse_query(sql)
    assert parse_query(render_sql(q)) == q