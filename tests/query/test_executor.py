"""Tests for the plaintext executor (repro.query.executor)."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.query.executor import execute_plain
from repro.query.parser import parse_query


@pytest.fixture
def tables():
    return {
        "sales": {
            "country": np.array(["us", "ca", "us", "in", "ca", "us"], dtype=object),
            "amount": np.array([10, 20, 30, 40, 50, 60], dtype=np.int64),
            "year": np.array([2015, 2015, 2016, 2016, 2016, 2016], dtype=np.int64),
        },
        "rates": {
            "country": np.array(["us", "ca", "in"], dtype=object),
            "rate": np.array([1, 2, 3], dtype=np.int64),
        },
    }


def run(tables, sql):
    return execute_plain(tables, parse_query(sql))


class TestFlatAggregation:
    def test_sum(self, tables):
        assert run(tables, "SELECT sum(amount) FROM sales") == [{"sum(amount)": 210}]

    def test_count_star(self, tables):
        assert run(tables, "SELECT count(*) FROM sales") == [{"count(*)": 6}]

    def test_avg(self, tables):
        assert run(tables, "SELECT avg(amount) FROM sales") == [{"avg(amount)": 35.0}]

    def test_min_max(self, tables):
        row = run(tables, "SELECT min(amount), max(amount) FROM sales")[0]
        assert row == {"min(amount)": 10, "max(amount)": 60}

    def test_var_stddev(self, tables):
        row = run(tables, "SELECT var(amount), stddev(amount) FROM sales")[0]
        values = np.array([10, 20, 30, 40, 50, 60])
        assert row["var(amount)"] == pytest.approx(np.var(values))
        assert row["stddev(amount)"] == pytest.approx(np.std(values))

    def test_median(self, tables):
        assert run(tables, "SELECT median(amount) FROM sales")[0][
            "median(amount)"
        ] == pytest.approx(35.0)

    def test_alias(self, tables):
        assert run(tables, "SELECT sum(amount) AS total FROM sales") == [
            {"total": 210}
        ]

    def test_empty_selection_sum_is_none(self, tables):
        rows = run(tables, "SELECT sum(amount) FROM sales WHERE year = 1999")
        assert rows == [{"sum(amount)": None}]


class TestFilters:
    def test_equality_string(self, tables):
        assert run(
            tables, "SELECT sum(amount) FROM sales WHERE country = 'us'"
        ) == [{"sum(amount)": 100}]

    def test_range(self, tables):
        assert run(tables, "SELECT sum(amount) FROM sales WHERE amount > 30") == [
            {"sum(amount)": 150}
        ]

    def test_and_or(self, tables):
        rows = run(
            tables,
            "SELECT count(*) FROM sales WHERE country = 'us' AND year = 2016 OR amount = 20",
        )
        assert rows == [{"count(*)": 3}]

    def test_not(self, tables):
        assert run(tables, "SELECT count(*) FROM sales WHERE NOT country = 'us'") == [
            {"count(*)": 3}
        ]

    def test_in(self, tables):
        assert run(
            tables, "SELECT count(*) FROM sales WHERE country IN ('ca', 'in')"
        ) == [{"count(*)": 3}]

    def test_between(self, tables):
        assert run(
            tables, "SELECT count(*) FROM sales WHERE amount BETWEEN 20 AND 40"
        ) == [{"count(*)": 3}]

    def test_unknown_column(self, tables):
        with pytest.raises(ExecutionError, match="unknown column"):
            run(tables, "SELECT sum(zzz) FROM sales")

    def test_unknown_table(self, tables):
        with pytest.raises(ExecutionError, match="unknown table"):
            run(tables, "SELECT sum(amount) FROM nope")


class TestGroupBy:
    def test_group_sums(self, tables):
        rows = run(
            tables,
            "SELECT country, sum(amount) FROM sales GROUP BY country",
        )
        assert rows == [
            {"country": "ca", "sum(amount)": 70},
            {"country": "in", "sum(amount)": 40},
            {"country": "us", "sum(amount)": 100},
        ]

    def test_group_by_two_columns(self, tables):
        rows = run(
            tables,
            "SELECT country, year, count(*) FROM sales GROUP BY country, year",
        )
        assert {(r["country"], r["year"]): r["count(*)"] for r in rows} == {
            ("us", 2015): 1, ("ca", 2015): 1, ("us", 2016): 2,
            ("in", 2016): 1, ("ca", 2016): 1,
        }

    def test_order_by_agg_desc_limit(self, tables):
        rows = run(
            tables,
            "SELECT country, sum(amount) AS total FROM sales "
            "GROUP BY country ORDER BY total DESC LIMIT 2",
        )
        assert [r["country"] for r in rows] == ["us", "ca"]

    def test_bare_column_needs_group_by(self, tables):
        with pytest.raises(ExecutionError, match="GROUP BY|ungrouped"):
            run(tables, "SELECT country, sum(amount) FROM sales")


class TestJoin:
    def test_join_then_aggregate(self, tables):
        rows = run(
            tables,
            "SELECT sum(rate) FROM sales JOIN rates ON country = country",
        )
        # us->1 (x3), ca->2 (x2), in->3 (x1) == 3 + 4 + 3
        assert rows == [{"sum(rate)": 10}]

    def test_join_with_filter_and_group(self, tables):
        rows = run(
            tables,
            "SELECT country, sum(rate) FROM sales JOIN rates ON country = country "
            "WHERE year = 2016 GROUP BY country",
        )
        assert rows == [
            {"country": "ca", "sum(rate)": 2},
            {"country": "in", "sum(rate)": 3},
            {"country": "us", "sum(rate)": 2},
        ]


class TestProjection:
    def test_plain_select_with_filter(self, tables):
        rows = run(tables, "SELECT country FROM sales WHERE amount >= 50")
        assert rows == [{"country": "ca"}, {"country": "us"}]
