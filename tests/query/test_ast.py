"""Tests for AST structural helpers (repro.query.ast)."""

import pytest

from repro.query.ast import (
    Aggregate,
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    predicate_columns,
    predicate_usage,
)
from repro.query.parser import parse_query


class TestAggregateValidation:
    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            Aggregate("frobnicate", "x")

    def test_star_only_for_count(self):
        with pytest.raises(ValueError, match="not meaningful"):
            Aggregate("sum", None)

    def test_output_name_prefers_alias(self):
        assert Aggregate("sum", "x", alias="total").output_name() == "total"
        assert Aggregate("sum", "x").output_name() == "sum(x)"
        assert Aggregate("count", None).output_name() == "count(*)"


class TestComparisonValidation:
    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown comparison"):
            Comparison("x", "~", 1)

    def test_kind_flags(self):
        assert Comparison("x", "=", 1).is_equality
        assert Comparison("x", "<", 1).is_range
        assert not Comparison("x", "!=", 1).is_range


class TestStructuralHelpers:
    def test_measures_and_dimensions(self):
        q = parse_query(
            "SELECT a, sum(b), avg(c) FROM t "
            "WHERE d = 1 AND e > 2 GROUP BY a"
        )
        assert q.measure_columns() == {"b", "c"}
        assert q.dimension_columns() == {"a", "d", "e"}

    def test_join_columns(self):
        q = parse_query("SELECT sum(x) FROM t JOIN u ON l = r")
        assert q.join_columns() == {"l", "r"}
        assert q.dimension_columns() >= {"l", "r"}

    def test_is_aggregation(self):
        assert parse_query("SELECT sum(x) FROM t").is_aggregation()
        assert not parse_query("SELECT x FROM t WHERE x > 1").is_aggregation()

    def test_predicate_columns_nested(self):
        pred = Or((
            And((Comparison("a", "=", 1), Not(Between("b", 1, 2)))),
            InList("c", (1, 2)),
        ))
        assert predicate_columns(pred) == {"a", "b", "c"}

    def test_predicate_columns_none(self):
        assert predicate_columns(None) == set()

    def test_predicate_usage_kinds(self):
        pred = And((
            Comparison("a", "=", 1),
            Comparison("a", ">", 0),
            Between("b", 1, 5),
            InList("c", ("x",)),
            Not(Comparison("d", "!=", 2)),
        ))
        usage = predicate_usage(pred)
        assert usage["a"] == {"eq", "range"}
        assert usage["b"] == {"range"}
        assert usage["c"] == {"eq"}
        assert usage["d"] == {"eq"}

    def test_query_is_hashable(self):
        q1 = parse_query("SELECT sum(x) FROM t WHERE y = 1")
        q2 = parse_query("SELECT sum(x) FROM t WHERE y = 1")
        assert q1 == q2 and hash(q1) == hash(q2)
