"""Tests for the SQL-subset parser (repro.query.parser)."""

import pytest

from repro.errors import ParseError
from repro.query.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Not,
    Or,
)
from repro.query.parser import parse_query


class TestSelectList:
    def test_simple_sum(self):
        q = parse_query("SELECT sum(revenue) FROM sales")
        assert q.table == "sales"
        assert q.select == (Aggregate("sum", "revenue"),)

    def test_count_star(self):
        q = parse_query("SELECT count(*) FROM t")
        assert q.select == (Aggregate("count", None),)

    def test_alias(self):
        q = parse_query("SELECT sum(a) AS total FROM t")
        assert q.select[0].alias == "total"
        assert q.select[0].output_name() == "total"

    def test_multiple_items(self):
        q = parse_query("SELECT country, sum(x), avg(y) FROM t GROUP BY country")
        assert q.select == (
            ColumnRef("country"),
            Aggregate("sum", "x"),
            Aggregate("avg", "y"),
        )

    def test_all_aggregate_functions(self):
        sql = "SELECT sum(a), count(a), avg(a), min(a), max(a), var(a), stddev(a), median(a) FROM t"
        q = parse_query(sql)
        assert [i.func for i in q.select] == [
            "sum", "count", "avg", "min", "max", "var", "stddev", "median",
        ]

    def test_keywords_case_insensitive(self):
        q = parse_query("select SUM(a) from T where b = 1 GROUP by c")
        assert q.group_by == ("c",)

    def test_unknown_function(self):
        with pytest.raises(ParseError, match="unknown aggregate"):
            parse_query("SELECT frobnicate(a) FROM t")


class TestPredicates:
    def test_comparison_ops(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            q = parse_query(f"SELECT sum(a) FROM t WHERE b {op} 10")
            assert q.where == Comparison("b", op, 10)

    def test_diamond_means_not_equal(self):
        q = parse_query("SELECT sum(a) FROM t WHERE b <> 10")
        assert q.where == Comparison("b", "!=", 10)

    def test_string_literal(self):
        q = parse_query("SELECT sum(a) FROM t WHERE country = 'Canada'")
        assert q.where == Comparison("country", "=", "Canada")

    def test_escaped_quote(self):
        q = parse_query(r"SELECT sum(a) FROM t WHERE c = 'O\'Brien'")
        assert q.where.value == "O'Brien"

    def test_float_literal(self):
        q = parse_query("SELECT sum(a) FROM t WHERE b > 1.5")
        assert q.where == Comparison("b", ">", 1.5)

    def test_and_or_precedence(self):
        q = parse_query("SELECT sum(a) FROM t WHERE x = 1 OR y = 2 AND z = 3")
        assert isinstance(q.where, Or)
        assert isinstance(q.where.children[1], And)

    def test_parentheses_override(self):
        q = parse_query("SELECT sum(a) FROM t WHERE (x = 1 OR y = 2) AND z = 3")
        assert isinstance(q.where, And)
        assert isinstance(q.where.children[0], Or)

    def test_not(self):
        q = parse_query("SELECT sum(a) FROM t WHERE NOT x = 1")
        assert q.where == Not(Comparison("x", "=", 1))

    def test_in_list(self):
        q = parse_query("SELECT sum(a) FROM t WHERE c IN ('us', 'ca', 'in')")
        assert q.where == InList("c", ("us", "ca", "in"))

    def test_between(self):
        q = parse_query("SELECT sum(a) FROM t WHERE d BETWEEN 5 AND 10")
        assert q.where == Between("d", 5, 10)


class TestClauses:
    def test_group_by_multiple(self):
        q = parse_query("SELECT a, b, sum(c) FROM t GROUP BY a, b")
        assert q.group_by == ("a", "b")

    def test_join(self):
        q = parse_query(
            "SELECT sum(adRevenue) FROM uservisits "
            "JOIN rankings ON destURL = pageURL WHERE pageRank > 10"
        )
        assert q.join is not None
        assert q.join.table == "rankings"
        assert q.join.left_column == "destURL"
        assert q.join.right_column == "pageURL"

    def test_order_by_desc_and_limit(self):
        q = parse_query("SELECT a, sum(b) FROM t GROUP BY a ORDER BY a DESC LIMIT 5")
        assert q.order_by == (("a", True),)
        assert q.limit == 5

    def test_order_by_multiple(self):
        q = parse_query("SELECT a, b, sum(c) FROM t GROUP BY a, b ORDER BY a ASC, b DESC")
        assert q.order_by == (("a", False), ("b", True))


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(ParseError, match="expected 'from'"):
            parse_query("SELECT sum(a) t")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="expected 'eof'"):
            parse_query("SELECT sum(a) FROM t 42")

    def test_unterminated_predicate(self):
        with pytest.raises(ParseError):
            parse_query("SELECT sum(a) FROM t WHERE b =")

    def test_bad_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_query("SELECT sum(a) FROM t WHERE b = #")

    def test_error_carries_position(self):
        with pytest.raises(ParseError, match="position"):
            parse_query("SELECT sum(a) FROM t WHERE = 3")

    def test_count_star_only(self):
        with pytest.raises(ValueError, match="not meaningful"):
            parse_query("SELECT sum(*) FROM t")
