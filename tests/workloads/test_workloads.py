"""Tests for the workload generators (repro.workloads)."""

import numpy as np
import pytest

from repro.errors import SeabedError
from repro.workloads import adanalytics, bdb, distributions, mdx, synthetic, tpcds


class TestDistributions:
    def test_zipf_probabilities_sum_to_one(self):
        probs = distributions.zipf_probabilities(50)
        assert probs.sum() == pytest.approx(1.0)
        assert (np.diff(probs) <= 0).all()  # monotone decreasing

    def test_zipf_choice_respects_cardinality(self):
        rng = np.random.default_rng(0)
        codes = distributions.zipf_choice(rng, 10, 1000)
        assert codes.min() >= 0 and codes.max() < 10

    def test_expected_counts(self):
        counts = distributions.expected_counts(5, 1000)
        assert sum(counts.values()) == pytest.approx(1000, abs=5)

    def test_bad_cardinality(self):
        with pytest.raises(SeabedError):
            distributions.zipf_probabilities(0)


class TestSynthetic:
    def test_deterministic_per_seed(self):
        a = synthetic.generate(100, seed=1)
        b = synthetic.generate(100, seed=1)
        assert np.array_equal(a.columns["value"], b.columns["value"])

    def test_optional_columns(self):
        d = synthetic.generate(100, num_groups=4, with_ope_column=True)
        assert set(d.columns) == {"value", "grp", "ope_val"}
        assert d.columns["grp"].max() < 4

    def test_sample_queries_cover_columns(self):
        d = synthetic.generate(10, num_groups=2, with_ope_column=True)
        queries = synthetic.sample_queries(d)
        assert any("GROUP BY grp" in q for q in queries)
        assert any("ope_val" in q for q in queries)

    def test_selectivity_mask(self):
        mask = synthetic.selectivity_mask(100_000, 0.3, seed=0)
        assert 0.28 < mask.mean() < 0.32

    def test_selectivity_bounds(self):
        with pytest.raises(SeabedError):
            synthetic.selectivity_mask(10, 1.5)

    def test_rows_positive(self):
        with pytest.raises(SeabedError):
            synthetic.generate(0)


class TestBdb:
    @pytest.fixture(scope="class")
    def data(self):
        return bdb.generate(num_rankings=200, num_uservisits=1000, seed=0)

    def test_schema_shapes(self, data):
        assert len(data.rankings["pageURL"]) == 200
        assert len(data.uservisits["sourceIP"]) == 1000
        assert data.rankings_schema.column("pageRank").sensitive

    def test_dest_urls_reference_rankings(self, data):
        assert set(data.uservisits["destURL"]) <= set(data.rankings["pageURL"])

    def test_prefix_columns_are_prefixes(self, data):
        for width in (8, 10, 12):
            col = data.uservisits[f"ipPrefix{width}"]
            ips = data.uservisits["sourceIP"]
            assert all(ip.startswith(p) for ip, p in zip(ips, col))

    def test_queries_render(self):
        sql, desc = bdb.query_q1("A")
        assert "pageRank >" in sql and "Q1A" in desc
        assert "ipPrefix10" in bdb.query_q2("B")
        assert "JOIN rankings" in bdb.query_q3("C")

    def test_crawl_documents_and_link_extraction(self, data):
        docs = bdb.generate_crawl_documents(20, data.rankings["pageURL"], seed=0)
        assert len(docs) == 20
        pairs = bdb.extract_links(docs[0])
        assert pairs and all(count == 1 for _url, count in pairs)
        assert all(url in set(data.rankings["pageURL"]) for url, _c in pairs)


class TestAdAnalytics:
    @pytest.fixture(scope="class")
    def data(self):
        return adanalytics.generate(rows=2000, seed=0)

    def test_schema_has_paper_shape(self, data):
        dims = [c for c in data.schema.columns
                if c.name.endswith(tuple("0123456789")) and "dim" in c.name]
        # 33 dimensions = hour + 10 sensitive + 22 public
        assert len(dims) + 1 == 33
        measures = [c for c in data.schema.columns if c.name.startswith("measure")]
        assert len(measures) == 18
        assert sum(1 for c in measures if c.sensitive) == 10

    def test_sensitive_dims_have_distributions(self, data):
        for dim in data.sensitive_dims:
            spec = data.schema.column(dim)
            assert spec.value_counts is not None

    def test_query_log_mix(self):
        log = adanalytics.generate_query_log(3000, seed=1)
        post = sum(1 for q in log if q.category == "CPost")
        fraction = post / len(log)
        paper = adanalytics.PAPER_LOG_POST / adanalytics.PAPER_LOG_TOTAL
        assert abs(fraction - paper) < 0.03

    def test_log_group_counts_in_paper_range(self):
        log = adanalytics.generate_query_log(500, seed=2)
        assert all(1 <= q.num_groups <= 12 for q in log)

    def test_figure10a_queries(self):
        queries = adanalytics.figure10a_queries(seed=0)
        assert len(queries) == 15
        assert sorted({q.num_groups for q in queries}) == [1, 4, 8]

    def test_stream_batches_partitions_the_rows(self, data):
        batches = list(adanalytics.stream_batches(data, 5))
        assert len(batches) == 5
        for name, arr in data.columns.items():
            rebuilt = np.concatenate([b[name] for b in batches])
            assert np.array_equal(rebuilt, arr), name

    def test_stream_batches_skips_empty_slices(self, data):
        # more batches than rows still yields only non-empty batches
        small = adanalytics.generate(rows=3, seed=1)
        batches = list(adanalytics.stream_batches(small, 8))
        assert sum(len(b["hour"]) for b in batches) == 3
        assert all(len(b["hour"]) > 0 for b in batches)

    def test_stream_batches_validates_count(self, data):
        with pytest.raises(SeabedError):
            list(adanalytics.stream_batches(data, 0))


class TestCatalogs:
    def test_mdx_matches_paper(self):
        assert mdx.category_counts() == mdx.PAPER_COUNTS

    def test_mdx_catalog_complete(self):
        assert [f.number for f in mdx.MDX_CATALOG] == list(range(1, 39))
        assert all(f.description and f.how_supported for f in mdx.MDX_CATALOG)

    def test_tpcds_matches_paper(self):
        assert tpcds.category_counts() == tpcds.PAPER_COUNTS

    def test_tpcds_has_99_queries(self):
        cat = tpcds.catalog()
        assert len(cat) == 99
        assert cat[0].name == "q1" and cat[0].category == "2R"
