"""Package-level tests: public API surface and lazy imports."""

import pytest


def test_version():
    import repro

    assert repro.__version__


def test_lazy_exports():
    import repro

    assert repro.SeabedClient.__name__ == "SeabedClient"
    assert repro.TableSchema.__name__ == "TableSchema"
    assert repro.ColumnSpec.__name__ == "ColumnSpec"


def test_unknown_attribute():
    import repro

    with pytest.raises(AttributeError, match="no attribute"):
        repro.does_not_exist


def test_error_hierarchy():
    from repro import errors

    for name in ("CryptoError", "EncodingError", "PlanningError",
                 "TranslationError", "ExecutionError", "DecryptionError",
                 "ParseError"):
        assert issubclass(getattr(errors, name), errors.SeabedError)
