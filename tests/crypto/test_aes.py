"""Tests for the from-scratch AES-128 (repro.crypto.aes).

Validated against the FIPS-197 appendix example and the NIST SP 800-38A
counter-mode vectors.
"""

import pytest

from repro.crypto.aes import Aes128, ctr_encrypt, ctr_keystream
from repro.errors import CryptoError


class TestFips197Vectors:
    def test_appendix_b_example(self):
        aes = Aes128(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        ct = aes.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_appendix_a_key_schedule_last_round(self):
        # FIPS-197 A.1: last round key for 2b7e...4f3c is d014f9a8c9ee2589e13f0cc8b6630ca6
        aes = Aes128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        assert bytes(aes._round_keys[10]).hex() == "d014f9a8c9ee2589e13f0cc8b6630ca6"

    def test_all_zero_key_and_block(self):
        # Well-known vector: AES-128(0^16, 0^16)
        aes = Aes128(bytes(16))
        assert aes.encrypt_block(bytes(16)).hex() == "66e94bd4ef8a2c3b884cfa59ca342b2e"


class TestSp80038aCtr:
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    CTR0 = int.from_bytes(bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"), "big")
    BLOCKS_PT = [
        "6bc1bee22e409f96e93d7e117393172a",
        "ae2d8a571e03ac9c9eb76fac45af8e51",
        "30c81c46a35ce411e5fbc1191a0a52ef",
        "f69f2445df4f9b17ad2b417be66c3710",
    ]
    BLOCKS_CT = [
        "874d6191b620e3261bef6864990db6ce",
        "9806f66b7970fdff8617187bb9fffdff",
        "5ae4df3edbd5d35e5b4f09020db03eab",
        "1e031dda2fbe03d1792170a0f3009cee",
    ]

    def test_four_block_message(self):
        pt = bytes.fromhex("".join(self.BLOCKS_PT))
        ct = ctr_encrypt(self.KEY, self.CTR0, pt)
        assert ct.hex() == "".join(self.BLOCKS_CT)

    def test_ctr_is_symmetric(self):
        pt = b"seabed reproduction payload!"
        ct = ctr_encrypt(self.KEY, self.CTR0, pt)
        assert ctr_encrypt(self.KEY, self.CTR0, ct) == pt

    def test_keystream_length(self):
        assert len(ctr_keystream(self.KEY, 0, 5)) == 80

    def test_counter_wraps_at_128_bits(self):
        top = (1 << 128) - 1
        stream = ctr_keystream(self.KEY, top, 2)
        aes = Aes128(self.KEY)
        assert stream[:16] == aes.encrypt_block(top.to_bytes(16, "big"))
        assert stream[16:] == aes.encrypt_block(bytes(16))


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(CryptoError, match="16 bytes"):
            Aes128(b"tooshort")

    def test_bad_block_length(self):
        with pytest.raises(CryptoError, match="16 bytes"):
            Aes128(bytes(16)).encrypt_block(b"short")

    def test_deterministic(self):
        aes = Aes128(bytes(range(16)))
        block = bytes(range(16))
        assert aes.encrypt_block(block) == aes.encrypt_block(block)

    def test_blocks_differ_across_inputs(self):
        aes = Aes128(bytes(range(16)))
        outs = {aes.encrypt_block(i.to_bytes(16, "big")) for i in range(32)}
        assert len(outs) == 32
