"""Tests for the key chain (repro.crypto.keys)."""

import pytest

from repro.crypto.keys import KeyChain
from repro.errors import CryptoError


class TestDerivation:
    def test_deterministic(self):
        kc = KeyChain(b"m" * 32)
        assert kc.derive("t", "c") == kc.derive("t", "c")

    def test_label_separation(self):
        kc = KeyChain(b"m" * 32)
        assert kc.derive("t", "c1") != kc.derive("t", "c2")
        assert kc.derive("a", "bc") != kc.derive("ab", "c")  # no concat ambiguity

    def test_column_key_distinct_per_scheme(self):
        kc = KeyChain(b"m" * 32)
        assert kc.column_key("t", "c", "ashe") != kc.column_key("t", "c", "det")

    def test_key_length(self):
        assert len(KeyChain(b"m" * 32).derive("x")) == KeyChain.KEY_BYTES

    def test_master_separation(self):
        a, b = KeyChain(b"a" * 32), KeyChain(b"b" * 32)
        assert a.derive("x") != b.derive("x")

    def test_empty_labels_rejected(self):
        with pytest.raises(CryptoError):
            KeyChain(b"m" * 32).derive()

    def test_short_master_rejected(self):
        with pytest.raises(CryptoError, match="16 bytes"):
            KeyChain(b"short")


class TestGeneration:
    def test_generate_is_random(self):
        assert KeyChain.generate().derive("x") != KeyChain.generate().derive("x")

    def test_passphrase_derivation_reproducible(self):
        a = KeyChain.from_passphrase("hunter2")
        b = KeyChain.from_passphrase("hunter2")
        assert a.derive("x") == b.derive("x")

    def test_passphrase_salt_matters(self):
        a = KeyChain.from_passphrase("hunter2", salt=b"s1")
        b = KeyChain.from_passphrase("hunter2", salt=b"s2")
        assert a.derive("x") != b.derive("x")
