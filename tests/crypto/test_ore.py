"""Tests for the Chenette et al. ORE scheme (repro.crypto.ore)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ore import OreScheme
from repro.errors import CryptoError

KEY = b"0123456789abcdef0123456789abcdef"


@pytest.fixture(params=[8, 32, 64], ids=lambda n: f"{n}bit")
def ore(request) -> OreScheme:
    return OreScheme(KEY, nbits=request.param)


def domain_values(nbits: int) -> list[int]:
    top = 1 << (nbits - 1)
    return [-top, -top // 2, -3, -1, 0, 1, 2, 3, top // 2, top - 1]


class TestOrderCorrectness:
    def test_pairwise_order(self, ore):
        vals = domain_values(ore.nbits)
        cts = {v: ore.encrypt_one(v) for v in vals}
        for a, b in itertools.product(vals, vals):
            expect = (a > b) - (a < b)
            assert ore.compare_words(cts[a], cts[b]) == expect, (a, b)

    def test_equal_plaintexts_equal_ciphertexts(self, ore):
        assert ore.encrypt_one(5) == ore.encrypt_one(5)

    def test_column_compare_matches_scalar(self, ore):
        vals = np.array(domain_values(ore.nbits))
        col = ore.encrypt_column(vals)
        pivot = 2
        cmp = ore.compare_column(col, ore.token(pivot))
        expected = [(v > pivot) - (v < pivot) for v in vals.tolist()]
        assert cmp.tolist() == expected

    def test_column_matches_encrypt_one(self, ore):
        vals = np.array(domain_values(ore.nbits))
        col = ore.encrypt_column(vals)
        for j, v in enumerate(vals.tolist()):
            assert tuple(int(w) for w in col[j]) == ore.encrypt_one(v)


class TestFilters:
    def test_all_operators(self):
        ore = OreScheme(KEY, nbits=16)
        vals = np.array([-5, 0, 3, 7, 7, 100])
        col = ore.encrypt_column(vals)
        tok = ore.token(7)
        assert ore.filter_column(col, "<", tok).tolist() == (vals < 7).tolist()
        assert ore.filter_column(col, "<=", tok).tolist() == (vals <= 7).tolist()
        assert ore.filter_column(col, ">", tok).tolist() == (vals > 7).tolist()
        assert ore.filter_column(col, ">=", tok).tolist() == (vals >= 7).tolist()
        assert ore.filter_column(col, "=", tok).tolist() == (vals == 7).tolist()
        assert ore.filter_column(col, "!=", tok).tolist() == (vals != 7).tolist()

    def test_bad_operator(self):
        ore = OreScheme(KEY, nbits=16)
        col = ore.encrypt_column(np.array([1]))
        with pytest.raises(CryptoError, match="operator"):
            ore.filter_column(col, "~", ore.token(0))

    def test_argmax_argmin(self):
        ore = OreScheme(KEY, nbits=32)
        vals = np.array([5, -9, 100, 3, 42])
        col = ore.encrypt_column(vals)
        assert ore.argmax_column(col) == 2
        assert ore.argmin_column(col) == 1

    def test_argmax_empty_rejected(self):
        ore = OreScheme(KEY, nbits=32)
        with pytest.raises(CryptoError, match="empty"):
            ore.argmax_column(np.empty((0, 1), dtype=np.uint64))


class TestLeakageProfile:
    """The scheme leaks order and inddiff -- and must leak nothing *less*
    (correctness) while the prefix construction hides lower bits."""

    def test_first_diff_index(self):
        ore = OreScheme(KEY, nbits=8, signed=False)
        a = ore.encrypt_one(0b10110000)
        b = ore.encrypt_one(0b10100000)
        # bits differ first at position 4 (1-indexed from the MSB)
        assert ore.first_diff_index(a, b) == 4

    def test_equal_messages_no_diff(self):
        ore = OreScheme(KEY, nbits=8, signed=False)
        assert ore.first_diff_index(ore.encrypt_one(9), ore.encrypt_one(9)) is None

    def test_shared_prefix_shared_trits(self):
        """Messages agreeing on a prefix produce identical leading trits."""
        ore = OreScheme(KEY, nbits=8, signed=False)
        a = ore.encrypt_one(0b11000001)[0]
        b = ore.encrypt_one(0b11000010)[0]
        # First 6 bit positions agree -> first 6 trit pairs equal.
        mask = (1 << 12) - 1
        assert a & mask == b & mask

    def test_64bit_uses_two_words(self):
        ore = OreScheme(KEY, nbits=64)
        assert ore.num_words == 2
        assert len(ore.encrypt_one(0)) == 2


class TestDomainValidation:
    def test_out_of_domain_scalar(self):
        ore = OreScheme(KEY, nbits=8)
        with pytest.raises(CryptoError, match="domain"):
            ore.encrypt_one(1 << 10)

    def test_out_of_domain_column(self):
        ore = OreScheme(KEY, nbits=8)
        with pytest.raises(CryptoError, match="domain"):
            ore.encrypt_column(np.array([0, 5000]))

    def test_unsigned_mode(self):
        ore = OreScheme(KEY, nbits=8, signed=False)
        cts = [ore.encrypt_one(v) for v in (0, 100, 255)]
        assert ore.compare_words(cts[0], cts[1]) == -1
        assert ore.compare_words(cts[2], cts[1]) == 1
        with pytest.raises(CryptoError):
            ore.encrypt_one(-1)

    def test_bad_nbits(self):
        with pytest.raises(CryptoError, match="1..64"):
            OreScheme(KEY, nbits=65)

    def test_bad_backend(self):
        with pytest.raises(CryptoError, match="backend"):
            OreScheme(KEY, backend="none")


class TestBlake2Backend:
    def test_order_preserved(self):
        ore = OreScheme(KEY, nbits=16, backend="blake2")
        vals = [-100, -1, 0, 7, 300]
        cts = [ore.encrypt_one(v) for v in vals]
        for i in range(len(vals) - 1):
            assert ore.compare_words(cts[i], cts[i + 1]) == -1

    def test_column_matches_scalar(self):
        ore = OreScheme(KEY, nbits=16, backend="blake2")
        vals = np.array([-3, 0, 9])
        col = ore.encrypt_column(vals)
        for j, v in enumerate(vals.tolist()):
            assert tuple(int(w) for w in col[j]) == ore.encrypt_one(v)


@given(
    a=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    b=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
@settings(max_examples=150, deadline=None)
def test_property_order_revealed_correctly(a, b):
    ore = OreScheme(KEY, nbits=32)
    ca, cb = ore.encrypt_one(a), ore.encrypt_one(b)
    assert ore.compare_words(ca, cb) == (a > b) - (a < b)


@given(values=st.lists(st.integers(min_value=-(2**15), max_value=2**15 - 1),
                       min_size=1, max_size=40),
       pivot=st.integers(min_value=-(2**15), max_value=2**15 - 1))
@settings(max_examples=50, deadline=None)
def test_property_column_filter_matches_plaintext(values, pivot):
    ore = OreScheme(KEY, nbits=16)
    arr = np.array(values)
    col = ore.encrypt_column(arr)
    got = ore.filter_column(col, ">", ore.token(pivot))
    assert got.tolist() == (arr > pivot).tolist()
