"""Tests for the Paillier baseline (repro.crypto.paillier)."""

from random import Random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import PaillierKeyPair, PaillierScheme, _is_probable_prime

KEYS = PaillierKeyPair.generate(bits=256, seed=42)


@pytest.fixture(scope="module")
def scheme() -> PaillierScheme:
    return PaillierScheme(KEYS, seed=1)


class TestKeyGeneration:
    def test_modulus_size(self):
        assert KEYS.n.bit_length() == 256
        assert KEYS.ciphertext_bits == 512

    def test_primes_multiply_to_n(self):
        assert KEYS.p * KEYS.q == KEYS.n

    def test_primality(self):
        rng = Random(0)
        assert _is_probable_prime(KEYS.p, rng)
        assert _is_probable_prime(KEYS.q, rng)

    def test_seeded_generation_reproducible(self):
        again = PaillierKeyPair.generate(bits=256, seed=42)
        assert again.n == KEYS.n

    def test_distinct_seeds_distinct_keys(self):
        other = PaillierKeyPair.generate(bits=256, seed=43)
        assert other.n != KEYS.n


class TestMillerRabin:
    def test_small_primes(self):
        rng = Random(0)
        for p in (2, 3, 5, 7, 11, 101, 7919):
            assert _is_probable_prime(p, rng)

    def test_small_composites(self):
        rng = Random(0)
        for c in (1, 4, 9, 15, 561, 7917):  # 561 is a Carmichael number
            assert not _is_probable_prime(c, rng)


class TestEncryptDecrypt:
    def test_round_trip(self, scheme):
        for m in (0, 1, -1, 12345, -98765, 2**40):
            assert scheme.decrypt(scheme.encrypt(m)) == m

    def test_crt_matches_standard(self, scheme):
        for m in (0, 7, -7, 123456789):
            c = scheme.encrypt(m)
            assert scheme.decrypt(c) == scheme.decrypt_crt(c)

    def test_randomised(self, scheme):
        assert scheme.encrypt(5) != scheme.encrypt(5)

    def test_ciphertext_in_group(self, scheme):
        c = scheme.encrypt(9)
        assert 0 < c < scheme.n**2


class TestHomomorphism:
    def test_addition(self, scheme):
        c = scheme.add(scheme.encrypt(20), scheme.encrypt(22))
        assert scheme.decrypt(c) == 42

    def test_addition_with_negatives(self, scheme):
        c = scheme.add(scheme.encrypt(-50), scheme.encrypt(8))
        assert scheme.decrypt(c) == -42

    def test_add_plain(self, scheme):
        assert scheme.decrypt(scheme.add_plain(scheme.encrypt(40), 2)) == 42

    def test_mul_plain(self, scheme):
        assert scheme.decrypt(scheme.mul_plain(scheme.encrypt(6), 7)) == 42

    def test_column_aggregate(self, scheme):
        values = np.array([5, -2, 9, 0, 11], dtype=np.int64)
        cipher = scheme.encrypt_column(values)
        total = scheme.aggregate(cipher)
        assert scheme.decrypt(total) == 23

    def test_masked_aggregate(self, scheme):
        values = np.array([5, -2, 9], dtype=np.int64)
        cipher = scheme.encrypt_column(values)
        mask = np.array([True, False, True])
        assert scheme.decrypt(scheme.aggregate(cipher, mask)) == 14

    def test_empty_aggregate_is_identity(self, scheme):
        cipher = scheme.encrypt_column(np.array([], dtype=np.int64))
        assert scheme.decrypt_crt(scheme.aggregate(cipher) * scheme.encrypt(3)
                                  % scheme.n ** 2) == 3

    def test_zero_ciphertext(self, scheme):
        z = scheme.zero_ciphertext()
        c = scheme.add(z, scheme.encrypt(17))
        assert scheme.decrypt(c) == 17


@given(values=st.lists(st.integers(min_value=-(2**30), max_value=2**30),
                       min_size=1, max_size=12))
@settings(max_examples=25, deadline=None)
def test_property_homomorphic_sum(values):
    scheme = PaillierScheme(KEYS, seed=99)
    cipher = scheme.encrypt_column(np.array(values, dtype=object))
    assert scheme.decrypt(scheme.aggregate(cipher)) == sum(values)
