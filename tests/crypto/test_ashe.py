"""Tests for ASHE (repro.crypto.ashe): correctness, homomorphism,
telescoping, and the semantic-security sanity properties from Appendix A."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ashe import (
    AsheCiphertext,
    AsheScheme,
    check_overflow_headroom,
    from_signed,
    to_signed,
)
from repro.crypto.prf import Blake2Prf, SplitMix64Prf
from repro.errors import CryptoError, DecryptionError

KEY = b"0123456789abcdef0123456789abcdef"

signed_values = st.integers(min_value=-(2**40), max_value=2**40)


@pytest.fixture(params=[Blake2Prf, SplitMix64Prf], ids=lambda c: c.name)
def scheme(request) -> AsheScheme:
    return AsheScheme(request.param(KEY))


class TestScalarRoundTrip:
    def test_single_value(self, scheme):
        ct = scheme.encrypt(12345, 7)
        assert scheme.decrypt(ct) == 12345

    def test_negative_value(self, scheme):
        ct = scheme.encrypt(-99, 3)
        assert scheme.decrypt(ct) == -99

    def test_zero(self, scheme):
        assert scheme.decrypt(scheme.encrypt(0, 0)) == 0

    def test_identifier_zero_wraps_pad(self, scheme):
        # i=0 uses F(2^64 - 1) as the previous pad; must still round-trip.
        assert scheme.decrypt(scheme.encrypt(77, 0)) == 77

    def test_ciphertext_hides_plaintext(self, scheme):
        # The group element must differ from the plaintext (overwhelmingly).
        hits = sum(scheme.encrypt(m, i).value == m for i, m in enumerate(range(100)))
        assert hits == 0


class TestHomomorphism:
    def test_two_values(self, scheme):
        ct = scheme.encrypt(10, 1) + scheme.encrypt(32, 2)
        assert scheme.decrypt(ct) == 42

    def test_noncontiguous_ids(self, scheme):
        ct = scheme.encrypt(5, 10) + scheme.encrypt(6, 99) + scheme.encrypt(7, 55)
        assert scheme.decrypt(ct) == 18
        assert ct.ids.num_runs == 3

    def test_contiguous_ids_merge_runs(self, scheme):
        cts = [scheme.encrypt(m, i) for i, m in enumerate([1, 2, 3, 4])]
        total = cts[0] + cts[1] + cts[2] + cts[3]
        assert total.ids.num_runs == 1  # the compactness optimisation
        assert scheme.decrypt(total) == 10

    def test_sum_builtin(self, scheme):
        cts = [scheme.encrypt(m, i) for i, m in enumerate([5, 6, 7])]
        assert scheme.decrypt(sum(cts)) == 18

    def test_zero_identity(self, scheme):
        ct = scheme.encrypt(9, 4) + AsheCiphertext.zero()
        assert scheme.decrypt(ct) == 9


class TestColumnInterface:
    def test_round_trip(self, scheme):
        values = np.array([3, -1, 4, -1, 5, -9, 2, 6], dtype=np.int64)
        enc = scheme.encrypt_column(values, start_id=1000)
        assert enc.dtype == np.uint64
        assert scheme.decrypt_column(enc, 1000).tolist() == values.tolist()

    def test_column_matches_scalar(self, scheme):
        values = np.array([10, 20, 30], dtype=np.int64)
        enc = scheme.encrypt_column(values, start_id=5)
        for j in range(3):
            scalar = scheme.encrypt(int(values[j]), 5 + j)
            assert int(enc[j]) == scalar.value

    def test_empty_column(self, scheme):
        assert scheme.encrypt_column(np.array([], dtype=np.int64), 0).size == 0

    def test_2d_rejected(self, scheme):
        with pytest.raises(CryptoError, match="1-D"):
            scheme.encrypt_column(np.zeros((2, 2), dtype=np.int64), 0)


class TestAggregation:
    def test_full_aggregate_telescopes(self, scheme):
        values = np.arange(100, dtype=np.int64)
        enc = scheme.encrypt_column(values, start_id=0)
        ct = scheme.aggregate(enc, None, start_id=0)
        assert ct.ids.num_runs == 1
        assert scheme.decrypt_sum(ct.value, ct.ids) == values.sum()

    def test_masked_aggregate(self, scheme):
        values = np.array([1, 2, 3, 4, 5, 6], dtype=np.int64)
        mask = np.array([True, False, True, False, True, False])
        enc = scheme.encrypt_column(values, start_id=50)
        ct = scheme.aggregate(enc, mask, start_id=50)
        assert scheme.decrypt_sum(ct.value, ct.ids) == 9
        assert ct.ids.count() == 3

    def test_empty_selection(self, scheme):
        values = np.array([1, 2, 3], dtype=np.int64)
        enc = scheme.encrypt_column(values, start_id=0)
        ct = scheme.aggregate(enc, np.zeros(3, dtype=bool), start_id=0)
        assert scheme.decrypt_sum(ct.value, ct.ids) == 0

    def test_partition_merge(self, scheme):
        """Worker partials union into a driver result (the Figure 2 flow)."""
        v1 = np.array([10, 20], dtype=np.int64)
        v2 = np.array([30, 40], dtype=np.int64)
        e1 = scheme.encrypt_column(v1, start_id=0)
        e2 = scheme.encrypt_column(v2, start_id=2)
        partial = scheme.aggregate(e1, None, 0) + scheme.aggregate(e2, None, 2)
        assert partial.ids.num_runs == 1  # contiguous partitions coalesce
        assert scheme.decrypt_sum(partial.value, partial.ids) == 100

    def test_decrypt_needs_two_prf_evals_per_run(self, scheme):
        values = np.arange(1000, dtype=np.int64)
        enc = scheme.encrypt_column(values, start_id=0)
        ct = scheme.aggregate(enc, None, start_id=0)
        before = scheme.prf_evals
        scheme.decrypt_sum(ct.value, ct.ids)
        assert scheme.prf_evals - before == 2


class TestSecuritySanity:
    """Cheap observable consequences of IND-CPA (Appendix A.1)."""

    def test_same_plaintext_distinct_ids_distinct_ciphertexts(self, scheme):
        cts = {scheme.encrypt(42, i).value for i in range(200)}
        assert len(cts) == 200

    def test_ciphertext_bits_balanced(self):
        scheme = AsheScheme(SplitMix64Prf(KEY))
        enc = scheme.encrypt_column(np.zeros(4096, dtype=np.int64), start_id=0)
        bits = np.unpackbits(enc.view(np.uint8))
        assert 0.48 < bits.mean() < 0.52

    def test_wrong_key_garbage(self):
        enc = AsheScheme(SplitMix64Prf(KEY))
        dec = AsheScheme(SplitMix64Prf(b"fedcba9876543210fedcba9876543210"))
        ct = enc.encrypt(1234, 9)
        assert dec.decrypt(ct) != 1234


class TestSignedEncoding:
    @given(v=st.integers(min_value=-(2**63), max_value=2**63 - 1))
    @settings(max_examples=200, deadline=None)
    def test_to_from_signed_roundtrip(self, v):
        assert to_signed(from_signed(v)) == v

    def test_overflow_guard(self):
        check_overflow_headroom(1000, 10**6)  # fine
        with pytest.raises(DecryptionError, match="overflow"):
            check_overflow_headroom(2**40, 2**24)

    def test_overflow_guard_rejects_negative(self):
        with pytest.raises(CryptoError):
            check_overflow_headroom(-1, 10)


@given(values=st.lists(signed_values, min_size=1, max_size=60),
       start=st.integers(min_value=0, max_value=2**48))
@settings(max_examples=60, deadline=None)
def test_property_sum_of_any_subset(values, start):
    """decrypt(sum(Enc(m_i))) == sum(m_i) for arbitrary subsets and IDs."""
    scheme = AsheScheme(SplitMix64Prf(KEY))
    enc = scheme.encrypt_column(np.array(values, dtype=np.int64), start_id=start)
    rng = np.random.default_rng(len(values))
    mask = rng.random(len(values)) < 0.5
    ct = scheme.aggregate(enc, mask, start_id=start)
    expected = int(np.array(values, dtype=np.int64)[mask].sum())
    assert scheme.decrypt_sum(ct.value, ct.ids) == expected


@given(values=st.lists(signed_values, min_size=2, max_size=30))
@settings(max_examples=40, deadline=None)
def test_property_addition_associative_commutative(values):
    scheme = AsheScheme(SplitMix64Prf(KEY))
    cts = [scheme.encrypt(v, i) for i, v in enumerate(values)]
    forward = sum(cts)
    backward = sum(reversed(cts))
    assert forward.value == backward.value
    assert forward.ids == backward.ids
    assert scheme.decrypt(forward) == sum(values)
