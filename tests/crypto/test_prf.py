"""Tests for the PRF backends (repro.crypto.prf)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prf import (
    MASK64,
    AesCtrPrf,
    Blake2Prf,
    Prf,
    SplitMix64Prf,
    prf_from_name,
)
from repro.errors import CryptoError

KEY = b"0123456789abcdef0123456789abcdef"
OTHER_KEY = b"fedcba9876543210fedcba9876543210"

BACKENDS = [Blake2Prf, SplitMix64Prf, AesCtrPrf]


@pytest.fixture(params=BACKENDS, ids=lambda c: c.name)
def prf(request) -> Prf:
    return request.param(KEY)


class TestDeterminism:
    def test_same_input_same_output(self, prf):
        assert prf.eval_one(42) == prf.eval_one(42)

    def test_different_inputs_differ(self, prf):
        outputs = {prf.eval_one(i) for i in range(256)}
        assert len(outputs) == 256

    def test_key_separation(self, prf):
        other = type(prf)(OTHER_KEY)
        same = sum(prf.eval_one(i) == other.eval_one(i) for i in range(64))
        assert same == 0

    def test_output_in_range(self, prf):
        for i in [0, 1, 2**32, MASK64]:
            assert 0 <= prf.eval_one(i) <= MASK64


class TestVectorisedConsistency:
    def test_eval_many_matches_eval_one(self, prf):
        ids = np.array([0, 1, 5, 1000, 2**40, MASK64], dtype=np.uint64)
        many = prf.eval_many(ids)
        for idx, i in enumerate(ids.tolist()):
            assert many[idx] == prf.eval_one(i)

    def test_eval_range_matches_eval_one(self, prf):
        out = prf.eval_range(100, 16)
        for j in range(16):
            assert out[j] == prf.eval_one(100 + j)

    def test_eval_range_negative_start_wraps(self, prf):
        out = prf.eval_range(-1, 2)
        assert out[0] == prf.eval_one(MASK64)
        assert out[1] == prf.eval_one(0)

    def test_eval_range_empty(self, prf):
        assert prf.eval_range(0, 0).size == 0

    def test_eval_range_negative_count_rejected(self, prf):
        with pytest.raises(CryptoError):
            prf.eval_range(0, -1)


class TestStatisticalQuality:
    """The PRF output should look uniform; coarse chi-square style checks."""

    @pytest.mark.parametrize("cls", [Blake2Prf, SplitMix64Prf])
    def test_bit_balance(self, cls):
        prf = cls(KEY)
        outs = prf.eval_range(0, 4096)
        bits = np.unpackbits(outs.view(np.uint8))
        frac = bits.mean()
        assert 0.48 < frac < 0.52

    def test_splitmix_avalanche(self):
        prf = SplitMix64Prf(KEY)
        flips = []
        for i in range(200):
            a = prf.eval_one(i)
            b = prf.eval_one(i ^ 1)
            flips.append(bin(a ^ b).count("1"))
        assert 24 < np.mean(flips) < 40  # expect ~32 of 64 bits


class TestAesCtrPrfStructure:
    def test_two_lanes_per_block(self):
        """IDs 2k and 2k+1 come from the same AES block, different halves."""
        from repro.crypto.aes import Aes128

        prf = AesCtrPrf(KEY)
        aes = Aes128(KEY[:16])
        block = aes.encrypt_block((7).to_bytes(16, "big"))
        assert prf.eval_one(14) == int.from_bytes(block[:8], "big")
        assert prf.eval_one(15) == int.from_bytes(block[8:], "big")


class TestFactory:
    def test_known_names(self):
        for name in ("blake2", "splitmix64", "aes-ctr"):
            assert prf_from_name(name, KEY).eval_one(1) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(CryptoError, match="unknown PRF backend"):
            prf_from_name("rot13", KEY)

    def test_short_key_rejected(self):
        with pytest.raises(CryptoError, match="at least 16 bytes"):
            Blake2Prf(b"short")

    def test_non_bytes_key_rejected(self):
        with pytest.raises(CryptoError):
            SplitMix64Prf("not-bytes")  # type: ignore[arg-type]


@given(i=st.integers(min_value=0, max_value=MASK64))
@settings(max_examples=50, deadline=None)
def test_splitmix_scalar_matches_vector(i):
    prf = SplitMix64Prf(KEY)
    assert prf.eval_one(i) == int(prf.eval_many(np.array([i], dtype=np.uint64))[0])


@given(
    start=st.integers(min_value=-1, max_value=2**63),
    count=st.integers(min_value=0, max_value=64),
)
@settings(max_examples=30, deadline=None)
def test_splitmix_range_matches_many(start, count):
    prf = SplitMix64Prf(KEY)
    ids = (np.arange(count, dtype=np.uint64) + np.uint64(start & MASK64))
    assert np.array_equal(prf.eval_range(start, count), prf.eval_many(ids))
