"""Tests for DET (repro.crypto.det): PRP round-trip, determinism,
the equality leakage that motivates SPLASHE, and dictionary encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.det import DetScheme, DictionaryEncoder
from repro.errors import CryptoError

KEY = b"0123456789abcdef0123456789abcdef"

u64 = st.integers(min_value=0, max_value=2**64 - 1)


@pytest.fixture(params=["fast", "blake2"])
def det(request) -> DetScheme:
    return DetScheme(KEY, backend=request.param)


class TestPrpRoundTrip:
    def test_scalar(self, det):
        for m in [0, 1, 2**32, 2**63, 2**64 - 1]:
            assert det.decrypt_one(det.encrypt_one(m)) == m

    def test_column(self, det):
        values = np.array([0, 5, 5, 7, 2**40], dtype=np.int64)
        cipher = det.encrypt_column(values)
        assert det.decrypt_column(cipher).tolist() == values.tolist()

    def test_column_matches_scalar(self, det):
        values = np.arange(16)
        cipher = det.encrypt_column(values)
        for j, v in enumerate(values.tolist()):
            assert int(cipher[j]) == det.encrypt_one(v)

    @given(m=u64)
    @settings(max_examples=100, deadline=None)
    def test_property_bijection(self, m):
        det = DetScheme(KEY)
        assert det.decrypt_one(det.encrypt_one(m)) == m


class TestDeterminismAndLeakage:
    def test_equal_plaintexts_equal_ciphertexts(self, det):
        assert det.encrypt_one(42) == det.encrypt_one(42)

    def test_token_matches_column(self, det):
        col = det.encrypt_column(np.array([1, 2, 3, 2]))
        token = det.token(2)
        mask = col == np.uint64(token)
        assert mask.tolist() == [False, True, False, True]

    def test_frequency_is_visible(self, det):
        """DET leaks the histogram -- the very weakness SPLASHE removes."""
        values = np.array([0] * 70 + [1] * 30)
        cipher = det.encrypt_column(values)
        _, counts = np.unique(cipher, return_counts=True)
        assert sorted(counts.tolist()) == [30, 70]

    def test_key_separation(self):
        a = DetScheme(KEY)
        b = DetScheme(b"fedcba9876543210fedcba9876543210")
        assert a.encrypt_one(7) != b.encrypt_one(7)

    def test_no_fixed_points_in_small_range(self, det):
        # A random permutation of 2^64 elements has ~0 fixed points in any
        # small sample.
        hits = sum(det.encrypt_one(m) == m for m in range(512))
        assert hits == 0


class TestBackendsAgreeOnStructure:
    def test_backends_are_both_permutations_but_differ(self):
        fast = DetScheme(KEY, backend="fast")
        blake = DetScheme(KEY, backend="blake2")
        values = list(range(64))
        enc_fast = [fast.encrypt_one(v) for v in values]
        enc_blake = [blake.encrypt_one(v) for v in values]
        assert len(set(enc_fast)) == 64
        assert len(set(enc_blake)) == 64
        assert enc_fast != enc_blake

    def test_unknown_backend_rejected(self):
        with pytest.raises(CryptoError, match="unknown DET backend"):
            DetScheme(KEY, backend="rot13")

    def test_short_key_rejected(self):
        with pytest.raises(CryptoError, match="16 bytes"):
            DetScheme(b"short")


class TestDictionaryEncoder:
    def test_first_seen_order(self):
        enc = DictionaryEncoder()
        codes = enc.encode_column(["ca", "us", "ca", "in"])
        assert codes.tolist() == [0, 1, 0, 2]
        assert enc.cardinality == 3

    def test_decode_round_trip(self):
        enc = DictionaryEncoder()
        values = ["x", "y", "z", "y", "x"]
        codes = enc.encode_column(values)
        assert enc.decode_column(codes) == values

    def test_lookup_known(self):
        enc = DictionaryEncoder()
        enc.encode_column(["a", "b"])
        assert enc.lookup("b") == 1

    def test_lookup_unknown_raises(self):
        enc = DictionaryEncoder()
        with pytest.raises(CryptoError, match="not present"):
            enc.lookup("nope")

    def test_bad_code_raises(self):
        enc = DictionaryEncoder()
        enc.code("a")
        with pytest.raises(CryptoError, match="out of range"):
            enc.value(5)

    def test_shared_encoder_supports_joins(self):
        """Join columns encoded with one dictionary produce equal codes."""
        shared = DictionaryEncoder()
        left = shared.encode_column(["url1", "url2"])
        right = shared.encode_column(["url2", "url1", "url3"])
        assert left[1] == right[0]
        assert shared.known_values() == ["url1", "url2", "url3"]

    @given(values=st.lists(st.text(max_size=8), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_round_trip(self, values):
        enc = DictionaryEncoder()
        codes = enc.encode_column(values)
        assert enc.decode_column(codes) == values
