"""Tests for the batch crypto-kernel protocol (repro.crypto.kernel).

Three concerns live here:

- **Protocol conformance**: all five schemes satisfy :class:`Kernel`,
  declare their unsupported ops, and the declared-absent ops raise
  :class:`KernelUnsupported`.
- **Bit-identity**: every batch kernel is proven identical to the
  retained per-row reference path (``_encrypt_one`` / ``_decrypt_one`` /
  ``compare_words``) with hypothesis, across dtypes, empty arrays, and
  the edge identifiers 0 and ``2^64 - 1`` (wraparound).  The ``aes-ni``
  PRF backend is cross-checked against the from-scratch FIPS-197 AES on
  random keys and blocks.
- **Shims and counters**: deprecated per-value entry points warn exactly
  once per process, and ``AsheScheme.prf_evals`` stays exact when
  ``decrypt_column`` is hammered from many threads.
"""

import threading
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ashe import AsheScheme
from repro.crypto.det import DetScheme
from repro.crypto.kernel import (
    KERNEL_OPS,
    Kernel,
    PlainKernel,
    kernel_ops,
    reset_deprecation_warnings,
    validate_kernel,
    warn_deprecated_once,
)
from repro.crypto.ore import OreScheme, argextreme_packed
from repro.crypto.paillier import PaillierKeyPair, PaillierScheme
from repro.crypto.prf import HAVE_AESNI, MASK64, AesCtrPrf, AesNiCtrPrf, SplitMix64Prf
from repro.errors import CryptoError, KernelUnsupported

KEY = b"0123456789abcdef"


# Module scope is deliberate: the schemes are deterministic and stateless
# apart from counters, so hypothesis may safely reuse one instance across
# generated inputs (function scope trips its fixture health check).
@pytest.fixture(scope="module")
def ashe() -> AsheScheme:
    return AsheScheme(SplitMix64Prf(KEY))


@pytest.fixture(scope="module")
def det() -> DetScheme:
    return DetScheme(KEY)


@pytest.fixture(scope="module")
def ore() -> OreScheme:
    return OreScheme(KEY, nbits=32)


@pytest.fixture(scope="module")
def paillier() -> PaillierScheme:
    return PaillierScheme(PaillierKeyPair.generate(bits=256, seed=7), seed=7)


# -- protocol conformance ----------------------------------------------------


class TestProtocol:
    def test_all_schemes_satisfy_kernel(self, ashe, det, ore, paillier):
        for scheme in (ashe, det, ore, paillier, PlainKernel()):
            assert isinstance(scheme, Kernel)
            validate_kernel(scheme)

    def test_validate_rejects_non_kernel(self):
        class Half:
            def encrypt_column(self, values, start_id=0):
                return values

        with pytest.raises(CryptoError, match="decrypt_column"):
            validate_kernel(Half())

    def test_capability_maps(self, ashe, det, ore, paillier):
        assert kernel_ops(PlainKernel()) == {op: True for op in KERNEL_OPS}
        assert kernel_ops(ashe)["compare_column"] is False
        assert kernel_ops(ashe)["pad_range"] is True
        assert kernel_ops(det) == {
            "encrypt_column": True, "decrypt_column": True,
            "compare_column": True, "pad_range": False,
        }
        assert kernel_ops(ore) == {
            "encrypt_column": True, "decrypt_column": False,
            "compare_column": True, "pad_range": False,
        }
        assert kernel_ops(paillier)["compare_column"] is False

    def test_declared_absent_ops_raise(self, ashe, det, ore, paillier):
        one = np.ones(1, dtype=np.uint64)
        with pytest.raises(KernelUnsupported):
            ashe.compare_column(one, 0)
        with pytest.raises(KernelUnsupported):
            det.pad_range(0, 4)
        with pytest.raises(KernelUnsupported):
            ore.decrypt_column(one)
        with pytest.raises(KernelUnsupported):
            ore.pad_range(0, 4)
        with pytest.raises(KernelUnsupported):
            paillier.compare_column(one, 0)

    def test_kernel_unsupported_is_a_crypto_error(self):
        assert issubclass(KernelUnsupported, CryptoError)


class TestPlainKernel:
    def test_round_trip(self):
        plain = PlainKernel()
        values = np.array([-5, 0, 7, 2**40], dtype=np.int64)
        assert np.array_equal(plain.decrypt_column(plain.encrypt_column(values)), values)

    def test_compare_is_sign(self):
        cmp = PlainKernel().compare_column(np.array([1, 5, 9]), 5)
        assert cmp.dtype == np.int8
        assert cmp.tolist() == [-1, 0, 1]

    def test_pad_range_is_zeros(self):
        pads = PlainKernel().pad_range(123, 6)
        assert pads.dtype == np.uint64 and not pads.any() and pads.size == 6

    def test_rejects_matrices_and_negative_counts(self):
        with pytest.raises(CryptoError):
            PlainKernel().encrypt_column(np.zeros((2, 2)))
        with pytest.raises(CryptoError):
            PlainKernel().pad_range(0, -1)


# -- batch kernels vs the per-row reference path -----------------------------

#: Start identifiers covering both edges: 0 (pad reaches back to
#: ``F(2^64 - 1)``) and values near ``2^64 - 1`` (the range itself wraps).
edge_start_ids = st.sampled_from([0, 1, 1000, 2**32, MASK64 - 3, MASK64])
int64_columns = st.lists(
    st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=40
)


class TestAsheBatchVsReference:
    @settings(deadline=None, max_examples=40)
    @given(values=int64_columns, start=edge_start_ids)
    def test_encrypt_column_matches_encrypt_one(self, ashe, values, start):
        arr = np.array(values, dtype=np.int64)
        batch = ashe.encrypt_column(arr, start_id=start)
        reference = [
            ashe._encrypt_one(m, (start + j) & MASK64).value
            for j, m in enumerate(values)
        ]
        assert batch.dtype == np.uint64
        assert batch.tolist() == reference

    @settings(deadline=None, max_examples=40)
    @given(values=int64_columns, start=edge_start_ids)
    def test_decrypt_column_round_trips(self, ashe, values, start):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(
            ashe.decrypt_column(ashe.encrypt_column(arr, start), start), arr
        )

    @settings(deadline=None, max_examples=40)
    @given(start=edge_start_ids, count=st.integers(min_value=0, max_value=40))
    def test_pad_range_matches_scalar_boundary_evals(self, ashe, start, count):
        prf = SplitMix64Prf(KEY)
        batch = ashe.pad_range(start, count)
        reference = [
            (prf.eval_one((start + j) & MASK64)
             - prf.eval_one((start + j - 1) & MASK64)) & int(MASK64)
            for j in range(count)
        ]
        assert batch.tolist() == reference

    @pytest.mark.parametrize("dtype", [np.int64, np.int32, np.int16, np.uint64])
    def test_dtypes(self, ashe, dtype):
        arr = np.array([0, 1, 117, 2**14], dtype=dtype)
        plain = ashe.decrypt_column(ashe.encrypt_column(arr, 9), 9)
        assert plain.tolist() == arr.astype(np.int64).tolist()

    def test_empty_column(self, ashe):
        empty = np.empty(0, dtype=np.int64)
        assert ashe.encrypt_column(empty, 5).size == 0
        assert ashe.decrypt_column(np.empty(0, np.uint64), 5).size == 0
        assert ashe.pad_range(5, 0).size == 0

    def test_wraparound_range_covers_both_edge_ids(self, ashe):
        # IDs MASK64-1, MASK64, 0, 1: the range crosses 2^64 and the
        # telescoping stream must stay consistent with per-row pads.
        arr = np.array([11, -22, 33, -44], dtype=np.int64)
        cipher = ashe.encrypt_column(arr, start_id=MASK64 - 1)
        assert np.array_equal(ashe.decrypt_column(cipher, MASK64 - 1), arr)
        per_row = [
            ashe._encrypt_one(int(m), (MASK64 - 1 + j) & MASK64).value
            for j, m in enumerate(arr.tolist())
        ]
        assert cipher.tolist() == per_row


class TestDetBatchVsReference:
    @settings(deadline=None, max_examples=40)
    @given(values=int64_columns)
    def test_encrypt_decrypt_match_per_row(self, det, values):
        arr = np.array(values, dtype=np.int64)
        cipher = det.encrypt_column(arr)
        assert cipher.tolist() == [det._encrypt_one(m) for m in values]
        # _decrypt_one returns the raw Z_{2^64} element; decrypt_column
        # reinterprets it as two's-complement int64.
        assert det.decrypt_column(cipher).view(np.uint64).tolist() == [
            det._decrypt_one(int(c)) for c in cipher.tolist()
        ]
        assert np.array_equal(det.decrypt_column(cipher), arr)

    @settings(deadline=None, max_examples=25)
    @given(
        values=st.lists(st.integers(min_value=-50, max_value=50), max_size=30),
        needle=st.integers(min_value=-50, max_value=50),
    )
    def test_compare_column_is_equality(self, det, values, needle):
        cipher = det.encrypt_column(np.array(values, dtype=np.int64))
        cmp = det.compare_column(cipher, det.token(needle))
        assert cmp.dtype == np.int8
        assert cmp.tolist() == [0 if v == needle else 1 for v in values]

    @pytest.mark.parametrize("dtype", [np.int64, np.int32, np.int16])
    def test_dtypes(self, det, dtype):
        arr = np.array([-3, 0, 41], dtype=dtype)
        assert det.decrypt_column(det.encrypt_column(arr)).tolist() == arr.tolist()

    def test_empty_column(self, det):
        assert det.encrypt_column(np.empty(0, np.int64)).size == 0
        assert det.decrypt_column(np.empty(0, np.uint64)).size == 0


class TestOreBatchVsReference:
    @settings(deadline=None, max_examples=25)
    @given(values=st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1),
                           max_size=25))
    def test_encrypt_column_matches_encrypt_one(self, ore, values):
        cipher = ore.encrypt_column(np.array(values, dtype=np.int64))
        for row, m in zip(cipher, values):
            assert tuple(int(w) for w in row) == ore._encrypt_one(m)

    @settings(deadline=None, max_examples=25)
    @given(
        values=st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1),
                        min_size=1, max_size=25),
        needle=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    )
    def test_compare_column_matches_compare_words(self, ore, values, needle):
        cipher = ore.encrypt_column(np.array(values, dtype=np.int64))
        token = ore.token(needle)
        batch = ore.compare_column(cipher, token)
        per_row = [
            OreScheme.compare_words(tuple(int(w) for w in row), token)
            for row in cipher
        ]
        assert batch.tolist() == per_row

    @settings(deadline=None, max_examples=25)
    @given(values=st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1),
                           min_size=1, max_size=25))
    def test_argextreme_matches_python_loop(self, ore, values):
        cipher = ore.encrypt_column(np.array(values, dtype=np.int64))
        # The tournament's tie-break is pairwise, so with duplicated
        # extremes any tied index is a valid winner; the contract is
        # that the returned row *holds* the extreme, deterministically.
        lo = argextreme_packed(cipher, "min")
        hi = argextreme_packed(cipher, "max")
        assert values[lo] == min(values)
        assert values[hi] == max(values)
        assert lo == argextreme_packed(cipher, "min")
        assert hi == argextreme_packed(cipher, "max")

    def test_empty_column(self, ore):
        assert ore.encrypt_column(np.empty(0, np.int64)).shape[0] == 0
        with pytest.raises(CryptoError):
            argextreme_packed(np.empty((0, 4), np.uint64), "min")


class TestPaillierBatch:
    def test_decrypt_column_inverts_encrypt_column(self, paillier):
        values = np.array([-9, 0, 1, 123456], dtype=np.int64)
        cipher = paillier.encrypt_column(values)
        plain = paillier.decrypt_column(cipher)
        assert plain.dtype == np.int64
        assert np.array_equal(plain, values)

    def test_empty_column(self, paillier):
        assert paillier.decrypt_column(np.empty(0, dtype=object)).size == 0


# -- aes-ni backend vs the from-scratch FIPS-197 reference ------------------


@pytest.mark.skipif(not HAVE_AESNI, reason="cryptography not installed")
class TestAesNiCrossCheck:
    @settings(deadline=None, max_examples=20)
    @given(
        key=st.binary(min_size=16, max_size=16),
        ids=st.lists(st.integers(min_value=0, max_value=int(MASK64)), max_size=20),
    )
    def test_eval_many_matches_from_scratch(self, key, ids):
        ni, ref = AesNiCtrPrf(key), AesCtrPrf(key)
        arr = np.array(ids, dtype=np.uint64)
        assert np.array_equal(ni.eval_many(arr), ref.eval_many(arr))
        for i in ids[:4]:
            assert ni.eval_one(i) == ref.eval_one(i)

    @settings(deadline=None, max_examples=20)
    @given(
        key=st.binary(min_size=16, max_size=16),
        start=st.sampled_from([0, 1, 2**33 - 1, MASK64 - 5, MASK64]),
        count=st.integers(min_value=0, max_value=32),
    )
    def test_eval_range_matches_including_wraparound(self, key, start, count):
        ni, ref = AesNiCtrPrf(key), AesCtrPrf(key)
        assert np.array_equal(ni.eval_range(start, count), ref.eval_range(start, count))

    def test_negative_start_wraps(self):
        ni, ref = AesNiCtrPrf(KEY), AesCtrPrf(KEY)
        assert np.array_equal(ni.eval_range(-1, 3), ref.eval_range(-1, 3))


# -- deprecation shims -------------------------------------------------------


@pytest.fixture
def fresh_warnings():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


class TestWarnOnceShims:
    def _count_warnings(self, fn) -> int:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fn()
        return sum(issubclass(w.category, DeprecationWarning) for w in caught)

    def test_ashe_encrypt_warns_once(self, ashe, fresh_warnings):
        assert self._count_warnings(lambda: ashe.encrypt(5, 1)) == 1
        assert self._count_warnings(lambda: ashe.encrypt(6, 2)) == 0

    def test_det_shims_warn_once_each(self, det, fresh_warnings):
        assert self._count_warnings(lambda: det.encrypt_one(5)) == 1
        assert self._count_warnings(lambda: det.decrypt_one(det._encrypt_one(5))) == 1
        assert self._count_warnings(lambda: det.encrypt_one(9)) == 0

    def test_ore_encrypt_one_warns_once(self, ore, fresh_warnings):
        assert self._count_warnings(lambda: ore.encrypt_one(5)) == 1
        assert self._count_warnings(lambda: ore.encrypt_one(6)) == 0

    def test_tokens_never_warn(self, det, ore, fresh_warnings):
        assert self._count_warnings(lambda: (det.token(1), ore.token(1))) == 0

    def test_reset_rearms_the_warning(self, fresh_warnings):
        assert self._count_warnings(
            lambda: warn_deprecated_once("k", "gone")) == 1
        assert self._count_warnings(
            lambda: warn_deprecated_once("k", "gone")) == 0
        reset_deprecation_warnings()
        assert self._count_warnings(
            lambda: warn_deprecated_once("k", "gone")) == 1


# -- counter thread-safety ---------------------------------------------------


class TestCounterThreadSafety:
    def test_prf_evals_exact_under_concurrent_decrypt_column(self):
        ashe = AsheScheme(SplitMix64Prf(KEY))  # fresh counter for exactness
        rows, n_threads, iterations = 512, 8, 20
        values = np.arange(rows, dtype=np.int64)
        cipher = ashe.encrypt_column(values, start_id=1)
        after_encrypt = ashe.prf_evals
        assert after_encrypt == rows + 1

        errors: list[Exception] = []
        start = threading.Barrier(n_threads)

        def hammer():
            try:
                start.wait()
                for _ in range(iterations):
                    out = ashe.decrypt_column(cipher, start_id=1)
                    assert np.array_equal(out, values)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        # Every decrypt_column costs exactly rows+1 evaluations; a racy
        # `+=` would lose increments under this load.
        expected = after_encrypt + n_threads * iterations * (rows + 1)
        assert ashe.prf_evals == expected
