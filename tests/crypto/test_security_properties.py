"""Statistical security properties from the paper's Appendix A.

These are not proofs (Appendix A has those); they are the observable
consequences a practitioner can check:

- ASHE ciphertexts are indistinguishable from uniform regardless of the
  plaintext (Lemma 1's consequence), including across chosen-plaintext
  pairs -- a distinguishing experiment run statistically.
- Enhanced SPLASHE's released view depends only on (n, c, j)
  (Definition 1 / Lemma 2): two databases with wildly different value
  distributions but equal (n, c, j) produce DET columns with identical
  frequency profiles.
"""

import numpy as np
import pytest
from scipy import stats

from repro.core import splashe
from repro.crypto.ashe import AsheScheme
from repro.crypto.det import DetScheme
from repro.crypto.prf import Blake2Prf, SplitMix64Prf

KEY = b"0123456789abcdef0123456789abcdef"


class TestAsheIndistinguishability:
    """IND-CPA flavour: ciphertext distribution does not depend on m."""

    @pytest.mark.parametrize("prf_cls", [SplitMix64Prf, Blake2Prf])
    def test_ciphertexts_uniform_over_bytes(self, prf_cls):
        scheme = AsheScheme(prf_cls(KEY))
        n = 4096 if prf_cls is SplitMix64Prf else 512
        cipher = scheme.encrypt_column(np.zeros(n, dtype=np.int64), start_id=0)
        counts = np.bincount(cipher.view(np.uint8), minlength=256)
        p = stats.chisquare(counts).pvalue
        assert p > 1e-4  # not rejectably non-uniform

    def test_chosen_plaintext_distinguisher_fails(self):
        """Encrypt m0=0 or m1=2^40 under fresh IDs; a threshold
        distinguisher on the ciphertext value should be at chance."""
        scheme = AsheScheme(SplitMix64Prf(KEY))
        n = 2000
        c0 = scheme.encrypt_column(np.zeros(n, dtype=np.int64), start_id=0)
        c1 = scheme.encrypt_column(
            np.full(n, 1 << 40, dtype=np.int64), start_id=n
        )
        # Best threshold distinguisher: compare medians / KS statistic.
        ks = stats.ks_2samp(
            c0.astype(np.float64), c1.astype(np.float64)
        )
        assert ks.pvalue > 1e-3

    def test_identical_plaintexts_distinct_ids_look_independent(self):
        scheme = AsheScheme(SplitMix64Prf(KEY))
        cipher = scheme.encrypt_column(np.full(4096, 7, dtype=np.int64), 0)
        # Lag-1 serial correlation of ciphertext words should vanish.
        x = cipher.astype(np.float64)
        r = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert abs(r) < 0.05


class TestSplasheSimulationProperty:
    """The adversary's view depends only on (n, c, j)."""

    @staticmethod
    def _balanced_histogram(counts_by_code: dict[int, int], frequent: list[int],
                            cardinality: int, seed: int) -> np.ndarray:
        codes = np.concatenate([
            np.full(count, code, dtype=np.int64)
            for code, count in counts_by_code.items()
        ])
        rng = np.random.default_rng(seed)
        rng.shuffle(codes)
        det = splashe.balance_det_codes(codes, frequent, cardinality, rng)
        return np.sort(np.bincount(det, minlength=cardinality))

    def test_same_n_c_j_same_view(self):
        """Two very different distributions with equal (n, c, j) yield the
        same (sorted) DET histogram -- what a simulator would output."""
        n, j, c = 1200, 2, 4  # rows, frequent values, infrequent values
        dist_a = {0: 500, 1: 400, 2: 150, 3: 100, 4: 40, 5: 10}
        dist_b = {0: 600, 1: 300, 2: 75, 3: 75, 4: 75, 5: 75}
        assert sum(dist_a.values()) == sum(dist_b.values()) == n
        h_a = self._balanced_histogram(dist_a, [0, 1], 6, seed=1)
        h_b = self._balanced_histogram(dist_b, [0, 1], 6, seed=2)
        assert np.array_equal(h_a, h_b)

    def test_det_ciphertext_column_reveals_only_counts(self):
        """After balancing + DET, the server-visible column is a uniform
        histogram over c distinct ciphertexts: exactly (n, c)."""
        rng = np.random.default_rng(3)
        codes = np.concatenate([
            np.zeros(800, dtype=np.int64), rng.integers(1, 5, 200)
        ])
        rng.shuffle(codes)
        det_codes = splashe.balance_det_codes(codes, [0], 5, rng)
        det = DetScheme(KEY)
        cipher = det.encrypt_column(det_codes)
        _, counts = np.unique(cipher, return_counts=True)
        assert len(counts) == 4  # c infrequent values
        assert counts.max() - counts.min() <= 1
        assert counts.sum() == 1000  # n


class TestOreLeakageBound:
    """ORE leaks order + inddiff and nothing about the shared prefix."""

    def test_prefix_trits_identical_below_diff(self):
        from repro.crypto.ore import OreScheme

        ore = OreScheme(KEY, nbits=16, signed=False)
        a = ore.encrypt_one(0b1010_1010_0000_0000)
        b = ore.encrypt_one(0b1010_1010_1111_1111)
        diff = ore.first_diff_index(a, b)
        assert diff == 9
        mask = (1 << (2 * (diff - 1))) - 1
        assert a[0] & mask == b[0] & mask

    def test_trits_uniform_across_keys(self):
        """For a fixed message, each trit is uniform over {0,1,2} across
        keys (the PRF term re-randomises per key).  Note that *within* one
        key the first trit only takes two values -- the leakage the scheme
        is allowed: u_1 = F_k(empty prefix) + b_1."""
        from repro.crypto.ore import OreScheme

        rng = np.random.default_rng(0)
        trits = []
        for trial in range(600):
            key = rng.bytes(32)
            ct = OreScheme(key, nbits=8, signed=False).encrypt_one(0b10110100)
            trits.append(ct[0] & 3)  # the MSB trit
        counts = np.bincount(np.asarray(trits), minlength=3)
        p = stats.chisquare(counts).pvalue
        assert p > 1e-4

    def test_first_trit_binary_within_one_key(self):
        """Within one key the MSB trit takes exactly two values over all
        messages: (F + 0) and (F + 1) mod 3."""
        from repro.crypto.ore import OreScheme

        ore = OreScheme(KEY, nbits=8, signed=False)
        cipher = ore.encrypt_column(np.arange(256))
        first_trits = set((cipher[:, 0] & np.uint64(3)).tolist())
        assert len(first_trits) == 2
