"""SeabedSession facade: translation cache, batching, back-compat shim."""

import numpy as np
import pytest

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import PreparedQuery, SeabedSession, TranslationCache
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.errors import PlanningError, TranslationError
from repro.ops import OPS
from repro.query.builder import col


def _populate(session, n=3000, seed=11):
    rng = np.random.default_rng(seed)
    data = {
        "value": rng.integers(0, 500, n).astype(np.int64),
        "hour": rng.integers(0, 24, n).astype(np.int64),
    }
    schema = TableSchema("events", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("hour", dtype="int", sensitive=False),
    ])
    session.create_plan(schema, [
        "SELECT sum(value) FROM events WHERE hour > 1",
        "SELECT hour, sum(value) FROM events GROUP BY hour",
    ])
    session.upload("events", data)
    return data


@pytest.fixture()
def sess():
    session = SeabedSession(mode="seabed", seed=5)
    data = _populate(session)
    return session, data


class TestTranslationCache:
    def test_lru_evicts_oldest(self):
        cache = TranslationCache(maxsize=2)
        a, b, c = object(), object(), object()
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a  # refresh "a"
        cache.put("c", c)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") is a
        assert cache.get("c") is c

    def test_zero_size_disables_caching(self):
        cache = TranslationCache(maxsize=0)
        cache.put("k", object())
        assert cache.get("k") is None

    def test_same_shape_translates_once(self, sess):
        session, data = sess
        before = OPS.snapshot()
        for h in range(8):
            got = session.query(
                f"SELECT sum(value) FROM events WHERE hour = {h}"
            ).rows[0]["sum(value)"]
            assert got == int(data["value"][data["hour"] == h].sum()) or got is None
        delta = OPS.delta(before)
        assert delta.get("translate") == 1
        assert delta.get("cache_hit") == 7
        assert session.cache_stats()["hits"] >= 7

    def test_distinct_shapes_get_distinct_entries(self, sess):
        session, _ = sess
        session.query("SELECT sum(value) FROM events WHERE hour = 1")
        session.query("SELECT sum(value) FROM events WHERE hour > 1")
        session.query("SELECT sum(value), count(*) FROM events WHERE hour = 1")
        assert session.cache_stats()["size"] == 3

    def test_expected_groups_is_part_of_the_key(self, sess):
        session, _ = sess
        sql = "SELECT hour, sum(value) FROM events GROUP BY hour"
        r1 = session.query(sql, expected_groups=4)
        r2 = session.query(sql)
        assert session.cache_stats()["size"] == 2
        assert r1.translation.inflation > 1  # 4 groups inflated toward 16 cores
        assert r2.translation.inflation == 1
        assert r1.rows == r2.rows  # inflation is invisible in the results

    def test_replanning_invalidates_cache(self, sess):
        session, data = sess
        session.query("SELECT sum(value) FROM events WHERE hour = 1")
        assert session.cache_stats()["size"] == 1
        # Re-planning replaces the table's encrypted schema: every cached
        # translation is stale and must be dropped.
        schema = session.table_state("events").schema
        session.create_plan(schema, [
            "SELECT sum(value) FROM events WHERE hour > 1",
            "SELECT hour, sum(value) FROM events GROUP BY hour",
        ])
        assert session.cache_stats()["size"] == 0
        got = session.query("SELECT sum(value) FROM events WHERE hour = 1")
        assert got.rows[0]["sum(value)"] == int(
            data["value"][data["hour"] == 1].sum()
        )

    def test_scan_shares_the_cache(self, sess):
        session, data = sess
        before = OPS.snapshot()
        for h in (1, 2, 3):
            rows = session.scan(
                f"SELECT value FROM events WHERE hour = {h}"
            ).rows
            assert len(rows) == int((data["hour"] == h).sum())
        assert OPS.delta(before).get("prepare") == 1


class TestFluentSurface:
    def test_table_builder_is_session_bound(self, sess):
        session, data = sess
        result = (
            session.table("events")
            .where(col("hour") > 20)
            .group_by("hour")
            .sum("value")
            .execute(expected_groups=24)
        )
        assert {r["hour"] for r in result.rows} == {21, 22, 23}
        for row in result.rows:
            assert row["sum(value)"] == int(
                data["value"][data["hour"] == row["hour"]].sum()
            )

    def test_builder_execute_with_params(self, sess):
        session, data = sess
        from repro.query.ast import Param

        result = (
            session.table("events")
            .where(col("hour") == Param("h"))
            .count()
            .execute(h=5)
        )
        assert result.rows[0]["count(*)"] == int((data["hour"] == 5).sum())

    def test_builder_params_use_the_translation_cache(self, sess):
        session, data = sess
        from repro.query.ast import Param

        builder = (
            session.table("events")
            .where(col("hour") == Param("h"))
            .count()
        )
        before = OPS.snapshot()
        for h in (1, 2, 3, 4):
            got = builder.execute(h=h).rows[0]["count(*)"]
            assert got == int((data["hour"] == h).sum())
        delta = OPS.delta(before)
        assert delta.get("translate", 0) <= 1  # one shape, one translation
        # Positional binding follows declaration order too.
        got = builder.execute(6).rows[0]["count(*)"]
        assert got == int((data["hour"] == 6).sum())

    def test_builder_prepare(self, sess):
        session, data = sess
        from repro.query.ast import Param

        prepared = (
            session.table("events")
            .where(col("hour") <= Param("hi"))
            .sum("value")
            .prepare()
        )
        assert isinstance(prepared, PreparedQuery)
        got = prepared.execute(hi=23).rows[0]["sum(value)"]
        assert got == int(data["value"].sum())


class TestQueryManyOverrides:
    def test_per_query_expected_groups(self, sess):
        session, data = sess
        grouped = "SELECT hour, sum(value) FROM events GROUP BY hour"
        flat = "SELECT sum(value) FROM events"
        results = session.query_many([
            (grouped, 4),
            flat,
            (grouped, None),
        ])
        assert results[0].translation.inflation > 1  # inflated toward 16 cores
        assert results[2].translation.inflation == 1
        assert results[0].rows == results[2].rows
        assert results[1].rows[0]["sum(value)"] == int(data["value"].sum())

    def test_flat_queries_unaffected_by_batch_groups(self, sess):
        session, data = sess
        total = int(data["value"].sum())
        results = session.query_many(
            ["SELECT sum(value) FROM events", ("SELECT count(*) FROM events", None)],
            expected_groups=4,
        )
        assert results[0].rows[0]["sum(value)"] == total
        assert results[1].rows[0]["count(*)"] == len(data["value"])

    def test_prepared_instances_in_batch(self, sess):
        session, data = sess
        p_flat = session.prepare("SELECT count(*) FROM events")
        p_param = session.prepare("SELECT count(*) FROM events WHERE hour = :h")
        before = OPS.snapshot()
        results = session.query_many([
            p_flat,
            (p_param, {"h": 3}),
            (p_param, {"h": 9}),
        ])
        assert OPS.delta(before).get("translate", 0) == 0
        assert results[0].rows[0]["count(*)"] == len(data["hour"])
        assert results[1].rows[0]["count(*)"] == int((data["hour"] == 3).sum())
        assert results[2].rows[0]["count(*)"] == int((data["hour"] == 9).sum())

    def test_malformed_batch_items_rejected(self, sess):
        session, _ = sess
        with pytest.raises(TranslationError, match="batch tuples"):
            session.query_many([("a", "b", "c")])
        with pytest.raises(TranslationError, match="expected_groups must be int"):
            session.query_many([("SELECT count(*) FROM events", "four")])
        p = session.prepare("SELECT count(*) FROM events")
        with pytest.raises(TranslationError, match="parameter mapping"):
            session.query_many([(p, 3)])

    def test_threaded_batch_matches_serial(self):
        threaded = SeabedSession(
            mode="seabed", seed=5,
            cluster=SimulatedCluster(ClusterConfig(backend="threads", workers=4)),
        )
        data = _populate(threaded)
        queries = [
            f"SELECT sum(value), count(*) FROM events WHERE hour = {h}"
            for h in range(10)
        ]
        results = threaded.query_many(queries)
        for h, result in enumerate(results):
            mask = data["hour"] == h
            assert result.rows[0]["count(*)"] == int(mask.sum())
            assert result.rows[0]["sum(value)"] == int(data["value"][mask].sum())


class TestBackCompatShim:
    def test_client_is_a_session(self):
        client = SeabedClient(mode="seabed", seed=5)
        assert isinstance(client, SeabedSession)
        data = _populate(client)
        got = client.query("SELECT sum(value) FROM events").rows[0]["sum(value)"]
        assert got == int(data["value"].sum())

    def test_result_types_importable_from_proxy(self):
        from repro.core.proxy import LinRegResult, QueryResult, UploadStats

        assert QueryResult([]).rows == []
        assert UploadStats("t", 0, 0.0, 0).table == "t"
        assert LinRegResult(1.0, 0.0, 1.0, 1, 2).total_time == 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(PlanningError, match="unknown client mode"):
            SeabedSession(mode="bogus")

    def test_unplanned_table_raises(self):
        session = SeabedSession(mode="seabed", seed=5)
        with pytest.raises(PlanningError, match="create_plan"):
            session.query("SELECT sum(v) FROM nope")
