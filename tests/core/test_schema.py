"""Tests for schema structures (repro.core.schema)."""

import pytest

from repro.core import schema as sc
from repro.errors import PlanningError


class TestTableSchema:
    def test_lookup(self):
        schema = sc.TableSchema("t", [sc.ColumnSpec("a"), sc.ColumnSpec("b")])
        assert schema.column("a").name == "a"
        assert schema.column_names() == ["a", "b"]

    def test_missing_column(self):
        schema = sc.TableSchema("t", [sc.ColumnSpec("a")])
        with pytest.raises(PlanningError, match="no column"):
            schema.column("z")

    def test_duplicate_names_rejected(self):
        with pytest.raises(PlanningError, match="duplicate"):
            sc.TableSchema("t", [sc.ColumnSpec("a"), sc.ColumnSpec("a")])

    def test_bad_dtype_rejected(self):
        with pytest.raises(PlanningError, match="dtype"):
            sc.ColumnSpec("a", dtype="float")

    def test_value_counts_imply_domain(self):
        spec = sc.ColumnSpec("a", dtype="str", value_counts={"x": 3, "y": 1})
        assert spec.distinct_values == ["x", "y"]
        assert spec.cardinality == 2


class TestColumnPlans:
    def test_ashe_physical_columns(self):
        plan = sc.AshePlan("a", "a__ashe", squares_column="a__sq__ashe",
                           ore_column="a__ore")
        assert plan.physical_columns() == ["a__ashe", "a__sq__ashe", "a__ore"]

    def test_splashe_basic_physical_columns(self):
        plan = sc.SplasheBasicPlan(
            column="d", values=["x", "y"],
            indicator_columns=["d@0__ind", "d@1__ind"],
            measure_columns={"m": ["m@d@0__ashe", "m@d@1__ashe"]},
        )
        assert len(plan.physical_columns()) == 4
        assert plan.code_of("y") == 1
        assert plan.code_of("zzz") is None

    def test_splashe_enhanced_structure(self):
        plan = sc.SplasheEnhancedPlan(
            column="d", values=list("abcd"), frequent_codes=[0, 1],
            det_column="d__det",
            indicator_columns={0: "d@0__ind", 1: "d@1__ind"},
            others_indicator="d@oth__ind",
            measure_columns={"m": {0: "m@d@0__ashe", 1: "m@d@1__ashe"}},
            others_measure={"m": "m@d@oth__ashe"},
        )
        assert plan.is_frequent(1) and not plan.is_frequent(2)
        assert "d__det" in plan.physical_columns()
        assert plan.cardinality == 4

    def test_encrypted_schema_lookup(self):
        enc = sc.EncryptedSchema(
            table="t", mode="seabed",
            plans={"a": sc.PlainPlan(column="a")},
        )
        assert enc.plan("a").kind == "plain"
        with pytest.raises(PlanningError, match="no plan"):
            enc.plan("z")
        assert enc.physical_columns() == ["a"]
        assert enc.plans_of_kind("plain") == [enc.plan("a")]

    def test_naming_helpers(self):
        assert sc.ashe_col("x") == "x__ashe"
        assert sc.splashe_measure_col("m", "d", 3) == "m@d@3__ashe"
        assert sc.splashe_indicator_col("d", "oth") == "d@oth__ind"
