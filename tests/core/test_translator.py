"""Tests for the query translator (repro.core.translator).

These check the *structure* of rewrites (the paper's Table 2 claims);
value-level correctness is covered by the integration suite.
"""

import numpy as np
import pytest

from repro.core import server as srv
from repro.core.crypto_factory import CryptoFactory
from repro.core.encryptor import ClientTableState, EncryptionModule
from repro.core.planner import Planner
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.translator import QueryTranslator, inflation_factor
from repro.crypto.keys import KeyChain
from repro.errors import TranslationError
from repro.query.parser import parse_query


def build_state(mode="seabed"):
    schema = TableSchema("t", [
        ColumnSpec("amount", dtype="int", sensitive=True),
        ColumnSpec("country", dtype="str", sensitive=True,
                   distinct_values=["us", "ca", "in", "uk"],
                   value_counts={"us": 500, "ca": 400, "in": 60, "uk": 40}),
        ColumnSpec("gender", dtype="str", sensitive=True,
                   distinct_values=["m", "f"]),
        ColumnSpec("ts", dtype="int", sensitive=True, nbits=16),
        ColumnSpec("year", dtype="int", sensitive=False),
    ])
    samples = [
        parse_query("SELECT sum(amount), var(amount) FROM t WHERE country = 'us'"),
        parse_query("SELECT sum(amount) FROM t WHERE gender = 'f'"),
        parse_query("SELECT sum(amount) FROM t WHERE ts > 5"),
        parse_query("SELECT min(amount) FROM t"),
        parse_query("SELECT country, sum(amount) FROM t GROUP BY country"),
    ]
    enc, _ = Planner(mode=mode).plan(schema, samples)
    state = ClientTableState(schema=schema, enc_schema=enc)
    factory = CryptoFactory(KeyChain(b"k" * 32), "t")
    rng = np.random.default_rng(0)
    n = 300
    columns = {
        "amount": rng.integers(0, 100, n),
        "country": rng.choice(["us", "ca", "in", "uk"], n, p=[0.5, 0.4, 0.06, 0.04]),
        "gender": rng.choice(["m", "f"], n),
        "ts": rng.integers(0, 100, n),
        "year": rng.integers(2014, 2017, n),
    }
    EncryptionModule(factory, seed=0).encrypt_batch(state, columns, num_partitions=2)
    return state, factory


@pytest.fixture(scope="module")
def translator():
    state, factory = build_state()
    return QueryTranslator(state, factory)


class TestBasicRewrites:
    def test_simple_sum_targets_cipher_column(self, translator):
        tq = translator.translate(parse_query("SELECT sum(amount) FROM t"))
        assert tq.shape == "flat"
        agg = tq.requests[0].aggs[0]
        assert isinstance(agg, srv.AsheSum)
        assert agg.column == "amount__ashe"

    def test_plain_predicate_stays_plain(self, translator):
        tq = translator.translate(
            parse_query("SELECT sum(amount) FROM t WHERE year = 2015")
        )
        assert isinstance(tq.requests[0].filter, srv.PlainCmp)

    def test_range_predicate_becomes_ore_token(self, translator):
        tq = translator.translate(
            parse_query("SELECT sum(amount) FROM t WHERE ts > 5")
        )
        f = tq.requests[0].filter
        assert isinstance(f, srv.OreCmp)
        assert f.column == "ts__ore"
        assert f.token != (5,)  # the constant is encrypted, not literal

    def test_between_becomes_and_of_ore(self, translator):
        tq = translator.translate(
            parse_query("SELECT sum(amount) FROM t WHERE ts BETWEEN 3 AND 9")
        )
        f = tq.requests[0].filter
        assert isinstance(f, srv.FilterAnd) and len(f.children) == 2

    def test_count_star_reuses_ashe_ids(self, translator):
        """Table 2's ID-preservation: the count comes off the sum's ID
        list, not a second scan."""
        tq = translator.translate(
            parse_query("SELECT sum(amount), count(*) FROM t WHERE ts > 5")
        )
        count_item = tq.outputs[1]
        assert count_item.count_mode == "ids"
        assert len(tq.requests[0].aggs) == 1  # no extra count op

    def test_avg_splits_into_sum_and_count(self, translator):
        tq = translator.translate(parse_query("SELECT avg(amount) FROM t"))
        item = tq.outputs[0]
        assert item.kind == "avg"
        assert item.sum_refs and item.count_refs

    def test_variance_uses_squares_column(self, translator):
        tq = translator.translate(parse_query("SELECT var(amount) FROM t"))
        item = tq.outputs[0]
        sq_alias = item.sumsq_refs[0][1]
        agg = {a.alias: a for a in tq.requests[0].aggs}[sq_alias]
        assert agg.column == "amount__sq__ashe"
        assert tq.category == "CPre"

    def test_min_uses_ore_with_ashe_payload(self, translator):
        tq = translator.translate(parse_query("SELECT min(amount) FROM t"))
        agg = tq.requests[0].aggs[0]
        assert isinstance(agg, srv.OreExtreme)
        assert agg.ore_column == "amount__ore"
        assert agg.payload_column == "amount__ashe"

    def test_projection_rejected(self, translator):
        with pytest.raises(TranslationError, match="aggregation queries"):
            translator.translate(parse_query("SELECT amount FROM t WHERE ts > 5"))


class TestSplasheRewrites:
    def test_equality_on_splashe_dim_vanishes(self, translator):
        """The Table 2 SPLASHE rewrite: the WHERE clause disappears and the
        aggregation retargets a splayed column."""
        tq = translator.translate(
            parse_query("SELECT sum(amount) FROM t WHERE gender = 'f'")
        )
        req = tq.requests[0]
        assert req.filter is None
        assert req.aggs[0].column.startswith("amount@gender@")

    def test_enhanced_frequent_value_uses_splayed_column(self, translator):
        tq = translator.translate(
            parse_query("SELECT sum(amount) FROM t WHERE country = 'us'")
        )
        req = tq.requests[0]
        assert req.filter is None
        assert "amount@country@" in req.aggs[0].column

    def test_enhanced_infrequent_value_uses_det_filtered_catchall(self, translator):
        tq = translator.translate(
            parse_query("SELECT sum(amount) FROM t WHERE country = 'uk'")
        )
        # Side request: catch-all column with a DET filter.
        assert len(tq.requests) == 2
        side = tq.requests[1]
        assert isinstance(side.filter, srv.DetEq)
        assert side.filter.column == "country__det"
        assert side.aggs[0].column == "amount@country@oth__ashe"

    def test_unknown_value_yields_no_refs(self, translator):
        tq = translator.translate(
            parse_query("SELECT sum(amount) FROM t WHERE gender = 'x'")
        )
        assert tq.outputs[0].sum_refs == []

    def test_count_uses_indicators(self, translator):
        tq = translator.translate(
            parse_query("SELECT count(*) FROM t WHERE gender = 'm'")
        )
        alias = tq.outputs[0].count_refs[0][1]
        agg = {a.alias: a for a in tq.requests[0].aggs}[alias]
        assert agg.column == "gender@0__ind"

    def test_in_list_sums_multiple_columns(self, translator):
        tq = translator.translate(
            parse_query("SELECT sum(amount) FROM t WHERE gender IN ('m', 'f')")
        )
        assert len(tq.outputs[0].sum_refs) == 2

    def test_or_with_splashe_rejected(self, translator):
        with pytest.raises(TranslationError, match="top-level"):
            translator.translate(parse_query(
                "SELECT sum(amount) FROM t WHERE gender = 'm' OR ts > 5"
            ))

    def test_range_on_splashe_rejected(self, translator):
        with pytest.raises(TranslationError, match="top-level equality"):
            translator.translate(parse_query(
                "SELECT sum(amount) FROM t WHERE gender > 'a'"
            ))


class TestGroupByRewrites:
    def test_group_by_plain(self, translator):
        tq = translator.translate(
            parse_query("SELECT year, sum(amount) FROM t GROUP BY year")
        )
        assert tq.shape == "grouped"
        assert tq.requests[0].group_by == "year"
        assert tq.group_decode == "plain"

    def test_group_by_splashe_basic(self, translator):
        tq = translator.translate(
            parse_query("SELECT gender, sum(amount) FROM t GROUP BY gender")
        )
        assert tq.shape == "splashe_group"
        assert tq.group_request is None  # basic: no grouped request at all
        assert tq.splashe_group_codes == [0, 1]

    def test_group_by_splashe_enhanced_adds_catchall_request(self, translator):
        tq = translator.translate(
            parse_query("SELECT country, sum(amount) FROM t GROUP BY country")
        )
        assert tq.shape == "splashe_group"
        assert tq.group_request == 1
        assert tq.requests[1].group_by == "country__det"

    def test_group_by_ore_rejected(self, translator):
        with pytest.raises(TranslationError, match="GROUP BY"):
            translator.translate(
                parse_query("SELECT ts, sum(amount) FROM t GROUP BY ts")
            )

    def test_multi_column_group_rejected(self, translator):
        with pytest.raises(TranslationError, match="single-column"):
            translator.translate(parse_query(
                "SELECT year, gender, sum(amount) FROM t GROUP BY year, gender"
            ))

    def test_inflation_applied_when_groups_fewer_than_cores(self, translator):
        tq = translator.translate(
            parse_query("SELECT year, sum(amount) FROM t GROUP BY year"),
            cores=64, expected_groups=4,
        )
        assert tq.inflation == 16
        assert tq.requests[0].inflation == 16

    def test_group_codec_drops_ranges(self, translator):
        """Section 4.5: group-by results use VB+Diff without ranges."""
        tq = translator.translate(
            parse_query("SELECT year, sum(amount) FROM t GROUP BY year")
        )
        assert tq.requests[0].aggs[0].codec == "groupby"


class TestInflationFactor:
    def test_fewer_groups_than_cores(self):
        assert inflation_factor(10, 100) == 10

    def test_more_groups_than_cores(self):
        assert inflation_factor(1000, 100) == 1

    def test_zero_groups(self):
        assert inflation_factor(0, 100) == 1

    def test_paper_example(self):
        """Section 4.5's example: 10 groups, 100 workers -> x10."""
        assert inflation_factor(10, 100) == 10


class TestCategories:
    def test_server_only(self, translator):
        tq = translator.translate(parse_query("SELECT sum(amount) FROM t"))
        assert tq.category == "S"

    def test_avg_is_still_server(self, translator):
        tq = translator.translate(parse_query("SELECT avg(amount) FROM t"))
        assert tq.category == "S"

    def test_stddev_is_cpre(self, translator):
        tq = translator.translate(parse_query("SELECT stddev(amount) FROM t"))
        assert tq.category == "CPre"
