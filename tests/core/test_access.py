"""Tests for proxy-side access control (repro.core.access)."""

import numpy as np
import pytest

from repro.core.access import AccessController, AccessError
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema


class TestController:
    def test_grant_and_check(self):
        ac = AccessController()
        ac.grant("alice")
        ac.check("alice", "any_table")  # no exception

    def test_table_scoped_grant(self):
        ac = AccessController()
        ac.grant("bob", {"sales"})
        ac.check("bob", "sales")
        with pytest.raises(AccessError, match="may not query"):
            ac.check("bob", "salaries")

    def test_revocation_is_immediate(self):
        ac = AccessController()
        ac.grant("carol")
        ac.revoke("carol")
        with pytest.raises(AccessError, match="revoked"):
            ac.check("carol", "sales")
        assert not ac.is_active("carol")

    def test_regrant_unrevokes(self):
        ac = AccessController()
        ac.grant("dave")
        ac.revoke("dave")
        ac.grant("dave", {"sales"})
        ac.check("dave", "sales")

    def test_limit_narrows_access(self):
        ac = AccessController()
        ac.grant("erin")
        ac.limit("erin", {"sales"})
        with pytest.raises(AccessError):
            ac.check("erin", "other")

    def test_limit_requires_active_grant(self):
        ac = AccessController()
        with pytest.raises(AccessError, match="no active grant"):
            ac.limit("nobody", {"sales"})

    def test_unknown_user_rejected(self):
        ac = AccessController()
        with pytest.raises(AccessError, match="no grant"):
            ac.check("mallory", "sales")
        with pytest.raises(AccessError, match="never granted"):
            ac.revoke("mallory")

    def test_missing_user_rejected(self):
        ac = AccessController()
        with pytest.raises(AccessError, match="user is required"):
            ac.check(None, "sales")


class TestProxyIntegration:
    @pytest.fixture(scope="class")
    def client(self):
        schema = TableSchema("sales", [
            ColumnSpec("amount", dtype="int", sensitive=True),
        ])
        client = SeabedClient(mode="seabed", access_control=True, seed=1)
        client.create_plan(schema, ["SELECT sum(amount) FROM sales"])
        client.upload("sales", {"amount": np.arange(100)})
        return client

    def test_authorised_query(self, client):
        client.access.grant("analyst", {"sales"})
        result = client.query("SELECT sum(amount) FROM sales", user="analyst")
        assert result.rows == [{"sum(amount)": 4950}]

    def test_anonymous_rejected(self, client):
        with pytest.raises(AccessError, match="user is required"):
            client.query("SELECT sum(amount) FROM sales")

    def test_revoked_without_reencryption(self, client):
        """Revocation takes effect while the server data is untouched --
        the paper's point about proxy-held symmetric keys."""
        client.access.grant("temp", {"sales"})
        before = client.server.table("sales").memory_bytes()
        client.access.revoke("temp")
        with pytest.raises(AccessError, match="revoked"):
            client.query("SELECT sum(amount) FROM sales", user="temp")
        assert client.server.table("sales").memory_bytes() == before

    def test_disabled_by_default(self):
        schema = TableSchema("t", [ColumnSpec("a", dtype="int", sensitive=True)])
        client = SeabedClient(mode="seabed", seed=1)
        client.create_plan(schema, ["SELECT sum(a) FROM t"])
        client.upload("t", {"a": np.arange(10)})
        assert client.query("SELECT sum(a) FROM t").rows[0]["sum(a)"] == 45
