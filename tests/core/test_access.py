"""Tests for proxy-side access control (repro.core.access)."""

import numpy as np
import pytest

from repro.core.access import AccessController, AccessError
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema


class TestController:
    def test_grant_and_check(self):
        ac = AccessController()
        ac.grant("alice")
        ac.check("alice", "any_table")  # no exception

    def test_table_scoped_grant(self):
        ac = AccessController()
        ac.grant("bob", {"sales"})
        ac.check("bob", "sales")
        with pytest.raises(AccessError, match="may not query"):
            ac.check("bob", "salaries")

    def test_revocation_is_immediate(self):
        ac = AccessController()
        ac.grant("carol")
        ac.revoke("carol")
        with pytest.raises(AccessError, match="revoked"):
            ac.check("carol", "sales")
        assert not ac.is_active("carol")

    def test_regrant_unrevokes(self):
        ac = AccessController()
        ac.grant("dave")
        ac.revoke("dave")
        ac.grant("dave", {"sales"})
        ac.check("dave", "sales")

    def test_limit_narrows_access(self):
        ac = AccessController()
        ac.grant("erin")
        ac.limit("erin", {"sales"})
        with pytest.raises(AccessError):
            ac.check("erin", "other")

    def test_limit_requires_active_grant(self):
        ac = AccessController()
        with pytest.raises(AccessError, match="no active grant"):
            ac.limit("nobody", {"sales"})

    def test_unknown_user_rejected(self):
        ac = AccessController()
        with pytest.raises(AccessError, match="no grant"):
            ac.check("mallory", "sales")
        with pytest.raises(AccessError, match="never granted"):
            ac.revoke("mallory")

    def test_missing_user_rejected(self):
        ac = AccessController()
        with pytest.raises(AccessError, match="user is required"):
            ac.check(None, "sales")


class TestProxyIntegration:
    @pytest.fixture(scope="class")
    def client(self):
        schema = TableSchema("sales", [
            ColumnSpec("amount", dtype="int", sensitive=True),
        ])
        client = SeabedClient(mode="seabed", access_control=True, seed=1)
        client.create_plan(schema, ["SELECT sum(amount) FROM sales"])
        client.upload("sales", {"amount": np.arange(100)})
        return client

    def test_authorised_query(self, client):
        client.access.grant("analyst", {"sales"})
        result = client.query("SELECT sum(amount) FROM sales", user="analyst")
        assert result.rows == [{"sum(amount)": 4950}]

    def test_anonymous_rejected(self, client):
        with pytest.raises(AccessError, match="user is required"):
            client.query("SELECT sum(amount) FROM sales")

    def test_revoked_without_reencryption(self, client):
        """Revocation takes effect while the server data is untouched --
        the paper's point about proxy-held symmetric keys."""
        client.access.grant("temp", {"sales"})
        before = client.server.table("sales").memory_bytes()
        client.access.revoke("temp")
        with pytest.raises(AccessError, match="revoked"):
            client.query("SELECT sum(amount) FROM sales", user="temp")
        assert client.server.table("sales").memory_bytes() == before

    def test_disabled_by_default(self):
        schema = TableSchema("t", [ColumnSpec("a", dtype="int", sensitive=True)])
        client = SeabedClient(mode="seabed", seed=1)
        client.create_plan(schema, ["SELECT sum(a) FROM t"])
        client.upload("t", {"a": np.arange(10)})
        assert client.query("SELECT sum(a) FROM t").rows[0]["sum(a)"] == 45


class TestSharedExecutionPathChecks:
    """Regression: every read path must consult the access controller.

    ``scan()`` and ``linear_regression()`` historically skipped the
    check (only ``query()`` called ``access.check``), so a revoked user
    could still pull decrypted rows through a projection.  All verbs now
    route through the shared ``PreparedQuery.execute`` path, which
    checks every table the query touches.
    """

    @pytest.fixture(scope="class")
    def client(self):
        schema = TableSchema("readings", [
            ColumnSpec("x", dtype="int", sensitive=True, nbits=32),
            ColumnSpec("y", dtype="int", sensitive=True, nbits=32),
        ])
        client = SeabedClient(mode="seabed", access_control=True, seed=1)
        client.create_plan(schema, [
            "SELECT sum(x), sum(y) FROM readings",
            "SELECT sum(x) FROM readings WHERE y > 10",
        ])
        rng = np.random.default_rng(3)
        x = rng.integers(0, 50, 200)
        client.upload("readings", {"x": x, "y": 3 * x + 7})
        client.access.grant("analyst", {"readings"})
        return client

    def test_scan_requires_user(self, client):
        with pytest.raises(AccessError, match="user is required"):
            client.scan("SELECT x, y FROM readings")

    def test_scan_rejects_unauthorised(self, client):
        with pytest.raises(AccessError, match="no grant"):
            client.scan("SELECT x, y FROM readings", user="intruder")

    def test_scan_allows_granted_user(self, client):
        result = client.scan("SELECT x, y FROM readings", user="analyst")
        assert len(result.rows) == 200

    def test_linear_regression_requires_user(self, client):
        with pytest.raises(AccessError, match="user is required"):
            client.linear_regression("readings", "x", "y")

    def test_linear_regression_allows_granted_user(self, client):
        fit = client.linear_regression("readings", "x", "y", user="analyst")
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(7.0)

    def test_prepared_execute_checks_every_call(self, client):
        prepared = client.prepare("SELECT sum(x) FROM readings WHERE y > :t")
        assert prepared.execute(t=0, user="analyst").rows
        with pytest.raises(AccessError, match="no grant"):
            prepared.execute(t=0, user="intruder")
        client.access.grant("shortlived", {"readings"})
        assert prepared.execute(t=0, user="shortlived").rows
        client.access.revoke("shortlived")
        with pytest.raises(AccessError, match="revoked"):
            prepared.execute(t=0, user="shortlived")

    def test_query_many_checks_user(self, client):
        with pytest.raises(AccessError, match="no grant"):
            client.query_many(
                ["SELECT sum(x) FROM readings"] * 2, user="intruder"
            )
