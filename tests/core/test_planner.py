"""Tests for the data planner (repro.core.planner)."""

import pytest

from repro.core.planner import Planner, analyze_usage
from repro.core.schema import ColumnSpec, TableSchema
from repro.errors import PlanningError
from repro.query.parser import parse_query


def schema_with_stats() -> TableSchema:
    return TableSchema("t", [
        ColumnSpec("revenue", dtype="int", sensitive=True),
        ColumnSpec("clicks", dtype="int", sensitive=True),
        ColumnSpec("country", dtype="str", sensitive=True,
                   distinct_values=["us", "ca", "in", "uk"],
                   value_counts={"us": 500, "ca": 400, "in": 60, "uk": 40}),
        ColumnSpec("gender", dtype="str", sensitive=True,
                   distinct_values=["m", "f"]),
        ColumnSpec("ts", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("publisher", dtype="str", sensitive=True),
        ColumnSpec("region", dtype="str", sensitive=False),
    ])


SAMPLES = [
    "SELECT sum(revenue) FROM t WHERE country = 'us'",
    "SELECT var(clicks) FROM t WHERE gender = 'f'",
    "SELECT sum(revenue) FROM t WHERE ts > 100",
    "SELECT sum(clicks) FROM t JOIN u ON publisher = site",
    "SELECT sum(revenue) FROM t WHERE region = 'emea'",
]


def plan(mode="seabed", budget=None):
    planner = Planner(mode=mode)
    queries = [parse_query(q) for q in SAMPLES]
    return planner.plan(schema_with_stats(), queries, storage_budget=budget)


class TestUsageAnalysis:
    def test_measures_and_dimensions(self):
        usages = analyze_usage([parse_query(q) for q in SAMPLES])
        assert usages["revenue"].is_measure and not usages["revenue"].is_dimension
        assert usages["country"].is_dimension
        assert usages["ts"].predicate_kinds == {"range"}
        assert usages["publisher"].joined
        assert "var" in usages["clicks"].aggregates

    def test_group_by_marks_dimension(self):
        usages = analyze_usage([parse_query("SELECT a, sum(b) FROM t GROUP BY a")])
        assert usages["a"].grouped and usages["a"].is_dimension


class TestSeabedSchemeSelection:
    def test_linear_measure_gets_ashe(self):
        enc, _ = plan()
        assert enc.plan("revenue").kind == "ashe"

    def test_quadratic_measure_gets_squares_column(self):
        enc, _ = plan()
        assert enc.plan("clicks").squares_column is not None

    def test_linear_measure_has_no_squares(self):
        enc, _ = plan()
        assert enc.plan("revenue").squares_column is None

    def test_known_distribution_gets_enhanced_splashe(self):
        enc, report = plan()
        assert enc.plan("country").kind == "splashe_enhanced"
        decision = next(d for d in report.splashe_decisions if d.column == "country")
        assert decision.chosen == "enhanced"
        assert decision.k is not None and 1 <= decision.k <= 2

    def test_domain_without_counts_gets_basic_splashe(self):
        enc, _ = plan()
        assert enc.plan("gender").kind == "splashe_basic"

    def test_range_dimension_gets_ore(self):
        enc, _ = plan()
        assert enc.plan("ts").kind == "ore"

    def test_join_dimension_gets_det_with_warning(self):
        enc, _ = plan()
        assert enc.plan("publisher").kind == "det"
        assert any("join" in w for w in enc.warnings)

    def test_public_column_stays_plain(self):
        enc, _ = plan()
        assert enc.plan("region").kind == "plain"

    def test_splashe_measures_limited_to_cooccurring(self):
        """Only measures queried together with a dimension are splayed."""
        enc, _ = plan()
        country = enc.plan("country")
        assert set(country.measure_columns) == {"revenue"}
        gender = enc.plan("gender")
        assert set(gender.measure_columns) == {"clicks"}

    def test_sensitive_unused_column_warned_and_protected(self):
        schema = TableSchema("t", [
            ColumnSpec("secret", dtype="int", sensitive=True),
            ColumnSpec("a", dtype="int", sensitive=True),
        ])
        enc, _ = Planner().plan(schema, [parse_query("SELECT sum(a) FROM t")])
        assert enc.plan("secret").kind == "ashe"
        assert any("unused" in w for w in enc.warnings)


class TestStorageBudget:
    def test_budget_prioritises_low_cardinality(self):
        # Budget so tight only the 2-value dimension fits.
        enc, report = plan(budget=2.5)
        assert enc.plan("gender").kind == "splashe_basic"
        assert enc.plan("country").kind == "det"
        assert any("exceeds remaining budget" in w for w in enc.warnings)

    def test_generous_budget_splays_everything(self):
        enc, _ = plan(budget=100.0)
        assert enc.plan("gender").kind.startswith("splashe")
        assert enc.plan("country").kind.startswith("splashe")


class TestBaselineModes:
    def test_paillier_mode(self):
        enc, _ = plan(mode="paillier")
        assert enc.plan("revenue").kind == "paillier"
        assert enc.plan("clicks").squares_column is not None
        # No SPLASHE in the baseline: DET instead.
        assert enc.plan("country").kind == "det"
        assert enc.plan("ts").kind == "ore"

    def test_plain_mode(self):
        enc, _ = plan(mode="plain")
        assert all(p.kind == "plain" for p in enc.plans.values())

    def test_unknown_mode_rejected(self):
        with pytest.raises(PlanningError, match="unknown planner mode"):
            Planner(mode="rot13")


class TestMeasureFilterCompanions:
    def test_range_filtered_measure_gets_ore_column(self):
        schema = TableSchema("t", [ColumnSpec("x", dtype="int", sensitive=True)])
        enc, _ = Planner().plan(schema, [
            parse_query("SELECT sum(x) FROM t WHERE x > 5"),
        ])
        assert enc.plan("x").kind == "ashe"
        assert enc.plan("x").ore_column is not None

    def test_minmax_measure_gets_ore_column(self):
        schema = TableSchema("t", [ColumnSpec("x", dtype="int", sensitive=True)])
        enc, _ = Planner().plan(schema, [parse_query("SELECT min(x) FROM t")])
        assert enc.plan("x").ore_column is not None

    def test_equality_filtered_measure_gets_det_column(self):
        schema = TableSchema("t", [ColumnSpec("x", dtype="int", sensitive=True)])
        enc, _ = Planner().plan(schema, [
            parse_query("SELECT sum(x) FROM t WHERE x = 5"),
        ])
        assert enc.plan("x").det_column is not None


class TestValidation:
    def test_string_measure_rejected(self):
        schema = TableSchema("t", [ColumnSpec("s", dtype="str", sensitive=True)])
        with pytest.raises(PlanningError, match="integer-typed"):
            Planner().plan(schema, [parse_query("SELECT sum(s) FROM t")])

    def test_string_range_dimension_rejected(self):
        schema = TableSchema("t", [
            ColumnSpec("s", dtype="str", sensitive=True),
            ColumnSpec("x", dtype="int", sensitive=True),
        ])
        with pytest.raises(PlanningError, match="non-integer"):
            Planner().plan(schema, [parse_query("SELECT sum(x) FROM t WHERE s > 'a'")])
