"""PreparedQuery: translate once, execute many (repro.core.session)."""

import numpy as np
import pytest

from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.errors import TranslationError
from repro.ops import OPS
from repro.query.parser import parse_query

COUNTRIES = ["us", "ca", "in", "uk"]


def _make_session(mode="seabed", **kwargs):
    rng = np.random.default_rng(7)
    n = 4000
    data = {
        "country": rng.choice(COUNTRIES, n),
        "amount": rng.integers(0, 1000, n).astype(np.int64),
        "rank": rng.integers(0, 100, n).astype(np.int64),
        "hour": rng.integers(0, 24, n).astype(np.int64),
    }
    schema = TableSchema("visits", [
        ColumnSpec(
            "country", dtype="str", sensitive=True,
            distinct_values=COUNTRIES,
            value_counts={c: int((data["country"] == c).sum()) for c in COUNTRIES},
        ),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("rank", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("hour", dtype="int", sensitive=False),
    ])
    session = SeabedSession(mode=mode, seed=3, **kwargs)
    session.create_plan(schema, [
        "SELECT sum(amount) FROM visits WHERE hour > 2",
        "SELECT sum(amount) FROM visits WHERE rank > 10",
        "SELECT sum(amount) FROM visits WHERE country = 'us'",
        "SELECT hour, sum(amount) FROM visits GROUP BY hour",
    ])
    session.upload("visits", data)
    return session, data


@pytest.fixture(scope="module")
def sess():
    return _make_session()


class TestZeroTranslationReexecution:
    def test_execute_does_no_parse_plan_translate(self, sess):
        session, _ = sess
        prepared = session.prepare(
            "SELECT sum(amount), count(*) FROM visits WHERE hour BETWEEN :lo AND :hi"
        )
        before = OPS.snapshot()
        for lo in range(6):
            prepared.execute(lo=lo, hi=lo + 2)
        delta = OPS.delta(before)
        assert delta.get("parse", 0) == 0
        assert delta.get("plan", 0) == 0
        assert delta.get("translate", 0) == 0
        assert delta.get("prepare", 0) == 0
        assert delta.get("prepared_execute") == 6

    def test_results_match_cold_queries(self, sess):
        session, data = sess
        prepared = session.prepare(
            "SELECT sum(amount), count(*) FROM visits WHERE hour BETWEEN :lo AND :hi"
        )
        for lo, hi in [(0, 4), (5, 11), (12, 23)]:
            warm = prepared.execute(lo=lo, hi=hi).rows
            cold = session.query(
                f"SELECT sum(amount), count(*) FROM visits "
                f"WHERE hour BETWEEN {lo} AND {hi}"
            ).rows
            mask = (data["hour"] >= lo) & (data["hour"] <= hi)
            expected = int(data["amount"][mask].sum())
            assert warm == cold
            assert warm[0]["sum(amount)"] == expected
            assert warm[0]["count(*)"] == int(mask.sum())

    def test_ore_parameter_rebinds_tokens(self, sess):
        session, data = sess
        prepared = session.prepare(
            "SELECT count(*) FROM visits WHERE rank >= :cutoff"
        )
        for cutoff in (0, 33, 66, 99):
            got = prepared.execute(cutoff).rows[0]["count(*)"]
            assert got == int((data["rank"] >= cutoff).sum())

    def test_in_list_parameters(self, sess):
        session, data = sess
        prepared = session.prepare(
            "SELECT count(*) FROM visits WHERE hour IN (:a, :b, 5)"
        )
        got = prepared.execute(a=1, b=2).rows[0]["count(*)"]
        expected = int(np.isin(data["hour"], [1, 2, 5]).sum())
        assert got == expected

    def test_grouped_prepared_query(self, sess):
        session, data = sess
        prepared = session.prepare(
            "SELECT hour, sum(amount) FROM visits WHERE hour <= :hi GROUP BY hour",
            expected_groups=24,
        )
        rows = prepared.execute(hi=3).rows
        assert {r["hour"] for r in rows} == {0, 1, 2, 3}
        for row in rows:
            expected = int(data["amount"][data["hour"] == row["hour"]].sum())
            assert row["sum(amount)"] == expected


class TestParameterBinding:
    def test_positional_binding_uses_declaration_order(self, sess):
        session, data = sess
        prepared = session.prepare(
            "SELECT count(*) FROM visits WHERE hour BETWEEN :lo AND :hi"
        )
        assert prepared.param_names == ("lo", "hi")
        got = prepared.execute(3, 9).rows[0]["count(*)"]
        assert got == int(((data["hour"] >= 3) & (data["hour"] <= 9)).sum())

    def test_missing_parameter_rejected(self, sess):
        session, _ = sess
        prepared = session.prepare(
            "SELECT count(*) FROM visits WHERE hour BETWEEN :lo AND :hi"
        )
        with pytest.raises(TranslationError, match="missing values.*hi"):
            prepared.execute(lo=0)

    def test_unknown_parameter_rejected(self, sess):
        session, _ = sess
        prepared = session.prepare("SELECT count(*) FROM visits WHERE hour = :h")
        with pytest.raises(TranslationError, match="unknown parameter"):
            prepared.execute(h=0, whoops=1)

    def test_double_binding_rejected(self, sess):
        session, _ = sess
        prepared = session.prepare("SELECT count(*) FROM visits WHERE hour = :h")
        with pytest.raises(TranslationError, match="both positionally and by name"):
            prepared.execute(1, h=2)

    def test_too_many_positionals_rejected(self, sess):
        session, _ = sess
        prepared = session.prepare("SELECT count(*) FROM visits WHERE hour = :h")
        with pytest.raises(TranslationError, match="positional"):
            prepared.execute(1, 2)

    def test_query_binds_named_params_through_the_cache(self, sess):
        session, data = sess
        before = OPS.snapshot()
        for h in (2, 5, 9):
            got = session.query(
                "SELECT count(*) FROM visits WHERE hour = :h", h=h
            ).rows[0]["count(*)"]
            assert got == int((data["hour"] == h).sum())
        assert OPS.delta(before).get("translate", 0) <= 1  # shape cached

    def test_query_missing_param_value_rejected(self, sess):
        session, _ = sess
        with pytest.raises(TranslationError, match="missing values.*h"):
            session.query("SELECT count(*) FROM visits WHERE hour = :h")

    def test_query_unknown_param_value_rejected(self, sess):
        session, _ = sess
        with pytest.raises(TranslationError, match="unknown parameters"):
            session.query(
                "SELECT count(*) FROM visits WHERE hour = :h", h=1, typo=2
            )

    def test_user_named_param_collision_is_explicit(self, sess):
        session, data = sess
        prepared = session.prepare(
            "SELECT count(*) FROM visits WHERE hour = :user"
        )
        with pytest.raises(TranslationError, match="reserved user="):
            prepared.execute(user=5)
        # Positional binding is the documented escape hatch.
        got = prepared.execute(5).rows[0]["count(*)"]
        assert got == int((data["hour"] == 5).sum())


class TestPrepareTimeValidation:
    def test_splashe_parameter_rejected_at_prepare(self, sess):
        session, _ = sess
        with pytest.raises(TranslationError, match="SPLASHE-planned"):
            session.prepare(
                "SELECT sum(amount) FROM visits WHERE country = :c"
            )

    def test_unfilterable_measure_rejected_at_prepare(self, sess):
        session, _ = sess
        # amount has no ORE/DET companion column (never filtered in the
        # sample set), so even a parameterised range must fail eagerly.
        with pytest.raises(TranslationError, match="not planned for filtering"):
            session.prepare("SELECT count(*) FROM visits WHERE amount > :x")


class TestPreparedScan:
    def test_scan_with_parameters(self, sess):
        session, data = sess
        prepared = session.prepare(
            "SELECT amount, hour FROM visits WHERE hour = :h"
        )
        assert prepared.kind == "scan"
        before = OPS.snapshot()
        for h in (2, 7, 19):
            rows = prepared.execute(h=h).rows
            assert len(rows) == int((data["hour"] == h).sum())
            mask = data["hour"] == h
            assert sorted(r["amount"] for r in rows) == sorted(
                data["amount"][mask].tolist()
            )
        delta = OPS.delta(before)
        assert delta.get("translate", 0) == 0
        assert delta.get("parse", 0) == 0

    def test_scan_rejects_aggregation_and_vice_versa(self, sess):
        session, _ = sess
        with pytest.raises(TranslationError, match="projection"):
            session.scan("SELECT sum(amount) FROM visits")
        # query() must not silently degrade a projection into a row scan.
        with pytest.raises(TranslationError, match="use scan"):
            session.query("SELECT amount FROM visits")
        prepared = session.prepare(parse_query("SELECT amount FROM visits"))
        assert prepared.kind == "scan"


class TestPreparedRepr:
    def test_repr_and_sql_round_trip(self, sess):
        session, _ = sess
        prepared = session.prepare(
            "SELECT count(*) FROM visits WHERE hour BETWEEN :lo AND :hi"
        )
        assert "visits" in repr(prepared)
        assert parse_query(prepared.sql()) == prepared.query
