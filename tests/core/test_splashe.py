"""Tests for the SPLASHE transforms (repro.core.splashe)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import splashe
from repro.errors import PlanningError


class TestChooseK:
    def test_paper_example_shape(self):
        """Canadian company: 2 dominant countries among 196 (Section 3.4)."""
        counts = [1000, 1000] + [5] * 194
        k = splashe.choose_k(counts)
        assert k <= 2

    def test_uniform_distribution_needs_no_splay(self):
        # All counts equal: k=0 works (zero padding needed).
        assert splashe.choose_k([10, 10, 10, 10]) == 0

    def test_mild_skew(self):
        counts = [100, 90, 80, 70]
        k = splashe.choose_k(counts)
        # Check the defining inequality at the returned k.
        threshold = splashe.padding_threshold(counts, k)
        needed = sum(threshold - c for c in counts[k:])
        assert sum(counts[:k]) >= needed

    def test_k_is_minimal(self):
        counts = [1000, 500, 400, 10, 8, 5, 2]
        k = splashe.choose_k(counts)
        for smaller in range(k):
            threshold = splashe.padding_threshold(counts, smaller)
            needed = sum(threshold - c for c in counts[smaller:])
            assert sum(counts[:smaller]) < needed

    def test_always_exists(self):
        for counts in ([1], [5, 4, 3, 2, 1], [100] + [0] * 9, [0, 0, 0]):
            k = splashe.choose_k(sorted(counts, reverse=True))
            assert 0 <= k <= len(counts)

    def test_unsorted_rejected(self):
        with pytest.raises(PlanningError, match="sorted"):
            splashe.choose_k([1, 2, 3])

    def test_negative_rejected(self):
        with pytest.raises(PlanningError, match="negative"):
            splashe.choose_k([5, -1])

    @given(counts=st.lists(st.integers(min_value=0, max_value=10_000),
                           min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_property_inequality_holds(self, counts):
        counts = sorted(counts, reverse=True)
        k = splashe.choose_k(counts)
        threshold = splashe.padding_threshold(counts, k)
        needed = sum(threshold - c for c in counts[k:])
        assert sum(counts[:k]) >= needed


class TestBalanceDetCodes:
    def test_balances_infrequent_frequencies(self):
        rng = np.random.default_rng(0)
        # value 0 frequent (60 rows), values 1..3 infrequent (uneven).
        codes = np.array([0] * 60 + [1] * 10 + [2] * 4 + [3] * 1)
        rng.shuffle(codes)
        det = splashe.balance_det_codes(codes, [0], 4, rng)
        counts = np.bincount(det, minlength=4)
        assert counts[0] == 0  # frequent value never appears in DET
        infrequent = counts[1:]
        assert infrequent.max() - infrequent.min() <= 1  # near-uniform

    def test_infrequent_rows_keep_their_code(self):
        rng = np.random.default_rng(1)
        codes = np.array([0] * 20 + [1] * 3 + [2] * 2)
        det = splashe.balance_det_codes(codes, [0], 3, rng)
        infrequent_positions = np.flatnonzero(codes != 0)
        assert np.array_equal(det[infrequent_positions], codes[infrequent_positions])

    def test_paper_figure4_example(self):
        """USA/Canada frequent; six dummy cells balance the six infrequent
        countries (Figure 4 uses exactly this shape)."""
        rng = np.random.default_rng(2)
        # codes: 0=USA, 1=Canada (3 each); 2..7 infrequent (1 each)
        codes = np.array([0, 0, 1, 0, 1, 1, 2, 3, 4, 5, 6, 7])
        det = splashe.balance_det_codes(codes, [0, 1], 8, rng)
        det_counts = np.bincount(det, minlength=8)
        assert det_counts[0] == det_counts[1] == 0
        assert det_counts[2:].max() - det_counts[2:].min() <= 1

    def test_insufficient_dummies_rejected(self):
        rng = np.random.default_rng(3)
        # frequent value has only 1 row; infrequent counts are wildly uneven
        codes = np.array([0] + [1] * 50 + [2] * 1)
        with pytest.raises(PlanningError, match="cannot balance"):
            splashe.balance_det_codes(codes, [0], 3, rng)

    def test_no_infrequent_values(self):
        rng = np.random.default_rng(4)
        codes = np.array([0, 1, 0, 1])
        det = splashe.balance_det_codes(codes, [0, 1], 2, rng)
        assert det.shape == codes.shape  # filled with random codes, no crash

    def test_out_of_range_codes_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(PlanningError, match="out of range"):
            splashe.balance_det_codes(np.array([0, 9]), [0], 3, rng)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_property_uniformity(self, seed):
        rng = np.random.default_rng(seed)
        codes = np.concatenate([
            np.zeros(100, dtype=np.int64),
            rng.integers(1, 5, 40),
        ])
        rng.shuffle(codes)
        det = splashe.balance_det_codes(codes, [0], 5, rng)
        counts = np.bincount(det, minlength=5)[1:]
        assert counts.max() - counts.min() <= 1


class TestSplayTransforms:
    def test_basic_indicators(self):
        codes = np.array([0, 1, 1, 2])
        ind = splashe.splay_indicators(codes, 3)
        assert ind[0].tolist() == [1, 0, 0, 0]
        assert ind[1].tolist() == [0, 1, 1, 0]
        assert ind[2].tolist() == [0, 0, 0, 1]

    def test_basic_measure_figure3(self):
        """Figure 3: gender x salary."""
        codes = np.array([0, 1, 1])  # male, female, female
        salary = np.array([1000, 2000, 200])
        splayed = splashe.splay_measure(codes, salary, 2)
        assert splayed[0].tolist() == [1000, 0, 0]
        assert splayed[1].tolist() == [0, 2000, 200]

    def test_measure_length_mismatch(self):
        with pytest.raises(PlanningError, match="length"):
            splashe.splay_measure(np.array([0]), np.array([1, 2]), 2)

    def test_enhanced_indicators(self):
        codes = np.array([0, 1, 2, 0, 3])
        per_freq, others = splashe.splay_enhanced_indicators(codes, [0], 4)
        assert per_freq[0].tolist() == [1, 0, 0, 1, 0]
        assert others.tolist() == [0, 1, 1, 0, 1]

    def test_enhanced_measure(self):
        codes = np.array([0, 1, 2, 0])
        values = np.array([10, 20, 30, 40])
        per_freq, others = splashe.splay_enhanced_measure(codes, values, [0], 3)
        assert per_freq[0].tolist() == [10, 0, 0, 40]
        assert others.tolist() == [0, 20, 30, 0]

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_property_splay_preserves_sums(self, seed):
        """Sum of each splayed column equals the per-value plaintext sum --
        the correctness invariant behind the SPLASHE rewrite."""
        rng = np.random.default_rng(seed)
        d = int(rng.integers(2, 6))
        n = int(rng.integers(1, 60))
        codes = rng.integers(0, d, n)
        values = rng.integers(-100, 100, n)
        splayed = splashe.splay_measure(codes, values, d)
        for v in range(d):
            assert splayed[v].sum() == values[codes == v].sum()
        per_freq, others = splashe.splay_enhanced_measure(codes, values, [0], d)
        assert per_freq[0].sum() == values[codes == 0].sum()
        assert others.sum() == values[codes != 0].sum()


class TestStorageModel:
    def test_basic_factor_is_cardinality(self):
        # d indicators + d*m measures over (1 + m) original columns = d.
        assert splashe.storage_overhead_factor(10, 3, k=None) == pytest.approx(10.0)

    def test_enhanced_smaller_than_basic_for_skew(self):
        basic = splashe.storage_overhead_factor(196, 2, k=None)
        enhanced = splashe.storage_overhead_factor(196, 2, k=2)
        assert enhanced < basic / 10

    def test_enhanced_adds_det_column(self):
        cells = splashe.enhanced_storage_cells(k=2, num_measures=1)
        assert cells == (2 + 1) * 2 + 1
