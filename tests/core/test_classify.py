"""Tests for query-support classification (repro.core.classify)."""

from repro.core.classify import CategoryCounts, QueryFeatures, classify_query
from repro.query.parser import parse_query


class TestFeatureClassification:
    def test_plain_aggregation_is_server(self):
        assert QueryFeatures(aggregates=frozenset({"sum", "count"})).category() == "S"

    def test_avg_is_server(self):
        # Table 6 row 2: client division does not change the category.
        assert QueryFeatures(aggregates=frozenset({"avg"})).category() == "S"

    def test_variance_needs_preprocessing(self):
        assert QueryFeatures(aggregates=frozenset({"stddev"})).category() == "CPre"
        assert QueryFeatures(aggregates=frozenset({"var"})).category() == "CPre"

    def test_correlation_needs_preprocessing(self):
        assert QueryFeatures(aggregates=frozenset({"correlation"})).category() == "CPre"

    def test_udf_needs_postprocessing(self):
        assert QueryFeatures(has_udf=True).category() == "CPost"

    def test_iteration_needs_two_rounds(self):
        assert QueryFeatures(iterative=True).category() == "2R"

    def test_iteration_dominates(self):
        f = QueryFeatures(aggregates=frozenset({"var"}), has_udf=True, iterative=True)
        assert f.category() == "2R"

    def test_precomputed_counter_flag(self):
        assert QueryFeatures(needs_precomputed_column=True).category() == "CPre"


class TestAstClassification:
    def test_sum_query(self):
        assert classify_query(parse_query("SELECT sum(a) FROM t")) == "S"

    def test_minmax_query(self):
        assert classify_query(parse_query("SELECT min(a), max(a) FROM t")) == "S"

    def test_var_query(self):
        assert classify_query(parse_query("SELECT var(a) FROM t")) == "CPre"


class TestCategoryCounts:
    def test_tally_and_row(self):
        counts = CategoryCounts("demo")
        counts.add("S", 3)
        counts.add("CPost")
        row = counts.row()
        assert row["Total"] == 4
        assert row["Purely on Server"] == 3
        assert row["Client Post-processing"] == 1
