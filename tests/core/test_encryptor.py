"""Tests for the encryption module (repro.core.encryptor)."""

import numpy as np
import pytest

from repro.core.crypto_factory import CryptoFactory
from repro.core.encryptor import ClientTableState, EncryptionModule, encode_domain
from repro.core.planner import Planner
from repro.core.schema import ColumnSpec, TableSchema
from repro.crypto.keys import KeyChain
from repro.errors import PlanningError
from repro.query.parser import parse_query

KEY = b"k" * 32


def make_state(mode="seabed"):
    schema = TableSchema("t", [
        ColumnSpec("amount", dtype="int", sensitive=True),
        ColumnSpec("gender", dtype="str", sensitive=True, distinct_values=["m", "f"]),
        ColumnSpec("label", dtype="str", sensitive=False),
    ])
    samples = [
        parse_query("SELECT sum(amount) FROM t WHERE gender = 'm'"),
        parse_query("SELECT var(amount) FROM t"),
    ]
    enc_schema, _ = Planner(mode=mode).plan(schema, samples)
    return ClientTableState(schema=schema, enc_schema=enc_schema)


def columns(n=50, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "amount": rng.integers(0, 100, n),
        "gender": rng.choice(["m", "f"], n),
        "label": rng.choice(["x", "y", "z"], n),
    }


class TestEncryptBatch:
    def test_physical_columns_match_plan(self):
        state = make_state()
        module = EncryptionModule(CryptoFactory(KeyChain(KEY), "t"), seed=0)
        table = module.encrypt_batch(state, columns(), num_partitions=3)
        assert set(table.column_names) == set(state.enc_schema.physical_columns())

    def test_row_id_cursor_advances(self):
        state = make_state()
        module = EncryptionModule(CryptoFactory(KeyChain(KEY), "t"), seed=0)
        module.encrypt_batch(state, columns(50))
        t2 = module.encrypt_batch(state, columns(30, seed=1))
        assert state.next_row_id == 80
        assert t2.partitions[0].start_id == 50  # contiguous across batches

    def test_dictionary_persists_across_batches(self):
        state = make_state()
        module = EncryptionModule(CryptoFactory(KeyChain(KEY), "t"), seed=0)
        module.encrypt_batch(state, columns(20))
        first = dict(state.dictionaries["label"]._index)
        module.encrypt_batch(state, columns(20, seed=3))
        for value, code in first.items():
            assert state.dictionaries["label"].lookup(value) == code

    def test_missing_column_rejected(self):
        state = make_state()
        module = EncryptionModule(CryptoFactory(KeyChain(KEY), "t"), seed=0)
        bad = columns()
        del bad["amount"]
        with pytest.raises(PlanningError, match="do not match"):
            module.encrypt_batch(state, bad)

    def test_ciphertexts_differ_from_plaintext(self):
        state = make_state()
        module = EncryptionModule(CryptoFactory(KeyChain(KEY), "t"), seed=0)
        cols = columns()
        table = module.encrypt_batch(state, cols)
        enc = table.column("amount__ashe")
        assert not np.array_equal(enc.astype(np.int64), cols["amount"])

    def test_squares_column_encrypts_squares(self):
        state = make_state()
        factory = CryptoFactory(KeyChain(KEY), "t")
        module = EncryptionModule(factory, seed=0)
        cols = columns()
        table = module.encrypt_batch(state, cols, num_partitions=1)
        sq_scheme = factory.ashe("amount__sq__ashe")
        decrypted = sq_scheme.decrypt_column(table.column("amount__sq__ashe"), 0)
        assert decrypted.tolist() == (cols["amount"] ** 2).tolist()

    def test_unsquarable_values_rejected(self):
        state = make_state()
        module = EncryptionModule(CryptoFactory(KeyChain(KEY), "t"), seed=0)
        bad = columns()
        bad["amount"] = np.array([1 << 40] * 50)
        with pytest.raises(PlanningError, match="too large to square"):
            module.encrypt_batch(state, bad)

    def test_paillier_mode_requires_scheme(self):
        state = make_state(mode="paillier")
        module = EncryptionModule(CryptoFactory(KeyChain(KEY), "t"), paillier=None)
        with pytest.raises(PlanningError, match="requires a PaillierScheme"):
            module.encrypt_batch(state, columns())

    def test_splashe_columns_sum_to_measure(self):
        """The SPLASHE invariant: splayed columns partition the measure."""
        state = make_state()
        factory = CryptoFactory(KeyChain(KEY), "t")
        module = EncryptionModule(factory, seed=0)
        cols = columns()
        table = module.encrypt_batch(state, cols, num_partitions=1)
        total = 0
        for code in (0, 1):
            col = f"amount@gender@{code}__ashe"
            scheme = factory.ashe(col)
            total += scheme.decrypt_column(table.column(col), 0).sum()
        assert total == cols["amount"].sum()


class TestEncodeDomain:
    def test_int_domain(self):
        codes = encode_domain([10, 20, 30], np.array([20, 10, 30, 20]))
        assert codes.tolist() == [1, 0, 2, 1]

    def test_str_domain(self):
        codes = encode_domain(["b", "a"], np.array(["a", "b", "a"], dtype=object))
        assert codes.tolist() == [1, 0, 1]

    def test_unknown_value_rejected(self):
        with pytest.raises(PlanningError, match="not in the declared domain"):
            encode_domain([1, 2], np.array([3]))
