"""Tests for the untrusted server's physical operators (repro.core.server).

These operate on raw ciphertext-free columns (plain ints) or synthetic
ciphertexts, checking filter/aggregate/group mechanics in isolation; the
full encrypted pipeline is covered by the integration tests.
"""

import numpy as np
import pytest

from repro.core import server as srv
from repro.crypto.ashe import AsheScheme
from repro.crypto.ore import OreScheme
from repro.crypto.prf import SplitMix64Prf
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.engine.table import Table
from repro.errors import ExecutionError
from repro.idlist.codec import decode as codec_decode

KEY = b"0123456789abcdef0123456789abcdef"


@pytest.fixture
def cluster() -> SimulatedCluster:
    return SimulatedCluster(ClusterConfig(cores=4, task_startup_s=0.0, job_startup_s=0.0))


def make_server(cluster, columns, parts=4) -> srv.SeabedServer:
    server = srv.SeabedServer(cluster)
    server.register(Table.from_columns("t", columns, num_partitions=parts))
    return server


class TestFilters:
    def test_plain_cmp(self):
        cols = {"a": np.array([1, 5, 9])}
        mask = srv.eval_filter(cols, srv.PlainCmp("a", ">", 4), 3)
        assert mask.tolist() == [False, True, True]

    def test_det_eq_and_negate(self):
        cols = {"d": np.array([7, 8, 7], dtype=np.uint64)}
        assert srv.eval_filter(cols, srv.DetEq("d", 7), 3).tolist() == [True, False, True]
        assert srv.eval_filter(cols, srv.DetEq("d", 7, negate=True), 3).tolist() == [
            False, True, False,
        ]

    def test_det_in(self):
        cols = {"d": np.array([1, 2, 3], dtype=np.uint64)}
        mask = srv.eval_filter(cols, srv.DetIn("d", (1, 3)), 3)
        assert mask.tolist() == [True, False, True]

    def test_ore_cmp(self):
        ore = OreScheme(KEY, nbits=16)
        cols = {"o": ore.encrypt_column(np.array([5, 10, 15]))}
        mask = srv.eval_filter(cols, srv.OreCmp("o", ">", ore.token(7), 16), 3)
        assert mask.tolist() == [False, True, True]

    def test_boolean_combinators(self):
        cols = {"a": np.array([1, 2, 3, 4])}
        expr = srv.FilterAnd((
            srv.PlainCmp("a", ">", 1),
            srv.FilterNot(srv.PlainCmp("a", "=", 3)),
        ))
        assert srv.eval_filter(cols, expr, 4).tolist() == [False, True, False, True]
        expr = srv.FilterOr((srv.PlainCmp("a", "=", 1), srv.PlainCmp("a", "=", 4)))
        assert srv.eval_filter(cols, expr, 4).tolist() == [True, False, False, True]

    def test_none_means_select_all(self):
        assert srv.eval_filter({"a": np.array([1])}, None, 1) is None


class TestFlatAggregation:
    def test_plain_sum_and_count(self, cluster):
        server = make_server(cluster, {"v": np.arange(100, dtype=np.int64)})
        q = srv.ServerQuery(table="t", aggs=(
            srv.PlainAgg("v", "sum", "s"), srv.PlainAgg(None, "count", "c"),
        ))
        resp = server.execute(q)
        assert resp.flat["s"] == ("plain", 4950)
        assert resp.flat["c"] == ("plain", 100)

    def test_plain_min_max_sumsq_median(self, cluster):
        server = make_server(cluster, {"v": np.array([3, 1, 4, 1, 5], dtype=np.int64)})
        q = srv.ServerQuery(table="t", aggs=(
            srv.PlainAgg("v", "min", "lo"), srv.PlainAgg("v", "max", "hi"),
            srv.PlainAgg("v", "sumsq", "sq"), srv.PlainAgg("v", "median", "md"),
        ))
        resp = server.execute(q)
        assert resp.flat["lo"][1] == 1 and resp.flat["hi"][1] == 5
        assert resp.flat["sq"][1] == 9 + 1 + 16 + 1 + 25
        assert resp.flat["md"][1] == 3.0

    def test_ashe_sum_round_trip(self, cluster):
        scheme = AsheScheme(SplitMix64Prf(KEY))
        values = np.arange(200, dtype=np.int64)
        enc = scheme.encrypt_column(values, start_id=0)
        server = make_server(cluster, {"v__ashe": enc, "f": values})
        q = srv.ServerQuery(
            table="t",
            aggs=(srv.AsheSum("v__ashe", "s"),),
            filter=srv.PlainCmp("f", "<", 50),
        )
        resp = server.execute(q)
        tag, total, chunks, multiset = resp.flat["s"]
        assert tag == "ashe" and not multiset
        ids = [codec_decode(c) for c in chunks]
        combined = ids[0]
        for extra in ids[1:]:
            combined = combined.union(extra)
        assert scheme.decrypt_sum(
            (total + scheme.pad_for(combined) - scheme.pad_for(combined)) & (2**64 - 1),
            combined,
        ) == values[:50].sum()

    def test_empty_selection_returns_none(self, cluster):
        server = make_server(cluster, {"v": np.arange(10, dtype=np.int64)})
        q = srv.ServerQuery(
            table="t", aggs=(srv.PlainAgg("v", "sum", "s"),),
            filter=srv.PlainCmp("v", ">", 999),
        )
        assert server.execute(q).flat["s"] is None

    def test_driver_compression_matches_worker(self, cluster):
        scheme = AsheScheme(SplitMix64Prf(KEY))
        values = np.arange(100, dtype=np.int64)
        enc = scheme.encrypt_column(values, start_id=0)
        server = make_server(cluster, {"v__ashe": enc})
        for site in ("worker", "driver"):
            q = srv.ServerQuery(
                table="t", aggs=(srv.AsheSum("v__ashe", "s"),), compress_at=site
            )
            tag, total, chunks, _ = server.execute(q).flat["s"]
            ids = codec_decode(chunks[0]) if len(chunks) == 1 else None
            if site == "driver":
                # Driver mode unions to a single chunk spanning the table.
                assert len(chunks) == 1
                assert ids.count() == 100

    def test_metrics_populated(self, cluster):
        server = make_server(cluster, {"v": np.arange(10, dtype=np.int64)})
        resp = server.execute(
            srv.ServerQuery(table="t", aggs=(srv.PlainAgg("v", "sum", "s"),))
        )
        assert resp.metrics.server_time > 0
        assert resp.payload_bytes > 0
        assert resp.metrics.result_bytes == resp.payload_bytes

    def test_unknown_table(self, cluster):
        server = srv.SeabedServer(cluster)
        with pytest.raises(ExecutionError, match="no table"):
            server.execute(srv.ServerQuery(table="zzz", aggs=()))


class TestOreExtremes:
    def test_min_max_payload(self, cluster):
        ore = OreScheme(KEY, nbits=16)
        values = np.array([30, 5, 80, 42], dtype=np.int64)
        cols = {
            "o": ore.encrypt_column(values),
            "p": values.astype(np.uint64),  # payload stand-in
        }
        server = make_server(cluster, cols, parts=2)
        q = srv.ServerQuery(table="t", aggs=(
            srv.OreExtreme("min", "o", "p", "lo"),
            srv.OreExtreme("max", "o", "p", "hi"),
        ))
        resp = server.execute(q)
        assert resp.flat["lo"][1] == 5
        assert resp.flat["hi"][1] == 80
        assert resp.flat["hi"][2] == 2  # row id of the max

    def test_median_quickselect(self, cluster):
        ore = OreScheme(KEY, nbits=16)
        values = np.array([9, 1, 5, 7, 3], dtype=np.int64)
        cols = {"o": ore.encrypt_column(values), "p": values.astype(np.uint64)}
        server = make_server(cluster, cols, parts=2)
        q = srv.ServerQuery(table="t", aggs=(srv.OreMedian("o", "p", "md"),))
        assert server.execute(q).flat["md"][1] == 5

    def test_median_with_duplicates_terminates(self, cluster):
        ore = OreScheme(KEY, nbits=16)
        values = np.array([4, 4, 4, 4, 4, 4], dtype=np.int64)
        cols = {"o": ore.encrypt_column(values), "p": values.astype(np.uint64)}
        server = make_server(cluster, cols, parts=2)
        q = srv.ServerQuery(table="t", aggs=(srv.OreMedian("o", "p", "md"),))
        assert server.execute(q).flat["md"][1] == 4


class TestGroupBy:
    def test_plain_grouped_sums(self, cluster):
        keys = np.array([0, 1, 0, 1, 2], dtype=np.int64)
        vals = np.array([10, 20, 30, 40, 50], dtype=np.int64)
        server = make_server(cluster, {"k": keys, "v": vals}, parts=2)
        q = srv.ServerQuery(
            table="t", aggs=(srv.PlainAgg("v", "sum", "s"),), group_by="k"
        )
        resp = server.execute(q)
        assert resp.kind == "grouped"
        totals = {}
        for key, _suffix, payloads in resp.groups:
            totals[key] = totals.get(key, 0) + payloads["s"][1]
        assert totals == {0: 40, 1: 60, 2: 50}

    def test_inflation_multiplies_entries_but_preserves_sums(self, cluster):
        keys = np.zeros(64, dtype=np.int64)
        vals = np.ones(64, dtype=np.int64)
        server = make_server(cluster, {"k": keys, "v": vals}, parts=2)
        base = srv.ServerQuery(table="t", aggs=(srv.PlainAgg("v", "sum", "s"),),
                               group_by="k", inflation=1)
        inflated = srv.ServerQuery(table="t", aggs=(srv.PlainAgg("v", "sum", "s"),),
                                   group_by="k", inflation=4)
        r1 = server.execute(base)
        r4 = server.execute(inflated)
        assert len({(k, s) for k, s, _ in r1.groups}) == 1
        assert len({(k, s) for k, s, _ in r4.groups}) == 4
        assert sum(p["s"][1] for _, _, p in r1.groups) == 64
        assert sum(p["s"][1] for _, _, p in r4.groups) == 64

    def test_grouped_shuffle_accounted(self, cluster):
        keys = np.arange(50, dtype=np.int64) % 5
        vals = np.ones(50, dtype=np.int64)
        server = make_server(cluster, {"k": keys, "v": vals}, parts=2)
        resp = server.execute(srv.ServerQuery(
            table="t", aggs=(srv.PlainAgg("v", "sum", "s"),), group_by="k"
        ))
        assert resp.metrics.shuffle_bytes > 0

    def test_extreme_in_group_rejected(self, cluster):
        ore = OreScheme(KEY, nbits=16)
        vals = np.array([1, 2], dtype=np.int64)
        cols = {"o": ore.encrypt_column(vals), "k": vals, "p": vals.astype(np.uint64)}
        server = make_server(cluster, cols, parts=1)
        q = srv.ServerQuery(
            table="t", aggs=(srv.OreExtreme("min", "o", "p", "m"),), group_by="k"
        )
        with pytest.raises(ExecutionError, match="not supported inside GROUP BY"):
            server.execute(q)


class TestJoin:
    def test_broadcast_join_with_multiset_ids(self, cluster):
        scheme = AsheScheme(SplitMix64Prf(KEY))
        build_vals = np.array([100, 200, 300], dtype=np.int64)
        build = Table.from_columns("build", {
            "key": np.array([0, 1, 2], dtype=np.uint64),
            "payload__ashe": scheme.encrypt_column(build_vals, start_id=0),
        }, num_partitions=1)
        probe = Table.from_columns("probe", {
            "fk": np.array([0, 0, 1, 2, 2, 2], dtype=np.uint64),
        }, num_partitions=2)
        server = srv.SeabedServer(cluster)
        server.register(build)
        server.register(probe)
        q = srv.ServerQuery(
            table="probe",
            aggs=(srv.AsheSum("payload__ashe", "s", multiset=True),),
            join=srv.ServerJoin(
                build_table="build", probe_key_column="fk",
                build_key_column="key", payload_columns=("payload__ashe",),
            ),
        )
        resp = server.execute(q)
        tag, total, chunks, multiset = resp.flat["s"]
        assert multiset
        from repro.idlist.codec import decode_multiset
        pad = sum(scheme.pad_for_multiset(decode_multiset(c)) for c in chunks)
        from repro.crypto.ashe import to_signed
        got = to_signed((total + pad) & (2**64 - 1))
        # 2x100 + 1x200 + 3x300 = 1300
        assert got == 1300
