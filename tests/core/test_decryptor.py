"""Unit tests for the decryption module (repro.core.decryptor).

The integration suite covers value correctness end-to-end; here we check
the decryptor's own contract: payload handling, chunk accumulation,
validation, and group-key decoding.
"""

import numpy as np
import pytest

from repro.core import server as srv
from repro.core.crypto_factory import CryptoFactory
from repro.core.decryptor import DecryptionModule
from repro.core.encryptor import ClientTableState, EncryptionModule
from repro.core.planner import Planner
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.translator import QueryTranslator
from repro.crypto.keys import KeyChain
from repro.errors import DecryptionError
from repro.idlist import IdList, get_codec
from repro.idlist.codec import encode_multiset
from repro.query.parser import parse_query

KEY = b"d" * 32


@pytest.fixture(scope="module")
def env():
    schema = TableSchema("t", [
        ColumnSpec("x", dtype="int", sensitive=True),
        ColumnSpec("g", dtype="int", sensitive=True),
    ])
    samples = [parse_query("SELECT g, sum(x) FROM t GROUP BY g")]
    enc, _ = Planner("seabed").plan(schema, samples)
    state = ClientTableState(schema=schema, enc_schema=enc)
    factory = CryptoFactory(KeyChain(KEY), "t")
    rng = np.random.default_rng(0)
    EncryptionModule(factory, seed=0).encrypt_batch(state, {
        "x": rng.integers(0, 50, 100),
        "g": rng.integers(0, 4, 100),
    }, num_partitions=2)
    translator = QueryTranslator(state, factory)
    return state, factory, translator


class TestPayloadDecryption:
    def test_ashe_chunk_accumulation(self, env):
        """Multiple worker chunks accumulate pads chunk-by-chunk."""
        state, factory, _ = env
        scheme = factory.ashe("x__ashe")
        values = np.array([10, 20, 30, 40], dtype=np.int64)
        cipher = scheme.encrypt_column(values, start_id=0)
        codec = get_codec("seabed")
        chunk1 = codec.encode(IdList.from_range(0, 2))
        chunk2 = codec.encode(IdList.from_range(2, 4))
        total = int(cipher.sum()) & (2**64 - 1)
        module = DecryptionModule(state, factory)
        agg = srv.AsheSum("x__ashe", "a")
        got = module._decrypt_payload(("ashe", total, [chunk1, chunk2], False), agg)
        assert got == 100

    def test_multiset_chunk(self, env):
        state, factory, _ = env
        scheme = factory.ashe("x__ashe")
        values = np.array([7, 8], dtype=np.int64)
        cipher = scheme.encrypt_column(values, start_id=0)
        # Row 0 counted twice, row 1 once: a join-replicated collection.
        total = int(cipher[0]) * 2 + int(cipher[1])
        chunk = encode_multiset(np.array([0, 0, 1], dtype=np.uint64))
        module = DecryptionModule(state, factory)
        agg = srv.AsheSum("x__ashe", "a", multiset=True)
        got = module._decrypt_payload(("ashe", total & (2**64 - 1), [chunk], True), agg)
        assert got == 7 * 2 + 8

    def test_none_payload(self, env):
        state, factory, _ = env
        module = DecryptionModule(state, factory)
        assert module._decrypt_payload(None, srv.AsheSum("x__ashe", "a")) is None

    def test_plain_payload(self, env):
        state, factory, _ = env
        module = DecryptionModule(state, factory)
        assert module._decrypt_payload(("plain", 42), srv.PlainAgg("x", "sum", "a")) == 42

    def test_paillier_without_scheme_rejected(self, env):
        state, factory, _ = env
        module = DecryptionModule(state, factory, paillier=None)
        with pytest.raises(DecryptionError, match="paillier"):
            module._decrypt_payload(("paillier", 123), srv.PaillierSum("c", "a", 99))

    def test_unknown_tag_rejected(self, env):
        state, factory, _ = env
        module = DecryptionModule(state, factory)
        with pytest.raises(DecryptionError, match="unknown payload"):
            module._decrypt_payload(("mystery", 1), srv.PlainAgg("x", "sum", "a"))

    def test_count_from_payload(self, env):
        state, factory, _ = env
        module = DecryptionModule(state, factory)
        codec = get_codec("seabed")
        chunk = codec.encode(IdList.from_range(5, 15))
        assert module._count_from_payload(("ashe", 0, [chunk], False)) == 10
        assert module._count_from_payload(None) == 0

    def test_count_requires_ashe(self, env):
        state, factory, _ = env
        module = DecryptionModule(state, factory)
        with pytest.raises(DecryptionError, match="ASHE payload"):
            module._count_from_payload(("plain", 3))


class TestResponseValidation:
    def test_response_count_mismatch(self, env):
        state, factory, translator = env
        module = DecryptionModule(state, factory)
        tq = translator.translate(parse_query("SELECT sum(x) FROM t"))
        with pytest.raises(DecryptionError, match="expected 1 responses"):
            module.decrypt(tq, [])

    def test_group_key_det_decode(self, env):
        state, factory, translator = env
        tq = translator.translate(
            parse_query("SELECT g, sum(x) FROM t GROUP BY g")
        )
        module = DecryptionModule(state, factory)
        det = factory.det("g__det")
        assert module._decode_group_key(tq, det.encrypt_one(3)) == 3
