"""Wire-codec round trips: arbitrary payloads survive bit-identically,
malformed frames raise typed :class:`CodecError`s, never raw struct/json
errors."""

from __future__ import annotations

import json
import math
import struct

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import server as srv
from repro.engine.metrics import JobMetrics, StageMetrics
from repro.errors import CodecError
from repro.net import codec


def same(a, b) -> bool:
    """Structural bit-identity, tolerating NaN and comparing arrays."""
    if type(a) is not type(b):
        # numpy scalar types survive exactly; int vs float must not blur.
        return False
    if isinstance(a, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, np.ndarray):
        return a.dtype == b.dtype and a.shape == b.shape and (
            np.array_equal(a, b) if a.dtype == object else bool((a == b).all())
        )
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(same(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return set(a) == set(b) and all(same(a[k], b[k]) for k in a)
    return a == b


def roundtrip(body, kind="req"):
    got_kind, got = codec.decode_frame(codec.encode_frame(kind, body))
    assert got_kind == kind
    return got


# -- hypothesis strategies ------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**40), max_value=10**40),  # Paillier-sized bigints
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=64),
)

ciphertext_arrays = st.one_of(
    # ASHE / DET ciphertexts and ORE trit words
    st.lists(st.integers(0, 2**64 - 1), max_size=16).map(
        lambda xs: np.array(xs, dtype=np.uint64)
    ),
    st.lists(st.integers(-(2**62), 2**62), max_size=16).map(
        lambda xs: np.array(xs, dtype=np.int64)
    ),
    st.lists(
        st.lists(st.integers(0, 2**64 - 1), min_size=3, max_size=3),
        max_size=8,
    ).map(lambda xs: np.array(xs, dtype=np.uint64).reshape(-1, 3)),
    # Paillier big-int object columns
    st.lists(st.integers(-(10**50), 10**50), min_size=1, max_size=6).map(
        lambda xs: np.array(xs, dtype=object)
    ),
)

trees = st.recursive(
    st.one_of(scalars, ciphertext_arrays),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(st.text(max_size=8), st.integers(), st.tuples(st.integers())),
            children,
            max_size=4,
        ),
    ),
    max_leaves=12,
)


@given(trees)
@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_arbitrary_payloads_roundtrip(body):
    assert same(roundtrip(body), body)


@given(
    st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=64),
    st.integers(0, 2**32),
)
@settings(max_examples=60, deadline=None)
def test_ciphertext_batches_bit_identical(values, seed):
    batch = {
        "ashe": np.array(values, dtype=np.uint64),
        "ore": np.array(values * 3, dtype=np.uint64)[: 3 * len(values)].reshape(-1, 3),
        "paillier": np.array([pow(3, seed % 200 + 1, 10**30) for _ in values], dtype=object),
        "blob": np.array(values, dtype=np.uint64).tobytes(),
    }
    got = roundtrip(batch)
    assert got["ashe"].tobytes() == batch["ashe"].tobytes()
    assert got["ore"].tobytes() == batch["ore"].tobytes()
    assert got["blob"] == batch["blob"]
    assert list(got["paillier"]) == list(batch["paillier"])


@given(st.data())
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_truncation_raises_codec_error(data):
    frame = codec.encode_frame("req", data.draw(trees))
    cut = data.draw(st.integers(min_value=0, max_value=max(len(frame) - 1, 0)))
    with pytest.raises(CodecError):
        codec.decode_frame(frame[:cut])


@given(st.data())
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_corruption_never_escapes_untyped(data):
    frame = bytearray(codec.encode_frame("req", data.draw(trees)))
    pos = data.draw(st.integers(min_value=4, max_value=len(frame) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    frame[pos] ^= flip
    try:
        codec.decode_frame(bytes(frame))
    except CodecError:
        pass  # the typed outcome; a lucky flip may also decode cleanly


# -- request/response shapes ----------------------------------------------


def test_server_query_roundtrip():
    q = srv.ServerQuery(
        table="sales",
        aggs=(
            srv.AsheSum(column="rev_ashe", alias="s", codec="range"),
            srv.PaillierSum(column="rev_phe", alias="p", n_squared=7**40),
            srv.OreExtreme(kind="max", ore_column="c_ore", payload_column="c", alias="m"),
            srv.PlainAgg(column=None, func="count", alias="n"),
        ),
        filter=srv.FilterAnd(
            children=(
                srv.DetEq(column="region_det", token=2**63 + 11, negate=True),
                srv.FilterOr(
                    children=(
                        srv.OreCmp(column="c_ore", op="<", token=(1, 2, 0), nbits=32),
                        srv.FilterNot(child=srv.DetIn(column="x", tokens=(1, 2, 3))),
                    )
                ),
            )
        ),
        join=srv.ServerJoin(
            build_table="dim",
            probe_key_column="k_det",
            build_key_column="k_det",
            payload_columns=("d1", "d2"),
        ),
        group_by="region_det",
        inflation=4,
        compress_at="driver",
    )
    got = roundtrip(q)
    assert got == q  # frozen dataclasses compare by value


def test_server_response_roundtrip():
    metrics = JobMetrics(job_startup=0.25, result_bytes=128, queue_wait=0.5)
    metrics.add_stage(StageMetrics("map", [0.1, 0.2], 0.2, wall_time=0.05))
    resp = srv.ServerResponse(
        kind="grouped",
        flat={"total": ("ashe", 3, [b"\x01\x02", b""], True)},
        groups=[
            (7, 0, {"s": ("paillier", 10**45), "m": ("extreme", 5, 2, (1, 0, 2))}),
        ],
        metrics=metrics,
        payload_bytes=4096,
    )
    got = roundtrip(resp, kind="rep")
    assert got.kind == resp.kind
    assert got.flat == resp.flat
    assert got.groups == resp.groups
    assert got.payload_bytes == resp.payload_bytes
    assert got.metrics.summary() == resp.metrics.summary()


def test_unknown_dataclass_rejected():
    frame = codec.encode_frame("req", None)
    # splice a forged envelope naming a class outside the registry
    env = json.dumps(
        {"kind": "req", "buffers": [], "body": {"!": "d", "t": "KeyChain", "f": {}}}
    ).encode()
    payload = struct.pack("<4sHI", codec.MAGIC, codec.WIRE_VERSION, len(env)) + env
    forged = struct.pack("<I", len(payload)) + payload
    with pytest.raises(CodecError, match="unknown dataclass"):
        codec.decode_frame(forged)
    assert codec.decode_frame(frame) == ("req", None)


def test_version_skew_rejected():
    frame = bytearray(codec.encode_frame("req", {"a": 1}))
    # bump the u16 version field (after u32 length + 4-byte magic)
    frame[8:10] = struct.pack("<H", codec.WIRE_VERSION + 1)
    with pytest.raises(CodecError, match="version skew"):
        codec.decode_frame(bytes(frame))


def test_bad_magic_rejected():
    frame = bytearray(codec.encode_frame("req", {"a": 1}))
    frame[4:8] = b"HTTP"
    with pytest.raises(CodecError, match="magic"):
        codec.decode_frame(bytes(frame))


def test_trailing_garbage_rejected():
    frame = codec.encode_frame("req", [1, 2, 3])
    grown = struct.pack("<I", len(frame)) + frame[4:] + b"xx"
    with pytest.raises(CodecError):
        codec.decode_frame(grown)


def test_unencodable_type_rejected():
    with pytest.raises(CodecError, match="cannot encode"):
        codec.encode_frame("req", object())
