"""The keyless-server invariant, checked structurally.

:func:`repro.net.audit.audit_keyless` must flag key material wherever it
hides in an object graph (sessions, nested containers, smuggled
attributes) and must pass a real service hosting real ciphertext stores
-- that pass is the paper's threat model made testable."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.schema import ColumnSpec, TableSchema
from repro.crypto.keys import KeyChain
from repro.net.audit import KeylessAuditError, audit_keyless

KEY = b"a" * 32

SCHEMA = TableSchema("sales", [
    ColumnSpec("region", dtype="str", sensitive=True,
               distinct_values=["us", "eu"]),
    ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
])
SAMPLES = ["SELECT sum(amount) FROM sales WHERE region = 'us'"]


def _loaded_session():
    session = repro.SeabedSession(master_key=KEY, seed=3)
    session.create_plan(SCHEMA, SAMPLES)
    session.upload("sales", {
        "region": np.array(["us", "eu"] * 30),
        "amount": np.arange(60, dtype=np.int64),
    })
    return session


class TestDetection:
    def test_session_is_flagged(self):
        result = audit_keyless(_loaded_session())
        assert not result.ok
        assert any("KeyChain" in f for f in result.flagged)
        with pytest.raises(KeylessAuditError):
            result.raise_if_failed()

    def test_bare_keychain_flagged(self):
        assert not audit_keyless(KeyChain.generate()).ok

    def test_keychain_nested_in_containers_flagged(self):
        graph = {"a": [({"deep": (KeyChain.generate(),)},)]}
        result = audit_keyless(graph)
        assert not result.ok and "KeyChain" in result.flagged[0]

    def test_clean_graph_passes(self):
        result = audit_keyless({"rows": np.arange(5), "name": "sales", "n": 3})
        assert result.ok and result.flagged == []

    def test_walk_bound_reported_as_failure(self):
        wide = {i: list(range(3)) for i in range(200)}
        result = audit_keyless(wide, max_objects=50)
        assert not result.ok
        assert "truncated" in result.flagged[0]

    def test_cycles_terminate(self):
        a: dict = {}
        a["self"] = a
        assert audit_keyless(a).ok


class TestServiceIsKeyless:
    def test_service_hosting_ciphertexts_passes(self):
        """The full service -- server, stores, tokens, admission state --
        holds no key material even while serving a session that does."""
        handle = repro.serve()
        try:
            token = handle.mint_token("alice")
            session = repro.connect(handle.address, token, master_key=KEY, seed=3)
            session.create_plan(SCHEMA, SAMPLES)
            session.upload("sales", {
                "region": np.array(["us", "eu"] * 30),
                "amount": np.arange(60, dtype=np.int64),
            })
            assert session.query("SELECT count(*) FROM sales").rows
            result = audit_keyless(handle.service)
            assert result.ok, result.flagged
            # the same audit over the RPC boundary
            remote = session.transport.audit_server()
            assert remote["ok"], remote["flagged"]
            assert remote["objects_walked"] > 0
            session.close()
        finally:
            handle.stop()

    def test_smuggled_key_is_caught(self):
        """If key material ever does land in service state, the audit is
        the tripwire -- including over the RPC."""
        handle = repro.serve()
        try:
            handle.service.smuggled = KeyChain.generate()
            result = audit_keyless(handle.service)
            assert not result.ok
            assert any("smuggled" in f and "KeyChain" in f for f in result.flagged)
            token = handle.mint_token("alice")
            from repro.net.client import RemoteTransport

            transport = RemoteTransport(handle.address, token)
            remote = transport.audit_server()
            assert remote["ok"] is False
            transport.close()
        finally:
            handle.stop()

    def test_sidecar_payloads_shipped_are_key_free(self, tmp_path):
        """What the client commits over the wire is the same key-free
        document persistence already proves safe: audit the payload the
        server would hold."""
        session = _loaded_session()
        session.cluster.config = session.cluster.config.with_storage(str(tmp_path))
        path = session.encrypted_table("sales").save("sales_store")
        import json
        import os

        with open(os.path.join(path, "client_state.json")) as fh:
            payload = json.load(fh)
        assert audit_keyless(payload).ok
        assert "key_check" in payload  # a PRF check value, not a key
