"""Service-layer behavior: auth, admission control, timeouts, typed
wire errors.  Everything here runs the real asyncio listener on
localhost -- only the client and server share a process."""

from __future__ import annotations

import socket
import struct
import threading
import time

import numpy as np
import pytest

import repro
from repro.core.schema import ColumnSpec, TableSchema
from repro.errors import AuthError, Backpressure, CodecError, TransportError
from repro.net import codec
from repro.net.client import RemoteTransport
from repro.net.service import SeabedService, ServiceConfig

KEY = b"t" * 32

SCHEMA = TableSchema("sales", [
    ColumnSpec("region", dtype="str", sensitive=True,
               distinct_values=["us", "eu", "apac"]),
    ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
])
SAMPLES = [
    "SELECT sum(amount) FROM sales WHERE region = 'us'",
    "SELECT count(*) FROM sales WHERE amount > 100",
]


def _data(n=120, seed=9):
    rng = np.random.default_rng(seed)
    return {
        "region": rng.choice(["us", "eu", "apac"], n),
        "amount": rng.integers(-20, 500, n),
    }


def _session(handle, token, **kw):
    session = repro.connect(handle.address, token, master_key=KEY, seed=3, **kw)
    session.create_plan(SCHEMA, SAMPLES)
    return session


@pytest.fixture
def handle():
    h = repro.serve()
    yield h
    h.stop()


class TestAuth:
    def test_bad_token_rejected_typed(self, handle):
        with pytest.raises(AuthError, match="unknown bearer token"):
            repro.connect(handle.address, "not-a-token", master_key=KEY)

    def test_missing_token_rejected(self, handle):
        with pytest.raises(AuthError):
            repro.connect(handle.address, None, master_key=KEY)

    def test_revocation_is_instant(self, handle):
        token = handle.mint_token("alice")
        session = _session(handle, token)
        session.upload("sales", _data())
        assert session.query("SELECT count(*) FROM sales").rows
        handle.revoke("alice")
        from repro.core.access import AccessError

        with pytest.raises(AccessError, match="revoked"):
            session.query("SELECT count(*) FROM sales")
        # and new connections with the stale token fail at the handshake
        with pytest.raises(AuthError, match="revoked"):
            repro.connect(handle.address, token, master_key=KEY)
        session.close()

    def test_table_scoped_grant(self, handle):
        token = handle.mint_token("bob", tables={"other"})
        session = _session(handle, token)
        from repro.core.access import AccessError

        with pytest.raises(AccessError, match="may not query"):
            session.upload("sales", _data())
        session.close()

    def test_tenant_keys_isolated(self, handle):
        """Two tenants, two keychains: each decrypts only its own table."""
        t1 = handle.mint_token("alice")
        t2 = handle.mint_token("carol")
        s1 = repro.connect(handle.address, t1, master_key=b"a" * 32, seed=3)
        s2 = repro.connect(handle.address, t2, master_key=b"c" * 32, seed=3)
        schema2 = TableSchema("orders", [
            ColumnSpec("amount", dtype="int", sensitive=True, nbits=32)])
        s1.create_plan(SCHEMA, SAMPLES)
        s2.create_plan(schema2, ["SELECT sum(amount) FROM orders"])
        s1.upload("sales", _data())
        s2.upload("orders", {"amount": np.arange(50, dtype=np.int64)})
        assert s1.query("SELECT count(*) FROM sales").rows[0]["count(*)"] == 120
        assert s2.query("SELECT sum(amount) FROM orders").rows[0][
            "sum(amount)"] == int(np.arange(50).sum())
        s1.close()
        s2.close()


class TestAdmission:
    @pytest.fixture
    def tight_handle(self):
        h = repro.serve(config=ServiceConfig(max_in_flight=1, queue_depth=0))
        yield h
        h.stop()

    def _slow_service(self, h, delay=0.4, op="table_meta"):
        service = h.service
        orig = service._run_op

        def slow(user, operation, args):
            if operation == op:
                time.sleep(delay)
            return orig(user, operation, args)

        service._run_op = slow

    def test_overload_returns_backpressure_not_hang(self, tight_handle):
        self._slow_service(tight_handle)
        token = tight_handle.mint_token("alice")
        transports = [
            RemoteTransport(tight_handle.address, token) for _ in range(4)
        ]
        outcomes: list[str] = []
        lock = threading.Lock()

        def hit(transport):
            try:
                transport.table_meta("sales")
                with lock:
                    outcomes.append("ok")
            except Backpressure as exc:
                assert exc.retry_after is not None and exc.retry_after > 0
                with lock:
                    outcomes.append("backpressure")

        threads = [
            threading.Thread(target=hit, args=(t,)) for t in transports
        ]
        start = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert time.monotonic() - start < 25  # never a hang
        assert len(outcomes) == 4
        assert "backpressure" in outcomes  # overload surfaced, typed
        assert "ok" in outcomes  # and the admitted request completed
        for t in transports:
            t.close()

    def test_retry_after_admission_drains(self, tight_handle):
        token = tight_handle.mint_token("alice")
        transport = RemoteTransport(tight_handle.address, token)
        # No contention: the same budget admits sequential requests forever.
        for _ in range(5):
            assert transport.table_meta("nope") is None
        transport.close()


class TestTimeouts:
    @pytest.fixture
    def slow_handle(self):
        h = repro.serve(config=ServiceConfig(request_timeout=10.0))
        service = h.service
        orig = service._run_op

        def slow(user, operation, args):
            if operation in ("storage_bytes", "execute"):
                time.sleep(1.0)
            return orig(user, operation, args)

        service._run_op = slow
        yield h
        h.stop()

    def test_per_call_timeout_is_typed(self, slow_handle):
        token = slow_handle.mint_token("alice")
        session = _session(slow_handle, token)
        session.upload("sales", _data())
        with pytest.raises(TransportError, match="timed out"):
            session.query("SELECT count(*) FROM sales", timeout=0.2)
        # the connection survives the timeout; later requests still work
        assert session.query("SELECT count(*) FROM sales").rows
        session.close()

    def test_query_timeout_parameter_threads_through(self, slow_handle):
        token = slow_handle.mint_token("alice")
        session = _session(slow_handle, token)
        session.upload("sales", _data())
        # generous timeout: passes through the whole prepared path
        result = session.query("SELECT count(*) FROM sales", timeout=20.0)
        assert result.rows[0]["count(*)"] == 120
        results = session.query_many(
            ["SELECT count(*) FROM sales"] * 3, timeout=20.0
        )
        assert all(r.rows[0]["count(*)"] == 120 for r in results)
        session.close()

    def test_storage_bytes_timeout_overridden_per_call(self, slow_handle):
        token = slow_handle.mint_token("alice")
        transport = RemoteTransport(slow_handle.address, token)
        with pytest.raises(TransportError, match="timed out"):
            transport._request("storage_bytes", {"table": "x"}, timeout=0.1)
        transport.close()


class TestQueueWait:
    def test_queue_wait_metric_surfaces_under_contention(self):
        handle = repro.serve(config=ServiceConfig(max_in_flight=1, queue_depth=4))
        try:
            service = handle.service
            orig = service._run_op

            def slow(user, operation, args):
                if operation == "execute":
                    time.sleep(0.2)
                return orig(user, operation, args)

            service._run_op = slow
            token = handle.mint_token("alice")
            sessions = [_session(handle, token) for _ in range(2)]
            sessions[0].upload("sales", _data())
            waits = []

            def run(session):
                result = session.query("SELECT count(*) FROM sales")
                waits.append(result.queue_wait)

            threads = [threading.Thread(target=run, args=(s,)) for s in sessions]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(waits) == 2
            # one request queued behind the other's 0.2s execution
            assert max(waits) > 0.05
            for s in sessions:
                s.close()
        finally:
            handle.stop()


class TestWireErrors:
    def test_version_skew_rejected_at_hello(self, handle):
        frame = bytearray(codec.encode_frame("hello", {"token": "x"}))
        frame[8:10] = struct.pack("<H", codec.WIRE_VERSION + 1)
        with socket.create_connection(handle.address, timeout=10) as sock:
            sock.sendall(bytes(frame))
            kind, body = codec.read_frame(sock)
        assert kind == "hello"
        assert body["ok"] is False
        assert body["error"] == "CodecError"
        assert "version skew" in body["message"]

    def test_garbage_frame_answered_typed_then_closed(self, handle):
        token = handle.mint_token("alice")
        with socket.create_connection(handle.address, timeout=10) as sock:
            codec.write_frame(sock, "hello", {"token": token})
            kind, body = codec.read_frame(sock)
            assert body["ok"] is True
            sock.sendall(struct.pack("<I", 8) + b"GARBAGE!")
            kind, body = codec.read_frame(sock)
            assert kind == "rep" and body["error"] == "CodecError"

    def test_oversized_frame_announcement_rejected(self, handle):
        token = handle.mint_token("alice")
        with socket.create_connection(handle.address, timeout=10) as sock:
            codec.write_frame(sock, "hello", {"token": token})
            codec.read_frame(sock)
            sock.sendall(struct.pack("<I", codec.MAX_FRAME_BYTES + 1))
            kind, body = codec.read_frame(sock)
            assert body["error"] == "CodecError"

    def test_unknown_op_is_typed(self, handle):
        token = handle.mint_token("alice")
        transport = RemoteTransport(handle.address, token)
        with pytest.raises(TransportError, match="unknown service operation"):
            transport._request("frobnicate", {})
        transport.close()

    def test_connection_refused_is_transport_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(TransportError, match="cannot reach"):
            RemoteTransport(("127.0.0.1", free_port), "tok")

    def test_no_auth_mode_accepts_anonymous(self):
        h = repro.serve(config=ServiceConfig(auth_required=False))
        try:
            session = repro.connect(h.address, master_key=KEY, seed=3)
            session.create_plan(SCHEMA, SAMPLES)
            session.upload("sales", _data())
            assert session.query("SELECT count(*) FROM sales").rows
            session.close()
        finally:
            h.stop()


class TestServiceLifecycle:
    def test_handle_context_manager_and_server_property(self):
        with repro.serve() as h:
            token = h.mint_token("alice")
            session = _session(h, token)
            # remote sessions have no in-process server to poke
            with pytest.raises(TransportError, match="remote"):
                _ = session.server
            with pytest.raises(TransportError):
                session.server = object()
            session.close()

    def test_serve_rejects_config_plus_overrides(self):
        with pytest.raises(TransportError):
            repro.serve(config=ServiceConfig(), max_in_flight=2)

    def test_double_start_rejected(self):
        service = SeabedService(ServiceConfig())
        handle = service.start()
        try:
            with pytest.raises(TransportError, match="already started"):
                service.start()
        finally:
            handle.stop()
