"""Figure 10b: cumulative SPLASHE storage overhead over the sensitive
dimensions.

Paper: 10 sensitive dimensions sorted by cardinality; within a 2x total
budget only 1 dimension fits with basic SPLASHE but 2 with enhanced, and
within 3x basic covers 3 while enhanced covers 6.

The overhead here is the paper's metric: total dataset cells after
splaying the first k dimensions, relative to the unsplayed dataset (33
dimensions + 18 measures per row).
"""


from repro.bench import ResultSink, format_table
from repro.core.splashe import (
    basic_storage_cells,
    choose_k,
    enhanced_storage_cells,
)
from repro.workloads import adanalytics

BASE_CELLS = 33 + 18  # plaintext cells per row

#: Measures splayed together with each dimension (Section 4.2 determines
#: this from the query workload; the ad-analytics queries pair each
#: dimension with two measures).
MEASURES_PER_DIM = 2


def test_fig10b_cumulative_overhead(benchmark):
    cards = adanalytics.SENSITIVE_DIM_CARDINALITIES  # sorted ascending
    rows = 100_000

    def compute():
        basic_cum, enhanced_cum = [], []
        basic_total = enhanced_total = BASE_CELLS
        for card in cards:
            counts = sorted(
                adanalytics.expected_dim_counts(card, rows), reverse=True
            )
            k = choose_k(counts)
            basic_total += basic_storage_cells(card, MEASURES_PER_DIM) - (
                1 + MEASURES_PER_DIM
            )
            enhanced_total += enhanced_storage_cells(k, MEASURES_PER_DIM) - (
                1 + MEASURES_PER_DIM
            )
            basic_cum.append(basic_total / BASE_CELLS)
            enhanced_cum.append(enhanced_total / BASE_CELLS)
        return basic_cum, enhanced_cum

    basic_cum, enhanced_cum = benchmark.pedantic(compute, rounds=1, iterations=1)

    table_rows = [
        (f"dim {i + 1} (card={card})", f"{basic_cum[i]:.2f}x",
         f"{enhanced_cum[i]:.2f}x")
        for i, card in enumerate(cards)
    ]
    def within(series, budget):
        return sum(1 for v in series if v <= budget)

    with ResultSink("fig10b_splashe_storage") as sink:
        sink.emit(format_table(
            ["Dimensions splayed (cumulative)", "Basic SPLASHE", "Enhanced SPLASHE"],
            table_rows,
            title="Figure 10b: cumulative storage overhead, 10 sensitive dims",
        ))
        sink.emit(format_table(
            ["Shape check", "Paper", "Measured"],
            [
                ("dims within 2x budget (basic vs enhanced)", "1 vs 2",
                 f"{within(basic_cum, 2)} vs {within(enhanced_cum, 2)}"),
                ("dims within 3x budget (basic vs enhanced)", "3 vs 6",
                 f"{within(basic_cum, 3)} vs {within(enhanced_cum, 3)}"),
            ],
            title="Paper-vs-measured",
        ))

    # Enhanced dominates basic once cardinality grows (at d=2 basic's
    # d(1+m) cells undercut enhanced's extra DET column -- a real effect;
    # a planner would pick basic there), and the gap widens with
    # cardinality.
    assert all(e <= b * 1.05 for e, b in zip(enhanced_cum, basic_cum))
    assert all(e <= b for e, b in list(zip(enhanced_cum, basic_cum))[2:])
    assert within(enhanced_cum, 3.0) > within(basic_cum, 3.0)
    assert basic_cum[-1] / enhanced_cum[-1] > 5  # the headline 10x-ish gap
