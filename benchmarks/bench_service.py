"""Service layer: concurrent-session load generator and backpressure gate.

An asyncio Seabed server (README section "Service layer") hosts one
persisted ciphertext store; ``service_sessions`` concurrent sessions
drive a mixed workload against it over real sockets -- mostly reads
(prepared aggregates, grouped queries) with one designated writer
appending batches between its reads.  The identical workload runs over
``LocalTransport`` sessions on a private copy of the same store as the
in-process baseline.

Two gates, both enforced at every scale:

- **throughput floor** -- remote QPS must stay >= ``QPS_FLOOR``x the
  in-process QPS.  The wire adds a fixed per-request cost (framing, one
  round trip, the admission gate), so the ratio is weakest at quick
  scale where queries are cheapest; the floor is calibrated for that
  worst case.
- **backpressure gate** -- a deliberate overload (more concurrent
  requests than ``max_in_flight`` + ``queue_depth`` can hold) must
  surface typed :class:`~repro.errors.Backpressure` rejections with a
  ``retry_after`` hint: some requests rejected, zero requests hung,
  and the server must keep answering afterwards.

Results go to ``results/service.txt`` and machine-readably to
``BENCH_service.json`` at the repository root.
"""

import json
import os
import platform
import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

import repro
from repro.bench import ResultSink, format_table
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.errors import Backpressure
from repro.net.client import RemoteTransport
from repro.net.service import ServiceConfig

QPS_FLOOR = 0.5
READS_PER_SESSION = 16
APPEND_ROWS = 64
OVERLOAD_CLIENTS = 8
MASTER_KEY = b"bench-service-layer-key-32-bytes"
REGIONS = ["us", "eu", "apac", "latam"]

SAMPLES = [
    "SELECT sum(amount) FROM events WHERE region = 'us'",
    "SELECT region, sum(amount), count(*) FROM events GROUP BY region",
    "SELECT count(*) FROM events WHERE amount > 250",
]
READS = [
    "SELECT sum(amount) FROM events WHERE region = 'us'",
    "SELECT region, sum(amount), count(*) FROM events GROUP BY region",
    "SELECT count(*) FROM events WHERE amount > 250",
]

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _schema() -> TableSchema:
    return TableSchema("events", [
        ColumnSpec("region", dtype="str", sensitive=True,
                   distinct_values=REGIONS),
        ColumnSpec("amount", dtype="int", sensitive=True, nbits=32),
    ])


def _columns(rows: int, seed: int = 7) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "region": rng.choice(REGIONS, rows),
        "amount": rng.integers(0, 1_000, rows).astype(np.int64),
    }


def _build_store(tmp: str, rows: int) -> str:
    writer = SeabedSession(master_key=MASTER_KEY, seed=2)
    writer.create_plan(_schema(), SAMPLES)
    writer.upload("events", _columns(rows))
    return writer.encrypted_table("events").save(os.path.join(tmp, "events"))


def _drive(sessions: list, latencies: list) -> float:
    """Run the mixed workload over already-open sessions; return wall s.

    Worker 0 is the writer: it interleaves appends with its reads.  The
    rest are pure readers.  Per-read latencies land in ``latencies``.
    """
    barrier = threading.Barrier(len(sessions))
    lock = threading.Lock()
    errors: list = []

    def work(idx: int, session) -> None:
        barrier.wait()
        local: list = []
        try:
            for i in range(READS_PER_SESSION):
                t0 = time.perf_counter()
                session.query(READS[i % len(READS)])
                local.append(time.perf_counter() - t0)
                if idx == 0 and i % 4 == 3:
                    session.append_rows(
                        "events", _columns(APPEND_ROWS, seed=100 + i)
                    )
        except Exception as exc:  # surfaced below; never silently dropped
            errors.append(exc)
        with lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=work, args=(i, s))
        for i, s in enumerate(sessions)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return wall


def _ops(n_sessions: int) -> int:
    appends = READS_PER_SESSION // 4
    return n_sessions * READS_PER_SESSION + appends


def test_service_throughput(benchmark, scale):
    rows = scale["service_rows"]
    n_sessions = scale["service_sessions"]
    record: dict = {}

    def experiment():
        with tempfile.TemporaryDirectory(prefix="seabed-svc-") as tmp:
            remote_store = _build_store(os.path.join(tmp, "remote"), rows)
            local_store = os.path.join(tmp, "local", "events")
            os.makedirs(os.path.dirname(local_store))
            shutil.copytree(remote_store, local_store)

            # in-process baseline: same store, same concurrency, no wire
            local_sessions = []
            for _ in range(n_sessions):
                s = SeabedSession(master_key=MASTER_KEY, seed=2)
                s.open_table(local_store)
                local_sessions.append(s)
            local_lat: list = []
            local_wall = _drive(local_sessions, local_lat)
            for s in local_sessions:
                s.close()

            with repro.serve(
                stores=[remote_store],
                max_in_flight=max(n_sessions, 4),
                queue_depth=4 * n_sessions,
            ) as handle:
                token = handle.mint_token("bench")
                remote_sessions = []
                for _ in range(n_sessions):
                    s = repro.connect(
                        handle.address, token, master_key=MASTER_KEY, seed=2
                    )
                    s.open_table(remote_store)
                    remote_sessions.append(s)
                remote_lat: list = []
                remote_wall = _drive(remote_sessions, remote_lat)
                for s in remote_sessions:
                    s.close()

            ops = _ops(n_sessions)
            record.update(
                rows=rows,
                sessions=n_sessions,
                ops_per_path=ops,
                local_qps=ops / max(local_wall, 1e-12),
                remote_qps=ops / max(remote_wall, 1e-12),
                local_read_p50_ms=float(np.percentile(local_lat, 50)) * 1e3,
                local_read_p99_ms=float(np.percentile(local_lat, 99)) * 1e3,
                remote_read_p50_ms=float(np.percentile(remote_lat, 50)) * 1e3,
                remote_read_p99_ms=float(np.percentile(remote_lat, 99)) * 1e3,
                qps_floor_x=QPS_FLOOR,
            )
            record["remote_vs_local_x"] = (
                record["remote_qps"] / max(record["local_qps"], 1e-12)
            )

    benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)

    record["host"] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    _JSON_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    with ResultSink("service") as sink:
        sink.emit(format_table(
            ["Path", "QPS", "read p50 (ms)", "read p99 (ms)"],
            [
                ["remote (socket + admission)",
                 round(record["remote_qps"], 1),
                 round(record["remote_read_p50_ms"], 2),
                 round(record["remote_read_p99_ms"], 2)],
                ["in-process (LocalTransport)",
                 round(record["local_qps"], 1),
                 round(record["local_read_p50_ms"], 2),
                 round(record["local_read_p99_ms"], 2)],
            ],
            title=(
                f"{record['sessions']} concurrent sessions x "
                f"{READS_PER_SESSION} reads (+appends) over "
                f"{record['rows']:,} rows: remote runs at "
                f"{record['remote_vs_local_x']:.2f}x in-process QPS "
                f"(floor >= {QPS_FLOOR}x)"
            ),
        ))

    assert record["remote_vs_local_x"] >= QPS_FLOOR, (
        f"remote sessions run at only {record['remote_vs_local_x']:.2f}x "
        f"the in-process QPS (floor {QPS_FLOOR}x)"
    )


def test_service_backpressure_gate(benchmark, scale):
    """Overload must reject typed, never hang, and never take the server
    down: after the storm, the same connections keep working."""
    rows = min(scale["service_rows"], 60_000)
    outcome: dict = {}

    def experiment():
        with tempfile.TemporaryDirectory(prefix="seabed-bp-") as tmp:
            store = _build_store(tmp, rows)
            config = ServiceConfig(max_in_flight=1, queue_depth=0)
            with repro.serve(stores=[store], config=config) as handle:
                token = handle.mint_token("bench")
                sessions = []
                for _ in range(OVERLOAD_CLIENTS):
                    s = repro.connect(
                        handle.address, token, master_key=MASTER_KEY, seed=2
                    )
                    s.open_table(store)
                    sessions.append(s)
                results: list = []
                lock = threading.Lock()
                barrier = threading.Barrier(OVERLOAD_CLIENTS)
                query = READS[0]

                def storm(session):
                    barrier.wait()
                    try:
                        session.query(query)
                        verdict = ("ok", 0.0)
                    except Backpressure as exc:
                        verdict = ("rejected", float(exc.retry_after or 0))
                    except Exception:
                        verdict = ("error", 0.0)
                    with lock:
                        results.append(verdict)

                threads = [
                    threading.Thread(target=storm, args=(s,))
                    for s in sessions
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=60)
                hung = sum(1 for t in threads if t.is_alive())

                # the server survived the storm: every connection answers
                survivors = sum(
                    1
                    for s in sessions
                    if isinstance(s.transport, RemoteTransport)
                    and s.transport.ping().get("server") == "seabed"
                )
                for s in sessions:
                    s.close()

                outcome.update(
                    attempts=OVERLOAD_CLIENTS,
                    ok=sum(1 for v, _ in results if v == "ok"),
                    rejected=sum(1 for v, _ in results if v == "rejected"),
                    errors=sum(1 for v, _ in results if v == "error"),
                    hung=hung,
                    survivors=survivors,
                    retry_after_hint_s=max(
                        (hint for _, hint in results), default=0.0
                    ),
                )

    benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)

    record = (
        json.loads(_JSON_PATH.read_text()) if _JSON_PATH.exists() else {}
    )
    record["backpressure"] = outcome
    _JSON_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    assert outcome["ok"] >= 1, "overload starved every request"
    assert outcome["rejected"] >= 1, (
        "an 8-way storm against max_in_flight=1/queue_depth=0 produced "
        "no Backpressure rejections"
    )
    assert outcome["hung"] == 0, f"{outcome['hung']} requests hung"
    assert outcome["errors"] == 0, (
        f"{outcome['errors']} requests failed untyped"
    )
    assert outcome["retry_after_hint_s"] > 0, "rejections carried no hint"
    assert outcome["survivors"] == OVERLOAD_CLIENTS, (
        "connections died during the overload storm"
    )
