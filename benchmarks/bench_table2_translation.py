"""Table 2: query-translation examples.

Reproduces the paper's three rewrite rows -- ID preservation, SPLASHE, and
the group-by optimisation -- by translating the same SQL and printing the
resulting server requests.  The benchmark measures translation throughput
(the proxy's per-query rewriting cost, which the paper folds into client
time).
"""

import numpy as np
import pytest

from repro.bench import ResultSink, format_table
from repro.core.crypto_factory import CryptoFactory
from repro.core.encryptor import ClientTableState, EncryptionModule
from repro.core.planner import Planner
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.translator import QueryTranslator
from repro.crypto.keys import KeyChain
from repro.query.parser import parse_query


@pytest.fixture(scope="module")
def translator():
    schema = TableSchema("tbl", [
        ColumnSpec("a", dtype="int", sensitive=True),
        ColumnSpec("b", dtype="int", sensitive=True, nbits=16),
        ColumnSpec("d", dtype="int", sensitive=True, distinct_values=list(range(4))),
        ColumnSpec("g", dtype="int", sensitive=True),
    ])
    samples = [
        parse_query("SELECT sum(a) FROM tbl WHERE b > 10"),
        parse_query("SELECT count(*) FROM tbl WHERE d = 2"),
        parse_query("SELECT sum(a) FROM tbl WHERE d = 2"),
        parse_query("SELECT g, sum(a) FROM tbl GROUP BY g"),
    ]
    enc, _ = Planner("seabed").plan(schema, samples)
    state = ClientTableState(schema=schema, enc_schema=enc)
    factory = CryptoFactory(KeyChain(b"t" * 32), "tbl")
    rng = np.random.default_rng(0)
    EncryptionModule(factory, seed=0).encrypt_batch(state, {
        "a": rng.integers(0, 100, 64),
        "b": rng.integers(0, 100, 64),
        "d": rng.integers(0, 4, 64),
        "g": rng.integers(0, 8, 64),
    }, num_partitions=2)
    return QueryTranslator(state, factory)


def _describe(tq) -> str:
    parts = []
    for req in tq.requests:
        ops = ", ".join(
            f"{type(a).__name__}({getattr(a, 'column', '*')})" for a in req.aggs
        )
        filt = type(req.filter).__name__ if req.filter is not None else "none"
        grp = f" groupBy={req.group_by} x{req.inflation}" if req.group_by else ""
        parts.append(f"[aggs: {ops}; filter: {filt}{grp}]")
    return " + ".join(parts)


CASES = [
    ("ID preservation",
     "SELECT sum(a) FROM tbl WHERE b > 10",
     "table.filter(OPE.leq).map(x=>(x(id),x(1))).reduce(ASHE)"),
    ("SPLASHE",
     "SELECT count(*) FROM tbl WHERE d = 2",
     "table.map(x=>(x(id),x(3))).reduce(ASHE)  -- filter eliminated"),
    ("Group-by optimisation",
     "SELECT g, sum(a) FROM tbl GROUP BY g",
     "map(x=>(x(1)+':'+r%10,(x(id),x(2)))).reduceByKey(ASHE)"),
]


def test_table2_translation_examples(benchmark, translator):
    rows = []
    for name, sql, paper_form in CASES:
        tq = translator.translate(parse_query(sql), cores=100, expected_groups=8)
        rows.append((name, sql, _describe(tq)))
    with ResultSink("table2_translation") as sink:
        sink.emit(format_table(
            ["Rewrite", "SQL", "Seabed server request(s)"],
            rows,
            title="Table 2: query translation (structure of rewritten requests)",
        ))

    # Structural assertions mirroring the paper's claims.
    splashe_tq = translator.translate(parse_query(CASES[1][1]))
    assert splashe_tq.requests[0].filter is None  # predicate vanished
    group_tq = translator.translate(
        parse_query(CASES[2][1]), cores=100, expected_groups=8
    )
    assert group_tq.inflation > 1  # groups inflated toward worker count

    benchmark(lambda: translator.translate(
        parse_query("SELECT sum(a) FROM tbl WHERE b > 10")
    ))
