"""Persistent-store I/O: cold attach vs re-encrypt, and dispatch volume.

The paper's deployment model uploads an encrypted dataset *once* and has
analytics jobs attach to it repeatedly (Sections 5-6).  This benchmark
quantifies the two wins the partition store (:mod:`repro.engine.store`)
delivers:

1. **Cold open vs re-encrypt** -- attaching a stored table
   (``SeabedSession.open_table``: sidecar parse + memory maps) against
   rebuilding it from plaintext (``create_plan`` + ``upload``, the cost
   every fresh process paid before the store existed).

2. **Stage dispatch volume on the ``processes`` backend** -- the bytes a
   stage pickles to pool workers per query, measured with the backend's
   ``track_dispatch`` hook over the identical aggregation query, in
   three configurations: pickled whole partitions (in-memory table with
   ``spill_to_store=False`` -- the historical baseline), the zero-copy
   *auto-spill* path (in-memory table, default config: the server spills
   it to a scratch mmap store on register and dispatches
   ``PartitionRef``s), and an explicitly store-backed table.  The
   acceptance floor is a >= 10x reduction vs the pickled baseline for
   both ref-shipping paths.

Results go to ``results/store_io.txt`` and machine-readably to
``BENCH_store.json`` at the repository root.
"""

import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench import ResultSink, format_table
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.engine.store import disk_bytes
from repro.ops import OPS
from repro.workloads import synthetic

PARTITIONS = 32
WORKERS = 2
DISPATCH_TARGET = 10.0
MASTER_KEY = b"bench-store-io-master-key-32-by!"

QUERY = "SELECT sum(value), count(*) FROM synth WHERE sel < 500000"


def _schema(rows: int) -> tuple[TableSchema, dict[str, np.ndarray]]:
    data = synthetic.generate(rows, seed=1)
    columns = dict(data.columns)
    columns["sel"] = synthetic.selectivity_filter_column(rows, seed=2)
    schema = TableSchema("synth", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("sel", dtype="int", sensitive=False),
    ])
    return schema, columns


def _fresh_session(backend: str = "serial", spill: bool = True) -> SeabedSession:
    cluster = SimulatedCluster(ClusterConfig(
        backend=backend, workers=WORKERS, spill_to_store=spill,
    ))
    return SeabedSession(mode="seabed", master_key=MASTER_KEY, cluster=cluster)


def _build_and_upload(
    rows: int, backend: str = "serial", spill: bool = True
) -> tuple[SeabedSession, float]:
    schema, columns = _schema(rows)
    session = _fresh_session(backend, spill)
    t0 = time.perf_counter()
    session.create_plan(schema, ["SELECT sum(value) FROM synth"])
    session.upload("synth", columns, num_partitions=PARTITIONS)
    return session, time.perf_counter() - t0


def _measure_dispatch(session: SeabedSession) -> int:
    """Actual bytes the processes backend pickles for one QUERY."""
    backend = session.cluster.backend
    backend.track_dispatch = True
    backend.dispatched_bytes = 0
    result = session.query(QUERY)
    assert result.rows, "dispatch query returned nothing"
    backend.track_dispatch = False
    return backend.dispatched_bytes


def test_store_io(benchmark, scale):
    rows = scale["store_rows"]
    record: dict = {}

    def experiment():
        with tempfile.TemporaryDirectory(prefix="seabed-store-") as tmp:
            store_dir = os.path.join(tmp, "synth")

            # -- the upload-once path: encrypt + save -----------------------
            writer, reencrypt_s = _build_and_upload(rows)
            baseline = writer.query(QUERY).rows
            t0 = time.perf_counter()
            path = writer.save_table("synth", store_dir)
            save_s = time.perf_counter() - t0
            store_bytes = disk_bytes(path)
            writer.cluster.close()

            # -- cold attach: fresh session, memory maps, no encryption -----
            attach = _fresh_session()
            before = OPS.snapshot()
            t0 = time.perf_counter()
            attach.open_table(path)
            cold_open_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            reopened = attach.query(QUERY).rows
            first_query_s = time.perf_counter() - t0
            encrypt_ops = {
                op: n for op, n in OPS.delta(before).items()
                if op.startswith("encrypt")
            }
            assert not encrypt_ops, f"cold attach re-encrypted: {encrypt_ops}"
            assert reopened == baseline, "stored table answered differently"
            attach.cluster.close()

            # -- dispatch volume under the processes backend ----------------
            # Baseline: spilling disabled, stages pickle whole partitions.
            inmem, _ = _build_and_upload(rows, backend="processes", spill=False)
            inmem_bytes = _measure_dispatch(inmem)
            inmem.cluster.close()

            # Default config: the server auto-spills the uploaded table to
            # a scratch mmap store, so dispatch ships refs.
            spilled, _ = _build_and_upload(rows, backend="processes")
            autospill_bytes = _measure_dispatch(spilled)
            spilled.cluster.close()

            mapped = _fresh_session(backend="processes")
            mapped.open_table(path)
            store_dispatch_bytes = _measure_dispatch(mapped)
            mapped.cluster.close()

            record.update(
                rows=rows,
                partitions=PARTITIONS,
                reencrypt_s=reencrypt_s,
                save_s=save_s,
                store_disk_bytes=store_bytes,
                cold_open_s=cold_open_s,
                cold_first_query_s=first_query_s,
                open_speedup_vs_reencrypt=reencrypt_s / max(cold_open_s, 1e-12),
                dispatch={
                    "query": QUERY,
                    "workers": WORKERS,
                    "inmemory_bytes": inmem_bytes,
                    "autospill_bytes": autospill_bytes,
                    "store_bytes": store_dispatch_bytes,
                    "reduction_x": inmem_bytes / max(store_dispatch_bytes, 1),
                    "autospill_reduction_x": inmem_bytes / max(autospill_bytes, 1),
                    "target_x": DISPATCH_TARGET,
                },
            )

    benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)

    record["host"] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_store.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    reduction = record["dispatch"]["reduction_x"]
    with ResultSink("store_io") as sink:
        sink.emit(format_table(
            ["Path", "seconds"],
            [
                ["plan+encrypt+upload (fresh process)", round(record["reencrypt_s"], 3)],
                ["save to store", round(record["save_s"], 3)],
                ["cold open_table (mmap attach)", round(record["cold_open_s"], 4)],
                ["first query after attach", round(record["cold_first_query_s"], 3)],
            ],
            title=(
                f"Store I/O, {rows:,} rows x {PARTITIONS} partitions "
                f"({record['store_disk_bytes']:,} bytes on disk): attach is "
                f"{record['open_speedup_vs_reencrypt']:.0f}x cheaper than re-encrypting"
            ),
        ))
        sink.emit(format_table(
            ["Dispatch payload per query (processes backend)", "bytes"],
            [
                ["in-memory partitions, spill off (pickled columns)",
                 record["dispatch"]["inmemory_bytes"]],
                ["in-memory partitions, auto-spilled (refs, workers mmap)",
                 record["dispatch"]["autospill_bytes"]],
                ["store-backed partitions (refs, workers mmap)",
                 record["dispatch"]["store_bytes"]],
            ],
            title=f"Stage dispatch reduced {reduction:.0f}x (target >= {DISPATCH_TARGET:.0f}x)",
        ))

    # Attach-vs-reencrypt is only a meaningful comparison once encryption
    # costs real time; at BENCH_QUICK sizes both sides are milliseconds
    # and scheduler noise can flip the ratio, so the gate arms at 20 ms.
    if record["reencrypt_s"] >= 0.02:
        assert record["open_speedup_vs_reencrypt"] > 1.0, (
            "attaching a store should beat re-encrypting the dataset"
        )
    assert reduction >= DISPATCH_TARGET, (
        f"store-backed dispatch is only {reduction:.1f}x smaller "
        f"(target {DISPATCH_TARGET:.0f}x)"
    )
    autospill = record["dispatch"]["autospill_reduction_x"]
    assert autospill >= DISPATCH_TARGET, (
        f"auto-spilled dispatch is only {autospill:.1f}x smaller than "
        f"pickled columns (target {DISPATCH_TARGET:.0f}x)"
    )
