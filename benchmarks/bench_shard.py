"""Sharded scatter-gather: routed point queries and parallel aggregates.

A four-shard deployment (one worker process per node, section "sharded
execution" in README) is loaded with a user-keyed table and compared
against a single-store session holding the same rows:

- **routed point queries** -- ``WHERE user = :u`` resolves through the
  consistent-hash ring to one owning shard; the batch must skip shards
  (``shards_skipped > 0``) and beat the same batch with routing and
  rollup pruning disabled by ``ROUTING_TARGET``x.
- **scatter-gather aggregates** -- grouped partial aggregation computed
  node-side on every shard and merged once by the coordinator; answers
  asserted bit-identical, and the sharded QPS must beat the single-store
  QPS by ``SCATTER_TARGET``x (each shard aggregates a quarter of the
  partitions concurrently, so the win survives even one-core CI boxes;
  the targets are deliberately modest because the transport hop is a
  fixed per-query cost that only amortises at real data sizes).

Results go to ``results/shard.txt`` and machine-readably to
``BENCH_shard.json`` at the repository root.
"""

import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench import ResultSink, format_table
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster

NUM_SHARDS = 4
USERS = 256
POINT_QUERIES = 24
ROUTING_TARGET = 1.1
SCATTER_TARGET = 1.1
MASTER_KEY = b"bench-sharded-scatter-key-32-byt"

SAMPLES = [
    "SELECT sum(revenue), count(*) FROM synth WHERE user = 1",
    "SELECT user, sum(revenue) FROM synth GROUP BY user",
]
POINT = "SELECT sum(revenue), count(*) FROM synth WHERE user = :u"
GROUPED = "SELECT user, sum(revenue), count(*) FROM synth GROUP BY user"


def _columns(rows: int) -> dict:
    rng = np.random.default_rng(5)
    return {
        "user": rng.integers(0, USERS, rows).astype(np.int64),
        "revenue": rng.integers(0, 10_000, rows).astype(np.int64),
    }


def _schema() -> TableSchema:
    return TableSchema("synth", [
        ColumnSpec("user", dtype="int", sensitive=True),
        ColumnSpec("revenue", dtype="int", sensitive=True, nbits=32),
    ])


def _point_batch(prepared, targets) -> tuple[float, list, int, int]:
    rows_out = []
    skipped = total = 0
    t0 = time.perf_counter()
    for u in targets:
        result = prepared.execute(u=int(u))
        rows_out.append(result.rows)
        skipped += sum(m.shards_skipped for m in result.request_metrics)
        total += sum(m.shards_total for m in result.request_metrics)
    return time.perf_counter() - t0, rows_out, skipped, total


def test_shard_scatter_gather(benchmark, scale):
    rows = scale["shard_rows"]
    record: dict = {}

    def experiment():
        with tempfile.TemporaryDirectory(prefix="seabed-shard-") as tmp:
            columns = _columns(rows)

            single = SeabedSession(
                mode="seabed", master_key=MASTER_KEY,
                cluster=SimulatedCluster(ClusterConfig()),
            )
            single.create_plan(_schema(), SAMPLES)
            single.upload("synth", columns, num_partitions=NUM_SHARDS * 8)

            config = ClusterConfig(
                storage_dir=tmp,
                append_partition_rows=max(rows // (NUM_SHARDS * 8), 1),
            )
            sharded = SeabedSession(
                mode="seabed", master_key=MASTER_KEY,
                cluster=SimulatedCluster(config),
            )
            sharded.create_plan(_schema(), SAMPLES)
            sharded.shard_table("synth", "user", num_shards=NUM_SHARDS)
            sharded.upload("synth", columns)

            rng = np.random.default_rng(9)
            targets = rng.choice(USERS, POINT_QUERIES, replace=False)
            prepared = sharded.prepare(POINT)
            prepared.execute(u=int(targets[0]))  # warm workers and caches

            routed_s, routed_rows, skipped, shards_total = _point_batch(
                prepared, targets
            )
            assert skipped > 0, "routed point queries skipped no shards"

            # Same batch, with the ring routing and rollup pruning off:
            # the coordinator scatters every query to every shard.
            coordinator = sharded.server.sharded("synth")
            coordinator.pruning = False
            original_route = coordinator.route_filter
            coordinator.route_filter = lambda filt: None
            try:
                full_s, full_rows, full_skipped, _ = _point_batch(
                    prepared, targets
                )
            finally:
                coordinator.pruning = True
                coordinator.route_filter = original_route
            assert full_skipped == 0
            assert routed_rows == full_rows, (
                "shard routing changed point-query answers"
            )

            single_prepared = single.prepare(POINT)
            single_s, single_rows, _, _ = _point_batch(
                single_prepared, targets
            )
            assert routed_rows == single_rows, (
                "sharded execution changed point-query answers"
            )

            def rows_sorted(result):
                return sorted(
                    result.rows, key=lambda r: sorted(r.items())
                )

            # Interleaved best-of-reps: the floor compares two latencies
            # measured on the same (possibly noisy, one-core) CI box, so
            # the minimum -- the least-perturbed run of each path -- is
            # the honest basis for the ratio.
            reps = 7
            sharded_times = []
            single_times = []
            for _ in range(reps):
                t0 = time.perf_counter()
                grouped_sharded = sharded.query(GROUPED)
                sharded_times.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                grouped_single = single.query(GROUPED)
                single_times.append(time.perf_counter() - t0)
            grouped_sharded_s = min(sharded_times)
            grouped_single_s = min(single_times)
            assert rows_sorted(grouped_sharded) == rows_sorted(
                grouped_single
            ), "scatter-gathered group-by changed answers"

            record.update(
                rows=rows,
                shards=NUM_SHARDS,
                point_queries=POINT_QUERIES,
                routed_s=routed_s,
                unrouted_s=full_s,
                routed_speedup_x=full_s / max(routed_s, 1e-12),
                routing_target=ROUTING_TARGET,
                scatter_target=SCATTER_TARGET,
                shards_total=shards_total,
                shards_skipped=skipped,
                point_qps=POINT_QUERIES / max(routed_s, 1e-12),
                single_point_qps=POINT_QUERIES / max(single_s, 1e-12),
                grouped_qps=1.0 / max(grouped_sharded_s, 1e-12),
                single_grouped_qps=1.0 / max(grouped_single_s, 1e-12),
                single_store_speedup_x=(
                    grouped_single_s / max(grouped_sharded_s, 1e-12)
                ),
            )
            sharded.close()
            single.cluster.close()

    benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)

    record["host"] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_shard.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    with ResultSink("shard") as sink:
        sink.emit(format_table(
            ["Path", "QPS", "shards touched"],
            [
                ["routed point (ring + rollups)",
                 round(record["point_qps"], 1),
                 record["shards_total"] - record["shards_skipped"]],
                ["unrouted point (all shards)",
                 round(POINT_QUERIES / record["unrouted_s"], 1),
                 record["shards_total"]],
                ["single-store point",
                 round(record["single_point_qps"], 1), "-"],
                ["scatter-gather group-by",
                 round(record["grouped_qps"], 1), NUM_SHARDS],
                ["single-store group-by",
                 round(record["single_grouped_qps"], 1), "-"],
            ],
            title=(
                f"{POINT_QUERIES} DET point queries over {record['rows']:,} "
                f"rows x {NUM_SHARDS} shards: routing is "
                f"{record['routed_speedup_x']:.1f}x faster than full "
                f"scatter (target >= {ROUTING_TARGET}x); group-by "
                f"scatter-gather runs at "
                f"{record['single_store_speedup_x']:.2f}x single-store"
            ),
        ))

    assert record["routed_speedup_x"] >= ROUTING_TARGET, (
        f"ring-routed point queries are only "
        f"{record['routed_speedup_x']:.2f}x faster than full scatter "
        f"(target {ROUTING_TARGET}x)"
    )
    assert record["single_store_speedup_x"] >= SCATTER_TARGET, (
        f"scatter-gathered group-by runs at only "
        f"{record['single_store_speedup_x']:.2f}x single-store QPS "
        f"(target {SCATTER_TARGET}x)"
    )
