"""Table 5: dataset characteristics (disk and memory size per system).

The paper reports on-disk and in-memory sizes of each dataset under
NoEnc / Seabed / Paillier (2048-bit ciphertexts).  We build scaled
versions of the synthetic and ad-analytics datasets, encrypt them under
all three modes, and report sizes plus the blow-up factors.  Shape to
check against the paper: Seabed costs ~1.1-2x NoEnc, Paillier 3-15x
(worse the more measure-heavy the table).
"""

import pytest

from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.engine.storage import disk_size, memory_size
from repro.workloads import adanalytics, synthetic


def _sizes(client, table):
    server_table = client.server.table(table)
    return disk_size(server_table), memory_size(server_table)


@pytest.mark.parametrize("dataset_name", ["synthetic", "ad_analytics"])
def test_table5_storage(benchmark, scale, dataset_name):
    rows_count = scale["table5_rows"]
    if dataset_name == "synthetic":
        data = synthetic.generate(rows_count, seed=0)
        columns, schema = data.columns, data.schema
        samples = synthetic.sample_queries(data)
        table = schema.name
    else:
        data = adanalytics.generate(rows=rows_count, seed=0)
        columns, schema = data.columns, data.schema
        samples = adanalytics.sample_queries(data)
        table = schema.name

    results = {}

    def build_all():
        for mode in ("plain", "seabed", "paillier"):
            client = SeabedClient(
                mode=mode, paillier_bits=scale["paillier_bits"],
                paillier_blinding_pool=32, seed=1,
            )
            client.create_plan(schema, samples, storage_budget=12.0)
            client.upload(table, columns, num_partitions=8)
            results[mode] = _sizes(client, table)

    benchmark.pedantic(build_all, rounds=1, iterations=1)

    plain_disk, plain_mem = results["plain"]
    table_rows = []
    for mode in ("plain", "seabed", "paillier"):
        d, m = results[mode]
        table_rows.append((
            mode, rows_count, f"{d / 1e6:.1f}", f"{m / 1e6:.1f}",
            f"{d / plain_disk:.2f}x", f"{m / plain_mem:.2f}x",
        ))
    with ResultSink(f"table5_storage_{dataset_name}") as sink:
        sink.emit(format_table(
            ["System", "Rows", "Disk (MB)", "Memory (MB)", "Disk vs NoEnc",
             "Mem vs NoEnc"],
            table_rows,
            title=f"Table 5: storage characteristics -- {dataset_name}",
        ))

    seabed_disk, _ = results["seabed"]
    paillier_disk, _ = results["paillier"]
    # Paper shape: NoEnc < Seabed < Paillier, with Paillier far above.
    assert plain_disk < seabed_disk < paillier_disk
    assert paillier_disk > 2.5 * seabed_disk
