"""Ablation: ID-list codec choices the paper evaluated and rejected.

Section 6.4: "The bitmap algorithms performed poorly, so we omit them";
Section 4.5: the group-by path drops range encoding because sparse
per-group lists bloat under it.  Both claims are measured here.
"""

import numpy as np

from repro.bench import ResultSink, format_table
from repro.idlist import IdList, get_codec

ALL_CODECS = ["fixed64", "vb", "vb+diff", "ranges+vb", "ranges+vb+diff",
              "seabed", "bitmap", "bitmap_wah"]


def test_ablation_codec_landscape(benchmark):
    rng = np.random.default_rng(0)
    rows = 1_000_000
    scenarios = {
        "dense (sel=90%)": IdList.from_mask(rng.random(rows) < 0.9),
        "half (sel=50%)": IdList.from_mask(rng.random(rows) < 0.5),
        "sparse (sel=1%)": IdList.from_mask(rng.random(rows) < 0.01),
        "group shard (900 scattered ids)": IdList.from_ids(
            np.sort(rng.choice(rows, 900, replace=False))
        ),
    }

    sizes: dict[str, dict[str, int]] = {name: {} for name in scenarios}

    def sweep():
        for scenario, ids in scenarios.items():
            for codec_name in ALL_CODECS:
                sizes[scenario][codec_name] = get_codec(codec_name).encoded_size(ids)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table_rows = [
        [scenario] + [f"{sizes[scenario][c] / 1e3:,.1f}" for c in ALL_CODECS]
        for scenario in scenarios
    ]
    with ResultSink("ablation_encodings") as sink:
        sink.emit(format_table(
            ["Scenario \\ codec (KB)"] + ALL_CODECS, table_rows,
            title="Ablation: encoded size per codec per selection shape",
        ))
        group = sizes["group shard (900 scattered ids)"]
        sink.emit(format_table(
            ["Claim", "Evidence"],
            [
                ("bitmaps poor on sparse selections (Section 6.4)",
                 f"bitmap {sizes['sparse (sel=1%)']['bitmap'] / 1e3:,.0f} KB vs "
                 f"seabed {sizes['sparse (sel=1%)']['seabed'] / 1e3:,.0f} KB"),
                ("ranges bloat sparse group lists (Section 4.5)",
                 f"ranges+vb {group['ranges+vb']:,} B vs vb+diff "
                 f"{group['vb+diff']:,} B"),
            ],
            title="Paper claims checked",
        ))

    assert sizes["sparse (sel=1%)"]["bitmap"] > sizes["sparse (sel=1%)"]["seabed"]
    group = sizes["group shard (900 scattered ids)"]
    assert group["ranges+vb"] > group["vb+diff"]
    # The production pick is never the worst and near-best everywhere.
    for scenario, per_codec in sizes.items():
        best = min(per_codec.values())
        assert per_codec["seabed"] <= 5 * best + 64, scenario
