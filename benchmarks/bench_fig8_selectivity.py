"""Figure 8: ID-list size and response time vs selectivity.

(a) ID-list size per encoding combination: without range encoding the
    list grows with selectivity; with ranges it peaks at 50% and collapses
    at 100%; Diff+VB shrink it and Deflate shrinks it further.
(b) response time per encoding: the better-compressing stacks are also
    the faster ones (the paper's happy accident), except compact Deflate.
(c) adding an OPE selection raises response time by a roughly constant
    factor over the pure-aggregation path.
"""

import numpy as np

from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.idlist import IdList, get_codec
from repro.workloads import synthetic

SELECTIVITIES = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
CODEC_SERIES = [
    ("Ranges & VB", "ranges+vb"),
    ("+Diff", "ranges+vb+diff"),
    ("+Deflate(Compact)", "ranges+vb+diff+deflate_compact"),
    ("+Deflate(Fast)", "ranges+vb+diff+deflate_fast"),
]


def test_fig8a_idlist_size_vs_selectivity(benchmark, scale):
    rows = scale["fig8_rows"]
    rng = np.random.default_rng(0)
    table_rows = []
    sizes = {name: [] for name, _ in CODEC_SERIES}

    def sweep():
        for sel in SELECTIVITIES:
            ids = IdList.from_mask(rng.random(rows) < sel)
            for name, codec_name in CODEC_SERIES:
                sizes[name].append(get_codec(codec_name).encoded_size(ids))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for i, sel in enumerate(SELECTIVITIES):
        table_rows.append(
            [f"{sel:.0%}"] + [f"{sizes[n][i] / 1e3:,.1f} KB" for n, _ in CODEC_SERIES]
        )
    with ResultSink("fig8a_idlist_size") as sink:
        sink.emit(format_table(
            ["Selectivity"] + [n for n, _ in CODEC_SERIES], table_rows,
            title=f"Figure 8a: encoded ID-list size vs selectivity ({rows:,} rows)",
        ))

    # Range encoding bounds the tail: 100% selectivity is near-zero bytes.
    assert sizes["Ranges & VB"][-1] < 100
    # Peak for range-coded lists is at 50%, the incompressible point.
    peak = max(range(len(SELECTIVITIES)), key=lambda i: sizes["+Diff"][i])
    assert SELECTIVITIES[peak] == 0.5
    # Diff strictly improves on plain ranges at the peak; Deflate improves
    # on Diff.
    assert sizes["+Diff"][2] <= sizes["Ranges & VB"][2]
    assert sizes["+Deflate(Fast)"][2] <= sizes["+Diff"][2]


def test_fig8b_response_time_per_codec(benchmark, scale):
    rows = scale["fig8_rows"]
    rng = np.random.default_rng(1)
    mask50 = rng.random(rows) < 0.5
    ids = IdList.from_mask(mask50)
    times = {}

    def measure():
        import time as _t
        for name, codec_name in CODEC_SERIES:
            codec = get_codec(codec_name)
            t0 = _t.perf_counter()
            codec.encode(ids)
            times[name] = _t.perf_counter() - t0

    benchmark.pedantic(measure, rounds=1, iterations=1)

    with ResultSink("fig8b_codec_time") as sink:
        sink.emit(format_table(
            ["Encoding", "Encode time (ms, sel=50%)"],
            [(n, f"{times[n] * 1e3:.1f}") for n, _ in CODEC_SERIES],
            title="Figure 8b: worker-side encode cost per codec",
        ))
    # Compact Deflate is the slow outlier (the paper's reason to pick fast).
    assert times["+Deflate(Compact)"] > times["+Deflate(Fast)"]


def test_fig8c_ope_selection_overhead(benchmark, scale):
    rows = min(scale["fig8_rows"], 1_000_000)
    data = synthetic.generate(rows, seed=3, with_ope_column=True)
    schema = TableSchema("synth", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("ope_val", dtype="int", sensitive=True, nbits=32),
    ])
    cluster = SimulatedCluster(ClusterConfig(
        cores=100, job_startup_s=0.0005, task_startup_s=2e-5,
    ))
    client = SeabedClient(mode="seabed", cluster=cluster, seed=1)
    client.create_plan(schema, [
        "SELECT sum(value) FROM synth WHERE ope_val > 10",
    ])
    client.upload("synth", data.columns, num_partitions=64)

    results = {}

    def sweep():
        results["agg"] = client.query("SELECT sum(value) FROM synth").server_time
        # thresholds chosen for ~25/50/75% selectivity of a uniform column
        for pct, thr in ((25, 250), (50, 500), (75, 750)):
            results[pct] = client.query(
                f"SELECT sum(value) FROM synth WHERE ope_val < {thr}"
            ).server_time

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    with ResultSink("fig8c_ope_overhead") as sink:
        sink.emit(format_table(
            ["Query", "Server time (ms)", "vs pure aggregation"],
            [("aggregation only", f"{results['agg'] * 1e3:,.0f}", "1.00x")] + [
                (f"+OPE selection ({pct}%)", f"{results[pct] * 1e3:,.0f}",
                 f"{results[pct] / results['agg']:.2f}x")
                for pct in (25, 50, 75)
            ],
            title=f"Figure 8c: OPE selection overhead ({rows:,} rows)",
        ))
    # The ORE comparison adds measurable but bounded overhead.
    assert all(results[p] >= results["agg"] * 0.95 for p in (25, 50, 75))
