"""Figure 10a: ad-analytics query response-time CDF.

Paper: over 15 production queries (groups of 1/4/8), Seabed's response
time is 1.08-1.45x NoEnc (median overhead 27%), while Paillier's median is
6.7x Seabed.
"""

import numpy as np
import pytest

from repro.bench import ResultSink, cdf_points, format_table
from repro.core.proxy import SeabedClient
from repro.workloads import adanalytics


@pytest.fixture(scope="module")
def clients(scale, paper_cluster):
    dataset = adanalytics.generate(rows=scale["ada_rows"], seed=0)
    samples = adanalytics.sample_queries(dataset)
    out = {}
    for mode in ("plain", "seabed", "paillier"):
        client = SeabedClient(mode=mode, cluster=paper_cluster,
                              paillier_bits=scale["paillier_bits"],
                              paillier_blinding_pool=32, seed=2)
        client.create_plan(dataset.schema, samples, storage_budget=10.0)
        client.upload("ad_analytics", dataset.columns, num_partitions=32)
        out[mode] = client
    return out


def test_fig10a_response_time_cdf(benchmark, clients):
    queries = adanalytics.figure10a_queries(seed=1)
    times = {mode: [] for mode in clients}

    def run_all():
        for q in queries:
            for mode, client in clients.items():
                result = client.query(q.sql, expected_groups=q.num_groups)
                times[mode].append(result.total_time)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    quantiles = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
    cdfs = {mode: cdf_points(values, quantiles) for mode, values in times.items()}
    table_rows = [
        [f"p{int(q * 100)}"] + [
            f"{cdfs[mode][i][1] * 1e3:,.0f} ms"
            for mode in ("plain", "seabed", "paillier")
        ]
        for i, q in enumerate(quantiles)
    ]
    med = {mode: float(np.median(values)) for mode, values in times.items()}
    with ResultSink("fig10a_ada_cdf") as sink:
        sink.emit(format_table(
            ["Quantile", "NoEnc", "Seabed", "Paillier"], table_rows,
            title=f"Figure 10a: response-time CDF over {len(queries)} ad-analytics queries",
        ))
        sink.emit(format_table(
            ["Shape check", "Paper", "Measured"],
            [
                ("median Seabed / NoEnc", "1.27x", f"{med['seabed'] / med['plain']:.2f}x"),
                ("max Seabed / NoEnc", "1.45x",
                 f"{max(s / p for s, p in zip(times['seabed'], times['plain'])):.2f}x"),
                ("median Paillier / Seabed", "6.7x",
                 f"{med['paillier'] / med['seabed']:.2f}x"),
            ],
            title="Paper-vs-measured",
        ))

    assert med["plain"] <= med["seabed"] <= med["paillier"]
    assert med["seabed"] / med["plain"] < 3.0  # paper: 1.08-1.45x
