"""Zone-map pruning: selective DET point query vs full scan.

Production encrypted stores are clustered -- by tenant, user bucket, or
arrival time -- so a selective equality predicate touches a handful of
partitions.  Without an index the server still dispatches and filters
every partition; the zone-map subsystem (``repro/index``) skips the
irrelevant ones using per-partition DET token sets/blooms derived from
ciphertexts the server already stores.

This benchmark attaches a user-clustered store, runs a batch of
prepared point queries (``WHERE user = :u``) with pruning on and off,
verifies the answers are bit-identical, and enforces the CI floor: the
pruned batch must be at least ``SPEEDUP_TARGET`` times faster.

Results go to ``results/pruning.txt`` and machine-readably to
``BENCH_pruning.json`` at the repository root.
"""

import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench import ResultSink, format_table
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.workloads.synthetic import clustered_ids

PARTITIONS = 128
#: ~50 distinct users per partition: zone maps hold exact token sets.
USERS_PER_PARTITION = 50
QUERIES = 20
SPEEDUP_TARGET = 5.0
MASTER_KEY = b"bench-pruning-master-key-32-byte"

SAMPLES = ["SELECT sum(revenue) FROM synth WHERE user = 1"]


def _build_store(rows: int, tmp: str) -> tuple[SeabedSession, np.ndarray]:
    users = clustered_ids(rows, PARTITIONS * USERS_PER_PARTITION, seed=3)
    rng = np.random.default_rng(4)
    columns = {
        "user": users,
        "revenue": rng.integers(0, 10_000, rows).astype(np.int64),
    }
    schema = TableSchema("synth", [
        ColumnSpec("user", dtype="int", sensitive=True),
        ColumnSpec("revenue", dtype="int", sensitive=True, nbits=32),
    ])
    session = SeabedSession(
        mode="seabed", master_key=MASTER_KEY, cluster=SimulatedCluster(ClusterConfig())
    )
    session.create_plan(schema, SAMPLES)
    session.upload("synth", columns, num_partitions=PARTITIONS)
    session.save_table("synth", os.path.join(tmp, "store"))
    return session, users


def test_pruning_speedup(benchmark, scale):
    rows = scale["pruning_rows"]
    record: dict = {}

    def experiment():
        with tempfile.TemporaryDirectory(prefix="seabed-pruning-") as tmp:
            session, users = _build_store(rows, tmp)
            rng = np.random.default_rng(9)
            targets = rng.choice(np.unique(users), QUERIES, replace=False)
            prepared = session.prepare(
                "SELECT sum(revenue), count(*) FROM synth WHERE user = :u"
            )
            prepared.execute(u=int(targets[0]))  # warm the reader cache

            def run_batch() -> tuple[float, list, int, int]:
                total_skipped = 0
                total_parts = 0
                rows_out = []
                t0 = time.perf_counter()
                for u in targets:
                    result = prepared.execute(u=int(u))
                    rows_out.append(result.rows)
                    total_skipped += sum(
                        m.partitions_skipped for m in result.request_metrics
                    )
                    total_parts += sum(
                        m.partitions_total for m in result.request_metrics
                    )
                return time.perf_counter() - t0, rows_out, total_skipped, total_parts

            session.server.pruning = True
            pruned_s, pruned_rows, skipped, parts_total = run_batch()
            session.server.pruning = False
            full_s, full_rows, full_skipped, _ = run_batch()
            session.server.pruning = True

            assert pruned_rows == full_rows, (
                "pruned execution changed query answers"
            )
            assert full_skipped == 0
            assert skipped > 0, "selective point queries skipped nothing"

            index = session.stats("synth")
            record.update(
                rows=rows,
                partitions=PARTITIONS,
                queries=QUERIES,
                pruned_s=pruned_s,
                full_s=full_s,
                speedup_x=full_s / max(pruned_s, 1e-12),
                speedup_target=SPEEDUP_TARGET,
                partitions_total=parts_total,
                partitions_skipped=skipped,
                skip_fraction=skipped / max(parts_total, 1),
                index={
                    "partitions_with_stats": index["partitions_with_stats"],
                    "user_det": index["columns"].get("user__det", {}),
                },
            )
            session.cluster.close()

    benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)

    record["host"] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_pruning.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    with ResultSink("pruning") as sink:
        sink.emit(format_table(
            ["Mode", "seconds", "partitions touched"],
            [
                ["zone-map pruned", round(record["pruned_s"], 4),
                 record["partitions_total"] - record["partitions_skipped"]],
                ["full scan", round(record["full_s"], 4),
                 record["partitions_total"]],
            ],
            title=(
                f"{QUERIES} DET point queries over {rows:,} user-clustered "
                f"rows x {PARTITIONS} partitions: pruning is "
                f"{record['speedup_x']:.1f}x faster "
                f"({record['skip_fraction']:.0%} of partitions skipped, "
                f"target >= {SPEEDUP_TARGET:.0f}x)"
            ),
        ))

    assert record["speedup_x"] >= SPEEDUP_TARGET, (
        f"pruned point queries are only {record['speedup_x']:.1f}x faster "
        f"than a full scan (target {SPEEDUP_TARGET:.0f}x)"
    )
