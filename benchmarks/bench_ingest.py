"""Ingest throughput: incremental append vs full re-encrypt + re-save.

The paper's core economic argument (Section 3.1) is that ad-analytics
data arrives *continuously*, so update cost is what decides between
symmetric ASHE and Paillier.  Before generational appends, adding rows to
a persisted table meant re-encrypting and re-saving the whole dataset;
``SeabedSession.append_rows`` encrypts only the batch and publishes it as
a new store generation.  This benchmark measures both paths for a 1%
batch and enforces the CI floor: the append must be at least
``SPEEDUP_TARGET`` times cheaper.

The op counters additionally *prove* (not infer from timings) that the
append encrypted exactly the batch's rows, and a compaction pass records
how merging the small append generations restores full-size partitions.

Results go to ``results/ingest.txt`` and machine-readably to
``BENCH_ingest.json`` at the repository root.
"""

import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench import ResultSink, format_table
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.session import SeabedSession
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.engine.store import store_generations
from repro.ops import OPS
from repro.workloads import synthetic

PARTITIONS = 32
BATCH_FRACTION = 0.01
SPEEDUP_TARGET = 10.0
COMPACT_APPENDS = 4
#: Sensitive measures, each planned with sum + min/max + var support
#: (ASHE cipher + squares + ORE columns) -- a slice of the ad-analytics
#: table's 18-measure shape, so re-encryption cost is representative.
MEASURES = 4
MASTER_KEY = b"bench-ingest-master-key-32-byte!"

QUERY = "SELECT sum(m0), count(*) FROM synth"
SAMPLES = [
    f"SELECT sum(m{i}), min(m{i}), max(m{i}), var(m{i}) FROM synth"
    for i in range(MEASURES)
]


def _columns(rows: int, seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    columns = {
        f"m{i}": rng.integers(0, 10_000, rows).astype(np.int64)
        for i in range(MEASURES)
    }
    columns["sel"] = synthetic.selectivity_filter_column(rows, seed=seed + 1)
    return columns


def _schema() -> TableSchema:
    return TableSchema("synth", [
        *(ColumnSpec(f"m{i}", dtype="int", sensitive=True, nbits=32)
          for i in range(MEASURES)),
        ColumnSpec("sel", dtype="int", sensitive=False),
    ])


def _fresh_session() -> SeabedSession:
    cluster = SimulatedCluster(ClusterConfig())
    return SeabedSession(mode="seabed", master_key=MASTER_KEY, cluster=cluster)


def test_ingest_throughput(benchmark, scale):
    rows = scale["ingest_rows"]
    batch_rows = max(1, int(rows * BATCH_FRACTION))
    record: dict = {}

    def experiment():
        with tempfile.TemporaryDirectory(prefix="seabed-ingest-") as tmp:
            base = _columns(rows, seed=1)
            batch = _columns(batch_rows, seed=7)

            # -- the streaming path: encrypt + append only the batch ----
            writer = _fresh_session()
            writer.create_plan(_schema(), SAMPLES)
            writer.upload("synth", base, num_partitions=PARTITIONS)
            writer.save_table("synth", os.path.join(tmp, "stream"))
            before = OPS.snapshot()
            t0 = time.perf_counter()
            stats = writer.append_rows("synth", batch)
            append_s = time.perf_counter() - t0
            delta = OPS.delta(before)
            assert delta.get("encrypt_rows") == batch_rows, (
                f"append encrypted {delta.get('encrypt_rows')} rows, "
                f"not just the {batch_rows}-row batch"
            )
            streamed = writer.query(QUERY).rows

            # -- the old path: re-encrypt everything, re-save -----------
            resaver = _fresh_session()
            resaver.create_plan(_schema(), SAMPLES)
            merged = {
                name: np.concatenate([base[name], batch[name]])
                for name in base
            }
            t0 = time.perf_counter()
            resaver.upload("synth", merged, num_partitions=PARTITIONS)
            resaver.save_table("synth", os.path.join(tmp, "resave"))
            resave_s = time.perf_counter() - t0
            assert resaver.query(QUERY).rows == streamed, (
                "append and re-upload answered differently"
            )

            # -- compaction keeps scan parallelism healthy --------------
            for i in range(COMPACT_APPENDS):
                writer.append_rows("synth", _columns(batch_rows, seed=11 + i))
            gens_before = store_generations(
                writer.encrypted_table("synth").store_path
            )
            t0 = time.perf_counter()
            compaction = writer.compact_table("synth")
            compact_s = time.perf_counter() - t0
            assert compaction is not None, "compaction found nothing to merge"

            record.update(
                rows=rows,
                batch_rows=batch_rows,
                batch_fraction=BATCH_FRACTION,
                append_s=append_s,
                append_encrypt_s=stats.encrypt_seconds,
                append_write_s=stats.write_seconds,
                resave_s=resave_s,
                speedup_x=resave_s / max(append_s, 1e-12),
                speedup_target=SPEEDUP_TARGET,
                compaction={
                    "appends": COMPACT_APPENDS + 1,
                    "generations_before": len(gens_before),
                    "generations_after": compaction["generations_after"],
                    "partitions_before": compaction["partitions_before"],
                    "partitions_after": compaction["partitions_after"],
                    "seconds": compact_s,
                },
            )
            writer.cluster.close()
            resaver.cluster.close()

    benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)

    record["host"] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    with ResultSink("ingest") as sink:
        sink.emit(format_table(
            ["Path", "seconds"],
            [
                [f"append_rows ({batch_rows:,} rows, 1% batch)",
                 round(record["append_s"], 4)],
                ["  of which encryption", round(record["append_encrypt_s"], 4)],
                ["  of which store write + sidecar", round(record["append_write_s"], 4)],
                [f"re-encrypt + re-save ({rows + batch_rows:,} rows)",
                 round(record["resave_s"], 3)],
            ],
            title=(
                f"Incremental ingest, {rows:,}-row table: appending 1% is "
                f"{record['speedup_x']:.0f}x cheaper than a full re-encrypt + "
                f"re-save (target >= {SPEEDUP_TARGET:.0f}x)"
            ),
        ))
        comp = record["compaction"]
        sink.emit(format_table(
            ["Compaction", ""],
            [
                ["append generations merged",
                 f"{comp['generations_before']} -> {comp['generations_after']}"],
                ["partitions",
                 f"{comp['partitions_before']} -> {comp['partitions_after']}"],
                ["seconds", round(comp["seconds"], 4)],
            ],
            title=f"Compaction after {comp['appends']} small appends",
        ))

    assert record["speedup_x"] >= SPEEDUP_TARGET, (
        f"appending a 1% batch is only {record['speedup_x']:.1f}x cheaper "
        f"than a full re-encrypt + re-save (target {SPEEDUP_TARGET:.0f}x)"
    )
