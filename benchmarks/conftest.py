"""Shared fixtures for the benchmark harness.

Scales are configurable through ``SEABED_BENCH_SCALE`` (small | medium |
large); the default ``small`` keeps the full suite runnable on a laptop in
minutes while preserving every shape the paper reports (see DESIGN.md
Section 4 on scale substitution).  Results are written to ``results/``.

``BENCH_QUICK=1`` overrides everything with the ``quick`` scale: the
same benchmark shapes at CI-friendly sizes, so every PR exercises the
full measurement path (and the machine-readable ``BENCH_*.json``
artifacts) in seconds.
"""

from __future__ import annotations

import os

import pytest

SCALES = {
    # CI quick mode: smallest sizes that keep every measured ratio
    # meaningful (BENCH_QUICK=1).
    "quick": {
        "fig6_rows": [20_000, 40_000],
        "backend_rows": 600_000,
        "fig7_rows": 120_000,
        "fig8_rows": 60_000,
        "fig9a_rows": 60_000,
        "fig9a_groups": [10, 100],
        "bdb_rankings": 1_000,
        "bdb_uservisits": 10_000,
        "ada_rows": 10_000,
        "table5_rows": 10_000,
        "paillier_bits": 512,
        "store_rows": 200_000,
        "ingest_rows": 100_000,
        "pruning_rows": 400_000,
        "shard_rows": 60_000,
        "service_rows": 20_000,
        "service_sessions": 4,
        "kernel_rows": 200_000,
    },
    "small": {
        "fig6_rows": [50_000, 100_000, 200_000, 400_000],
        "backend_rows": 1_000_000,
        "fig7_rows": 400_000,
        "fig8_rows": 400_000,
        "fig9a_rows": 200_000,
        "fig9a_groups": [10, 100, 1_000, 10_000],
        "bdb_rankings": 3_000,
        "bdb_uservisits": 30_000,
        "ada_rows": 30_000,
        "table5_rows": 30_000,
        "paillier_bits": 1024,
        "store_rows": 400_000,
        "ingest_rows": 400_000,
        "pruning_rows": 1_000_000,
        "shard_rows": 400_000,
        "service_rows": 60_000,
        "service_sessions": 6,
        "kernel_rows": 1_000_000,
    },
    "medium": {
        "fig6_rows": [250_000, 500_000, 1_000_000, 2_000_000],
        "backend_rows": 2_000_000,
        "fig7_rows": 2_000_000,
        "fig8_rows": 2_000_000,
        "fig9a_rows": 1_000_000,
        "fig9a_groups": [10, 100, 1_000, 10_000, 100_000],
        "bdb_rankings": 10_000,
        "bdb_uservisits": 100_000,
        "ada_rows": 100_000,
        "table5_rows": 100_000,
        "paillier_bits": 1024,
        "store_rows": 2_000_000,
        "ingest_rows": 2_000_000,
        "pruning_rows": 4_000_000,
        "shard_rows": 1_000_000,
        "service_rows": 200_000,
        "service_sessions": 8,
        "kernel_rows": 4_000_000,
    },
    "large": {
        "fig6_rows": [1_000_000, 2_000_000, 4_000_000, 8_000_000],
        "backend_rows": 8_000_000,
        "fig7_rows": 8_000_000,
        "fig8_rows": 8_000_000,
        "fig9a_rows": 4_000_000,
        "fig9a_groups": [10, 100, 1_000, 10_000, 100_000, 1_000_000],
        "bdb_rankings": 30_000,
        "bdb_uservisits": 300_000,
        "ada_rows": 300_000,
        "table5_rows": 300_000,
        "paillier_bits": 1024,
        "store_rows": 8_000_000,
        "ingest_rows": 8_000_000,
        "pruning_rows": 8_000_000,
        "shard_rows": 4_000_000,
        "service_rows": 500_000,
        "service_sessions": 8,
        "kernel_rows": 8_000_000,
    },
}


@pytest.fixture(scope="session")
def scale() -> dict:
    if os.environ.get("BENCH_QUICK") == "1":
        return SCALES["quick"]
    name = os.environ.get("SEABED_BENCH_SCALE", "small")
    if name not in SCALES:
        raise ValueError(f"SEABED_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


@pytest.fixture(scope="session")
def paper_cluster():
    """A cluster shaped like the paper's testbed: 100 cores, 2 Gbps client
    link (Section 6.1) -- with job/task startup costs scaled down by the
    same factor as the datasets (DESIGN.md Section 4).

    The paper's ~0.6 s NoEnc floor is task-creation overhead against
    *billions* of rows; running 10^3-10^4x smaller data against the
    unscaled floor would flatten every ratio the figures report, so the
    floor shrinks proportionally to preserve the compute-to-startup
    balance.
    """
    from repro.engine.cluster import ClusterConfig, SimulatedCluster

    return SimulatedCluster(ClusterConfig(
        cores=100, job_startup_s=0.0005, task_startup_s=2e-5,
    ))


def run_once(benchmark, fn):
    """Time a full experiment exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
