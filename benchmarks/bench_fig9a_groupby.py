"""Figure 9a: group-by latency vs number of groups.

Paper: with very few groups Seabed suffers a reducer bottleneck that the
group-inflation optimisation fixes ("Seabed - optimized"); Seabed beats
Paillier by 5-10x, the gap narrowing as groups grow and shuffle dominates;
NoEnc stays cheapest throughout.
"""


from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.workloads import synthetic


def _client(mode, rows, groups, cluster, scale):
    data = synthetic.generate(rows, seed=4, num_groups=groups)
    schema = TableSchema("synth", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("grp", dtype="int", sensitive=True),
    ])
    client = SeabedClient(mode=mode, cluster=cluster,
                          paillier_bits=scale["paillier_bits"],
                          paillier_blinding_pool=32, seed=1)
    client.create_plan(schema, [
        "SELECT grp, sum(value) FROM synth GROUP BY grp",
        "SELECT sum(value) FROM synth WHERE grp = 1",
    ])
    client.upload("synth", data.columns, num_partitions=64)
    return client


def test_fig9a_groupby(benchmark, scale):
    from repro.engine.cluster import ClusterConfig, SimulatedCluster

    rows = scale["fig9a_rows"]
    # Startup floor *and* shuffle bandwidth scale with the dataset
    # (DESIGN.md Section 4): the paper's reducer-bandwidth bottleneck only
    # exists relative to its 1.75B-row shuffles.
    cluster = SimulatedCluster(ClusterConfig(
        cores=100, job_startup_s=0.0005, task_startup_s=2e-5,
        shuffle_bandwidth_bytes_s=2e6,
    ))
    group_counts = scale["fig9a_groups"]
    sql = "SELECT grp, sum(value) FROM synth GROUP BY grp"
    series = {"NoEnc": [], "Paillier": [], "Seabed": [], "Seabed-optimized": []}

    def sweep():
        for groups in group_counts:
            plain = _client("plain", rows, groups, cluster, scale)
            seabed = _client("seabed", rows, groups, cluster, scale)
            paillier = _client("paillier", rows, groups, cluster, scale)
            series["NoEnc"].append(plain.query(sql).total_time)
            series["Paillier"].append(paillier.query(sql).total_time)
            # Unoptimised Seabed: no expected-groups hint -> no inflation.
            series["Seabed"].append(seabed.query(sql).total_time)
            series["Seabed-optimized"].append(
                seabed.query(sql, expected_groups=groups).total_time
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table_rows = [
        [f"{groups:,}"] + [f"{series[s][i] * 1e3:,.0f} ms" for s in series]
        for i, groups in enumerate(group_counts)
    ]
    with ResultSink("fig9a_groupby") as sink:
        sink.emit(format_table(
            ["Groups"] + list(series), table_rows,
            title=f"Figure 9a: group-by latency vs group count ({rows:,} rows)",
        ))
        small = 0  # the few-groups regime the optimisation targets
        sink.emit(format_table(
            ["Shape check", "Paper", "Measured"],
            [
                ("optimized <= unoptimized at few groups", "yes", str(
                    series["Seabed-optimized"][small]
                    <= series["Seabed"][small] * 1.05
                )),
                ("Paillier / Seabed-opt across sweep", "5-10x", " / ".join(
                    f"{series['Paillier'][i] / series['Seabed-optimized'][i]:.1f}x"
                    for i in range(len(group_counts))
                )),
                ("NoEnc cheapest everywhere", "yes", str(all(
                    series["NoEnc"][i] <= series["Seabed-optimized"][i] * 1.05
                    for i in range(len(group_counts))
                ))),
            ],
            title="Paper-vs-measured",
        ))

    for i in range(len(group_counts)):
        assert series["Paillier"][i] > series["Seabed-optimized"][i]
