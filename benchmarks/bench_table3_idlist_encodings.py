"""Table 3: ID-list encoding techniques.

Prints the paper's exact worked examples (range, diff, combination, VB)
and benchmarks the production codec's encode throughput on a realistic
selection.
"""

import numpy as np

from repro.bench import ResultSink, format_table
from repro.idlist import IdList, get_codec
from repro.idlist.encoding import (
    combination_encode,
    diff_encode,
    ranges_flatten,
)
from repro.idlist.varbyte import encode as vb_encode


def test_table3_examples(benchmark):
    example_ranges = IdList.from_ids(list(range(2, 15)) + list(range(19, 24)))
    example_plain = np.array([2, 3, 4, 9, 23], dtype=np.uint64)

    flat = ranges_flatten(example_ranges)
    diffs = diff_encode(example_plain)
    combo = combination_encode(example_ranges)
    rows = [
        ("Range encoding", "[2...14, 19...23]",
         f"[{flat[0]}-{flat[1]}, {flat[2]}-{flat[3]}]"),
        ("Diff. encoding", "[2,3,4,9,23]", str(diffs.tolist())),
        ("Combination", "[2...14, 19...23]",
         f"[{combo[0]}-{combo[1]}, {combo[2]}-{combo[3]}]"),
        ("VB-encoding", "combination above",
         f"{len(vb_encode(combo))} bytes (min #bytes per integer)"),
    ]
    with ResultSink("table3_idlist_encodings") as sink:
        sink.emit(format_table(
            ["Technique", "Input", "Encoded"],
            rows,
            title="Table 3: ID-list encoding techniques (paper's examples)",
        ))

    # Expected values straight from the paper.
    assert flat.tolist() == [2, 14, 19, 23]
    assert diffs.tolist() == [2, 1, 1, 5, 14]
    assert combo.tolist() == [2, 12, 5, 4]

    rng = np.random.default_rng(0)
    ids = IdList.from_mask(rng.random(1_000_000) < 0.5)
    codec = get_codec("seabed")
    benchmark(lambda: codec.encode(ids))
