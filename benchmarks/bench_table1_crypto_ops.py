"""Table 1: cost of individual crypto operations.

Paper (2.2 GHz Xeon, AES-NI, 2048-bit Paillier):

    AES counter mode              47 ns
    Paillier encryption    5,100,000 ns
    ASHE encryption/decryption 12-24 ns
    Plain addition                 1 ns
    Paillier addition          3,800 ns
    Paillier decryption    3,400,000 ns

We report the same rows.  Pure-Python AES replaces AES-NI (orders slower
in absolute terms), so the production ASHE row uses the vectorised PRF --
the per-element amortised cost that plays AES-NI's role in this repo.  The
relationships that matter -- Paillier ops 10^3-10^5x costlier than
symmetric ones -- are preserved.
"""

import time

import numpy as np
import pytest

from repro.bench import ResultSink, format_table
from repro.crypto.aes import Aes128
from repro.crypto.ashe import AsheScheme
from repro.crypto.paillier import PaillierKeyPair, PaillierScheme
from repro.crypto.prf import Blake2Prf, SplitMix64Prf

KEY = b"0123456789abcdef0123456789abcdef"


def _time_per_op(fn, ops: int, repeat: int = 3) -> float:
    """Best-of-N nanoseconds per operation."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - t0) / ops)
    return best * 1e9


@pytest.fixture(scope="module")
def paillier():
    return PaillierScheme(PaillierKeyPair.generate(bits=1024, seed=9), seed=9)


def test_table1_operation_costs(benchmark, paillier):
    rows = []

    aes = Aes128(KEY[:16])
    rows.append((
        "AES counter mode (pure Python)",
        _time_per_op(lambda: [aes.encrypt_block(b"0123456789abcdef") for _ in range(100)], 100),
    ))

    n_vec = 1_000_000
    values = np.arange(n_vec, dtype=np.int64)
    ashe_fast = AsheScheme(SplitMix64Prf(KEY))
    rows.append((
        "ASHE encryption (vectorised PRF, amortised)",
        _time_per_op(lambda: ashe_fast.encrypt_column(values, 0), n_vec),
    ))
    cipher = ashe_fast.encrypt_column(values, 0)
    rows.append((
        "ASHE decryption (vectorised PRF, amortised)",
        _time_per_op(lambda: ashe_fast.decrypt_column(cipher, 0), n_vec),
    ))
    ashe_blake = AsheScheme(Blake2Prf(KEY))
    rows.append((
        "ASHE encryption (BLAKE2b PRF, per element)",
        _time_per_op(lambda: ashe_blake.encrypt_column(values[:2000], 0), 2000),
    ))
    rows.append((
        "Plain addition (numpy, amortised)",
        _time_per_op(lambda: values.sum(), n_vec),
    ))

    c1 = paillier.encrypt(123)
    c2 = paillier.encrypt(456)
    rows.append((
        "Paillier encryption (2048-bit ciphertext)",
        _time_per_op(lambda: [paillier.encrypt(7) for _ in range(5)], 5),
    ))
    rows.append((
        "Paillier addition",
        _time_per_op(lambda: [paillier.add(c1, c2) for _ in range(2000)], 2000),
    ))
    rows.append((
        "Paillier decryption (CRT)",
        _time_per_op(lambda: [paillier.decrypt_crt(c1) for _ in range(5)], 5),
    ))

    with ResultSink("table1_crypto_ops") as sink:
        sink.emit(format_table(
            ["Operation", "Time (ns)"],
            [(name, f"{ns:,.0f}") for name, ns in rows],
            title="Table 1: cost of operations (this reproduction)",
        ))
        costs = dict(rows)
        ashe = costs["ASHE encryption (vectorised PRF, amortised)"]
        enc_ratio = costs["Paillier encryption (2048-bit ciphertext)"] / ashe
        add_ratio = (costs["Paillier addition"]
                     / max(costs["Plain addition (numpy, amortised)"], 0.01))
        dec_ratio = (costs["Paillier decryption (CRT)"]
                     / costs["ASHE decryption (vectorised PRF, amortised)"])
        sink.emit(format_table(
            ["Relationship", "Paper", "Measured"],
            [
                ("Paillier enc / ASHE enc", "~2x10^5", f"{enc_ratio:,.0f}x"),
                ("Paillier add / plain add", "3800x", f"{add_ratio:,.0f}x"),
                ("Paillier dec / ASHE dec", "~10^5", f"{dec_ratio:,.0f}x"),
            ],
            title="Shape check: symmetric vs asymmetric gaps",
        ))

    # Keep ASHE-vs-Paillier ordering as a hard assertion.
    assert costs["Paillier encryption (2048-bit ciphertext)"] > 1000 * ashe

    # pytest-benchmark row: the hot op (vectorised ASHE encryption).
    benchmark(lambda: ashe_fast.encrypt_column(values, 0))
