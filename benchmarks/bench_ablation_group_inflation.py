"""Ablation: the group-inflation optimisation on and off.

Section 4.5 / Figure 9a: with fewer groups than workers, most reducers
idle and the per-group ID lists are dense; appending a pseudo-random
suffix multiplies the reduce keys.  We compare reduce-stage parallelism
and latency with the optimisation disabled and enabled.
"""


from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.workloads import synthetic


def test_ablation_group_inflation(benchmark, scale):
    from repro.engine.cluster import ClusterConfig, SimulatedCluster

    rows = scale["fig9a_rows"]
    cluster = SimulatedCluster(ClusterConfig(  # scaled like fig9a's cluster
        cores=100, job_startup_s=0.0005, task_startup_s=2e-5,
        shuffle_bandwidth_bytes_s=2e6,
    ))
    groups = 10  # the paper's worst case: far fewer groups than workers
    data = synthetic.generate(rows, seed=4, num_groups=groups)
    schema = TableSchema("synth", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("grp", dtype="int", sensitive=True),
    ])
    client = SeabedClient(mode="seabed", cluster=cluster, seed=1)
    client.create_plan(schema, [
        "SELECT grp, sum(value) FROM synth GROUP BY grp",
    ])
    client.upload("synth", data.columns, num_partitions=64)
    sql = "SELECT grp, sum(value) FROM synth GROUP BY grp"

    results = {}

    def run_both():
        for label, hint in (("off", None), ("on", groups)):
            r = client.query(sql, expected_groups=hint)
            reduce_stage = [
                s for m in r.request_metrics for s in m.stages
                if s.name == "group-reduce"
            ][0]
            results[label] = {
                "total": r.total_time,
                "reduce_tasks": reduce_stage.num_tasks,
                "inflation": r.translation.inflation,
                "rows": len(r.rows),
            }

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    with ResultSink("ablation_group_inflation") as sink:
        sink.emit(format_table(
            ["Inflation", "Factor", "Reduce tasks", "Total time (ms)",
             "Result groups"],
            [
                (label, v["inflation"], v["reduce_tasks"],
                 f"{v['total'] * 1e3:,.0f}", v["rows"])
                for label, v in results.items()
            ],
            title=f"Ablation: group inflation ({groups} groups, 100 workers)",
        ))

    assert results["on"]["inflation"] == 10
    assert results["on"]["reduce_tasks"] > results["off"]["reduce_tasks"]
    assert results["on"]["rows"] == results["off"]["rows"] == groups
