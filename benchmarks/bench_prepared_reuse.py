"""Prepared-query reuse on the ad-analytics template log (Section 6.6).

The production log the paper describes (168,352 queries) is dominated by
a handful of templates: sums of sensitive measures filtered/grouped by
hour.  The legacy client re-translated every one of those queries from
scratch; the session API translates each *template* once
(``session.prepare`` with ``:param`` placeholders) and re-binds tokens
per execution.

This benchmark replays a synthetic log at both extremes and compares the
client-side translation overhead:

- **cold** -- one full ``prepare`` (parse + predicate split + planner
  lookups + request wiring) per logged query, which is exactly what each
  ``query()`` call paid before the session API;
- **prepared** -- one ``prepare`` per distinct template, then one
  ``bind_requests`` (token re-encryption only) per logged query.

End-to-end walls for both paths and the transparent shape-cache hit rate
are recorded too.  Results go to ``results/prepared_reuse.txt`` and
machine-readably to ``BENCH_prepared.json`` at the repository root; the
acceptance target is >= 5x lower translate overhead on repeat queries.
"""

import json
import os
import platform
import time
from pathlib import Path

from repro.bench import ResultSink, format_table
from repro.core.session import SeabedSession
from repro.core.translator import bind_requests
from repro.ops import OPS
from repro.query.ast import Between, Comparison
from repro.query.parser import parse_query
from repro.workloads import adanalytics

NUM_QUERIES = 400
NUM_REPLAY = 50
SPEEDUP_TARGET = 5.0

FLAT_TEMPLATE = "SELECT sum({m}) FROM ad_analytics WHERE hour = :h"
GROUPED_TEMPLATE = (
    "SELECT hour, sum({m}) FROM ad_analytics "
    "WHERE hour BETWEEN :lo AND :hi GROUP BY hour"
)


def _build_session(rows):
    dataset = adanalytics.generate(rows=rows, seed=0)
    session = SeabedSession(mode="seabed", seed=2)
    session.create_plan(
        dataset.schema, adanalytics.sample_queries(dataset), storage_budget=10.0
    )
    session.upload("ad_analytics", dataset.columns, num_partitions=32)
    return session


def _template_and_params(entry):
    """Map one logged query onto its template + parameter bindings."""
    q = parse_query(entry.sql)
    measure = q.aggregates()[0].column
    if isinstance(q.where, Comparison):
        return FLAT_TEMPLATE.format(m=measure), {"h": q.where.value}
    assert isinstance(q.where, Between)
    return (
        GROUPED_TEMPLATE.format(m=measure),
        {"lo": q.where.low, "hi": q.where.high},
    )


def test_prepared_reuse_vs_cold_translation(scale):
    session = _build_session(scale["ada_rows"])
    log = adanalytics.generate_query_log(num_queries=NUM_QUERIES, seed=3)
    jobs = [_template_and_params(entry) for entry in log]

    # -- cold: one full translation per logged query (what every query()
    #    call paid before the session API; prepare() bypasses the cache) ------
    t0 = time.perf_counter()
    for entry in log:
        session.prepare(
            entry.sql,
            expected_groups=entry.num_groups if entry.num_groups > 1 else None,
        )
    cold_translate_s = time.perf_counter() - t0

    # -- prepared: translate each template once, re-bind per query ------------
    templates = {}
    t0 = time.perf_counter()
    for (template, _), entry in zip(jobs, log):
        if template not in templates:
            templates[template] = session.prepare(
                template,
                expected_groups=24 if entry.num_groups > 1 else None,
            )
    prepare_once_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for template, params in jobs:
        bind_requests(templates[template].translation.requests, params)
    prepared_bind_s = time.perf_counter() - t0

    speedup = cold_translate_s / max(prepared_bind_s, 1e-12)

    # -- zero-translation proof over real executions --------------------------
    before = OPS.snapshot()
    for template, params in jobs[:25]:
        result = templates[template].execute(**params)
        assert result.rows is not None
    delta = OPS.delta(before)
    assert delta.get("translate", 0) == 0, "prepared re-execution re-translated"
    assert delta.get("parse", 0) == 0
    assert delta.get("plan", 0) == 0

    # -- end-to-end walls: N cold prepare+execute vs the transparent cache ----
    replay = log[:NUM_REPLAY]
    t0 = time.perf_counter()
    for entry in replay:
        groups = entry.num_groups if entry.num_groups > 1 else None
        session.prepare(entry.sql, expected_groups=groups).execute()
    cold_wall_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for entry in replay:
        groups = entry.num_groups if entry.num_groups > 1 else None
        session.query(entry.sql, expected_groups=groups)
    cached_wall_s = time.perf_counter() - t0
    cache_stats = session.cache_stats()

    payload = {
        "bench": "prepared_reuse",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "rows": scale["ada_rows"],
        "num_queries": NUM_QUERIES,
        "num_templates": len(templates),
        "cold_translate_s": cold_translate_s,
        "prepare_once_s": prepare_once_s,
        "prepared_bind_s": prepared_bind_s,
        "translate_speedup": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "replay_queries": len(replay),
        "cold_wall_s": cold_wall_s,
        "cached_wall_s": cached_wall_s,
        "cache_stats": cache_stats,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_prepared.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    with ResultSink("prepared_reuse") as sink:
        sink.emit(format_table(
            ["Path", "client translate overhead (s)", "per query (us)"],
            [
                ["cold query() x%d" % NUM_QUERIES, round(cold_translate_s, 4),
                 round(1e6 * cold_translate_s / NUM_QUERIES, 1)],
                ["prepare x%d + bind x%d" % (len(templates), NUM_QUERIES),
                 round(prepare_once_s + prepared_bind_s, 4),
                 round(1e6 * prepared_bind_s / NUM_QUERIES, 1)],
            ],
            title=(
                "Prepared-query reuse on the ad-analytics log "
                f"(translate overhead {speedup:.1f}x lower on repeats)"
            ),
        ))
        sink.emit(format_table(
            ["Replay path", "wall (s)"],
            [
                ["cold prepare+execute x%d" % len(replay), round(cold_wall_s, 3)],
                ["cached session.query x%d (hits=%d)" % (
                    len(replay), cache_stats["hits"]), round(cached_wall_s, 3)],
            ],
        ))

    assert speedup >= SPEEDUP_TARGET, (
        f"prepared re-binding is only {speedup:.1f}x cheaper than cold "
        f"translation (target {SPEEDUP_TARGET}x)"
    )
