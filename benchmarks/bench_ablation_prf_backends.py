"""Ablation: PRF backend choice (the AES-NI substitution, DESIGN.md S4).

Compares ASHE column throughput across the three PRF backends: the
vectorised SplitMix64 stand-in for hardware AES, the cryptographic BLAKE2b
default, and the from-scratch pure-Python AES-CTR.  This quantifies
exactly what the hardware substitution buys, and verifies that backend
choice never changes results.
"""

import time

import numpy as np

from repro.bench import ResultSink, format_table
from repro.crypto.ashe import AsheScheme
from repro.crypto.prf import prf_from_name

KEY = b"0123456789abcdef0123456789abcdef"
BACKENDS = ["splitmix64", "blake2", "aes-ctr"]
ROWS = {"splitmix64": 2_000_000, "blake2": 20_000, "aes-ctr": 2_000}


def test_ablation_prf_backends(benchmark):
    rates = {}
    values_by_backend = {}

    def sweep():
        for backend in BACKENDS:
            n = ROWS[backend]
            values = np.arange(n, dtype=np.int64)
            scheme = AsheScheme(prf_from_name(backend, KEY))
            t0 = time.perf_counter()
            cipher = scheme.encrypt_column(values, start_id=0)
            elapsed = time.perf_counter() - t0
            rates[backend] = n / elapsed
            ct = scheme.aggregate(cipher, None, 0)
            values_by_backend[backend] = scheme.decrypt_sum(ct.value, ct.ids)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    with ResultSink("ablation_prf_backends") as sink:
        sink.emit(format_table(
            ["PRF backend", "Encrypt throughput (rows/s)", "ns/row"],
            [
                (b, f"{rates[b]:,.0f}", f"{1e9 / rates[b]:,.0f}")
                for b in BACKENDS
            ],
            title="Ablation: ASHE throughput per PRF backend",
        ))
        sink.emit(format_table(
            ["Observation", "Value"],
            [
                ("vectorised / blake2 speedup", f"{rates['splitmix64'] / rates['blake2']:,.0f}x"),
                ("vectorised / pure-python-AES speedup",
                 f"{rates['splitmix64'] / rates['aes-ctr']:,.0f}x"),
                ("all backends decrypt identical sums", str(
                    len({values_by_backend[b] - sum(range(ROWS[b]))
                         for b in BACKENDS}) == 1
                )),
            ],
        ))

    assert rates["splitmix64"] > 10 * rates["blake2"] > 10 * rates["aes-ctr"] / 10
    for backend in BACKENDS:
        assert values_by_backend[backend] == sum(range(ROWS[backend]))


def test_ablation_straggler_injection(benchmark):
    """Section 6.2 observes GC stragglers hurting short jobs most; inject
    them and measure the relative slowdown of short vs long stages."""
    from repro.engine.cluster import ClusterConfig, SimulatedCluster

    results = {}

    def sweep():
        for prob in (0.0, 0.05):
            cluster = SimulatedCluster(ClusterConfig(
                cores=16, task_startup_s=0.004, straggler_prob=prob,
                straggler_factor=10.0, seed=3,
            ))
            short_tasks = [lambda: sum(range(2_000)) for _ in range(64)]
            _, stage = cluster.run_stage("short", short_tasks)
            results[prob] = stage.makespan

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    with ResultSink("ablation_stragglers") as sink:
        sink.emit(format_table(
            ["Straggler probability", "Stage makespan (ms)", "Slowdown"],
            [
                (f"{p:.0%}", f"{v * 1e3:,.1f}", f"{v / results[0.0]:,.2f}x")
                for p, v in results.items()
            ],
            title="Ablation: straggler (GC pause) injection on short stages",
        ))
    assert results[0.05] > results[0.0]
