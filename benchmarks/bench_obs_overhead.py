"""Telemetry overhead gate: tracing + metrics must cost <= 5% QPS.

The ``repro.obs`` subsystem instruments every layer of the Figure 7
query path -- client bind/decrypt spans, per-stage cluster spans, the
JobMetrics fold into the registry, kernel timing histograms -- and its
whole value proposition is "leave it on in production".  This benchmark
proves that claim: the same prepared aggregate (the paper's
``SELECT sum(value)`` workload) runs in a tight loop with telemetry
fully enabled and fully disabled (the ``repro.obs.set_enabled`` kill
switch), alternating rounds to decorrelate drift, best-of-``ROUNDS``
per mode.

Floor, asserted here and re-verified from ``BENCH_obs.json`` in CI:
enabled-mode QPS must stay within ``OVERHEAD_CAP_PCT`` of disabled-mode
QPS.
"""

import json
import os
import platform
import time
from pathlib import Path

import repro.obs
from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.obs import trace as obs_trace
from repro.workloads import synthetic

#: Enabled-mode QPS may trail disabled-mode QPS by at most this much.
OVERHEAD_CAP_PCT = 5.0
#: Alternating measurement rounds per mode; best round wins (min-of-K
#: is the standard defence against one-off scheduler noise).
ROUNDS = 5
#: Prepared-query executions per round.
QUERIES_PER_ROUND = 12

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
_QUERY = "SELECT sum(value) FROM synth"


def _build(rows, cluster, scale):
    data = synthetic.generate(rows, seed=1)
    schema = TableSchema("synth", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
    ])
    client = SeabedClient(mode="seabed", cluster=cluster,
                          paillier_bits=scale["paillier_bits"],
                          paillier_blinding_pool=32, seed=1)
    client.create_plan(schema, [_QUERY])
    client.upload("synth", dict(data.columns), num_partitions=50)
    return client


def _round_qps(client, enabled):
    """One measurement round: QUERIES_PER_ROUND prepared executions."""
    repro.obs.set_enabled(enabled)
    try:
        t0 = time.perf_counter()
        for _ in range(QUERIES_PER_ROUND):
            client.query(_QUERY)
        wall = time.perf_counter() - t0
    finally:
        repro.obs.set_enabled(True)
    return QUERIES_PER_ROUND / max(wall, 1e-12)


def test_obs_overhead(benchmark, scale, paper_cluster):
    rows = scale["fig7_rows"]
    record: dict = {}

    def experiment():
        client = _build(rows, paper_cluster, scale)
        client.query(_QUERY)  # warm caches on both paths
        obs_trace.get_tracer().clear()

        on, off = [], []
        for _ in range(ROUNDS):  # alternate to decorrelate drift
            off.append(_round_qps(client, enabled=False))
            on.append(_round_qps(client, enabled=True))

        qps_off, qps_on = max(off), max(on)
        overhead_pct = max(0.0, (qps_off - qps_on) / qps_off * 100.0)
        record.update(
            rows=rows,
            rounds=ROUNDS,
            queries_per_round=QUERIES_PER_ROUND,
            qps_disabled=qps_off,
            qps_enabled=qps_on,
            overhead_pct=overhead_pct,
            overhead_cap_pct=OVERHEAD_CAP_PCT,
            spans_retained=len(obs_trace.get_tracer()),
        )

    benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)

    record["host"] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    _JSON_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    with ResultSink("obs_overhead") as sink:
        sink.emit(format_table(
            ["Mode", "QPS"],
            [
                ["telemetry disabled", round(record["qps_disabled"], 1)],
                ["telemetry enabled (spans + metrics)",
                 round(record["qps_enabled"], 1)],
            ],
            title=(
                f"Figure 7 prepared sum over {rows:,} rows: telemetry "
                f"costs {record['overhead_pct']:.2f}% QPS "
                f"(cap {OVERHEAD_CAP_PCT}%)"
            ),
        ))

    assert record["overhead_pct"] <= OVERHEAD_CAP_PCT, (
        f"tracing + metrics cost {record['overhead_pct']:.2f}% QPS "
        f"(cap {OVERHEAD_CAP_PCT}%)"
    )
