"""Crypto-kernel microbenchmarks: batch kernels vs the per-row reference.

Table 1 of the paper prices one AES-CTR PRF operation at 47 ns on AES-NI
hardware -- the number Seabed's whole performance argument rests on.
This benchmark measures what our kernels actually cost per operation:

- **PRF eval**: the ``aes-ni`` backend's contiguous ``eval_range`` stream
  (one ECB call over all counter blocks), plus the from-scratch
  ``aes-ctr`` reference for the honesty comparison.
- **ASHE pad stream**: ``AsheScheme.pad_range`` (one PRF stream, shared
  boundary evaluations) vs per-row scalar boundary evals.
- **ORE partition compare**: ``OreScheme.compare_column`` over a whole
  packed partition vs a per-row ``compare_words`` loop.
- **DET column encrypt**: ``DetScheme.encrypt_column`` vs a per-row
  Feistel loop.

The per-row reference path is timed on a subsample (it is the slow side
by construction) and normalised to ns/op.  Results land in
``BENCH_kernels.json`` with the enforced floors recorded alongside the
measurements: batch ASHE pad streams and ORE partition compares must
beat the per-row reference by **>= 5x** (in practice they are orders of
magnitude faster; 5x is the regression tripwire).  CI re-verifies the
recorded floors from the artifact.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.bench import ResultSink, format_table
from repro.crypto.ashe import AsheScheme
from repro.crypto.det import DetScheme
from repro.crypto.ore import OreScheme
from repro.crypto.prf import HAVE_AESNI, AesCtrPrf, AesNiCtrPrf, SplitMix64Prf

KEY = bytes(range(16))
REPEATS = 3
#: Rows the slow per-row reference path is timed on (then normalised).
REFERENCE_ROWS = 2_000
#: Floors enforced in-bench and re-verified by CI from the artifact.
FLOORS = {"ashe_pad_stream_ratio": 5.0, "ore_compare_ratio": 5.0}
PAPER_TABLE1_AES_NS = 47.0


def _ns_per_op(fn, ops: int) -> float:
    """Best-of-``REPEATS`` wall time for ``fn()``, normalised to ns/op."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best / ops * 1e9


def test_kernel_microbench(scale):
    rows = scale["kernel_rows"]
    ref_rows = min(rows, REFERENCE_ROWS)
    ops: dict[str, dict] = {}

    # -- PRF eval (the Table 1 number) -----------------------------------
    aes_ref = AesCtrPrf(KEY)
    ops["prf_eval"] = {
        "per_row_ns": _ns_per_op(
            lambda: [aes_ref.eval_one(i) for i in range(ref_rows)], ref_rows
        ),
        "reference": "aes-ctr (from-scratch FIPS-197, scalar)",
    }
    if HAVE_AESNI:
        aes_ni = AesNiCtrPrf(KEY)
        ops["prf_eval"]["batch_ns"] = _ns_per_op(
            lambda: aes_ni.eval_range(0, rows), rows
        )
        ops["prf_eval"]["backend"] = "aes-ni"
    else:  # minimal installs: record the honest substitute instead
        mix = SplitMix64Prf(KEY)
        ops["prf_eval"]["batch_ns"] = _ns_per_op(
            lambda: mix.eval_range(0, rows), rows
        )
        ops["prf_eval"]["backend"] = "splitmix64"
    ops["prf_eval"]["ratio"] = (
        ops["prf_eval"]["per_row_ns"] / ops["prf_eval"]["batch_ns"]
    )

    # -- ASHE pad stream --------------------------------------------------
    # Same PRF on both sides so the ratio isolates batching, not backend.
    ashe = AsheScheme(SplitMix64Prf(KEY))
    prf = SplitMix64Prf(KEY)

    def ashe_per_row():
        return [prf.eval_one(i) - prf.eval_one(i - 1) for i in range(1, ref_rows + 1)]

    ops["ashe_pad_stream"] = {
        "batch_ns": _ns_per_op(lambda: ashe.pad_range(1, rows), rows),
        "per_row_ns": _ns_per_op(ashe_per_row, ref_rows),
        "reference": "two scalar boundary evals per row",
    }

    # -- ORE partition compare -------------------------------------------
    ore = OreScheme(KEY, nbits=32)
    values = np.random.default_rng(7).integers(-(2**30), 2**30, size=rows)
    cipher = ore.encrypt_column(values)
    token = ore.token(0)
    sub = cipher[:ref_rows]
    sub_tuples = [tuple(int(w) for w in row) for row in sub]

    def ore_per_row():
        return [OreScheme.compare_words(ct, token) for ct in sub_tuples]

    ops["ore_compare"] = {
        "batch_ns": _ns_per_op(lambda: ore.compare_column(cipher, token), rows),
        "per_row_ns": _ns_per_op(ore_per_row, ref_rows),
        "reference": "per-row compare_words loop",
    }

    # -- DET column encrypt ----------------------------------------------
    det = DetScheme(KEY)
    codes = np.arange(rows, dtype=np.int64)
    sub_codes = codes[:ref_rows].tolist()

    def det_per_row():
        return [det._encrypt_one(c) for c in sub_codes]

    ops["det_encrypt"] = {
        "batch_ns": _ns_per_op(lambda: det.encrypt_column(codes), rows),
        "per_row_ns": _ns_per_op(det_per_row, ref_rows),
        "reference": "per-row Feistel loop",
    }

    for entry in ops.values():
        entry.setdefault("ratio", entry["per_row_ns"] / entry["batch_ns"])

    with ResultSink("kernels") as sink:
        sink.emit(format_table(
            ["Kernel", "batch ns/op", "per-row ns/op", "ratio"],
            [
                [name, f"{e['batch_ns']:,.1f}", f"{e['per_row_ns']:,.1f}",
                 f"{e['ratio']:,.0f}x"]
                for name, e in ops.items()
            ],
            title=(
                f"Batch kernels vs per-row reference ({rows:,} rows, "
                f"reference on {ref_rows:,}; paper Table 1: "
                f"{PAPER_TABLE1_AES_NS:.0f} ns/AES-CTR op)"
            ),
        ))

    record = {
        "rows": rows,
        "reference_rows": ref_rows,
        "repeats": REPEATS,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "ops": ops,
        "floors": FLOORS,
        "table1": {
            "paper_aes_ni_ns": PAPER_TABLE1_AES_NS,
            "measured_prf_backend": ops["prf_eval"]["backend"],
            "measured_prf_ns": ops["prf_eval"]["batch_ns"],
        },
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    assert ops["ashe_pad_stream"]["ratio"] >= FLOORS["ashe_pad_stream_ratio"], (
        f"ASHE pad stream batch kernel only {ops['ashe_pad_stream']['ratio']:.1f}x "
        f"over the per-row reference (floor {FLOORS['ashe_pad_stream_ratio']}x)"
    )
    assert ops["ore_compare"]["ratio"] >= FLOORS["ore_compare_ratio"], (
        f"ORE compare batch kernel only {ops['ore_compare']['ratio']:.1f}x "
        f"over the per-row reference (floor {FLOORS['ore_compare_ratio']}x)"
    )
