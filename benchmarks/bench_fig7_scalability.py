"""Figure 7: server-side latency vs number of cores.

Paper: at 1.75 B rows, NoEnc bottoms out at ~1 s by 20 cores, Seabed
(sel=100%) reaches 1.35 s and (sel=50%) 8 s by 50 cores, and Paillier
stays near 1000 s even at 100 cores -- i.e. Paillier needs orders of
magnitude more cores for comparable latency.

Here the same fixed dataset is executed once per core count; the
simulated scheduler recomputes the makespan from the measured task
durations, which is exactly how added cores help a real Spark stage.
"""


from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.workloads import synthetic

CORE_COUNTS = [10, 20, 40, 60, 80, 100]


def _build(mode, rows, cluster, scale):
    data = synthetic.generate(rows, seed=1)
    columns = dict(data.columns)
    columns["sel"] = synthetic.selectivity_filter_column(rows, seed=2)
    schema = TableSchema("synth", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("sel", dtype="int", sensitive=False),
    ])
    client = SeabedClient(mode=mode, cluster=cluster,
                          paillier_bits=scale["paillier_bits"],
                          paillier_blinding_pool=32, seed=1)
    client.create_plan(schema, ["SELECT sum(value) FROM synth"])
    client.upload("synth", columns, num_partitions=200)
    return client


def test_fig7_scalability(benchmark, scale):
    rows = scale["fig7_rows"]
    series = {"NoEnc": [], "Seabed sel=100%": [], "Seabed sel=50%": [],
              "Paillier": []}

    def sweep():
        for cores in CORE_COUNTS:
            cluster = SimulatedCluster(ClusterConfig(
                cores=cores, job_startup_s=0.0005, task_startup_s=2e-5,
            ))
            plain = _build("plain", rows, cluster, scale)
            seabed = _build("seabed", rows, cluster, scale)
            paillier = _build("paillier", rows, cluster, scale)
            full = "SELECT sum(value) FROM synth"
            half = "SELECT sum(value) FROM synth WHERE sel < 500000"
            series["NoEnc"].append(plain.query(full).server_time)
            series["Seabed sel=100%"].append(seabed.query(full).server_time)
            series["Seabed sel=50%"].append(seabed.query(half).server_time)
            series["Paillier"].append(paillier.query(full).server_time)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table_rows = [
        [cores] + [f"{series[s][i] * 1e3:,.0f} ms" for s in series]
        for i, cores in enumerate(CORE_COUNTS)
    ]
    with ResultSink("fig7_scalability") as sink:
        sink.emit(format_table(
            ["Cores"] + list(series), table_rows,
            title=f"Figure 7: server-side latency vs cores ({rows:,} rows)",
        ))
        sink.emit(format_table(
            ["Shape check", "Paper", "Measured"],
            [
                ("every series speeds up 10 -> 100 cores", "yes", str(all(
                    series[s][0] >= series[s][-1] * 0.99 for s in series
                ))),
                ("Paillier/Seabed(100%) at 100 cores", ">100x",
                 f"{series['Paillier'][-1] / series['Seabed sel=100%'][-1]:,.0f}x"),
                ("Seabed flattens by ~50 cores", "best latency by 50 cores",
                 f"{series['Seabed sel=100%'][3] / series['Seabed sel=100%'][-1]:.2f}x"
                 " of 100-core latency at 60"),
            ],
            title="Paper-vs-measured",
        ))

    # Monotone improvement with more cores (within noise).
    for name, values in series.items():
        assert values[0] >= values[-1] * 0.99, name
    assert series["Paillier"][-1] > 20 * series["Seabed sel=100%"][-1]
