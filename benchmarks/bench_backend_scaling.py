"""Execution-backend scaling on the Figure-7 aggregation workload.

The paper's headline scalability result (Figures 6-7) comes from Spark
executing map tasks concurrently on real cores.  This benchmark runs the
same fixed Figure-7 workload (ASHE sum over a partitioned synthetic
table, at 100% and ~50% selectivity) under each execution backend --
``serial``, ``threads``, ``processes`` -- at 8 workers, and compares
*real* wall-clock (``JobMetrics.real_time``) across backends.  The
*simulated* makespan is also recorded; it must be backend-independent,
which is the invariant that keeps every figure benchmark reproducible
regardless of backend.

Results are rendered to ``results/backend_scaling.txt`` and recorded
machine-readably in ``BENCH_backends.json`` at the repository root.
Speedups are hardware-dependent: a host with one usable CPU shows ~1x
everywhere (there is nothing to overlap onto); the >= 2x threads-vs-
serial target needs a multi-core host, which is why the JSON records the
CPU count alongside the numbers.
"""

import json
import os
import platform
import time
from pathlib import Path


from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.workloads import synthetic

BACKENDS = ["serial", "threads", "processes"]
WORKERS = 8
PARTITIONS = 64
REPEATS = 3

FULL = "SELECT sum(value) FROM synth"
HALF = "SELECT sum(value) FROM synth WHERE sel < 500000"


def _build(backend, rows):
    cluster = SimulatedCluster(ClusterConfig(
        cores=100, job_startup_s=0.0005, task_startup_s=2e-5,
        backend=backend, workers=WORKERS,
    ))
    data = synthetic.generate(rows, seed=1)
    columns = dict(data.columns)
    columns["sel"] = synthetic.selectivity_filter_column(rows, seed=2)
    schema = TableSchema("synth", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("sel", dtype="int", sensitive=False),
    ])
    client = SeabedClient(mode="seabed", cluster=cluster, seed=1)
    client.create_plan(schema, [FULL])
    client.upload("synth", columns, num_partitions=PARTITIONS)
    return client


def _measure(client, sql):
    """Best-of-N measurements (real stage time, end-to-end wall, simulated).

    The best repeat is taken per metric independently so the recorded
    numbers are each a stable floor rather than one arbitrary sample.
    """
    best = {"real_s": float("inf"), "wall_s": float("inf"),
            "sim_server_s": float("inf")}
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = client.query(sql)
        elapsed = time.perf_counter() - t0
        assert result.rows, sql
        best["real_s"] = min(best["real_s"],
                             sum(m.real_time for m in result.request_metrics))
        best["wall_s"] = min(best["wall_s"], elapsed)
        best["sim_server_s"] = min(best["sim_server_s"], result.server_time)
    return best


def test_backend_scaling(benchmark, scale):
    rows = scale["fig7_rows"]
    results = {}

    def sweep():
        for backend in BACKENDS:
            client = _build(backend, rows)
            results[backend] = {
                "full": _measure(client, FULL),
                "half": _measure(client, HALF),
            }
            client.cluster.close()

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    serial_full = results["serial"]["full"]["real_s"]
    serial_half = results["serial"]["half"]["real_s"]
    speedups = {
        b: {
            "full": serial_full / max(results[b]["full"]["real_s"], 1e-12),
            "half": serial_half / max(results[b]["half"]["real_s"], 1e-12),
        }
        for b in BACKENDS
    }

    table_rows = [
        [
            b,
            f"{results[b]['full']['real_s'] * 1e3:,.1f} ms",
            f"{speedups[b]['full']:.2f}x",
            f"{results[b]['half']['real_s'] * 1e3:,.1f} ms",
            f"{speedups[b]['half']:.2f}x",
            f"{results[b]['full']['sim_server_s'] * 1e3:,.1f} ms",
        ]
        for b in BACKENDS
    ]
    with ResultSink("backend_scaling") as sink:
        sink.emit(format_table(
            ["Backend", "sel=100% real", "speedup", "sel=50% real", "speedup",
             "sim makespan"],
            table_rows,
            title=(
                f"Backend scaling, Figure-7 workload ({rows:,} rows, "
                f"{PARTITIONS} partitions, {WORKERS} workers, "
                f"{os.cpu_count()} host CPUs)"
            ),
        ))

    record = {
        "workload": "fig7-aggregation",
        "rows": rows,
        "partitions": PARTITIONS,
        "workers": WORKERS,
        "repeats": REPEATS,
        "queries": {"full": FULL, "half": HALF},
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": results,
        "speedup_vs_serial": {
            b: speedups[b] for b in BACKENDS if b != "serial"
        },
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_backends.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    # The simulated makespan is backend-independent (same measured task
    # bodies scheduled onto the same simulated cores); allow generous
    # noise since task timing jitters under contention.
    sims = [results[b]["full"]["sim_server_s"] for b in BACKENDS]
    assert max(sims) < min(sims) * 5

    # Real-speedup targets only make sense when the host can overlap work.
    if (os.cpu_count() or 1) >= 8:
        assert max(s["full"] for b, s in speedups.items() if b != "serial") >= 2.0
