"""Execution-backend scaling on the Figure-7 aggregation workload.

The paper's headline scalability result (Figures 6-7) comes from Spark
executing map tasks concurrently on real cores.  This benchmark runs the
same fixed Figure-7 workload (ASHE sum over a partitioned synthetic
table, at 100% and ~50% selectivity) under each execution backend --
``serial``, ``threads``, ``processes`` -- at 8 workers, and compares
*real* wall-clock (``JobMetrics.real_time``) across backends.  The
*simulated* makespan is also recorded; it must be backend-independent,
which is the invariant that keeps every figure benchmark reproducible
regardless of backend.

Results are rendered to ``results/backend_scaling.txt`` and recorded
machine-readably in ``BENCH_backends.json`` at the repository root.

Two floors gate this benchmark (both recorded in the JSON and re-checked
by CI's artifact-verification step):

- **Host-independent**: the threads backend must score
  ``speedup_vs_serial >= 0.9`` on *both* fig7 queries at any CPU count.
  A host with one usable CPU cannot overlap work, so this is a ceiling
  on dispatch overhead -- chunked warm-pool dispatch must cost (almost)
  nothing, never the 0.2-0.9x *losses* the per-task submit path showed.
- **Multi-core scaling** (8+ CPU hosts, e.g. the nightly runners):
  threads speedup must reach ``0.7 x min(workers, cpu_count)`` on the
  fig7 workload -- the ROADMAP's near-linear-scaling floor.
"""

import json
import os
import platform
import time
from pathlib import Path

from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.workloads import synthetic

BACKENDS = ["serial", "threads", "processes"]
WORKERS = 8
PARTITIONS = 64
REPEATS = 9

#: Dispatch-overhead ceiling: threads vs serial on both fig7 queries, any host.
THREADS_FLOOR = 0.9
#: Per-core scaling floor applied on hosts with 8+ CPUs (ROADMAP nightly gate).
MULTICORE_FLOOR_PER_CORE = 0.7
MULTICORE_MIN_CPUS = 8

FULL = "SELECT sum(value) FROM synth"
HALF = "SELECT sum(value) FROM synth WHERE sel < 500000"


def _build(backend, rows):
    cluster = SimulatedCluster(ClusterConfig(
        cores=100, job_startup_s=0.0005, task_startup_s=2e-5,
        backend=backend, workers=WORKERS,
    ))
    data = synthetic.generate(rows, seed=1)
    columns = dict(data.columns)
    columns["sel"] = synthetic.selectivity_filter_column(rows, seed=2)
    schema = TableSchema("synth", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("sel", dtype="int", sensitive=False),
    ])
    client = SeabedClient(mode="seabed", cluster=cluster, seed=1)
    client.create_plan(schema, [FULL])
    client.upload("synth", columns, num_partitions=PARTITIONS)
    return client


def _measure_once(client, sql, best):
    """One timed query; fold the metrics into the running ``best`` dict.

    The best repeat is taken per metric independently so the recorded
    numbers are each a stable floor rather than one arbitrary sample.
    """
    t0 = time.perf_counter()
    result = client.query(sql)
    elapsed = time.perf_counter() - t0
    assert result.rows, sql
    best["real_s"] = min(best["real_s"],
                         sum(m.real_time for m in result.request_metrics))
    best["wall_s"] = min(best["wall_s"], elapsed)
    best["sim_server_s"] = min(best["sim_server_s"], result.server_time)


def test_backend_scaling(benchmark, scale):
    # Own scale knob (not fig7_rows): the 0.9x floor is a *ratio* gate,
    # so each sample must be large enough that a few ms of scheduler
    # preemption cannot move it by 10%.
    rows = scale["backend_rows"]
    results = {
        b: {q: {"real_s": float("inf"), "wall_s": float("inf"),
                "sim_server_s": float("inf")}
            for q in ("full", "half")}
        for b in BACKENDS
    }

    def sweep():
        # Repeats are *interleaved* across backends (serial, threads,
        # processes, serial, ...) rather than run as one block per
        # backend: machine-wide drift -- frequency scaling, a noisy
        # neighbour -- then perturbs every backend's samples alike
        # instead of biasing the speedup ratios, which is what the 0.9x
        # threads floor gates on.
        clients = {b: _build(b, rows) for b in BACKENDS}
        for client in clients.values():
            client.query(FULL)  # warm pools and the translation cache
        for _ in range(REPEATS):
            for b, client in clients.items():
                _measure_once(client, FULL, results[b]["full"])
                _measure_once(client, HALF, results[b]["half"])
        for client in clients.values():
            client.cluster.close()

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    serial_full = results["serial"]["full"]["real_s"]
    serial_half = results["serial"]["half"]["real_s"]
    speedups = {
        b: {
            "full": serial_full / max(results[b]["full"]["real_s"], 1e-12),
            "half": serial_half / max(results[b]["half"]["real_s"], 1e-12),
        }
        for b in BACKENDS
    }

    table_rows = [
        [
            b,
            f"{results[b]['full']['real_s'] * 1e3:,.1f} ms",
            f"{speedups[b]['full']:.2f}x",
            f"{results[b]['half']['real_s'] * 1e3:,.1f} ms",
            f"{speedups[b]['half']:.2f}x",
            f"{results[b]['full']['sim_server_s'] * 1e3:,.1f} ms",
        ]
        for b in BACKENDS
    ]
    with ResultSink("backend_scaling") as sink:
        sink.emit(format_table(
            ["Backend", "sel=100% real", "speedup", "sel=50% real", "speedup",
             "sim makespan"],
            table_rows,
            title=(
                f"Backend scaling, Figure-7 workload ({rows:,} rows, "
                f"{PARTITIONS} partitions, {WORKERS} workers, "
                f"{os.cpu_count()} host CPUs)"
            ),
        ))

    cpus = os.cpu_count() or 1
    floors = {"threads_speedup_vs_serial": THREADS_FLOOR}
    if cpus >= MULTICORE_MIN_CPUS:
        floors["multicore_threads_speedup"] = (
            MULTICORE_FLOOR_PER_CORE * min(WORKERS, cpus)
        )

    record = {
        "workload": "fig7-aggregation",
        "rows": rows,
        "partitions": PARTITIONS,
        "workers": WORKERS,
        "repeats": REPEATS,
        "queries": {"full": FULL, "half": HALF},
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": results,
        "speedup_vs_serial": {
            b: speedups[b] for b in BACKENDS if b != "serial"
        },
        "floors": floors,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_backends.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    # The simulated makespan is backend-independent (same measured task
    # bodies scheduled onto the same simulated cores); allow generous
    # noise since task timing jitters under contention.
    sims = [results[b]["full"]["sim_server_s"] for b in BACKENDS]
    assert max(sims) < min(sims) * 5

    # Host-independent floor: warm chunked dispatch may not *lose* to
    # serial, on any machine -- even one with a single usable CPU.
    for q in ("full", "half"):
        assert speedups["threads"][q] >= THREADS_FLOOR, (
            f"threads backend lost to serial on the {q} query: "
            f"{speedups['threads'][q]:.2f}x < {THREADS_FLOOR}x"
        )

    # Multi-core scaling floor (the ROADMAP's nightly gate): only
    # meaningful when the host can actually overlap work.
    if cpus >= MULTICORE_MIN_CPUS:
        target = floors["multicore_threads_speedup"]
        best = max(speedups["threads"].values())
        assert best >= target, (
            f"threads backend scaled {best:.2f}x on {cpus} CPUs; "
            f"floor is {target:.2f}x (0.7 x {min(WORKERS, cpus)} cores)"
        )
