"""Figure 9b-c: the AmpLab Big Data Benchmark response times.

Paper (32 cores, server-side time only): Q1 is fast for every system
(NoEnc fastest; Seabed/Paillier pay OPE costs); on Q2-Q4 Seabed is
consistently faster than Paillier but the gap is smaller than in the
microbenchmarks because results carry many groups.
"""

import numpy as np
import pytest

from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.engine.rdd import RDD
from repro.workloads import bdb


@pytest.fixture(scope="module")
def clients(scale):
    data = bdb.generate(scale["bdb_rankings"], scale["bdb_uservisits"], seed=0)
    cluster = SimulatedCluster(ClusterConfig(  # paper uses 32 cores;
        # startup floor scaled with dataset size (see conftest.paper_cluster)
        cores=32, job_startup_s=0.0005, task_startup_s=2e-5,
    ))
    out = {}
    for mode in ("plain", "seabed", "paillier"):
        client = SeabedClient(mode=mode, cluster=cluster,
                              paillier_bits=scale["paillier_bits"],
                              paillier_blinding_pool=32, seed=2)
        client.create_plan(data.uservisits_schema, bdb.sample_queries())
        client.create_plan(data.rankings_schema, bdb.sample_queries())
        client.upload("rankings", data.rankings, num_partitions=8)
        client.upload("uservisits", data.uservisits, num_partitions=16)
        out[mode] = client
    return out, data


def test_fig9bc_bdb_queries(benchmark, clients, scale):
    built, data = clients
    results: dict[str, dict[str, float]] = {}

    def median_of(fn, repeats=3):
        return float(np.median([fn() for _ in range(repeats)]))

    def run_all():
        for variant in ("A", "B", "C"):
            sql_q1 = (
                "SELECT pageURL, pageRank FROM rankings "
                f"WHERE pageRank > {bdb.Q1_THRESHOLDS[variant]}"
            )
            results[f"Q1{variant}"] = {
                mode: median_of(lambda m=mode: built[m].scan(sql_q1).server_time)
                for mode in built
            }
            results[f"Q2{variant}"] = {
                mode: median_of(lambda m=mode: built[m].query(
                    bdb.query_q2(variant), expected_groups=1000
                ).server_time)
                for mode in built
            }
            results[f"Q3{variant}"] = {
                mode: median_of(lambda m=mode: built[m].query(
                    bdb.query_q3(variant), expected_groups=500
                ).server_time)
                for mode in built
            }
        # Q4: plaintext external-script phase via the RDD API, then an
        # encrypted phase-2 aggregation (paper keeps the text plaintext).
        docs = bdb.generate_crawl_documents(
            min(scale["bdb_rankings"], 2000), data.rankings["pageURL"], seed=1
        )
        q4 = {}
        for mode, client in built.items():
            rdd = RDD.parallelize(client.cluster, docs, num_partitions=8)
            counted = rdd.flat_map(bdb.extract_links).reduce_by_key(
                lambda a, b: a + b
            )
            q4[mode] = counted.metrics.server_time
        results["Q4p1"] = q4

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    names = sorted(results)
    table_rows = [
        [name] + [f"{results[name][mode] * 1e3:,.0f} ms"
                  for mode in ("plain", "seabed", "paillier")]
        for name in names
    ]
    with ResultSink("fig9bc_bdb") as sink:
        sink.emit(format_table(
            ["Query", "NoEnc", "Seabed", "Paillier"], table_rows,
            title=(f"Figure 9b-c: Big Data Benchmark server time "
                   f"({scale['bdb_uservisits']:,} visits, 32 cores)"),
        ))
        checks = []
        for name in names:
            if name.startswith(("Q2", "Q3")):
                r = results[name]
                checks.append((f"{name}: Seabed < Paillier", "yes",
                               str(r["seabed"] < r["paillier"])))
        sink.emit(format_table(["Shape check", "Paper", "Measured"], checks,
                               title="Paper-vs-measured"))

    for name in names:
        if name.startswith("Q2"):
            assert results[name]["seabed"] < results[name]["paillier"], name
        elif name.startswith("Q3"):
            # Join cost (the shared probe) dominates at this scale; the
            # paper also sees the narrowest gaps on Q3. Allow near-ties.
            assert results[name]["seabed"] < results[name]["paillier"] * 1.4, name
