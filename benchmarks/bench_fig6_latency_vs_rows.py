"""Figure 6: end-to-end latency vs dataset size.

Paper setup: 100 cores, 0.25-1.75 B rows; NoEnc flat at ~0.6 s (task
startup dominated), Seabed growing linearly from ~1.8 s to ~11 s
(selectivity 50% worst case; 100% best case), Paillier >1000 s.

Here the same four series run at laptop scale on the 100-core simulated
cluster.  Selectivity uses the paper's random row-selection model via a
uniform filter column.  Shape checks: NoEnc roughly flat; Seabed linear
and within ~2x of NoEnc at sel=100%; sel=50% above sel=100%; Paillier
orders of magnitude above both.
"""

import numpy as np

from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.workloads import synthetic


def _build_client(mode, rows, cluster, scale):
    data = synthetic.generate(rows, seed=1)
    columns = dict(data.columns)
    columns["sel"] = synthetic.selectivity_filter_column(rows, seed=2)
    schema = TableSchema("synth", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("sel", dtype="int", sensitive=False),
    ])
    client = SeabedClient(
        mode=mode, cluster=cluster, paillier_bits=scale["paillier_bits"],
        paillier_blinding_pool=32, seed=1,
    )
    client.create_plan(schema, ["SELECT sum(value) FROM synth WHERE sel < 10"])
    client.upload("synth", columns, num_partitions=min(400, max(rows // 50_000, 8)))
    return client


def _median_latency(client, sql, repeats=3):
    times = [client.query(sql).total_time for _ in range(repeats)]
    return float(np.median(times))


def test_fig6_latency_vs_rows(benchmark, scale, paper_cluster):
    series: dict[str, list[tuple[int, float]]] = {
        "NoEnc": [], "Seabed sel=100%": [], "Seabed sel=50%": [], "Paillier": [],
    }

    def sweep():
        for rows in scale["fig6_rows"]:
            plain = _build_client("plain", rows, paper_cluster, scale)
            seabed = _build_client("seabed", rows, paper_cluster, scale)
            paillier = _build_client("paillier", rows, paper_cluster, scale)
            full = "SELECT sum(value) FROM synth"
            half = "SELECT sum(value) FROM synth WHERE sel < 500000"
            series["NoEnc"].append((rows, _median_latency(plain, full)))
            series["Seabed sel=100%"].append((rows, _median_latency(seabed, full)))
            series["Seabed sel=50%"].append((rows, _median_latency(seabed, half)))
            series["Paillier"].append((rows, _median_latency(paillier, full, repeats=1)))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["Rows"] + list(series)
    table_rows = []
    for i, rows in enumerate(scale["fig6_rows"]):
        table_rows.append([f"{rows:,}"] + [
            f"{series[s][i][1] * 1e3:,.0f} ms" for s in series
        ])
    with ResultSink("fig6_latency_vs_rows") as sink:
        sink.emit(format_table(
            headers, table_rows,
            title="Figure 6: median end-to-end latency vs rows (100 simulated cores)",
        ))
        last = {s: series[s][-1][1] for s in series}
        sink.emit(format_table(
            ["Shape check", "Paper", "Measured"],
            [
                ("Paillier / Seabed(100%) at max rows", ">100x",
                 f"{last['Paillier'] / last['Seabed sel=100%']:,.0f}x"),
                ("Seabed(50%) >= Seabed(100%)", "yes",
                 str(last['Seabed sel=50%'] >= last['Seabed sel=100%'])),
                ("Seabed(100%) / NoEnc at max rows", "1.1-3x",
                 f"{last['Seabed sel=100%'] / last['NoEnc']:.2f}x"),
            ],
            title="Paper-vs-measured",
        ))

    assert last["Paillier"] > 20 * last["Seabed sel=100%"]
    assert last["Seabed sel=50%"] >= 0.95 * last["Seabed sel=100%"]
    # NoEnc stays near its startup floor: last point within 3x of first.
    noenc = series["NoEnc"]
    assert noenc[-1][1] < 3 * noenc[0][1] + 0.5
