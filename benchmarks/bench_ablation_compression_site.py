"""Ablation: compress ID lists at the workers vs at the driver.

Section 4.5: driver-side compression can compress better (one combined
list) but serialises the work at the driver, which the paper found to be
a bottleneck; Seabed compresses at the workers.  We measure both paths.
"""


from repro.bench import ResultSink, format_table
from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, TableSchema
from repro.workloads import synthetic


def test_ablation_compression_site(benchmark, scale, paper_cluster):
    rows = scale["fig8_rows"]
    data = synthetic.generate(rows, seed=1)
    columns = dict(data.columns)
    columns["sel"] = synthetic.selectivity_filter_column(rows, seed=2)
    schema = TableSchema("synth", [
        ColumnSpec("value", dtype="int", sensitive=True, nbits=32),
        ColumnSpec("sel", dtype="int", sensitive=False),
    ])
    client = SeabedClient(mode="seabed", cluster=paper_cluster, seed=1)
    client.create_plan(schema, ["SELECT sum(value) FROM synth"])
    client.upload("synth", columns, num_partitions=128)
    sql = "SELECT sum(value) FROM synth WHERE sel < 500000"

    results = {}

    def run_both():
        for site in ("worker", "driver"):
            r = client.query(sql, compress_at=site)
            driver_stage = [
                s for m in r.request_metrics for s in m.stages if s.name == "merge"
            ][0]
            results[site] = {
                "server": r.server_time,
                "driver_merge": driver_stage.makespan,
                "result_bytes": r.result_bytes,
            }

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    with ResultSink("ablation_compression_site") as sink:
        sink.emit(format_table(
            ["Site", "Server time (ms)", "Driver merge (ms)", "Result bytes"],
            [
                (site, f"{v['server'] * 1e3:,.0f}",
                 f"{v['driver_merge'] * 1e3:,.1f}", f"{v['result_bytes']:,}")
                for site, v in results.items()
            ],
            title="Ablation: worker-side vs driver-side ID-list compression",
        ))

    # Driver-side compression may shrink the payload, but it serialises:
    # the driver's merge stage does strictly more work.
    assert results["driver"]["driver_merge"] > results["worker"]["driver_merge"]
    # Both answers already verified equal in the integration tests.
