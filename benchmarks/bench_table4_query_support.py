"""Table 4 (and Table 6): query-support categories.

Classifies the three query sets the paper analyses -- the ad-analytics
production log, TPC-DS, and the MDX function catalog -- into the four
support categories and prints Table 4, plus the full per-function Table 6.
MDX and TPC-DS totals must match the paper exactly; the ad-analytics log
is synthetic, so its *fractions* must match the published split.
"""

from repro.bench import ResultSink, format_table
from repro.core.classify import CategoryCounts
from repro.workloads import adanalytics, mdx, tpcds

CATEGORY_LABEL = {
    "S": "Purely on Server", "CPre": "Client Pre-processing",
    "CPost": "Client Post-processing", "2R": "Two Round-trips",
}


def test_table4_query_support(benchmark):
    ada_counts = CategoryCounts("Ad Analytics")
    log = benchmark.pedantic(
        lambda: adanalytics.generate_query_log(adanalytics.PAPER_LOG_TOTAL // 16,
                                               seed=0),
        rounds=1, iterations=1,
    )
    for q in log:
        ada_counts.add(q.category)

    rows = []
    headers = ["Query set", "Total", "Purely on Server", "Client Pre-processing",
               "Client Post-processing", "Two Round-trips"]
    rows.append(["Ad Analytics (synthetic log)"] + [
        ada_counts.row()[h] for h in headers[1:]
    ])
    tpc = tpcds.category_counts()
    rows.append(["TPC-DS", tpc["Total"], tpc["S"], tpc["CPre"], tpc["CPost"],
                 tpc["2R"]])
    m = mdx.category_counts()
    rows.append(["MDX", m["Total"], m["S"], m["CPre"], m["CPost"], m["2R"]])

    with ResultSink("table4_query_support") as sink:
        sink.emit(format_table(headers, rows,
                               title="Table 4: query-support categories"))
        sink.emit(format_table(
            ["Query set", "Paper", "Measured"],
            [
                ("TPC-DS", "99 / 69 / 2 / 25 / 3",
                 f"{tpc['Total']} / {tpc['S']} / {tpc['CPre']} / {tpc['CPost']} / {tpc['2R']}"),
                ("MDX", "38 / 17 / 12 / 4 / 5",
                 f"{m['Total']} / {m['S']} / {m['CPre']} / {m['CPost']} / {m['2R']}"),
                ("AdA server fraction",
                 f"{adanalytics.PAPER_LOG_SERVER / adanalytics.PAPER_LOG_TOTAL:.1%}",
                 f"{ada_counts.counts['S'] / ada_counts.total:.1%}"),
            ],
            title="Paper-vs-measured",
        ))
        table6_rows = [
            (f.number, f.name, f.description, f.how_supported, f.category)
            for f in mdx.MDX_CATALOG
        ]
        sink.emit(format_table(
            ["#", "Function", "Description", "How Seabed supports it", "Type"],
            table6_rows,
            title="Table 6: MDX functions supported by Seabed",
        ))

    assert tpc == tpcds.PAPER_COUNTS
    assert m == mdx.PAPER_COUNTS
    server_fraction = ada_counts.counts["S"] / ada_counts.total
    paper_fraction = adanalytics.PAPER_LOG_SERVER / adanalytics.PAPER_LOG_TOTAL
    assert abs(server_fraction - paper_fraction) < 0.03
