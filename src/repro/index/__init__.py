"""Encrypted zone-map index: per-partition statistics + partition pruning.

The untrusted server already stores every ciphertext column; this
package lets it *skip* partitions a predicate provably cannot match,
using only artifacts derivable from those ciphertexts (cf. the paper's
threat model, Section 2: anything the server can compute from what it
stores is leakage it already has).

- :mod:`repro.index.bloom` -- a keyless bloom filter over DET tokens.
- :mod:`repro.index.zonemap` -- builds per-partition statistics (ORE
  min/max ciphertexts, DET token sets / blooms, plain min/max, row
  counts) from ciphertext columns only.
- :mod:`repro.index.prune` -- walks a translated server-side filter and
  intersects per-conjunct survivor sets, conservatively keeping a
  partition on any uncertainty so pruned execution stays bit-identical.
"""

from repro.index.bloom import BloomFilter
from repro.index.prune import extreme_candidates, survivors
from repro.index.zonemap import build_partition_stats, stats_summary

__all__ = [
    "BloomFilter",
    "build_partition_stats",
    "extreme_candidates",
    "stats_summary",
    "survivors",
]
