"""Shard-level zone-map rollups: one stats dict summarising a whole store.

The sharded execution tier (:mod:`repro.shard`) prunes at a coarser
granularity than partitions: before scattering a query, the coordinator
asks *per shard* whether any row could match, using a single rolled-up
zone map per shard store.  This module merges a store's per-partition
statistics (:mod:`repro.index.zonemap`) into one dict **in the same
schema**, so the rollup flows through the existing pruning judgements
(:func:`repro.index.prune.may_match`) unchanged.

Merging is conservative, mirroring the pruning contract:

- **ORE / plain columns**: the widest [min, max] envelope across
  partitions (ORE bounds compared with the public Compare).
- **DET columns**: the union of exact token sets while it stays within
  :data:`~repro.index.zonemap.TOKEN_SET_MAX`; a larger union degrades to
  a keyless bloom built over the exact union.  Partitions that only
  carry blooms cannot be unioned exactly (sizes differ), so the column
  is dropped from the rollup -- "no artifact" reads as "cannot prune",
  never as a wrong skip.
- Any partition **without** statistics poisons the whole rollup
  (``None``): rows the index never saw could match anything.

Leakage: a rollup is a pure function of the per-partition stats, which
are themselves recomputable from stored ciphertexts, so the shard tier
adds nothing beyond the DET/ORE baseline the zone maps already audit.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.crypto.ore import OreScheme
from repro.index.bloom import BloomFilter
from repro.index.zonemap import TOKEN_SET_MAX

_U64 = np.uint64


def _merge_ore(entries: list[dict[str, Any]]) -> dict[str, Any]:
    lo = tuple(int(w) for w in entries[0]["min"])
    hi = tuple(int(w) for w in entries[0]["max"])
    for col in entries[1:]:
        cand_lo = tuple(int(w) for w in col["min"])
        cand_hi = tuple(int(w) for w in col["max"])
        if OreScheme.compare_words(cand_lo, lo) < 0:
            lo = cand_lo
        if OreScheme.compare_words(cand_hi, hi) > 0:
            hi = cand_hi
    return {"kind": "ore", "min": list(lo), "max": list(hi)}


def _merge_plain(entries: list[dict[str, Any]]) -> dict[str, Any]:
    return {
        "kind": "plain",
        "min": min(int(col["min"]) for col in entries),
        "max": max(int(col["max"]) for col in entries),
    }


def _merge_det(entries: list[dict[str, Any]]) -> dict[str, Any] | None:
    """Union of exact token sets, degrading to a bloom past the cap.

    Returns ``None`` when any partition carries only a bloom: blooms of
    different sizes cannot be unioned, and guessing would risk a false
    "provably absent" -- the one answer pruning must never get wrong.
    """
    union: set[int] = set()
    for col in entries:
        if "tokens" not in col:
            return None
        union.update(int(t) for t in col["tokens"])
    if len(union) <= TOKEN_SET_MAX:
        return {"kind": "det", "tokens": sorted(union)}
    tokens = np.asarray(sorted(union), dtype=_U64)
    bloom = BloomFilter.for_capacity(tokens.size)
    bloom.add_tokens(tokens)
    return {"kind": "det", "bloom": bloom.to_dict()}


def rollup_zone_maps(
    zone_maps: Sequence[dict[str, Any] | None] | None,
) -> dict[str, Any] | None:
    """Merge per-partition stats dicts into one shard-level stats dict.

    The result uses the exact manifest schema of
    :func:`repro.index.zonemap.build_partition_stats`, so it can be fed
    straight into :func:`repro.index.prune.may_match` (and friends) as if
    it described one giant partition.  Returns ``None`` when nothing can
    be asserted: no partitions, or any partition without statistics.
    """
    if not zone_maps:
        return None
    covered: list[dict[str, Any]] = []
    for stats in zone_maps:
        if stats is None:
            return None
        covered.append(stats)
    rows = sum(int(z.get("rows", 0)) for z in covered)
    nulls = sum(int(z.get("nulls", 0)) for z in covered)
    # Only columns bounded in *every* non-empty partition can be rolled
    # up; a single uncovered partition could hold the matching row.
    nonempty = [z for z in covered if int(z.get("rows", 0)) > 0]
    columns: dict[str, Any] = {}
    if nonempty:
        names = set(nonempty[0].get("columns", {}))
        for z in nonempty[1:]:
            names &= set(z.get("columns", {}))
        for name in sorted(names):
            entries = [z["columns"][name] for z in nonempty]
            kinds = {col.get("kind") for col in entries}
            if len(kinds) != 1:
                continue
            kind = kinds.pop()
            if kind == "ore":
                columns[name] = _merge_ore(entries)
            elif kind == "plain":
                columns[name] = _merge_plain(entries)
            elif kind == "det":
                merged = _merge_det(entries)
                if merged is not None:
                    columns[name] = merged
    return {"rows": rows, "nulls": nulls, "columns": columns}
