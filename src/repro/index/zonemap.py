"""Per-partition zone-map statistics, computed from ciphertexts only.

The builder sees exactly what the untrusted server sees -- the stored
column arrays -- and emits one JSON-serialisable stats dict per
partition:

- **ORE columns** (2-D uint64 trit words): the partition's min and max
  *ciphertexts*, found with the public Compare.  Both are rows of the
  stored column; publishing them reveals nothing beyond the ORE
  baseline (order among ciphertexts is already public).
- **DET token columns** (1-D uint64, ``*__det``): the exact distinct
  token set when small (:data:`TOKEN_SET_MAX`), else a compact keyless
  bloom filter over the distinct tokens.  Tokens are already visible in
  the column; the set/bloom is a recomputable digest of them.
- **Plain columns** (1-D int64 / bool): plaintext min/max -- the values
  are stored in the clear, so their bounds leak nothing new.
- **Row and null counts** per partition (columns are dense numpy
  arrays, so nulls are structurally zero; the field exists so a future
  nullable layout keeps the same stats shape).

ASHE and Paillier ciphertext columns are *deliberately not indexed*:
they are semantically secure, every useful statistic about them would
have to come from plaintext knowledge, and the leakage auditor
(:func:`repro.attacks.frequency.audit_zone_maps`) treats any artifact
that cannot be recomputed from the stored ciphertexts as a violation.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.crypto import ore as ore_mod
from repro.index.bloom import BloomFilter

_U64 = np.uint64

#: Distinct-token threshold below which the exact set is stored instead
#: of a bloom filter (exact sets additionally allow negation pruning).
TOKEN_SET_MAX = 64

#: Physical-column name suffix of DET token columns (see
#: :func:`repro.core.schema.det_col`).
DET_SUFFIX = "__det"


def _ore_extreme_row(cipher: np.ndarray, kind: str) -> np.ndarray:
    """The min/max ciphertext row by the public ORE Compare (the shared
    vectorised kernel tournament, same code path as server aggregation)."""
    arr = np.asarray(cipher, dtype=_U64)
    return arr[ore_mod.argextreme_packed(arr, kind)]


def _ore_stats(arr: np.ndarray) -> dict[str, Any]:
    return {
        "kind": "ore",
        "min": [int(w) for w in _ore_extreme_row(arr, "min")],
        "max": [int(w) for w in _ore_extreme_row(arr, "max")],
    }


def _det_stats(arr: np.ndarray) -> dict[str, Any]:
    tokens = np.unique(np.asarray(arr, dtype=_U64))
    if tokens.size <= TOKEN_SET_MAX:
        return {"kind": "det", "tokens": [int(t) for t in tokens]}
    bloom = BloomFilter.for_capacity(tokens.size)
    bloom.add_tokens(tokens)
    return {"kind": "det", "bloom": bloom.to_dict()}


def _plain_stats(arr: np.ndarray) -> dict[str, Any]:
    return {"kind": "plain", "min": int(arr.min()), "max": int(arr.max())}


def classify_column(name: str, spec: Mapping[str, Any]) -> str | None:
    """Which stats kind (``ore``/``det``/``plain``) a stored column gets.

    Classification is structural (dtype spec + the ``__det`` naming
    convention) so it works on any readable manifest version; the
    ``enc`` metadata newer manifests carry must agree with it, which the
    leakage auditor double-checks.
    """
    dtype = spec.get("dtype")
    ndim = int(spec.get("ndim", 1))
    enc = spec.get("enc")
    if enc in ("ashe", "paillier"):
        # Semantically secure ciphertexts: indexing them is both useless
        # and, if an artifact *did* discriminate, a leak.  (Older
        # manifests recorded the plan kind here, under which an ORE or
        # DET companion column of an ASHE measure also says "ashe" --
        # the structural rules below still classify those correctly.)
        if not (dtype == "<u8" and ndim == 2) and not name.endswith(DET_SUFFIX):
            return None
    if dtype == "<u8" and ndim == 2:
        return "ore"
    if dtype == "<u8" and ndim == 1 and name.endswith(DET_SUFFIX):
        return "det"
    if dtype in ("<i8", "|b1") and ndim == 1:
        return "plain"
    return None


def build_partition_stats(
    part: Any, column_specs: Mapping[str, Mapping[str, Any]]
) -> dict[str, Any]:
    """Zone-map statistics for one partition.

    ``part`` is a :class:`repro.engine.table.Partition` (or anything
    with ``nrows`` and ``column(name)``); ``column_specs`` is the store
    manifest's ``columns`` mapping (dtype/ndim/width per column).  The
    result is JSON-serialisable and fully determined by the ciphertext
    column contents -- the recomputability the leakage audit relies on.
    """
    columns: dict[str, Any] = {}
    if part.nrows > 0:
        for name, spec in column_specs.items():
            kind = classify_column(name, spec)
            if kind is None:
                continue
            arr = part.column(name)
            if kind == "ore":
                columns[name] = _ore_stats(arr)
            elif kind == "det":
                columns[name] = _det_stats(arr)
            else:
                columns[name] = _plain_stats(arr)
    return {"rows": int(part.nrows), "nulls": 0, "columns": columns}


def stats_summary(zone_maps: list[dict | None]) -> dict[str, Any]:
    """Aggregate index coverage over a table's per-partition stats."""
    covered = [z for z in zone_maps if z]
    columns: dict[str, dict[str, int | str]] = {}
    for z in covered:
        for name, col in z.get("columns", {}).items():
            entry = columns.setdefault(
                name,
                {"kind": col["kind"], "partitions": 0, "token_sets": 0, "blooms": 0},
            )
            entry["partitions"] = int(entry["partitions"]) + 1
            if col["kind"] == "det":
                key = "token_sets" if "tokens" in col else "blooms"
                entry[key] = int(entry[key]) + 1
    return {
        "partitions": len(zone_maps),
        "partitions_with_stats": len(covered),
        "rows": sum(int(z["rows"]) for z in covered),
        "columns": columns,
    }
