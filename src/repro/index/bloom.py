"""A keyless bloom filter over DET equality tokens.

Zone maps need an "is this token possibly in this partition?" structure
whose size does not grow with partition cardinality.  A bloom filter fits,
with one hard requirement inherited from the pruning contract: **no false
negatives, ever** -- a membership "no" must be proof of absence, because
the planner drops the partition on it.  False positives only cost a
wasted scan.

Leakage: the filter is built from the DET token column the server
already stores, and its hash functions are *public constants* (splitmix
finalisers, no key material), so the server could compute the identical
bit array itself -- the artifact reveals nothing beyond the DET
ciphertext baseline.  The security tests assert exactly this
recomputability (:func:`repro.attacks.frequency.audit_zone_maps`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SeabedError

_U64 = np.uint64
_MASK64 = (1 << 64) - 1

# splitmix64 finaliser constants -- fixed and public by design: the bits
# must be derivable from the tokens alone (see module docstring).
_MIX_MUL_1 = 0xBF58476D1CE4E5B9
_MIX_MUL_2 = 0x94D049BB133111EB
_SEED_H2 = 0x9E3779B97F4A7C15

#: Bits per distinct token targeting roughly a 1% false-positive rate.
BITS_PER_TOKEN = 10
#: Cap on the number of probe functions (k = m/n * ln 2, clamped).
MAX_HASHES = 8


def _mix(x: np.ndarray) -> np.ndarray:
    x = x ^ (x >> _U64(30))
    x = x * _U64(_MIX_MUL_1)
    x = x ^ (x >> _U64(27))
    x = x * _U64(_MIX_MUL_2)
    return x ^ (x >> _U64(31))


class BloomFilter:
    """Fixed-size bloom filter over uint64 tokens (double hashing)."""

    def __init__(self, num_bits: int, num_hashes: int,
                 words: np.ndarray | None = None):
        if num_bits < 64 or num_bits % 64:
            raise SeabedError("bloom size must be a positive multiple of 64 bits")
        if not 1 <= num_hashes <= 64:
            raise SeabedError("bloom needs 1..64 hash functions")
        self.num_bits = int(num_bits)
        self.num_hashes = int(num_hashes)
        if words is None:
            words = np.zeros(self.num_bits // 64, dtype=_U64)
        elif words.shape != (self.num_bits // 64,) or words.dtype != _U64:
            raise SeabedError("bloom word array does not match num_bits")
        self._words = words

    @classmethod
    def for_capacity(cls, num_tokens: int) -> "BloomFilter":
        """Size a filter for ``num_tokens`` distinct tokens (~1% FPR)."""
        num_tokens = max(1, int(num_tokens))
        num_bits = ((num_tokens * BITS_PER_TOKEN + 63) // 64) * 64
        num_hashes = max(1, min(
            MAX_HASHES, round(num_bits / num_tokens * math.log(2))
        ))
        return cls(num_bits, num_hashes)

    # -- hashing -------------------------------------------------------------

    def _probes(self, tokens: np.ndarray) -> np.ndarray:
        """(k, N) bit indices via double hashing: h1 + i*h2 mod m."""
        t = np.asarray(tokens, dtype=_U64)
        h1 = _mix(t)
        h2 = _mix(t ^ _U64(_SEED_H2)) | _U64(1)
        steps = np.arange(self.num_hashes, dtype=_U64)[:, None]
        return (h1[None, :] + steps * h2[None, :]) % _U64(self.num_bits)

    # -- mutation / queries --------------------------------------------------

    def add_tokens(self, tokens: np.ndarray) -> None:
        """Set the bits for every token in the (uint64) array."""
        if len(tokens) == 0:
            return
        idx = self._probes(tokens).ravel()
        words = idx >> _U64(6)
        bits = _U64(1) << (idx & _U64(63))
        np.bitwise_or.at(self._words, words.astype(np.int64), bits)

    def might_contain(self, token: int) -> bool:
        """True unless the token is *provably* absent (no false negatives)."""
        idx = self._probes(np.asarray([int(token) & _MASK64], dtype=_U64))[:, 0]
        words = self._words[(idx >> _U64(6)).astype(np.int64)]
        bits = _U64(1) << (idx & _U64(63))
        return bool(np.all(words & bits != 0))

    # -- introspection / serialisation ---------------------------------------

    @property
    def fill_ratio(self) -> float:
        set_bits = int(np.bitwise_count(self._words).sum())
        return set_bits / self.num_bits

    def to_dict(self) -> dict:
        """JSON-serialisable form (bits little-endian, hex-encoded)."""
        return {
            "m": self.num_bits,
            "k": self.num_hashes,
            "bits": self._words.astype("<u8").tobytes().hex(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BloomFilter":
        try:
            num_bits = int(payload["m"])
            num_hashes = int(payload["k"])
            raw = bytes.fromhex(payload["bits"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SeabedError(f"malformed bloom payload: {exc}") from None
        if len(raw) * 8 != num_bits:
            raise SeabedError(
                f"bloom payload holds {len(raw) * 8} bits, header says {num_bits}"
            )
        words = np.frombuffer(raw, dtype="<u8").astype(_U64)
        return cls(num_bits, num_hashes, words)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BloomFilter)
            and self.num_bits == other.num_bits
            and self.num_hashes == other.num_hashes
            and bool(np.array_equal(self._words, other._words))
        )

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.num_bits}, k={self.num_hashes}, "
            f"fill={self.fill_ratio:.2f})"
        )
