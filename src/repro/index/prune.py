"""Predicate-driven partition pruning over zone-map statistics.

The planner walks a *translated* server-side filter tree -- the same
DET/ORE token comparisons the scan kernels evaluate row-wise -- and
decides per partition whether any row could match, using only the
partition's zone-map artifacts.  Two dual judgements drive it:

- :func:`may_match` -- ``False`` only when **provably no** row in the
  partition satisfies the expression (the partition can be skipped);
- :func:`all_match` -- ``True`` only when **provably every** row
  satisfies it (what negation needs: ``NOT e`` can drop a partition
  exactly when ``e`` provably holds everywhere).

Conjunctions intersect per-conjunct survivor sets, disjunctions union
them, and *any* uncertainty -- missing stats, unknown node or operator,
a bloom "maybe" -- keeps the partition, so pruned execution is
bit-identical to a full scan.  SPLASHE equality selections never reach
this tree (translation retargets them onto splayed physical columns
present in every partition); the enhanced-SPLASHE catch-all requests
arrive as ordinary ``DetEq`` conjuncts and prune like any other.

Because the planner runs on *every* query, the manifest's JSON stats
are first **compiled** -- token lists to frozensets, bloom payloads to
bit arrays, ORE bounds to tuples -- via :func:`compile_zone_maps`; the
server caches the compiled form per registered table so the per-query
cost is a plain tree walk.  Raw manifest dicts are accepted everywhere
and compiled on the fly.

No key material is used anywhere: ORE bounds compare with the public
Compare, DET tokens by equality against already-visible tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.crypto.ore import OreScheme
from repro.index.bloom import BloomFilter

_PLAIN_OPS = ("<", "<=", ">", ">=", "=", "!=")

_SRV = None


def _srv():
    # Deferred, cached import: repro.core.server imports the store layer
    # (which imports the stats builder); resolving it lazily keeps the
    # index package cycle-free while matching on the real filter nodes.
    global _SRV
    if _SRV is None:
        from repro.core import server as srv

        _SRV = srv
    return _SRV


# ---------------------------------------------------------------------------
# Compiled per-partition artifacts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DetArtifact:
    """Exact token set (small cardinality) or bloom membership."""

    tokens: frozenset | None = None
    bloom: BloomFilter | None = None

    def membership(self, token: int) -> bool | None:
        """Token possibly present?  ``None`` when the stats cannot tell."""
        if self.tokens is not None:
            return token in self.tokens
        if self.bloom is not None:
            return self.bloom.might_contain(token)
        return None

    @property
    def sole_token(self) -> int | None:
        if self.tokens is not None and len(self.tokens) == 1:
            return next(iter(self.tokens))
        return None


@dataclass(frozen=True)
class RangeArtifact:
    """Min/max bounds: ORE ciphertext word tuples or plain ints."""

    kind: str  # "ore" | "plain"
    lo: Any
    hi: Any


@dataclass(frozen=True)
class PartitionStats:
    """One partition's compiled zone map."""

    rows: int
    columns: dict


def compile_partition(stats: dict | None) -> PartitionStats | None:
    """Compile one manifest stats dict into fast lookup artifacts."""
    if not stats:
        return None
    columns: dict = {}
    for name, col in stats.get("columns", {}).items():
        kind = col.get("kind")
        if kind == "det":
            if "tokens" in col:
                columns[name] = DetArtifact(
                    tokens=frozenset(int(t) for t in col["tokens"])
                )
            elif "bloom" in col:
                columns[name] = DetArtifact(
                    bloom=BloomFilter.from_dict(col["bloom"])
                )
        elif kind == "ore":
            columns[name] = RangeArtifact(
                kind="ore",
                lo=tuple(int(w) for w in col["min"]),
                hi=tuple(int(w) for w in col["max"]),
            )
        elif kind == "plain":
            columns[name] = RangeArtifact(
                kind="plain", lo=int(col["min"]), hi=int(col["max"])
            )
    return PartitionStats(rows=int(stats.get("rows", 0)), columns=columns)


def compile_zone_maps(
    zone_maps: Sequence[dict | PartitionStats | None] | None,
) -> list[PartitionStats | None] | None:
    """Compile a table's zone-map list (idempotent; None passes through)."""
    if zone_maps is None:
        return None
    return [
        z if isinstance(z, PartitionStats) or z is None else compile_partition(z)
        for z in zone_maps
    ]


def _as_compiled(stats: Any) -> PartitionStats | None:
    if stats is None or isinstance(stats, PartitionStats):
        return stats
    return compile_partition(stats)


# ---------------------------------------------------------------------------
# The two dual judgements
# ---------------------------------------------------------------------------


def _compare(kind: str, a: Any, b: Any) -> int:
    if kind == "ore":
        return OreScheme.compare_words(a, b)
    return (a > b) - (a < b)


def _range_value(art: RangeArtifact, expr: Any) -> Any | None:
    """The comparison value in the artifact's domain, or None if unusable."""
    if art.kind == "ore":
        return tuple(int(w) for w in expr.token)
    value = expr.value
    if not isinstance(value, (int, np.integer)):
        return None
    return int(value)


def _range_may_match(kind: str, op: str, lo: Any, hi: Any, value: Any) -> bool:
    """Could a row in [lo, hi] satisfy ``row <op> value``?"""
    if op == "<":
        return _compare(kind, lo, value) < 0
    if op == "<=":
        return _compare(kind, lo, value) <= 0
    if op == ">":
        return _compare(kind, hi, value) > 0
    if op == ">=":
        return _compare(kind, hi, value) >= 0
    if op == "=":
        return _compare(kind, lo, value) <= 0 <= _compare(kind, hi, value)
    if op == "!=":
        # Only a constant partition equal to the value excludes !=.
        return not (
            _compare(kind, lo, value) == 0 and _compare(kind, hi, value) == 0
        )
    return True


def _range_all_match(kind: str, op: str, lo: Any, hi: Any, value: Any) -> bool:
    """Does every row in [lo, hi] satisfy ``row <op> value``?"""
    if op == "<":
        return _compare(kind, hi, value) < 0
    if op == "<=":
        return _compare(kind, hi, value) <= 0
    if op == ">":
        return _compare(kind, lo, value) > 0
    if op == ">=":
        return _compare(kind, lo, value) >= 0
    if op == "=":
        return _compare(kind, lo, value) == 0 and _compare(kind, hi, value) == 0
    if op == "!=":
        return _compare(kind, value, lo) < 0 or _compare(kind, value, hi) > 0
    return False


def may_match(stats: Any, expr: Any) -> bool:
    """False only when provably no row of the partition matches."""
    srv = _srv()
    stats = _as_compiled(stats)
    if expr is None:
        return True
    if isinstance(expr, srv.DetEq):
        art = stats.columns.get(expr.column) if stats else None
        if not isinstance(art, DetArtifact):
            return True
        if expr.negate:
            # A row with a *different* token exists unless the partition
            # is constant-equal to the token (exact sets only).
            return art.sole_token != int(expr.token)
        present = art.membership(int(expr.token))
        return True if present is None else present
    if isinstance(expr, srv.DetIn):
        art = stats.columns.get(expr.column) if stats else None
        if not isinstance(art, DetArtifact):
            return True
        for token in expr.tokens:
            present = art.membership(int(token))
            if present is None or present:
                return True
        return False
    if isinstance(expr, (srv.OreCmp, srv.PlainCmp)):
        kind = "ore" if isinstance(expr, srv.OreCmp) else "plain"
        art = stats.columns.get(expr.column) if stats else None
        if not isinstance(art, RangeArtifact) or art.kind != kind:
            return True
        if expr.op not in _PLAIN_OPS:
            return True
        value = _range_value(art, expr)
        if value is None:
            return True
        return _range_may_match(kind, expr.op, art.lo, art.hi, value)
    if isinstance(expr, srv.FilterAnd):
        return all(may_match(stats, child) for child in expr.children)
    if isinstance(expr, srv.FilterOr):
        return any(may_match(stats, child) for child in expr.children)
    if isinstance(expr, srv.FilterNot):
        return not all_match(stats, expr.child)
    return True  # unknown node (e.g. an unbound ParamFilter): keep


def all_match(stats: Any, expr: Any) -> bool:
    """True only when provably every row of the partition matches."""
    srv = _srv()
    stats = _as_compiled(stats)
    if expr is None:
        return True
    if isinstance(expr, srv.DetEq):
        art = stats.columns.get(expr.column) if stats else None
        if not isinstance(art, DetArtifact):
            return False
        if expr.negate:
            # Absence proves every row differs; bloom "no" is exact.
            return art.membership(int(expr.token)) is False
        return art.sole_token == int(expr.token)
    if isinstance(expr, srv.DetIn):
        art = stats.columns.get(expr.column) if stats else None
        if not isinstance(art, DetArtifact) or art.tokens is None:
            return False
        return art.tokens <= {int(t) for t in expr.tokens}
    if isinstance(expr, (srv.OreCmp, srv.PlainCmp)):
        kind = "ore" if isinstance(expr, srv.OreCmp) else "plain"
        art = stats.columns.get(expr.column) if stats else None
        if not isinstance(art, RangeArtifact) or art.kind != kind:
            return False
        if expr.op not in _PLAIN_OPS:
            return False
        value = _range_value(art, expr)
        if value is None:
            return False
        return _range_all_match(kind, expr.op, art.lo, art.hi, value)
    if isinstance(expr, srv.FilterAnd):
        return all(all_match(stats, child) for child in expr.children)
    if isinstance(expr, srv.FilterOr):
        return any(all_match(stats, child) for child in expr.children)
    if isinstance(expr, srv.FilterNot):
        return not may_match(stats, expr.child)
    return False  # unknown node: cannot prove anything


# ---------------------------------------------------------------------------
# Table-level entry points
# ---------------------------------------------------------------------------


def survivors(
    zone_maps: Sequence[dict | PartitionStats | None] | None, filt: Any
) -> np.ndarray | None:
    """Boolean keep-mask over partitions, or ``None`` when the index
    cannot prune (no filter, or no partition has statistics)."""
    if filt is None or zone_maps is None:
        return None
    if not any(zone_maps):
        return None
    return np.asarray(
        [may_match(stats, filt) for stats in zone_maps], dtype=bool
    )


def extreme_candidates(
    zone_maps: Sequence[dict | PartitionStats | None] | None,
    aggs: Sequence[Any],
) -> np.ndarray | None:
    """Keep-mask for an *unfiltered* request whose aggregates are all ORE
    min/max: only partitions whose zone-map bound ties the global winner
    can host it, so the tournament skips the rest.  Tie partitions are
    all kept in order, which preserves the exact winning row (and its
    ID) the unpruned merge would pick.  ``None`` when any needed bound
    is missing.
    """
    srv = _srv()
    if zone_maps is None or not aggs:
        return None
    if not all(isinstance(a, srv.OreExtreme) for a in aggs):
        return None
    compiled = [_as_compiled(z) for z in zone_maps]
    keep = np.zeros(len(compiled), dtype=bool)
    for agg in aggs:
        bounds: list[tuple[int, ...]] = []
        for stats in compiled:
            art = stats.columns.get(agg.ore_column) if stats else None
            if not isinstance(art, RangeArtifact) or art.kind != "ore":
                return None  # a partition without bounds could win: no pruning
            bounds.append(art.lo if agg.kind == "min" else art.hi)
        best = bounds[0]
        for bound in bounds[1:]:
            cmp = OreScheme.compare_words(bound, best)
            if (agg.kind == "min" and cmp < 0) or (agg.kind == "max" and cmp > 0):
                best = bound
        for i, bound in enumerate(bounds):
            if OreScheme.compare_words(bound, best) == 0:
                keep[i] = True
    return keep
