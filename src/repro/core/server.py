"""The untrusted Seabed server (paper Section 4.5).

Executes rewritten queries over encrypted tables on the simulated cluster.
Everything here operates on public material only: ciphertext columns,
DET/ORE comparison tokens, and row identifiers.  No key ever reaches this
module.

Supported physical operations:

- filter evaluation over plaintext, DET-token and ORE-token predicates;
- ASHE aggregation: wrapping uint64 sums plus ID-list construction, with
  the ID list encoded (compressed) at the workers by default or at the
  driver for the ablation (Section 4.5, "Reducing server-to-client
  traffic");
- plain and Paillier aggregation for the NoEnc / CryptDB-style baselines;
- ORE min/max via a vectorised pairwise tournament and median via
  quickselect, using only the public Compare;
- group-by with per-group ASHE sums (VB+Diff codec, no ranges -- Section
  4.5) and the optional *group inflation* optimisation that appends a
  pseudo-random suffix to group keys so small result sets still use all
  reducers;
- broadcast hash joins on DET columns, with multiset ID collection for
  build-side ASHE aggregates;
- **zone-map pruning** (:mod:`repro.index`): before dispatching a map
  stage, the per-partition statistics a store-backed table carries are
  consulted and partitions the filter provably cannot match -- or, for
  unfiltered ORE min/max, partitions whose range cannot contain the
  winner -- are never dispatched.  Pruning is conservative (any
  uncertainty keeps the partition) so results stay bit-identical;
  ``StageMetrics.partitions_total``/``partitions_skipped`` record it.
"""

from __future__ import annotations

import itertools
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.crypto import ore as ore_mod
from repro.crypto.kernel import observe_kernel_op
from repro.crypto.prf import MASK64
from repro.engine.cluster import SimulatedCluster
from repro.engine.metrics import JobMetrics
from repro.engine.store import (
    PartitionRef,
    dispatch_payload,
    open_store,
    resolve_partition,
    write_store,
)
from repro.engine.table import Partition, Table
from repro.errors import ExecutionError, StorageError
from repro.idlist import IdList, get_codec
from repro.idlist.codec import encode_groups_vb_diff, encode_multiset
from repro.index import prune
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger, log_event

_U64 = np.uint64

JOIN_IDS_COLUMN = "__join_ids"


# ---------------------------------------------------------------------------
# Filter expressions (token-based; no key material)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlainCmp:
    column: str
    op: str
    value: Any


@dataclass(frozen=True)
class DetEq:
    column: str
    token: int
    negate: bool = False


@dataclass(frozen=True)
class DetIn:
    column: str
    tokens: tuple[int, ...]


@dataclass(frozen=True)
class OreCmp:
    column: str
    op: str
    token: tuple[int, ...]
    nbits: int = 32


@dataclass(frozen=True)
class FilterAnd:
    children: tuple["FilterExpr", ...]


@dataclass(frozen=True)
class FilterOr:
    children: tuple["FilterExpr", ...]


@dataclass(frozen=True)
class FilterNot:
    child: "FilterExpr"


FilterExpr = PlainCmp | DetEq | DetIn | OreCmp | FilterAnd | FilterOr | FilterNot

_PLAIN_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def eval_filter(columns: dict[str, np.ndarray], expr: FilterExpr | None,
                nrows: int) -> np.ndarray | None:
    """Boolean mask (or None for select-all)."""
    if expr is None:
        return None
    if isinstance(expr, PlainCmp):
        return np.asarray(_PLAIN_OPS[expr.op](columns[expr.column], expr.value),
                          dtype=bool)
    if isinstance(expr, DetEq):
        t0 = time.perf_counter() if _obs_metrics.enabled() else 0.0
        mask = columns[expr.column] == _U64(expr.token)
        if t0:
            observe_kernel_op("det", "compare_column",
                              time.perf_counter() - t0, nrows)
        return ~mask if expr.negate else mask
    if isinstance(expr, DetIn):
        col = columns[expr.column]
        t0 = time.perf_counter() if _obs_metrics.enabled() else 0.0
        mask = np.zeros(nrows, dtype=bool)
        for token in expr.tokens:
            mask |= col == _U64(token)
        if t0:
            observe_kernel_op("det", "compare_column",
                              time.perf_counter() - t0, nrows * len(expr.tokens))
        return mask
    if isinstance(expr, OreCmp):
        cipher = columns[expr.column]
        t0 = time.perf_counter() if _obs_metrics.enabled() else 0.0
        cmp = ore_mod.compare_packed_arrays(
            cipher, np.broadcast_to(np.asarray(expr.token, dtype=_U64), cipher.shape)
        )
        if t0:
            observe_kernel_op("ore", "compare_column",
                              time.perf_counter() - t0, nrows)
        return {
            "<": cmp < 0, "<=": cmp <= 0, ">": cmp > 0, ">=": cmp >= 0,
            "=": cmp == 0, "!=": cmp != 0,
        }[expr.op]
    if isinstance(expr, FilterAnd):
        mask = np.ones(nrows, dtype=bool)
        for child in expr.children:
            sub = eval_filter(columns, child, nrows)
            if sub is not None:
                mask &= sub
        return mask
    if isinstance(expr, FilterOr):
        mask = np.zeros(nrows, dtype=bool)
        for child in expr.children:
            sub = eval_filter(columns, child, nrows)
            mask |= np.ones(nrows, dtype=bool) if sub is None else sub
        return mask
    if isinstance(expr, FilterNot):
        sub = eval_filter(columns, expr.child, nrows)
        return np.zeros(nrows, dtype=bool) if sub is None else ~sub
    raise ExecutionError(f"unknown filter node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Aggregation operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AsheSum:
    """Wrapping uint64 sum + encoded ID list."""

    column: str
    alias: str
    codec: str = "seabed"
    multiset: bool = False  # True when the column is join-replicated


@dataclass(frozen=True)
class PlainAgg:
    """NoEnc aggregation; func in sum|count|min|max|sumsq."""

    column: str | None
    func: str
    alias: str


@dataclass(frozen=True)
class PaillierSum:
    """Big-int ciphertext product mod n^2 (public key material only)."""

    column: str
    alias: str
    n_squared: int


@dataclass(frozen=True)
class OreExtreme:
    """min/max via the public ORE Compare; returns the winning row's
    payload ciphertext and row ID so the client can decrypt one value."""

    kind: str  # "min" | "max"
    ore_column: str
    payload_column: str
    alias: str


@dataclass(frozen=True)
class OreMedian:
    """Median row via quickselect on ORE ciphertexts (gathered at driver)."""

    ore_column: str
    payload_column: str
    alias: str


AggOp = AsheSum | PlainAgg | PaillierSum | OreExtreme | OreMedian


@dataclass(frozen=True)
class ServerJoin:
    """Broadcast hash join: probe the query table against a build table."""

    build_table: str
    probe_key_column: str  # physical column on the query table
    build_key_column: str  # physical column on the build table
    payload_columns: tuple[str, ...]  # build-side physical columns to attach


@dataclass(frozen=True)
class ServerQuery:
    table: str
    aggs: tuple[AggOp, ...]
    filter: FilterExpr | None = None
    join: ServerJoin | None = None
    group_by: str | None = None
    group_codec: str = "groupby"
    inflation: int = 1
    compress_at: str = "worker"  # "worker" | "driver" (ablation)


@dataclass
class ServerResponse:
    """What travels back to the proxy."""

    kind: str  # "flat" | "grouped"
    flat: dict[str, Any] = field(default_factory=dict)
    groups: list[tuple[int, int, dict[str, Any]]] = field(default_factory=list)
    metrics: JobMetrics = field(default_factory=JobMetrics)
    payload_bytes: int = 0


# -- payload helpers ----------------------------------------------------------


def _payload_nbytes(payload: Any) -> int:
    tag = payload[0]
    if tag == "ashe":
        return 8 + sum(len(c) for c in payload[2])
    if tag == "plain":
        return 8
    if tag == "paillier":
        return (int(payload[1]).bit_length() + 7) // 8
    if tag == "extreme":
        return 8 + 8 + 8 * len(payload[3])
    return 8


# ---------------------------------------------------------------------------
# Stage task bodies
#
# These are the units of work the cluster's execution backend dispatches.
# They are deliberately top-level functions taking (Partition, query-slice)
# arguments -- never closures over server state -- so the ``processes``
# backend can pickle them to pool workers, exactly as Spark serialises its
# task closures to executors.  Everything they touch is public material:
# ciphertexts, comparison tokens, and row IDs.
#
# Store-backed partitions arrive as PartitionRef descriptors (the dispatch
# payload is a path + index, not pickled columns); resolve_partition maps
# the worker's local slice through the per-process reader cache.
# ---------------------------------------------------------------------------


def scan_map_task(
    part: Partition | PartitionRef, columns: tuple[str, ...], filt: FilterExpr | None
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Filtered projection of one partition: selected columns + row IDs."""
    part = resolve_partition(part)
    mask = eval_filter(part.columns, filt, part.nrows)
    ids = np.arange(part.nrows, dtype=_U64) + _U64(part.start_id)
    if mask is None:
        return {c: part.column(c) for c in columns}, ids
    return {c: part.column(c)[mask] for c in columns}, ids[mask]


def probe_join(
    part: Partition, q: ServerQuery, build: dict[str, Any]
) -> tuple[dict[str, np.ndarray], np.ndarray] | None:
    """Probe one partition against the broadcast build index.

    Returns (joined columns, probe-row selector) or None if empty.
    """
    join = q.join
    assert join is not None
    probe_keys = part.column(join.probe_key_column)
    index = build["index"]
    probe_rows: list[int] = []
    build_rows: list[int] = []
    for pos, key in enumerate(probe_keys.tolist()):
        for b in index.get(key, ()):
            probe_rows.append(pos)
            build_rows.append(b)
    if not probe_rows:
        return None
    probe_idx = np.asarray(probe_rows, dtype=np.int64)
    build_idx = np.asarray(build_rows, dtype=np.int64)
    columns = {name: arr[probe_idx] for name, arr in part.columns.items()}
    for name, arr in build["payloads"].items():
        columns[name] = arr[build_idx]
    columns[JOIN_IDS_COLUMN] = build["ids"][build_idx]
    return columns, probe_idx


def partition_view(
    part: Partition, q: ServerQuery, build: dict[str, Any] | None
) -> tuple[dict[str, np.ndarray], np.ndarray] | None:
    """Columns + global row IDs after the optional join."""
    if build is None:
        ids = np.arange(part.nrows, dtype=_U64) + _U64(part.start_id)
        return dict(part.columns), ids
    joined = probe_join(part, q, build)
    if joined is None:
        return None
    columns, probe_idx = joined
    ids = probe_idx.astype(_U64) + _U64(part.start_id)
    return columns, ids


def flat_map_task(
    part: Partition | PartitionRef, q: ServerQuery, build: dict[str, Any] | None
) -> dict[str, Any] | None:
    """Per-partition partial aggregates for a flat (ungrouped) query."""
    view = partition_view(resolve_partition(part), q, build)
    if view is None:
        return None
    columns, row_ids = view
    nrows = len(row_ids)
    mask = eval_filter(columns, q.filter, nrows)
    partials: dict[str, Any] = {}
    for agg in q.aggs:
        partials[agg.alias] = _flat_partial(agg, columns, mask, row_ids, q)
    return partials


def grouped_map_task(
    part: Partition | PartitionRef, q: ServerQuery, build: dict[str, Any] | None
) -> dict[tuple[int, int], dict[str, Any]]:
    """Per-partition (group key, suffix) -> partial aggregates."""
    inflation = max(1, q.inflation)
    view = partition_view(resolve_partition(part), q, build)
    if view is None:
        return {}
    columns, row_ids = view
    nrows = len(row_ids)
    mask = eval_filter(columns, q.filter, nrows)
    sel = np.arange(nrows) if mask is None else np.flatnonzero(mask)
    if sel.size == 0:
        return {}
    keys = columns[q.group_by][sel]
    keys = keys.astype(_U64, copy=False)
    ids = row_ids[sel]
    # Group-by optimisation (Section 4.5): append a pseudo-random
    # suffix to multiply the number of reduce keys.
    suffix = (ids % _U64(inflation)).astype(np.int64) if inflation > 1 else None
    if suffix is None:
        order = np.argsort(keys, kind="stable")
        sorted_suffix = np.zeros(sel.size, dtype=np.int64)
    else:
        order = np.lexsort((suffix, keys))
        sorted_suffix = suffix[order]
    sorted_keys = keys[order]
    sorted_ids = ids[order]
    sorted_sel = sel[order]
    if sorted_keys.size == 0:
        return {}
    new_group = np.empty(sorted_keys.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = (sorted_keys[1:] != sorted_keys[:-1]) | (
        sorted_suffix[1:] != sorted_suffix[:-1]
    )
    starts = np.flatnonzero(new_group)
    out: dict[tuple[int, int], dict[str, Any]] = {}
    bounds = np.append(starts, sorted_keys.size)
    group_partials: dict[str, list[Any]] = {
        agg.alias: _group_partials(
            agg, columns, sorted_sel, sorted_ids, starts, bounds, q
        )
        for agg in q.aggs
    }
    for g, start in enumerate(starts.tolist()):
        key = int(sorted_keys[start])
        sfx = int(sorted_suffix[start])
        out[(key, sfx)] = {
            agg.alias: group_partials[agg.alias][g] for agg in q.aggs
        }
    return out


def group_reduce_task(
    shard: dict[tuple[int, int], list[dict[str, Any]]], aggs: tuple[AggOp, ...]
) -> list[tuple[int, int, dict[str, Any]]]:
    """Merge one reducer's shard of (key, suffix) partials."""
    merged: list[tuple[int, int, dict[str, Any]]] = []
    for key, entries in shard.items():
        per_agg = {}
        for agg in aggs:
            pieces = [e[agg.alias] for e in entries if e[agg.alias] is not None]
            per_agg[agg.alias] = merge_payloads(agg, pieces)
        merged.append((key[0], key[1], per_agg))
    return merged


class SeabedServer:
    """Holds registered encrypted tables and executes server queries.

    ``pruning`` enables zone-map partition pruning for store-backed
    tables (on by default; benchmarks and equivalence tests flip it to
    measure and verify the unpruned path).
    """

    def __init__(self, cluster: SimulatedCluster, pruning: bool = True):
        self.cluster = cluster
        self.pruning = pruning
        self._tables: dict[str, Table] = {}
        # name -> (source zone_maps list, compiled form).  Identity-keyed:
        # re-registering a table swaps in a new zone_maps list, which
        # invalidates the compiled entry automatically.
        self._zone_compiled: dict[str, tuple[Any, list | None]] = {}
        # Tables served by a shard coordinator (repro.shard) instead of a
        # locally registered Table; execute()/scan() delegate by name, so
        # the whole prepared-query/translation layer above is untouched.
        self._sharded: dict[str, Any] = {}
        self._spill_seq = itertools.count()

    def register(self, table: Table) -> None:
        self._tables[table.name] = self._spill_if_needed(table)

    def _spill_if_needed(self, table: Table) -> Table:
        """Give in-memory tables an mmap store backing under the
        ``processes`` backend.

        Process-pool workers resolve ``PartitionRef(path, index,
        generation)`` against their own reader cache, so stage dispatch
        ships a few dozen bytes per partition instead of pickled
        ciphertext columns -- the zero-copy contract store-backed tables
        already enjoy.  Spilling is best-effort: a table with columns the
        store cannot hold stays in memory (and pays the pickling cost).
        """
        cfg = self.cluster.config
        if cfg.backend != "processes" or not cfg.spill_to_store:
            return table
        if not table.partitions or all(p.ref is not None for p in table.partitions):
            return table
        path = os.path.join(
            self.cluster.scratch_dir(),
            f"spill-{table.name}-{next(self._spill_seq)}",
        )
        try:
            write_store(table, path)
        except StorageError:
            return table
        return open_store(path)

    def unregister(self, name: str) -> None:
        """Drop a registered table (and its compiled zone maps), if any."""
        self._tables.pop(name, None)
        self._zone_compiled.pop(name, None)

    def register_sharded(self, name: str, coordinator: Any) -> None:
        """Route queries against ``name`` to a shard coordinator."""
        self._sharded[name] = coordinator

    def sharded(self, name: str) -> Any | None:
        """The shard coordinator serving ``name``, if any."""
        return self._sharded.get(name)

    def append(self, table: Table) -> None:
        """Append a new upload batch to an existing table."""
        existing = self._tables.get(table.name)
        if existing is None:
            self.register(table)
            return
        self._tables[table.name] = Table(
            table.name, existing.partitions + table.partitions
        )

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise ExecutionError(f"no table {name!r} registered on the server") from None

    def get(self, name: str) -> Table | None:
        """The registered table, or ``None`` when nothing was uploaded yet."""
        return self._tables.get(name)

    def storage_bytes(self, name: str) -> int:
        return self.table(name).memory_bytes()

    # -- execution -------------------------------------------------------------

    def execute(self, q: ServerQuery) -> ServerResponse:
        with obs_trace.span("server:execute", table=q.table) as sp:
            response = self._execute_query(q)
        metrics = response.metrics
        if sp is not None and metrics is not None:
            sp.set(server_s=metrics.server_time,
                   result_bytes=metrics.result_bytes)
        self._maybe_log_slow(q, metrics)
        return response

    def _execute_query(self, q: ServerQuery) -> ServerResponse:
        coordinator = self._sharded.get(q.table)
        if coordinator is not None:
            return coordinator.execute(q)
        table = self.table(q.table)
        metrics = self.cluster.new_job()
        build = self._prepare_join(q, metrics)
        parts, skipped = self._surviving_partitions(table, q)
        if q.group_by is None:
            response = self._execute_flat(q, parts, skipped, build, metrics)
        else:
            response = self._execute_grouped(q, parts, skipped, build, metrics)
        response.metrics = metrics
        self.cluster.account_result_transfer(metrics, response.payload_bytes)
        return response

    def _maybe_log_slow(self, q: ServerQuery, metrics: JobMetrics | None) -> None:
        """Emit the structured slow-query event when the job's simulated
        server time crosses ``ClusterConfig.slow_query_s``.

        Logged fields are operational only -- table name, timings, stage
        and byte counts -- never tokens, ciphertexts, or plaintexts.
        """
        threshold = self.cluster.config.slow_query_s
        if threshold is None or metrics is None:
            return
        server_s = metrics.server_time
        if server_s < threshold:
            return
        log_event(
            "slow_query",
            level=logging.WARNING,
            logger=get_logger("slow"),
            table=q.table,
            server_s=round(server_s, 6),
            threshold_s=threshold,
            stages=len(metrics.stages),
            result_bytes=metrics.result_bytes,
            grouped=q.group_by is not None,
            filtered=q.filter is not None,
        )
        _obs_metrics.get_registry().counter(
            "seabed_slow_queries_total",
            "Queries whose server time crossed ClusterConfig.slow_query_s.",
            labelnames=("table",),
        ).inc(1.0, table=q.table)

    # -- zone-map pruning --------------------------------------------------------

    def _zone_maps(self, table: Table) -> list | None:
        """The table's zone maps in compiled form, cached per table name
        and invalidated by list identity when a table is re-registered."""
        if table.zone_maps is None:
            return None
        cached = self._zone_compiled.get(table.name)
        if cached is not None and cached[0] is table.zone_maps:
            return cached[1]
        compiled = prune.compile_zone_maps(table.zone_maps)
        self._zone_compiled[table.name] = (table.zone_maps, compiled)
        return compiled

    def _filter_survivors(
        self, table: Table, filt: FilterExpr | None
    ) -> tuple[list[Partition], int]:
        """Partitions the filter could match, plus how many were pruned.

        Consults the table's zone maps (store-backed tables only);
        in-memory tables and disabled pruning fall through to a full
        dispatch.  Conservative by construction: any partition the index
        cannot *prove* irrelevant is kept, so responses are bit-identical
        to an unpruned run.
        """
        parts = table.partitions
        if not self.pruning:
            return parts, 0
        keep = prune.survivors(self._zone_maps(table), filt)
        if keep is None:
            return parts, 0
        kept = [p for p, k in zip(parts, keep) if k]
        return kept, len(parts) - len(kept)

    def _surviving_partitions(
        self, table: Table, q: ServerQuery
    ) -> tuple[list[Partition], int]:
        """Filter pruning plus the unfiltered ORE min/max short-circuit:
        a request whose aggregates are all ORE extremes only needs the
        partitions whose zone-map bound ties the global winner."""
        parts, skipped = self._filter_survivors(table, q.filter)
        if (
            skipped == 0 and self.pruning and table.zone_maps is not None
            and q.filter is None and q.join is None and q.group_by is None
        ):
            keep = prune.extreme_candidates(self._zone_maps(table), q.aggs)
            if keep is not None:
                parts = [p for p, k in zip(table.partitions, keep) if k]
                skipped = len(table.partitions) - len(parts)
        return parts, skipped

    def scan(
        self,
        table_name: str,
        columns: Sequence[str],
        filt: FilterExpr | None = None,
    ) -> ServerResponse:
        """Filtered projection: return encrypted rows plus their IDs.

        Used by scan-style queries (Big Data Benchmark query 1); the proxy
        decrypts the returned ciphertext columns row-by-row.
        """
        coordinator = self._sharded.get(table_name)
        if coordinator is not None:
            return coordinator.scan(table_name, columns, filt)
        table = self.table(table_name)
        metrics = self.cluster.new_job()
        columns = tuple(columns)
        kept, skipped = self._filter_survivors(table, filt)
        calls = [
            (dispatch_payload(part), columns, filt) for part in kept
        ]
        parts, stage = self.cluster.map_stage("scan", scan_map_task, calls, metrics)
        stage.partitions_total = len(table.partitions)
        stage.partitions_skipped = skipped

        def merge():
            if not parts:
                # Every partition was pruned: an empty result with the
                # right dtypes, sliced from the first stored partition.
                template = table.partitions[0]
                cols = {c: template.column(c)[:0] for c in columns}
                return cols, np.empty(0, dtype=_U64)
            cols = {
                c: np.concatenate([p[0][c] for p in parts]) for c in columns
            }
            ids = np.concatenate([p[1] for p in parts])
            return cols, ids

        cols, ids = self.cluster.run_driver("scan-merge", merge, metrics)
        payload_bytes = int(ids.nbytes) + sum(
            a.nbytes if a.dtype != object else 256 * len(a) for a in cols.values()
        )
        response = ServerResponse(kind="scan", payload_bytes=payload_bytes)
        response.flat = {"columns": cols, "ids": ids}
        response.metrics = metrics
        self.cluster.account_result_transfer(metrics, payload_bytes)
        return response

    # -- join build ------------------------------------------------------------

    def _prepare_join(
        self, q: ServerQuery, metrics: JobMetrics
    ) -> dict[str, Any] | None:
        if q.join is None:
            return None
        join = q.join
        build_table = self.table(join.build_table)

        def build_index() -> dict[str, Any]:
            keys = build_table.column(join.build_key_column)
            payloads = {c: build_table.column(c) for c in join.payload_columns}
            ids = np.concatenate(
                [
                    np.arange(p.nrows, dtype=_U64) + _U64(p.start_id)
                    for p in build_table.partitions
                ]
            )
            index: dict[int, list[int]] = {}
            for pos, key in enumerate(keys.tolist()):
                index.setdefault(key, []).append(pos)
            return {"index": index, "payloads": payloads, "ids": ids}

        build = self.cluster.run_driver("join-build", build_index, metrics)
        # Broadcasting the build side to every worker costs shuffle volume.
        build_bytes = 16 * len(build["index"]) + sum(
            a.nbytes if a.dtype != object else 256 * len(a)
            for a in build["payloads"].values()
        )
        self.cluster.account_shuffle(metrics, build_bytes)
        return build

    # -- flat aggregation -------------------------------------------------------

    def _execute_flat(
        self,
        q: ServerQuery,
        parts: list[Partition],
        skipped: int,
        build: dict[str, Any] | None,
        metrics: JobMetrics,
    ) -> ServerResponse:
        # Under the processes backend, q and the broadcast build side are
        # pickled once per partition call -- the cost a real cluster pays
        # as broadcast volume (already accounted in _prepare_join).  Store-
        # backed partitions dispatch as refs; workers map them locally.
        # ``parts`` already excludes zone-map-pruned partitions.
        calls = [(dispatch_payload(part), q, build) for part in parts]
        partials, stage = self.cluster.map_stage(
            "aggregate", flat_map_task, calls, metrics
        )
        stage.partitions_total = len(parts) + skipped
        stage.partitions_skipped = skipped
        partials = [p for p in partials if p is not None]

        def merge() -> dict[str, Any]:
            out: dict[str, Any] = {}
            for agg in q.aggs:
                pieces = [p[agg.alias] for p in partials if p[agg.alias] is not None]
                out[agg.alias] = merge_payloads(agg, pieces)
            return out

        flat = self.cluster.run_driver("merge", merge, metrics)
        payload_bytes = sum(
            _payload_nbytes(v) for v in flat.values() if v is not None
        )
        return ServerResponse(kind="flat", flat=flat, payload_bytes=payload_bytes)

    # -- shard-worker partial aggregation ---------------------------------------

    def execute_partial(self, q: ServerQuery) -> ServerResponse:
        """Execute ``q`` but stop before the final merge (shard workers).

        A shard worker runs this against its local slice of the table and
        returns per-aggregate *piece lists*; the coordinator concatenates
        the lists from every shard and applies the one final
        :func:`merge_payloads` per aggregate, so the merged result is
        bit-identical to single-store execution.  Associative payloads
        (wrapping ASHE sums, plain folds, Paillier products, ORE local
        winners) are pre-merged node-side to at most one piece -- the
        node-side partial aggregation of the scatter-gather design --
        while gather-style payloads (:data:`_GATHER_TAGS`: medians and
        the ASHE raw-id ablation), whose final merge is not associative,
        are shipped raw.

        Grouped queries fall through to :meth:`execute`: every groupable
        partial is associative, so per-shard group results merge exactly
        coordinator-side (duplicate keys are combined there).
        """
        if q.group_by is not None:
            return self.execute(q)
        table = self.table(q.table)
        metrics = self.cluster.new_job()
        build = self._prepare_join(q, metrics)
        parts, skipped = self._surviving_partitions(table, q)
        calls = [(dispatch_payload(part), q, build) for part in parts]
        partials, stage = self.cluster.map_stage(
            "aggregate", flat_map_task, calls, metrics
        )
        stage.partitions_total = len(parts) + skipped
        stage.partitions_skipped = skipped
        partials = [p for p in partials if p is not None]

        def premerge() -> dict[str, list[Any]]:
            out: dict[str, list[Any]] = {}
            for agg in q.aggs:
                pieces = [
                    p[agg.alias] for p in partials if p[agg.alias] is not None
                ]
                if pieces and pieces[0][0] not in _GATHER_TAGS:
                    pieces = [merge_payloads(agg, pieces)]
                out[agg.alias] = pieces
            return out

        flat = self.cluster.run_driver("partial-merge", premerge, metrics)
        payload_bytes = sum(
            _payload_nbytes(v)
            for pieces in flat.values()
            for v in pieces
            if v is not None
        )
        response = ServerResponse(
            kind="partial", flat=flat, payload_bytes=payload_bytes
        )
        response.metrics = metrics
        # The shard's "client" is the coordinator: gathering the partials
        # crosses the cluster network once per shard.
        self.cluster.account_result_transfer(metrics, payload_bytes)
        return response

    # -- grouped aggregation ------------------------------------------------------

    def _execute_grouped(
        self,
        q: ServerQuery,
        parts: list[Partition],
        skipped: int,
        build: dict[str, Any] | None,
        metrics: JobMetrics,
    ) -> ServerResponse:
        calls = [(dispatch_payload(part), q, build) for part in parts]
        map_out, stage = self.cluster.map_stage(
            "group-map", grouped_map_task, calls, metrics
        )
        stage.partitions_total = len(parts) + skipped
        stage.partitions_skipped = skipped

        # Shuffle: every (key, suffix) partial crosses the network once.
        shuffle_bytes = 0
        for partial_map in map_out:
            for per_agg in partial_map.values():
                shuffle_bytes += 9 + sum(
                    _payload_nbytes(v) for v in per_agg.values() if v is not None
                )
        total_keys = len({k for partial_map in map_out for k in partial_map})
        num_reducers = max(1, min(self.cluster.config.cores, total_keys))
        # Few distinct keys mean few active receivers: the bandwidth
        # bottleneck group inflation exists to fix (Section 4.5).
        self.cluster.account_shuffle_parallel(metrics, shuffle_bytes, num_reducers)

        def shard() -> list[dict[tuple[int, int], list[dict[str, Any]]]]:
            # The shuffle partitioner: each (key, suffix) entry is routed
            # to its reducer exactly once -- O(total entries).
            shards: list[dict[tuple[int, int], list[dict[str, Any]]]] = [
                {} for _ in range(num_reducers)
            ]
            for partial_map in map_out:
                for key, entry in partial_map.items():
                    shards[hash(key) % num_reducers].setdefault(key, []).append(entry)
            return shards

        shards = self.cluster.run_driver("shuffle-partition", shard, metrics)

        reduce_calls = [(shards[r], q.aggs) for r in range(num_reducers)]
        reduced, _ = self.cluster.map_stage(
            "group-reduce", group_reduce_task, reduce_calls, metrics
        )
        groups = [entry for shard in reduced for entry in shard]
        payload_bytes = sum(
            9 + sum(_payload_nbytes(v) for v in per_agg.values() if v is not None)
            for _, _, per_agg in groups
        )
        return ServerResponse(kind="grouped", groups=groups, payload_bytes=payload_bytes)


# ---------------------------------------------------------------------------
# Per-operator partials and merges
# ---------------------------------------------------------------------------


def _flat_partial(
    agg: AggOp,
    columns: dict[str, np.ndarray],
    mask: np.ndarray | None,
    row_ids: np.ndarray,
    q: ServerQuery,
) -> Any:
    if isinstance(agg, AsheSum):
        cipher = columns[agg.column]
        selected = cipher if mask is None else cipher[mask]
        total = int(np.add.reduce(selected)) & MASK64 if selected.size else 0
        if agg.multiset:
            ids_source = columns[JOIN_IDS_COLUMN]
            arr = ids_source if mask is None else ids_source[mask]
            if arr.size == 0:
                return None
            return ("ashe", total, [encode_multiset(arr)], True)
        ids = _ids_from_mask(row_ids, mask)
        if ids.is_empty():
            return None
        if q.compress_at == "driver":
            return ("ashe_raw", total, ids)
        return ("ashe", total, [get_codec(agg.codec).encode(ids)], False)
    if isinstance(agg, PlainAgg):
        return _plain_partial(agg, columns, mask)
    if isinstance(agg, PaillierSum):
        cipher = columns[agg.column]
        selected = cipher if mask is None else cipher[mask]
        if len(selected) == 0:
            return None
        total = 1
        n2 = agg.n_squared
        for c in selected.tolist():
            total = (total * c) % n2
        return ("paillier", total)
    if isinstance(agg, OreExtreme):
        sel = (
            np.arange(len(row_ids)) if mask is None else np.flatnonzero(mask)
        )
        if sel.size == 0:
            return None
        cipher = columns[agg.ore_column][sel]
        winner = _ore_tournament(cipher, agg.kind)
        row = int(sel[winner])
        payload = columns[agg.payload_column][row]
        return (
            "extreme",
            _coerce_payload(payload),
            int(row_ids[row]),
            tuple(int(w) for w in cipher[winner]),
        )
    if isinstance(agg, OreMedian):
        sel = (
            np.arange(len(row_ids)) if mask is None else np.flatnonzero(mask)
        )
        if sel.size == 0:
            return None
        return (
            "median_gather",
            columns[agg.ore_column][sel],
            columns[agg.payload_column][sel],
            row_ids[sel],
        )
    raise ExecutionError(f"unknown aggregation op {type(agg).__name__}")


def _coerce_payload(payload: Any) -> Any:
    if isinstance(payload, np.generic):
        return payload.item()
    return payload


def _plain_partial(
    agg: PlainAgg, columns: dict[str, np.ndarray], mask: np.ndarray | None
) -> Any:
    if agg.func == "count":
        if mask is None:
            nrows = len(next(iter(columns.values())))
            return ("plain", nrows)
        return ("plain", int(mask.sum()))
    values = columns[agg.column]
    selected = values if mask is None else values[mask]
    if len(selected) == 0:
        return None
    if agg.func == "sum":
        return ("plain", int(selected.sum()))
    if agg.func == "sumsq":
        sel64 = selected.astype(np.int64)
        return ("plain", int((sel64 * sel64).sum()))
    if agg.func == "min":
        return ("plain", _coerce_payload(selected.min()))
    if agg.func == "max":
        return ("plain", _coerce_payload(selected.max()))
    if agg.func == "median":
        return ("median_gather_plain", selected)
    raise ExecutionError(f"unknown plain aggregation {agg.func!r}")


def _ids_from_mask(row_ids: np.ndarray, mask: np.ndarray | None) -> IdList:
    """Row IDs are globally contiguous per partition unless a join
    reshuffled them; handle both."""
    selected = row_ids if mask is None else row_ids[mask]
    if selected.size == 0:
        return IdList.empty()
    if selected.size > 1 and bool(np.any(selected[1:] <= selected[:-1])):
        selected = np.unique(selected)
    return IdList.from_ids(selected)


def _ore_tournament(cipher: np.ndarray, kind: str) -> int:
    """Index of the min/max row (the shared vectorised kernel tournament)."""
    return ore_mod.argextreme_packed(cipher, kind)


def _ore_quickselect(
    cipher: np.ndarray, payloads: np.ndarray, row_ids: np.ndarray, k: int
) -> tuple[Any, int]:
    """k-th smallest (0-based) by ORE order; returns (payload, row_id)."""
    while True:
        n = cipher.shape[0]
        if n == 1:
            return _coerce_payload(payloads[0]), int(row_ids[0])
        pivot = cipher[n // 2]
        cmp = ore_mod.compare_packed_arrays(
            cipher, np.broadcast_to(pivot, cipher.shape)
        )
        less = cmp < 0
        equal = cmp == 0
        n_less = int(less.sum())
        n_equal = int(equal.sum())
        if k < n_less:
            keep = less
        elif k < n_less + n_equal:
            # The k-th element ties with the pivot; all candidates in the
            # equal partition are interchangeable (identical plaintexts).
            first = int(np.flatnonzero(equal)[0])
            return _coerce_payload(payloads[first]), int(row_ids[first])
        else:
            keep = cmp > 0
            k -= n_less + n_equal
        cipher = cipher[keep]
        payloads = payloads[keep]
        row_ids = row_ids[keep]


# Payload tags whose final merge is NOT associative: merging a subset
# changes the tag (gather -> final), so shard workers must ship these
# pieces raw and let the coordinator merge exactly once.  Everything else
# ("ashe", "plain" folds, "paillier", "extreme") pre-merges node-side.
_GATHER_TAGS = frozenset({"ashe_raw", "median_gather", "median_gather_plain"})


def merge_payloads(agg: AggOp, pieces: list[Any]) -> Any:
    """Merge partial payloads of one aggregate (driver- and client-side)."""
    if not pieces:
        return None
    if isinstance(agg, AsheSum):
        if pieces and pieces[0][0] == "ashe_raw":
            # Driver-side compression ablation: union + encode here.
            total = 0
            ids = IdList.union_all([p[2] for p in pieces])
            for p in pieces:
                total = (total + p[1]) & MASK64
            return ("ashe", total, [get_codec(agg.codec).encode(ids)], False)
        total = 0
        chunks: list[bytes] = []
        multiset = False
        for p in pieces:
            total = (total + p[1]) & MASK64
            chunks.extend(p[2])
            multiset = multiset or p[3]
        return ("ashe", total, chunks, multiset)
    if isinstance(agg, PlainAgg):
        if pieces[0][0] == "median_gather_plain":
            values = np.concatenate([p[1] for p in pieces])
            return ("plain", float(np.median(values)))
        values = [p[1] for p in pieces]
        if agg.func in ("sum", "sumsq", "count"):
            return ("plain", sum(values))
        if agg.func == "min":
            return ("plain", min(values))
        if agg.func == "max":
            return ("plain", max(values))
        raise ExecutionError(f"cannot merge plain aggregation {agg.func!r}")
    if isinstance(agg, PaillierSum):
        total = 1
        for p in pieces:
            total = (total * p[1]) % agg.n_squared
        return ("paillier", total)
    if isinstance(agg, OreExtreme):
        best = pieces[0]
        for p in pieces[1:]:
            cmp = ore_mod.OreScheme.compare_words(p[3], best[3])
            if (agg.kind == "max" and cmp > 0) or (agg.kind == "min" and cmp < 0):
                best = p
        return ("extreme", best[1], best[2], best[3])
    if isinstance(agg, OreMedian):
        cipher = np.vstack([p[1] for p in pieces])
        payloads = np.concatenate([p[2] for p in pieces])
        row_ids = np.concatenate([p[3] for p in pieces])
        k = (cipher.shape[0] - 1) // 2
        payload, row = _ore_quickselect(cipher, payloads, row_ids, k)
        return ("extreme", _coerce_payload(payload), row, ())
    raise ExecutionError(f"unknown aggregation op {type(agg).__name__}")


def _group_partials(
    agg: AggOp,
    columns: dict[str, np.ndarray],
    sorted_sel: np.ndarray,
    sorted_ids: np.ndarray,
    starts: np.ndarray,
    bounds: np.ndarray,
    q: ServerQuery,
) -> list[Any]:
    """Per-group partials, vectorised where the operator allows."""
    ngroups = len(starts)
    if isinstance(agg, AsheSum):
        cipher = columns[agg.column][sorted_sel]
        sums = np.add.reduceat(cipher, starts) if cipher.size else np.empty(0, _U64)
        out: list[Any] = []
        if agg.multiset:
            join_ids = columns[JOIN_IDS_COLUMN][sorted_sel]
            for g in range(ngroups):
                lo, hi = int(bounds[g]), int(bounds[g + 1])
                out.append(
                    ("ashe", int(sums[g]) & MASK64,
                     [encode_multiset(join_ids[lo:hi])], True)
                )
            return out
        # Vectorised VB+Diff for every group at once (Section 4.5's
        # group-by codec), sliced per group from one shared stream.
        chunks = encode_groups_vb_diff(sorted_ids, starts, bounds)
        sums_list = (sums & _U64(MASK64)).tolist()
        return [
            ("ashe", sums_list[g], [chunks[g]], False) for g in range(ngroups)
        ]
    if isinstance(agg, PlainAgg):
        if agg.func == "count":
            return [("plain", int(bounds[g + 1] - bounds[g])) for g in range(ngroups)]
        values = columns[agg.column][sorted_sel]
        if agg.func == "sum":
            sums = np.add.reduceat(values, starts)
            return [("plain", int(sums[g])) for g in range(ngroups)]
        if agg.func == "sumsq":
            v64 = values.astype(np.int64)
            sums = np.add.reduceat(v64 * v64, starts)
            return [("plain", int(sums[g])) for g in range(ngroups)]
        if agg.func == "min":
            mins = np.minimum.reduceat(values, starts)
            return [("plain", _coerce_payload(mins[g])) for g in range(ngroups)]
        if agg.func == "max":
            maxs = np.maximum.reduceat(values, starts)
            return [("plain", _coerce_payload(maxs[g])) for g in range(ngroups)]
        raise ExecutionError(f"plain {agg.func!r} is not groupable")
    if isinstance(agg, PaillierSum):
        cipher = columns[agg.column][sorted_sel]
        out = []
        n2 = agg.n_squared
        for g in range(ngroups):
            lo, hi = int(bounds[g]), int(bounds[g + 1])
            total = 1
            for c in cipher[lo:hi].tolist():
                total = (total * c) % n2
            out.append(("paillier", total))
        return out
    raise ExecutionError(
        f"{type(agg).__name__} is not supported inside GROUP BY"
    )
