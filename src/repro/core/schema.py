"""Plaintext schemas and encrypted-schema plans.

The user describes their table with :class:`TableSchema` (column types,
sensitivity flags, and optional value statistics for enhanced SPLASHE).
The planner turns that plus a sample query set into an
:class:`EncryptedSchema`: one :class:`ColumnPlan` per plaintext column
saying which scheme protects it and which physical (server-side) columns
carry its ciphertexts.

Naming convention for physical columns: ``revenue__ashe``,
``revenue__sq__ashe``, ``country__det``, ``ts__ore``,
``salary@country@3__ashe`` (measure ``salary`` splayed for code 3 of
dimension ``country``), ``country@3__ind`` (indicator), ``...@oth...`` for
the enhanced-SPLASHE catch-all columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from repro.errors import PlanningError


class Sensitivity(Enum):
    PUBLIC = "public"
    SENSITIVE = "sensitive"


@dataclass
class ColumnSpec:
    """One plaintext column plus the statistics the planner may use.

    ``distinct_values`` (the domain) enables SPLASHE; ``value_counts``
    (expected frequency distribution) enables *enhanced* SPLASHE
    (Section 3.4 requires knowing the distribution, not exact counts).
    ``max_abs`` lets the planner verify 64-bit aggregation headroom;
    ``nbits`` sizes the ORE domain for range-filtered columns.
    """

    name: str
    dtype: str = "int"  # "int" | "str"
    sensitive: bool = False
    distinct_values: list[Any] | None = None
    value_counts: Mapping[Any, int] | None = None
    max_abs: int | None = None
    nbits: int = 32

    def __post_init__(self) -> None:
        if self.dtype not in ("int", "str"):
            raise PlanningError(f"column {self.name!r}: dtype must be int or str")
        if self.value_counts is not None and self.distinct_values is None:
            self.distinct_values = list(self.value_counts)

    @property
    def cardinality(self) -> int | None:
        return None if self.distinct_values is None else len(self.distinct_values)


@dataclass
class TableSchema:
    name: str
    columns: list[ColumnSpec]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise PlanningError(f"duplicate column names in table {self.name!r}")

    def column(self, name: str) -> ColumnSpec:
        for c in self.columns:
            if c.name == name:
                return c
        raise PlanningError(
            f"table {self.name!r} has no column {name!r}; "
            f"available: {[c.name for c in self.columns]}"
        )

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]


# ---------------------------------------------------------------------------
# Column plans (the encrypted schema)
# ---------------------------------------------------------------------------


@dataclass
class PlainPlan:
    """Non-sensitive column stored in the clear."""

    column: str
    kind: str = field(default="plain", init=False)

    def physical_columns(self) -> list[str]:
        return [self.column]

    def physical_schemes(self) -> dict[str, str]:
        return {self.column: "plain"}


@dataclass
class AshePlan:
    """Measure encrypted with ASHE.

    ``squares_column`` carries client-side-squared values for variance
    (CPre); ``ore_column``/``det_column`` let the measure also serve as a
    filter or min/max target.
    """

    column: str
    cipher_column: str
    squares_column: str | None = None
    ore_column: str | None = None
    det_column: str | None = None
    kind: str = field(default="ashe", init=False)

    def physical_columns(self) -> list[str]:
        extras = [self.squares_column, self.ore_column, self.det_column]
        return [self.cipher_column] + [c for c in extras if c]

    def physical_schemes(self) -> dict[str, str]:
        return _measure_schemes(self, "ashe")


@dataclass
class PaillierPlan:
    """Measure encrypted with Paillier (the CryptDB/Monomi baseline mode)."""

    column: str
    cipher_column: str
    squares_column: str | None = None
    ore_column: str | None = None
    det_column: str | None = None
    kind: str = field(default="paillier", init=False)

    def physical_columns(self) -> list[str]:
        extras = [self.squares_column, self.ore_column, self.det_column]
        return [self.cipher_column] + [c for c in extras if c]

    def physical_schemes(self) -> dict[str, str]:
        return _measure_schemes(self, "paillier")


@dataclass
class DetPlan:
    """Dimension under deterministic encryption (joins, or SPLASHE fallback)."""

    column: str
    cipher_column: str
    dtype: str
    join_group: str | None = None  # columns sharing a key + dictionary
    kind: str = field(default="det", init=False)

    def physical_columns(self) -> list[str]:
        return [self.cipher_column]

    def physical_schemes(self) -> dict[str, str]:
        return {self.cipher_column: "det"}


@dataclass
class OrePlan:
    """Dimension (or min/max measure) under order-revealing encryption."""

    column: str
    cipher_column: str
    nbits: int
    kind: str = field(default="ore", init=False)

    def physical_columns(self) -> list[str]:
        return [self.cipher_column]

    def physical_schemes(self) -> dict[str, str]:
        return {self.cipher_column: "ore"}


@dataclass
class SplasheBasicPlan:
    """Basic SPLASHE (Section 3.3): d indicator columns, and for every
    measure aggregated under this dimension, d splayed measure columns."""

    column: str
    values: list[Any]  # code = index
    indicator_columns: list[str]  # code -> physical column
    measure_columns: dict[str, list[str]]  # measure -> code -> column
    kind: str = field(default="splashe_basic", init=False)

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def code_of(self, value: Any) -> int | None:
        try:
            return self.values.index(value)
        except ValueError:
            return None

    def physical_columns(self) -> list[str]:
        cols = list(self.indicator_columns)
        for per_code in self.measure_columns.values():
            cols.extend(per_code)
        return cols

    def physical_schemes(self) -> dict[str, str]:
        # Indicators and splayed measures are ASHE ciphertext columns.
        return {c: "ashe" for c in self.physical_columns()}


@dataclass
class SplasheEnhancedPlan:
    """Enhanced SPLASHE (Section 3.4): k splayed columns for the frequent
    values, catch-all "others" columns, and a frequency-balanced DET
    column for the infrequent values."""

    column: str
    values: list[Any]
    frequent_codes: list[int]
    det_column: str
    indicator_columns: dict[int, str]  # frequent code -> indicator column
    others_indicator: str
    measure_columns: dict[str, dict[int, str]]  # measure -> frequent code -> col
    others_measure: dict[str, str]  # measure -> catch-all column
    kind: str = field(default="splashe_enhanced", init=False)

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def code_of(self, value: Any) -> int | None:
        try:
            return self.values.index(value)
        except ValueError:
            return None

    def is_frequent(self, code: int) -> bool:
        return code in self.frequent_codes

    def physical_columns(self) -> list[str]:
        cols = [self.det_column, self.others_indicator]
        cols.extend(self.indicator_columns.values())
        for per_code in self.measure_columns.values():
            cols.extend(per_code.values())
        cols.extend(self.others_measure.values())
        return cols

    def physical_schemes(self) -> dict[str, str]:
        schemes = {c: "ashe" for c in self.physical_columns()}
        schemes[self.det_column] = "det"  # frequency-balanced DET tokens
        return schemes


def _measure_schemes(plan: "AshePlan | PaillierPlan", cipher: str) -> dict[str, str]:
    """Per-physical-column scheme of a measure plan: the ORE/DET companion
    columns of an ASHE or Paillier measure carry ORE/DET ciphertexts, not
    the aggregate scheme -- the distinction store manifests record so the
    zone-map index knows which columns are indexable."""
    schemes = {plan.cipher_column: cipher}
    if plan.squares_column:
        schemes[plan.squares_column] = cipher
    if plan.ore_column:
        schemes[plan.ore_column] = "ore"
    if plan.det_column:
        schemes[plan.det_column] = "det"
    return schemes


ColumnPlan = (
    PlainPlan | AshePlan | PaillierPlan | DetPlan | OrePlan
    | SplasheBasicPlan | SplasheEnhancedPlan
)


@dataclass
class EncryptedSchema:
    """The planner's output for one table."""

    table: str
    mode: str  # "seabed" | "paillier" | "plain"
    plans: dict[str, ColumnPlan]
    warnings: list[str] = field(default_factory=list)

    def plan(self, column: str) -> ColumnPlan:
        try:
            return self.plans[column]
        except KeyError:
            raise PlanningError(
                f"no plan for column {column!r} in table {self.table!r}"
            ) from None

    def physical_columns(self) -> list[str]:
        out: list[str] = []
        for plan in self.plans.values():
            out.extend(plan.physical_columns())
        return out

    def plans_of_kind(self, kind: str) -> list[ColumnPlan]:
        return [p for p in self.plans.values() if p.kind == kind]


# -- physical column naming -------------------------------------------------


def ashe_col(column: str) -> str:
    return f"{column}__ashe"


def ashe_sq_col(column: str) -> str:
    return f"{column}__sq__ashe"


def paillier_col(column: str) -> str:
    return f"{column}__paillier"


def paillier_sq_col(column: str) -> str:
    return f"{column}__sq__paillier"


def det_col(column: str) -> str:
    return f"{column}__det"


def ore_col(column: str) -> str:
    return f"{column}__ore"


def splashe_indicator_col(dim: str, code: int | str) -> str:
    return f"{dim}@{code}__ind"


def splashe_measure_col(measure: str, dim: str, code: int | str) -> str:
    return f"{measure}@{dim}@{code}__ashe"
