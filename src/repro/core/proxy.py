"""Back-compat shim: the legacy ``SeabedClient`` name for the session API.

The client surface described in the paper's Figure 5 now lives in
:mod:`repro.core.session`: :class:`~repro.core.session.SeabedSession`
owns the keychain, planner, table registry, and cluster, and every read
path (``query``, ``query_many``, ``scan``, ``linear_regression``) routes
through the shared :class:`~repro.core.session.PreparedQuery` execution
path with an LRU translation cache.  The fluent builder lives in
:mod:`repro.query.builder`.

:class:`SeabedClient` is kept as a thin shim so existing code --
examples, benchmarks, integration tests -- runs unchanged; it adds no
behaviour of its own and is slated for removal once downstream callers
migrate.  New code should instantiate :class:`SeabedSession` directly::

    from repro import SeabedSession, col

    session = SeabedSession(mode="seabed")
    session.create_plan(schema, sample_queries)
    session.upload("sales", columns)
    session.table("sales").where(col("country") == "us").sum("amount").execute()

The result dataclasses (``QueryResult``, ``UploadStats``,
``LinRegResult``) are re-exported here for import compatibility.
"""

from __future__ import annotations

import warnings

from repro.core.session import (
    LinRegResult,
    PreparedQuery,
    QueryResult,
    SeabedSession,
    UploadStats,
)

__all__ = [
    "LinRegResult",
    "PreparedQuery",
    "QueryResult",
    "SeabedClient",
    "UploadStats",
]


_warned_server_poke = False


class SeabedClient(SeabedSession):
    """Deprecated alias of :class:`~repro.core.session.SeabedSession`.

    The trusted proxy: planner + encryptor + translator + decryptor.
    Exists purely so pre-session call sites keep working; it inherits
    every method and attribute unchanged (including the transparent
    translation cache).  Prefer ``SeabedSession`` in new code.

    Reaching through ``client.server`` to poke the in-process
    :class:`~repro.core.server.SeabedServer` is deprecated on this shim:
    since the transport redesign the server may live in another process
    (:mod:`repro.net`), so callers should go through the session API (or
    ``session.transport``).  The first poke per process warns.
    """

    @property
    def server(self):
        global _warned_server_poke
        if not _warned_server_poke:
            _warned_server_poke = True
            warnings.warn(
                "SeabedClient.server reaches into the in-process server and "
                "only works over a LocalTransport; use the SeabedSession API "
                "(or session.transport) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return super().server

    @server.setter
    def server(self, value):
        # Same deprecation surface as the getter; delegate to the session
        # property so local/remote semantics stay in one place.
        SeabedSession.server.fset(self, value)
