"""The Seabed client-side proxy (paper Figure 5).

:class:`SeabedClient` is the trusted component users interact with; it
hides every cryptographic operation behind three verbs, mirroring
Section 4.1:

- :meth:`SeabedClient.create_plan` -- run the data planner on a plaintext
  schema plus sample queries;
- :meth:`SeabedClient.upload` -- encrypt plaintext batches into the
  server-side physical schema (incremental; inserts append);
- :meth:`SeabedClient.query` -- translate, execute on the untrusted
  server, decrypt, post-process, and return plaintext rows with full
  timing metrics.  :meth:`SeabedClient.query_many` batches independent
  queries and fans them out through the cluster's execution backend.

``mode`` selects the paper's three compared systems over one pipeline:
``seabed`` (ASHE/SPLASHE/DET/ORE), ``paillier`` (the CryptDB/Monomi-style
baseline: Paillier measures, DET/ORE dimensions), and ``plain`` (NoEnc).
Cross-table join keys and shared dictionaries are resolved here, which is
why join queries must go through the proxy.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.core import schema as sc
from repro.core import server as srv
from repro.core.access import AccessController
from repro.core.crypto_factory import CryptoFactory
from repro.core.decryptor import DecryptionModule
from repro.core.encryptor import ClientTableState, EncryptionModule
from repro.core.planner import Planner, PlannerReport
from repro.core.translator import QueryTranslator, TranslatedQuery
from repro.crypto.det import DictionaryEncoder
from repro.crypto.keys import KeyChain
from repro.crypto.paillier import PaillierKeyPair, PaillierScheme
from repro.engine.cluster import SimulatedCluster
from repro.engine.metrics import JobMetrics
from repro.errors import PlanningError, TranslationError
from repro.query.ast import Query
from repro.query.executor import order_and_limit
from repro.query.parser import parse_query


@dataclass
class QueryResult:
    """Plaintext rows plus the timing breakdown of one query."""

    rows: list[dict[str, Any]]
    request_metrics: list[JobMetrics] = field(default_factory=list)
    client_time: float = 0.0
    translation: TranslatedQuery | None = None

    @property
    def server_time(self) -> float:
        return sum(m.server_time for m in self.request_metrics)

    @property
    def network_time(self) -> float:
        return sum(m.network_time for m in self.request_metrics)

    @property
    def result_bytes(self) -> int:
        return sum(m.result_bytes for m in self.request_metrics)

    @property
    def total_time(self) -> float:
        return self.server_time + self.network_time + self.client_time

    @property
    def category(self) -> str:
        return self.translation.category if self.translation else "S"


@dataclass
class UploadStats:
    table: str
    rows: int
    encrypt_seconds: float
    physical_columns: int


@dataclass
class LinRegResult:
    """Output of the two-round-trip linear regression (category 2R)."""

    slope: float
    intercept: float
    r_squared: float
    n: int
    round_trips: int
    request_metrics: list[JobMetrics] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(m.total_time for m in self.request_metrics)


class SeabedClient:
    """The trusted proxy: planner + encryptor + translator + decryptor."""

    def __init__(
        self,
        master_key: bytes | None = None,
        mode: str = "seabed",
        cluster: SimulatedCluster | None = None,
        server: srv.SeabedServer | None = None,
        prf_backend: str = "splitmix64",
        paillier_bits: int = 1024,
        paillier_keys: PaillierKeyPair | None = None,
        paillier_blinding_pool: int | None = None,
        access_control: bool = False,
        seed: int | None = 0,
    ):
        if mode not in ("seabed", "paillier", "plain"):
            raise PlanningError(f"unknown client mode {mode!r}")
        self.mode = mode
        self.cluster = cluster or SimulatedCluster()
        self.server = server or srv.SeabedServer(self.cluster)
        self._keychain = (
            KeyChain(master_key) if master_key is not None else KeyChain.generate()
        )
        self._prf_backend = prf_backend
        self._planner = Planner(mode=mode)
        self._states: dict[str, ClientTableState] = {}
        self._factories: dict[str, CryptoFactory] = {}
        self._sample_queries: dict[str, list[Query]] = {}
        self._join_dictionaries: dict[str, DictionaryEncoder] = {}
        self._seed = seed
        self._paillier: PaillierScheme | None = None
        if mode == "paillier":
            keys = paillier_keys or PaillierKeyPair.generate(
                bits=paillier_bits, seed=seed
            )
            self._paillier = PaillierScheme(
                keys, seed=seed, blinding_pool=paillier_blinding_pool
            )
        self.reports: dict[str, PlannerReport] = {}
        self.access: AccessController | None = (
            AccessController() if access_control else None
        )

    # -- planning ---------------------------------------------------------------

    def create_plan(
        self,
        schema: sc.TableSchema,
        sample_queries: list[str | Query],
        storage_budget: float | None = None,
    ) -> PlannerReport:
        queries = [
            parse_query(q) if isinstance(q, str) else q for q in sample_queries
        ]
        enc_schema, report = self._planner.plan(
            schema, queries, storage_budget=storage_budget
        )
        self._states[schema.name] = ClientTableState(
            schema=schema, enc_schema=enc_schema
        )
        self._factories[schema.name] = CryptoFactory(
            self._keychain, schema.name, prf_backend=self._prf_backend
        )
        self._sample_queries[schema.name] = queries
        self.reports[schema.name] = report
        self._link_join_groups()
        return report

    def _link_join_groups(self) -> None:
        """Give equi-joined DET columns a shared key and dictionary so
        their ciphertexts match across tables."""
        for queries in self._sample_queries.values():
            for q in queries:
                if q.join is None:
                    continue
                left_table = q.table
                right_table = q.join.table
                if left_table not in self._states or right_table not in self._states:
                    continue
                left_state = self._states[left_table]
                right_state = self._states[right_table]
                group = "&".join(sorted([
                    f"{left_table}.{q.join.left_column}",
                    f"{right_table}.{q.join.right_column}",
                ]))
                shared = self._join_dictionaries.setdefault(group, DictionaryEncoder())
                for state, column in (
                    (left_state, q.join.left_column),
                    (right_state, q.join.right_column),
                ):
                    plan = state.enc_schema.plans.get(column)
                    if plan is None or plan.kind not in ("det", "plain"):
                        raise PlanningError(
                            f"join column {column!r} must be DET-planned (or "
                            f"plain in NoEnc mode); got "
                            f"{plan.kind if plan else 'missing'}"
                        )
                    if plan.kind == "det":
                        plan.join_group = group
                    # Join keys must share one dictionary so codes (and
                    # hence ciphertexts) match across the two tables.
                    if state.schema.column(column).dtype == "str":
                        state.dictionaries[column] = shared

    # -- upload -----------------------------------------------------------------

    def upload(
        self,
        table: str,
        columns: Mapping[str, Any],
        num_partitions: int = 8,
    ) -> UploadStats:
        state = self._state(table)
        encryptor = EncryptionModule(
            self._factories[table], paillier=self._paillier, seed=self._seed
        )
        t0 = time.perf_counter()
        encrypted = encryptor.encrypt_batch(
            state, columns, num_partitions=num_partitions
        )
        elapsed = time.perf_counter() - t0
        self.server.append(encrypted)
        return UploadStats(
            table=table,
            rows=encrypted.num_rows,
            encrypt_seconds=elapsed,
            physical_columns=len(encrypted.column_names),
        )

    # -- querying ---------------------------------------------------------------

    def query(
        self,
        query: str | Query,
        expected_groups: int | None = None,
        compress_at: str = "worker",
        user: str | None = None,
    ) -> QueryResult:
        q = parse_query(query) if isinstance(query, str) else query
        if self.access is not None:
            self.access.check(user, q.table)
            if q.join is not None:
                self.access.check(user, q.join.table)
        state = self._state(q.table)
        factory = self._factories[q.table]
        join_context = None
        server_join = None
        if q.join is not None:
            join_state = self._state(q.join.table)
            join_context = (join_state, self._factories[q.join.table])
            server_join = self._build_server_join(q, state, join_state)
        translator = QueryTranslator(
            state,
            factory,
            paillier_n_squared=(
                self._paillier.n ** 2 if self._paillier is not None else None
            ),
            join_context=join_context,
        )
        t0 = time.perf_counter()
        translated = translator.translate(
            q,
            cores=self.cluster.config.cores,
            expected_groups=expected_groups,
            join=server_join,
        )
        if compress_at != "worker":
            translated.requests = [
                srv.ServerQuery(
                    table=r.table, aggs=r.aggs, filter=r.filter, join=r.join,
                    group_by=r.group_by, group_codec=r.group_codec,
                    inflation=r.inflation, compress_at=compress_at,
                )
                for r in translated.requests
            ]
        translate_time = time.perf_counter() - t0

        responses = [self.server.execute(r) for r in translated.requests]

        decryptor = DecryptionModule(
            state, self._decrypt_factory(q), paillier=self._paillier
        )
        t0 = time.perf_counter()
        rows = decryptor.decrypt(translated, responses)
        client_time = translate_time + (time.perf_counter() - t0)

        metrics = [r.metrics for r in responses]
        for m in metrics:
            m.client_time = client_time / max(len(metrics), 1)
        return QueryResult(
            rows=rows,
            request_metrics=metrics,
            client_time=client_time,
            translation=translated,
        )

    def query_many(
        self,
        queries: Iterable[str | Query],
        expected_groups: int | None = None,
        compress_at: str = "worker",
        user: str | None = None,
        max_in_flight: int | None = None,
    ) -> list[QueryResult]:
        """Execute a batch of independent queries, results in input order.

        This is the "millions of users" traffic shape: each query is
        translated, executed, and decrypted independently, so the batch
        fans out through the cluster's execution backend.  With the
        ``serial`` backend (the default) queries run sequentially and the
        result is exactly ``[self.query(q) for q in queries]``; with
        ``threads`` or ``processes`` up to ``max_in_flight`` queries
        (default: the backend's worker count) are in flight at once on a
        driver-side thread pool, and their server stages share the
        backend's worker pool.

        Nearly everything a query touches after planning is read-only
        (tables, schemas, dictionaries, key material); the few shared
        mutable spots -- the straggler RNG, worker-pool creation, scheme
        caches, and per-scheme op counters -- are lock-protected.
        """
        queries = list(queries)

        def one(q: str | Query) -> QueryResult:
            return self.query(
                q, expected_groups=expected_groups, compress_at=compress_at,
                user=user,
            )

        backend = self.cluster.backend
        if backend.name == "serial" or len(queries) <= 1:
            return [one(q) for q in queries]
        width = max_in_flight or backend.workers
        with ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="seabed-query"
        ) as pool:
            futures = [pool.submit(one, q) for q in queries]
            return [f.result() for f in futures]

    def scan(self, query: str | Query) -> QueryResult:
        """Execute a projection (scan) query: ``SELECT cols FROM t WHERE ...``.

        The server filters with DET/ORE tokens and returns the matching
        encrypted rows; the proxy decrypts them row-by-row (two PRF
        evaluations per ASHE cell, Section 4.6).  SPLASHE and bare ORE
        columns cannot be projected.
        """
        q = parse_query(query) if isinstance(query, str) else query
        if q.is_aggregation():
            raise TranslationError("scan() is for projection queries; use query()")
        state = self._state(q.table)
        factory = self._factories[q.table]
        translator = QueryTranslator(state, factory)
        base_filter, selectors = translator.split_predicate(q.where)
        if selectors:
            raise TranslationError("SPLASHE dimensions cannot be projected")
        requested = [item.name for item in q.select]
        physical: dict[str, tuple[str, str]] = {}
        for name in requested:
            plan = state.enc_schema.plan(name)
            if plan.kind == "plain":
                physical[name] = (plan.column, "plain")
            elif plan.kind == "ashe":
                physical[name] = (plan.cipher_column, "ashe")
            elif plan.kind == "det":
                physical[name] = (plan.cipher_column, "det")
            elif plan.kind == "paillier":
                physical[name] = (plan.cipher_column, "paillier")
            else:
                raise TranslationError(
                    f"column {name!r} ({plan.kind}) cannot be projected"
                )
        response = self.server.scan(
            q.table, [col for col, _ in physical.values()], base_filter
        )
        t0 = time.perf_counter()
        cols = response.flat["columns"]
        ids = response.flat["ids"]
        rows: list[dict[str, Any]] = []
        decoded: dict[str, Any] = {}
        for name, (col, kind) in physical.items():
            raw = cols[col]
            if kind == "plain":
                spec = state.schema.column(name)
                if spec.dtype == "str":
                    decoded[name] = state.dictionaries[name].decode_column(raw)
                else:
                    decoded[name] = raw.tolist()
            elif kind == "ashe":
                scheme = factory.ashe(col)
                decoded[name] = scheme.decrypt_rows(raw, ids).tolist()
            elif kind == "paillier":
                assert self._paillier is not None
                decoded[name] = [self._paillier.decrypt_crt(int(c)) for c in raw]
            else:
                plan = state.enc_schema.plan(name)
                det = factory.det(col, getattr(plan, "join_group", None))
                codes = det.decrypt_column(raw)
                spec = state.schema.column(name)
                if spec.dtype == "str":
                    decoded[name] = state.dictionaries[name].decode_column(codes)
                else:
                    decoded[name] = codes.tolist()
        count = len(ids)
        rows = [
            {name: decoded[name][j] for name in requested} for j in range(count)
        ]
        client_time = time.perf_counter() - t0
        response.metrics.client_time = client_time
        rows = order_and_limit(rows, q)
        return QueryResult(
            rows=rows, request_metrics=[response.metrics], client_time=client_time
        )

    def linear_regression(
        self, table: str, x_column: str, y_column: str, where: str | None = None
    ) -> "LinRegResult":
        """Least-squares regression of ``y`` on ``x``: a *two round-trip*
        query (paper Table 6, LinRegSlope/Intercept/R2, category 2R).

        Round 1 aggregates first moments on the server (sums and count);
        the client decrypts them into means.  Round 2 pulls the filtered
        (x, y) ciphertext pairs back to the client -- "data sent back to
        client" -- which decrypts and finishes the second moments and the
        fit.  Both rounds run under the same predicate.
        """
        predicate = f" WHERE {where}" if where else ""
        first = self.query(
            f"SELECT sum({x_column}), sum({y_column}), count(*) "
            f"FROM {table}{predicate}"
        )
        row = first.rows[0]
        n = row["count(*)"]
        if not n:
            raise TranslationError("linear regression over an empty selection")
        mean_x = row[f"sum({x_column})"] / n
        mean_y = row[f"sum({y_column})"] / n

        second = self.scan(f"SELECT {x_column}, {y_column} FROM {table}{predicate}")
        xs = np.array([r[x_column] for r in second.rows], dtype=np.float64)
        ys = np.array([r[y_column] for r in second.rows], dtype=np.float64)
        sxx = float(((xs - mean_x) ** 2).sum())
        sxy = float(((xs - mean_x) * (ys - mean_y)).sum())
        syy = float(((ys - mean_y) ** 2).sum())
        if sxx == 0.0:
            raise TranslationError("x has zero variance; slope undefined")
        slope = sxy / sxx
        intercept = mean_y - slope * mean_x
        r2 = 0.0 if syy == 0.0 else (sxy * sxy) / (sxx * syy)
        return LinRegResult(
            slope=slope, intercept=intercept, r_squared=r2, n=int(n),
            round_trips=2,
            request_metrics=first.request_metrics + second.request_metrics,
        )

    # -- internals ---------------------------------------------------------------

    def _state(self, table: str) -> ClientTableState:
        try:
            return self._states[table]
        except KeyError:
            raise PlanningError(
                f"no plan for table {table!r}; call create_plan first"
            ) from None

    def _decrypt_factory(self, q: Query) -> CryptoFactory:
        """Factory used for decryption; join payload columns resolve through
        a composite factory when the query spans two tables."""
        if q.join is None:
            return self._factories[q.table]
        return _CompositeFactory(
            primary=self._factories[q.table],
            secondary=self._factories[q.join.table],
            secondary_columns=set(
                self._states[q.join.table].enc_schema.physical_columns()
            ),
        )

    def _build_server_join(
        self, q: Query, probe: ClientTableState, build: ClientTableState
    ) -> srv.ServerJoin:
        assert q.join is not None
        probe_plan = probe.enc_schema.plans.get(q.join.left_column)
        build_plan = build.enc_schema.plans.get(q.join.right_column)
        if probe_plan is None or build_plan is None:
            raise TranslationError("join columns missing from the plans")
        probe_key = (
            probe_plan.cipher_column if probe_plan.kind == "det" else probe_plan.column
        )
        build_key = (
            build_plan.cipher_column if build_plan.kind == "det" else build_plan.column
        )
        # Build-side physical columns the query touches.
        needed: set[str] = set()
        build_names = set(build.schema.column_names())
        for col in (q.measure_columns() | q.dimension_columns()) - {q.join.left_column}:
            if col in build_names and col not in set(probe.schema.column_names()):
                needed.update(build.enc_schema.plan(col).physical_columns())
        return srv.ServerJoin(
            build_table=build.schema.name,
            probe_key_column=probe_key,
            build_key_column=build_key,
            payload_columns=tuple(sorted(needed)),
        )

    # -- introspection -------------------------------------------------------------

    def encrypted_schema(self, table: str) -> sc.EncryptedSchema:
        return self._state(table).enc_schema

    def table_state(self, table: str) -> ClientTableState:
        return self._state(table)


class _CompositeFactory:
    """Routes physical-column scheme lookups across two tables' factories."""

    def __init__(self, primary: CryptoFactory, secondary: CryptoFactory,
                 secondary_columns: set[str]):
        self._primary = primary
        self._secondary = secondary
        self._secondary_columns = secondary_columns

    def _route(self, physical_column: str) -> CryptoFactory:
        if physical_column in self._secondary_columns:
            return self._secondary
        return self._primary

    def ashe(self, physical_column: str):
        return self._route(physical_column).ashe(physical_column)

    def det(self, physical_column: str, join_group: str | None = None):
        return self._route(physical_column).det(physical_column, join_group)

    def ore(self, physical_column: str, nbits: int = 32, signed: bool = True):
        return self._route(physical_column).ore(physical_column, nbits, signed)
