"""The client-side encryption module (paper Section 4.3).

Takes plaintext columns and the planner's encrypted schema and produces
the physical (server-side) table: ASHE ciphertext columns with contiguous
row identifiers, DET/ORE dimension columns, SPLASHE splayed columns with
enhanced-mode frequency balancing, and -- in the baseline mode -- Paillier
ciphertext columns.

Uploads are incremental: each batch continues the table's row-ID sequence
(``start_id``), which is what keeps ID lists range-compressible
(Section 4.2, "to enable compression, we assign consecutive row IDs").
String columns are dictionary-encoded client-side; the dictionary never
leaves the proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core import schema as sc
from repro.core import splashe
from repro.core.crypto_factory import CryptoFactory
from repro.crypto.det import DictionaryEncoder
from repro.crypto.paillier import PaillierScheme
from repro.engine.table import Table
from repro.errors import PlanningError
from repro.ops import OPS

_I64 = np.int64

#: Squaring must stay inside int64: |v| below 2^31 keeps v^2 below 2^62.
_MAX_SQUARABLE = 1 << 31


@dataclass
class ClientTableState:
    """Everything the proxy must remember about one uploaded table."""

    schema: sc.TableSchema
    enc_schema: sc.EncryptedSchema
    dictionaries: dict[str, DictionaryEncoder] = field(default_factory=dict)
    next_row_id: int = 0
    num_rows: int = 0


class EncryptionModule:
    """Encrypts plaintext batches into the physical schema."""

    def __init__(
        self,
        factory: CryptoFactory,
        paillier: PaillierScheme | None = None,
        seed: int | None = None,
    ):
        self._factory = factory
        self._paillier = paillier
        self._rng = np.random.default_rng(seed)

    def encrypt_batch(
        self,
        state: ClientTableState,
        columns: Mapping[str, Any],
        num_partitions: int = 8,
    ) -> Table:
        """Encrypt one batch of rows, advancing the table's row-ID cursor."""
        arrays = {name: np.asarray(col) for name, col in columns.items()}
        expected = set(state.schema.column_names())
        if set(arrays) != expected:
            raise PlanningError(
                f"batch columns {sorted(arrays)} do not match the schema "
                f"{sorted(expected)}"
            )
        nrows = len(next(iter(arrays.values())))
        start_id = state.next_row_id
        physical: dict[str, np.ndarray] = {}
        # Counted so persistence tests can *prove* that attaching a stored
        # table performs zero re-encryption (the upload-once model) and so
        # the ingest benchmark can prove an append encrypts only its batch.
        OPS.bump("encrypt_batch")
        OPS.bump("encrypt_rows", nrows)
        for name, plan in state.enc_schema.plans.items():
            OPS.bump("encrypt_column")
            self._encrypt_column(state, plan, arrays[name], arrays, start_id, physical)
        table = Table.from_columns(
            state.schema.name,
            physical,
            num_partitions=num_partitions,
            base_id=start_id,
        )
        state.next_row_id = start_id + nrows
        state.num_rows += nrows
        return table

    # -- per-plan encryption -----------------------------------------------------

    def _encrypt_column(
        self,
        state: ClientTableState,
        plan: sc.ColumnPlan,
        values: np.ndarray,
        all_columns: Mapping[str, np.ndarray],
        start_id: int,
        out: dict[str, np.ndarray],
    ) -> None:
        spec = state.schema.column(plan.column)
        if plan.kind == "plain":
            out[plan.column] = self._plain_column(state, spec, values)
            return
        if plan.kind in ("ashe", "paillier"):
            self._encrypt_measure(state, plan, spec, values, start_id, out)
            return
        if plan.kind == "det":
            codes = self._codes_for_det(state, spec, values)
            det = self._factory.det(plan.cipher_column, plan.join_group)
            out[plan.cipher_column] = det.encrypt_column(codes)
            return
        if plan.kind == "ore":
            ore = self._factory.ore(plan.cipher_column, nbits=plan.nbits)
            out[plan.cipher_column] = ore.encrypt_column(values.astype(_I64))
            return
        if plan.kind == "splashe_basic":
            self._encrypt_splashe_basic(plan, values, all_columns, start_id, out)
            return
        if plan.kind == "splashe_enhanced":
            self._encrypt_splashe_enhanced(plan, values, all_columns, start_id, out)
            return
        raise PlanningError(f"unknown plan kind {plan.kind!r}")

    def _plain_column(
        self, state: ClientTableState, spec: sc.ColumnSpec, values: np.ndarray
    ) -> np.ndarray:
        if spec.dtype == "str":
            encoder = state.dictionaries.setdefault(spec.name, DictionaryEncoder())
            return encoder.encode_column(values.tolist())
        return values.astype(_I64)

    def _encrypt_measure(
        self,
        state: ClientTableState,
        plan: sc.AshePlan | sc.PaillierPlan,
        spec: sc.ColumnSpec,
        values: np.ndarray,
        start_id: int,
        out: dict[str, np.ndarray],
    ) -> None:
        ints = values.astype(_I64)
        if plan.kind == "paillier":
            if self._paillier is None:
                raise PlanningError("paillier mode requires a PaillierScheme")
            out[plan.cipher_column] = self._paillier.encrypt_column(ints)
            if plan.squares_column:
                self._check_squarable(spec.name, ints)
                out[plan.squares_column] = self._paillier.encrypt_column(ints * ints)
        else:
            ashe = self._factory.ashe(plan.cipher_column)
            out[plan.cipher_column] = ashe.encrypt_column(ints, start_id)
            if plan.squares_column:
                self._check_squarable(spec.name, ints)
                sq = self._factory.ashe(plan.squares_column)
                out[plan.squares_column] = sq.encrypt_column(ints * ints, start_id)
        if plan.ore_column:
            ore = self._factory.ore(plan.ore_column, nbits=spec.nbits)
            out[plan.ore_column] = ore.encrypt_column(ints)
        if plan.det_column:
            det = self._factory.det(plan.det_column)
            out[plan.det_column] = det.encrypt_column(ints)

    @staticmethod
    def _check_squarable(name: str, ints: np.ndarray) -> None:
        if ints.size and int(np.abs(ints).max()) >= _MAX_SQUARABLE:
            raise PlanningError(
                f"column {name!r} holds values too large to square within "
                "int64; rescale before upload"
            )

    def _codes_for_det(
        self, state: ClientTableState, spec: sc.ColumnSpec, values: np.ndarray
    ) -> np.ndarray:
        if spec.dtype == "str":
            encoder = state.dictionaries.setdefault(spec.name, DictionaryEncoder())
            return encoder.encode_column(values.tolist())
        return values.astype(_I64)

    # -- SPLASHE -------------------------------------------------------------

    def _encrypt_splashe_basic(
        self,
        plan: sc.SplasheBasicPlan,
        values: np.ndarray,
        all_columns: Mapping[str, np.ndarray],
        start_id: int,
        out: dict[str, np.ndarray],
    ) -> None:
        codes = encode_domain(plan.values, values)
        d = plan.cardinality
        for code, column in enumerate(plan.indicator_columns):
            indicator = (codes == code).astype(_I64)
            out[column] = self._factory.ashe(column).encrypt_column(indicator, start_id)
        for measure, per_code in plan.measure_columns.items():
            mvalues = all_columns[measure].astype(_I64)
            splayed = splashe.splay_measure(codes, mvalues, d)
            for code, column in enumerate(per_code):
                out[column] = self._factory.ashe(column).encrypt_column(
                    splayed[code], start_id
                )

    def _encrypt_splashe_enhanced(
        self,
        plan: sc.SplasheEnhancedPlan,
        values: np.ndarray,
        all_columns: Mapping[str, np.ndarray],
        start_id: int,
        out: dict[str, np.ndarray],
    ) -> None:
        codes = encode_domain(plan.values, values)
        d = plan.cardinality
        balanced = splashe.balance_det_codes(
            codes, plan.frequent_codes, d, self._rng
        )
        det = self._factory.det(plan.det_column)
        out[plan.det_column] = det.encrypt_column(balanced)

        per_frequent, others = splashe.splay_enhanced_indicators(
            codes, plan.frequent_codes, d
        )
        for code, column in plan.indicator_columns.items():
            out[column] = self._factory.ashe(column).encrypt_column(
                per_frequent[code], start_id
            )
        out[plan.others_indicator] = self._factory.ashe(
            plan.others_indicator
        ).encrypt_column(others, start_id)

        for measure, per_code in plan.measure_columns.items():
            mvalues = all_columns[measure].astype(_I64)
            freq_cols, other_col = splashe.splay_enhanced_measure(
                codes, mvalues, plan.frequent_codes, d
            )
            for code, column in per_code.items():
                out[column] = self._factory.ashe(column).encrypt_column(
                    freq_cols[code], start_id
                )
            others_column = plan.others_measure[measure]
            out[others_column] = self._factory.ashe(others_column).encrypt_column(
                other_col, start_id
            )


def encode_domain(domain: list[Any], values: np.ndarray) -> np.ndarray:
    """Map column values to their code (index) in the declared domain."""
    domain_arr = np.asarray(domain)
    order = np.argsort(domain_arr, kind="stable")
    sorted_domain = domain_arr[order]
    idx = np.searchsorted(sorted_domain, values)
    idx_clipped = np.minimum(idx, len(domain) - 1)
    matched = sorted_domain[idx_clipped] == values
    if not bool(np.all(matched)):
        bad = np.asarray(values)[~matched]
        raise PlanningError(
            f"value {bad[0]!r} not in the declared domain of this dimension"
        )
    return order[idx_clipped].astype(_I64)
