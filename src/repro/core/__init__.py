"""Seabed core: planner, encryption module, translator, server, decryptor.

This package is the paper's Figure 5 in code:

- :mod:`repro.core.schema` -- plaintext schemas and the encrypted-schema
  plans the planner produces.
- :mod:`repro.core.planner` -- classifies columns as dimensions/measures
  from a sample query set and picks encryption schemes (Section 4.2).
- :mod:`repro.core.splashe` -- basic and enhanced SPLASHE transforms
  (Sections 3.3-3.4), including the `k`-selection rule and the
  dummy-entry frequency balancing.
- :mod:`repro.core.encryptor` -- the client-side encryption module
  (Section 4.3).
- :mod:`repro.core.translator` -- rewrites plaintext queries for the
  encrypted schema (Section 4.4, Table 2).
- :mod:`repro.core.server` -- the untrusted server: filter evaluation over
  tokens, ASHE aggregation with ID-list construction, group-by with
  optional inflation (Section 4.5).
- :mod:`repro.core.decryptor` -- client-side decryption and
  post-processing (Section 4.6).
- :mod:`repro.core.session` -- the :class:`SeabedSession` facade tying it
  all together (prepared queries, translation cache, NoEnc and Paillier
  baseline modes).
- :mod:`repro.core.proxy` -- the deprecated :class:`SeabedClient` shim
  over the session API.
"""

from repro.core.proxy import SeabedClient
from repro.core.schema import ColumnSpec, Sensitivity, TableSchema
from repro.core.session import PreparedQuery, SeabedSession

__all__ = [
    "ColumnSpec",
    "PreparedQuery",
    "SeabedClient",
    "SeabedSession",
    "Sensitivity",
    "TableSchema",
]
