"""The session's pluggable execution boundary.

:class:`~repro.core.session.SeabedSession` never talks to a
:class:`~repro.core.server.SeabedServer` (or its partition stores)
directly any more -- every server-side effect goes through a
:class:`Transport`:

- :class:`LocalTransport` (the default) wraps an in-process server plus
  direct filesystem store access: exactly the single-process behavior
  the repo always had, with zero serialization.
- :class:`~repro.net.client.RemoteTransport` speaks the
  :mod:`repro.net.codec` wire protocol to a
  :mod:`repro.net.service` process, which may live on another host.

The method set is deliberately the *untrusted* half of the paper's
split (Section 3): ciphertext batches in, encrypted responses and
key-free client-state payloads out.  Nothing a transport carries ever
contains key material -- the sidecar payloads it ships are the same
``client_state.json`` documents :mod:`repro.core.persistence` already
proves key-free, and :mod:`repro.net.audit` re-checks the invariant on
the serving side.
"""

from __future__ import annotations

import abc
import os
from typing import TYPE_CHECKING, Any, Sequence

from repro.core import persistence as ps
from repro.engine.store import (
    append_store,
    compact_store,
    open_store,
    rebuild_stats,
    snapshot_generation,
    store_generations,
    store_num_rows,
    store_stats,
    truncate_store,
    write_store,
)
from repro.errors import ExecutionError, StorageError, TransportError

if TYPE_CHECKING:  # pragma: no cover -- type-only imports
    from repro.core.server import (
        FilterExpr,
        SeabedServer,
        ServerQuery,
        ServerResponse,
    )
    from repro.engine.cluster import SimulatedCluster
    from repro.engine.table import Table


class Transport(abc.ABC):
    """What a session needs from the server side, local or remote.

    ``timeout`` on the read paths is a per-call budget in seconds; the
    in-process transport executes synchronously and ignores it, remote
    transports enforce it on the wire and raise
    :class:`~repro.errors.TransportError` on expiry.
    """

    #: True when the server shares this process (no wire, no auth).
    local: bool = False

    # -- query path --------------------------------------------------------

    @abc.abstractmethod
    def execute(
        self, request: "ServerQuery", *, timeout: float | None = None
    ) -> "ServerResponse":
        """Run one translated aggregation request."""

    @abc.abstractmethod
    def scan(
        self,
        table: str,
        columns: Sequence[str],
        filt: "FilterExpr | None",
        *,
        timeout: float | None = None,
    ) -> "ServerResponse":
        """Filter and project encrypted rows."""

    # -- ingestion ---------------------------------------------------------

    @abc.abstractmethod
    def upload(self, encrypted: "Table") -> None:
        """Append one ciphertext batch to an in-memory table."""

    @abc.abstractmethod
    def append_batch(
        self, table: str, encrypted: "Table", column_meta: dict[str, str]
    ) -> int:
        """Publish one ciphertext batch as a new store generation.

        Does *not* commit: the session follows up with
        :meth:`commit_state` (the sidecar watermark is the commit
        record) and :meth:`reopen`.
        """

    # -- table metadata ----------------------------------------------------

    @abc.abstractmethod
    def table_meta(self, table: str) -> dict[str, Any] | None:
        """Registration snapshot for ``table`` (``None`` when nothing is
        registered): ``{"store_backed", "store_path", "num_partitions",
        "num_rows"}``."""

    @abc.abstractmethod
    def storage_bytes(self, table: str) -> int:
        """Server-side memory footprint of the registered ciphertexts."""

    # -- persistence -------------------------------------------------------

    @abc.abstractmethod
    def save_store(
        self,
        table: str,
        path: str,
        column_meta: dict[str, str],
        overwrite: bool = False,
    ) -> str:
        """Write the registered ciphertexts to a partition store at
        ``path`` (resolved server-side), register the store-backed view,
        and return the resolved absolute path."""

    @abc.abstractmethod
    def commit_state(self, table: str, payload: dict[str, Any]) -> None:
        """Write the key-free client-state sidecar for a store-backed
        table -- the commit point of saves and appends."""

    @abc.abstractmethod
    def read_store_state(self, path: str) -> dict[str, Any]:
        """The raw sidecar payload of the store at ``path``."""

    @abc.abstractmethod
    def read_sharded_state(self, path: str) -> dict[str, Any]:
        """The raw sharded-sidecar payload of the sharded table at
        ``path``."""

    @abc.abstractmethod
    def store_rows(self, table: str) -> int:
        """Rows in the newest published generation of the table's store
        (committed or not)."""

    @abc.abstractmethod
    def truncate_store(self, table: str, committed: int) -> None:
        """Roll the table's store back to ``committed`` rows."""

    @abc.abstractmethod
    def reopen(self, table: str) -> None:
        """Re-register the latest committed view of a store-backed table."""

    @abc.abstractmethod
    def compact(self, table: str, target_rows: int | None = None) -> dict | None:
        """Compact the table's store; reopen if anything changed."""

    @abc.abstractmethod
    def store_stats(self, table: str) -> dict:
        """Zone-map index summary of the table's store."""

    @abc.abstractmethod
    def generations(self, table: str) -> list[dict]:
        """The store's generation log (empty for in-memory tables)."""

    @abc.abstractmethod
    def rebuild_index(self, table: str) -> dict:
        """Recompute zone maps and refresh the pinned server view."""

    @abc.abstractmethod
    def attach(self, path: str) -> dict[str, Any]:
        """Open the store at ``path`` at its committed snapshot and
        register it; returns ``{"name", "num_rows"}``."""

    @abc.abstractmethod
    def attach_sharded(self, path: str) -> dict[str, Any]:
        """Host the persisted sharded table at ``path`` (remote only)."""

    def close(self) -> None:
        """Release transport resources (sockets); idempotent."""


class LocalTransport(Transport):
    """In-process transport: a :class:`SeabedServer` handle plus direct
    store filesystem access.  This is the repo's historical single-
    process mode, now behind the same interface the wire speaks."""

    local = True

    def __init__(self, server: "SeabedServer", cluster: "SimulatedCluster"):
        self.server = server
        self.cluster = cluster

    # -- query path --------------------------------------------------------

    def execute(
        self, request: "ServerQuery", *, timeout: float | None = None
    ) -> "ServerResponse":
        return self.server.execute(request)

    def scan(
        self,
        table: str,
        columns: Sequence[str],
        filt: "FilterExpr | None",
        *,
        timeout: float | None = None,
    ) -> "ServerResponse":
        return self.server.scan(table, list(columns), filt)

    # -- ingestion ---------------------------------------------------------

    def upload(self, encrypted: "Table") -> None:
        self.server.append(encrypted)

    def append_batch(
        self, table: str, encrypted: "Table", column_meta: dict[str, str]
    ) -> int:
        return append_store(encrypted, self._store_path(table), column_meta=column_meta)

    # -- table metadata ----------------------------------------------------

    def table_meta(self, table: str) -> dict[str, Any] | None:
        registered = self.server.get(table)
        if registered is None:
            return None
        return {
            "store_backed": registered.store_path is not None,
            "store_path": registered.store_path,
            "num_partitions": registered.num_partitions,
            "num_rows": registered.num_rows,
        }

    def storage_bytes(self, table: str) -> int:
        return self.server.storage_bytes(table)

    # -- persistence -------------------------------------------------------

    def _store_path(self, table: str) -> str:
        store_path = self.server.table(table).store_path
        if store_path is None:
            raise StorageError(f"table {table!r} is not store-backed")
        return store_path

    def save_store(
        self,
        table: str,
        path: str,
        column_meta: dict[str, str],
        overwrite: bool = False,
    ) -> str:
        resolved = self.cluster.config.resolve_store_path(path)
        write_store(
            self.server.table(table),
            resolved,
            column_meta=column_meta,
            overwrite=overwrite,
        )
        # The server-side table becomes the store-backed view: columns
        # memory-map from the files just written, and incremental
        # ingestion (append / compact) can target the store directly.
        self.server.register(open_store(resolved))
        return os.path.abspath(resolved)

    def commit_state(self, table: str, payload: dict[str, Any]) -> None:
        ps.write_sidecar_payload(self._store_path(table), payload)

    def read_store_state(self, path: str) -> dict[str, Any]:
        resolved = self.cluster.config.resolve_store_path(path)
        return ps.read_sidecar_payload(resolved)

    def read_sharded_state(self, path: str) -> dict[str, Any]:
        resolved = self.cluster.config.resolve_store_path(path)
        return ps.read_sharded_payload(resolved)

    def store_rows(self, table: str) -> int:
        return store_num_rows(self._store_path(table))

    def truncate_store(self, table: str, committed: int) -> None:
        truncate_store(self._store_path(table), committed)

    def reopen(self, table: str) -> None:
        self.server.register(open_store(self._store_path(table)))

    def compact(self, table: str, target_rows: int | None = None) -> dict | None:
        store_path = self._store_path(table)
        stats = compact_store(store_path, target_rows=target_rows)
        if stats is not None:
            self.server.register(open_store(store_path))
        return stats

    def store_stats(self, table: str) -> dict:
        meta = self.table_meta(table)
        if meta is None:
            raise ExecutionError(f"no table {table!r} registered on the server")
        if not meta["store_backed"]:
            # An in-memory table carries no index and reports zero coverage.
            return {
                "partitions": meta["num_partitions"],
                "partitions_with_stats": 0,
                "rows": 0,
                "columns": {},
                "generation": None,
            }
        return store_stats(meta["store_path"])

    def generations(self, table: str) -> list[dict]:
        meta = self.table_meta(table)
        if meta is None or not meta["store_backed"]:
            return []
        return store_generations(meta["store_path"])

    def rebuild_index(self, table: str) -> dict:
        registered = self.server.table(table)
        if registered.store_path is None:
            raise StorageError(
                f"table {table!r} is not store-backed; zone maps are built "
                "when the table is saved to a partition store"
            )
        summary = rebuild_stats(registered.store_path)
        # The refreshed view stays pinned to the snapshot this session
        # attached at, so an uncommitted generation remains invisible.
        self.server.register(
            open_store(registered.store_path, generation=registered.store_generation)
        )
        return summary

    def attach(self, path: str) -> dict[str, Any]:
        resolved = self.cluster.config.resolve_store_path(path)
        table = open_committed_store(resolved)
        self.server.register(table)
        return {"name": table.name, "num_rows": table.num_rows}

    def attach_sharded(self, path: str) -> dict[str, Any]:
        raise TransportError(
            "attach_sharded is a remote-transport operation; local sessions "
            "host sharded tables directly via open_sharded()"
        )


def open_committed_store(resolved: str) -> "Table":
    """Open the store at ``resolved`` pinned to the snapshot its sidecar
    committed, verifying the manifest and sidecar agree.

    Shared by :meth:`LocalTransport.attach` and the service's store
    hosting: a writer may have died between publishing an append
    generation and committing the sidecar watermark, in which case the
    committed snapshot is attached instead (the next append rolls the
    uncommitted tail back).
    """
    payload = ps.read_sidecar_payload(resolved)
    name = payload["schema"]["name"]
    committed = int(payload["num_rows"])
    table = open_store(resolved)
    if table.name != name:
        raise StorageError(
            f"store manifest names table {table.name!r} but the sidecar "
            f"describes {name!r}"
        )
    if table.num_rows != committed:
        snap = snapshot_generation(resolved, committed)
        if snap is None:
            raise StorageError(
                f"store holds {table.num_rows} rows but the client state "
                f"recorded {committed}; the store is stale or corrupt"
            )
        table = open_store(resolved, generation=snap)
    return table
