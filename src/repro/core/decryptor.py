"""The client-side decryption module (paper Section 4.6).

Takes a :class:`~repro.core.translator.TranslatedQuery` and the server's
responses and produces plaintext result rows identical to what the
plaintext executor would return:

- ASHE aggregates: decompress the ID-list chunks, accumulate the PRF pad
  per run (two evaluations per run; per occurrence for join multisets),
  add to the ciphertext sum, interpret as signed;
- counts: read off ID-list lengths or decrypt indicator sums;
- averages / variances: the client-side division and combination
  (Monomi-style query splitting, Section 4.2);
- group keys: DET-decrypt and dictionary-decode, and merge the groups the
  group-inflation optimisation split apart;
- SPLASHE group-by: assemble per-value rows from the splayed sums and the
  enhanced-mode catch-all grouped request, using indicator counts to
  suppress empty groups (dummy rows decrypt to zero and vanish here).

No integrity checks are performed: the threat model is honest-but-curious
(Section 4.6), so a malicious server could return bogus sums undetected.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core import server as srv
from repro.core.crypto_factory import CryptoFactory
from repro.core.encryptor import ClientTableState
from repro.core.translator import OutputItem, Ref, TranslatedQuery
from repro.crypto.ashe import MASK64, to_signed
from repro.crypto.paillier import PaillierScheme
from repro.errors import DecryptionError
from repro.idlist import IdList
from repro.idlist.codec import decode as codec_decode
from repro.idlist.codec import (
    decode_chunks_batch,
    decode_multiset,
    is_multiset_payload,
)
from repro.query.executor import order_and_limit


class DecryptionModule:
    """Decrypts server responses for one table's client state."""

    def __init__(
        self,
        state: ClientTableState,
        factory: CryptoFactory,
        paillier: PaillierScheme | None = None,
    ):
        self._state = state
        self._factory = factory
        self._paillier = paillier

    # -- entry point -------------------------------------------------------------

    def decrypt(
        self, tq: TranslatedQuery, responses: list[srv.ServerResponse]
    ) -> list[dict[str, Any]]:
        if len(responses) != len(tq.requests):
            raise DecryptionError(
                f"expected {len(tq.requests)} responses, got {len(responses)}"
            )
        agg_index = [
            {agg.alias: agg for agg in request.aggs} for request in tq.requests
        ]
        if tq.shape == "flat":
            rows = [self._assemble_flat(tq, responses, agg_index)]
            rows = [r for r in rows if r]
        elif tq.shape == "grouped":
            rows = self._assemble_grouped(tq, responses, agg_index)
        elif tq.shape == "splashe_group":
            rows = self._assemble_splashe_group(tq, responses, agg_index)
        else:
            raise DecryptionError(f"unknown result shape {tq.shape!r}")
        return order_and_limit(rows, tq.query)

    # -- scan (projection) results ------------------------------------------------

    def decrypt_scan(
        self,
        requested: list[str],
        physical: dict[str, tuple[str, str]],
        response: srv.ServerResponse,
    ) -> list[dict[str, Any]]:
        """Decrypt a projection (scan) response row-by-row.

        ``physical`` maps each requested logical column to its
        ``(physical column, scheme kind)`` pair, resolved once at
        preparation time (Section 4.6: two PRF evaluations per ASHE
        cell).
        """
        cols = response.flat["columns"]
        ids = response.flat["ids"]
        decoded: dict[str, Any] = {}
        for name, (col, kind) in physical.items():
            raw = cols[col]
            if kind == "plain":
                spec = self._state.schema.column(name)
                if spec.dtype == "str":
                    decoded[name] = self._state.dictionaries[name].decode_column(raw)
                else:
                    decoded[name] = raw.tolist()
            elif kind == "ashe":
                scheme = self._factory.ashe(col)
                decoded[name] = scheme.decrypt_rows(raw, ids).tolist()
            elif kind == "paillier":
                if self._paillier is None:
                    raise DecryptionError("paillier scan without a scheme")
                decoded[name] = self._paillier.decrypt_column(raw).tolist()
            else:
                plan = self._state.enc_schema.plan(name)
                det = self._factory.det(col, getattr(plan, "join_group", None))
                codes = det.decrypt_column(raw)
                spec = self._state.schema.column(name)
                if spec.dtype == "str":
                    decoded[name] = self._state.dictionaries[name].decode_column(codes)
                else:
                    decoded[name] = codes.tolist()
        return [
            {name: decoded[name][j] for name in requested}
            for j in range(len(ids))
        ]

    # -- payload decryption -------------------------------------------------------

    def _decrypt_payload(self, payload: Any, agg: srv.AggOp) -> Any:
        """Decrypt one aggregate payload to a signed integer (or value)."""
        if payload is None:
            return None
        tag = payload[0]
        if tag == "ashe":
            assert isinstance(agg, srv.AsheSum)
            scheme = self._factory.ashe(agg.column)
            total = payload[1]
            pad = 0
            for chunk in payload[2]:
                if is_multiset_payload(chunk):
                    pad = (pad + scheme.pad_for_multiset(decode_multiset(chunk))) & MASK64
                else:
                    pad = (pad + scheme.pad_for(codec_decode(chunk))) & MASK64
            return to_signed((total + pad) & MASK64)
        if tag == "plain":
            return payload[1]
        if tag == "paillier":
            if self._paillier is None:
                raise DecryptionError("paillier response without a scheme")
            return self._paillier.decrypt_crt(payload[1])
        if tag == "extreme":
            raise DecryptionError("extreme payloads need _decrypt_extreme")
        raise DecryptionError(f"unknown payload tag {tag!r}")

    def _decrypt_extreme(self, payload: Any, agg: srv.AggOp, mode: str) -> Any:
        if payload is None:
            return None
        if mode == "plain":
            # NoEnc: the server computed min/max/median directly.
            return payload[1]
        _, value, row_id, _ct = payload
        if mode == "paillier":
            if self._paillier is None:
                raise DecryptionError("paillier response without a scheme")
            return self._paillier.decrypt_crt(value)
        column = agg.payload_column  # type: ignore[union-attr]
        scheme = self._factory.ashe(column)
        return scheme.decrypt_sum(value, IdList.from_range(row_id, row_id + 1))

    @staticmethod
    def _count_from_payload(payload: Any) -> int:
        """Row count read off an ASHE ID list (free with any aggregate)."""
        if payload is None:
            return 0
        if payload[0] != "ashe":
            raise DecryptionError("count_ids requires an ASHE payload")
        total = 0
        for chunk in payload[2]:
            if is_multiset_payload(chunk):
                total += len(decode_multiset(chunk))
            else:
                total += codec_decode(chunk).count()
        return total

    # -- flat results ---------------------------------------------------------------

    def _lookup(
        self,
        responses: list[srv.ServerResponse],
        agg_index: list[dict[str, srv.AggOp]],
        ref: Ref,
    ) -> tuple[Any, srv.AggOp]:
        req, alias = ref
        response = responses[req]
        if response.kind != "flat":
            raise DecryptionError("flat lookup against a grouped response")
        return response.flat.get(alias), agg_index[req][alias]

    def _sum_refs(
        self,
        refs: list[Ref],
        responses: list[srv.ServerResponse],
        agg_index: list[dict[str, srv.AggOp]],
    ) -> int | None:
        total: int | None = None
        for ref in refs:
            payload, agg = self._lookup(responses, agg_index, ref)
            value = self._decrypt_payload(payload, agg)
            if value is not None:
                total = value if total is None else total + value
        return total

    def _count_refs(
        self,
        item: OutputItem,
        responses: list[srv.ServerResponse],
        agg_index: list[dict[str, srv.AggOp]],
    ) -> int:
        total = 0
        for ref in item.count_refs:
            payload, agg = self._lookup(responses, agg_index, ref)
            if item.count_mode == "ids":
                total += self._count_from_payload(payload)
            else:
                value = self._decrypt_payload(payload, agg)
                total += int(value) if value is not None else 0
        return total

    def _assemble_flat(
        self,
        tq: TranslatedQuery,
        responses: list[srv.ServerResponse],
        agg_index: list[dict[str, srv.AggOp]],
    ) -> dict[str, Any]:
        row: dict[str, Any] = {}
        for item in tq.outputs:
            row[item.name] = self._assemble_item(item, responses, agg_index)
        return row

    def _assemble_item(
        self,
        item: OutputItem,
        responses: list[srv.ServerResponse],
        agg_index: list[dict[str, srv.AggOp]],
    ) -> Any:
        if item.kind == "sum":
            return self._sum_refs(item.sum_refs, responses, agg_index)
        if item.kind == "count":
            return self._count_refs(item, responses, agg_index)
        if item.kind == "avg":
            total = self._sum_refs(item.sum_refs, responses, agg_index)
            count = self._count_refs(item, responses, agg_index)
            return None if not count else total / count
        if item.kind in ("var", "stddev"):
            total = self._sum_refs(item.sum_refs, responses, agg_index)
            sumsq = self._sum_refs(item.sumsq_refs, responses, agg_index)
            count = self._count_refs(item, responses, agg_index)
            if not count or total is None or sumsq is None:
                return None
            mean = total / count
            variance = max(sumsq / count - mean * mean, 0.0)
            return variance if item.kind == "var" else math.sqrt(variance)
        if item.kind in ("min", "max", "median"):
            assert item.extreme_ref is not None and item.extreme_mode is not None
            payload, agg = self._lookup(responses, agg_index, item.extreme_ref)
            value = self._decrypt_extreme(payload, agg, item.extreme_mode)
            if value is not None and item.kind == "median":
                return float(value)
            return value
        raise DecryptionError(f"cannot assemble output kind {item.kind!r}")

    # -- grouped results -------------------------------------------------------------

    def _decode_group_key(self, tq: TranslatedQuery, key: int) -> Any:
        return self._decode_group_keys(tq, [key])[key]

    def _decode_group_keys(self, tq: TranslatedQuery, keys: list[int]) -> dict[int, Any]:
        """Decode every group key in one batch-kernel call (key -> value)."""
        dim = tq.group_dim
        assert dim is not None
        spec = self._state.schema.column(dim)
        arr = np.fromiter(keys, dtype=np.uint64, count=len(keys))
        if tq.group_decode == "plain":
            codes = arr.view(np.int64)
        elif tq.group_decode == "det":
            plan = self._state.enc_schema.plan(dim)
            det = self._factory.det(plan.cipher_column, getattr(plan, "join_group", None))
            codes = det.decrypt_column(arr)
        else:
            raise DecryptionError(f"unknown group decode {tq.group_decode!r}")
        if spec.dtype == "str":
            dictionary = self._state.dictionaries[dim]
            return {
                k: dictionary.value(c)
                for k, c in zip(keys, codes.tolist())
            }
        return dict(zip(keys, codes.tolist()))

    @staticmethod
    def _merge_group_payloads(
        response: srv.ServerResponse, aggs: dict[str, srv.AggOp]
    ) -> dict[int, dict[str, Any]]:
        """Merge inflated (key, suffix) entries back to per-key payloads --
        the client-side half of the group-by optimisation."""
        merged: dict[int, dict[str, list[Any]]] = {}
        for key, _suffix, payloads in response.groups:
            slot = merged.setdefault(key, {alias: [] for alias in aggs})
            for alias, payload in payloads.items():
                if payload is not None:
                    slot[alias].append(payload)
        out: dict[int, dict[str, Any]] = {}
        for key, per_alias in merged.items():
            out[key] = {
                alias: srv.merge_payloads(aggs[alias], pieces)
                for alias, pieces in per_alias.items()
            }
        return out

    def _batch_decrypt_ashe_groups(
        self,
        merged: dict[int, dict[int, dict[str, Any]]],
        agg_index: list[dict[str, srv.AggOp]],
    ) -> dict[tuple[int, str], dict[int, tuple[int, int]]]:
        """Decrypt every group's ASHE payload per alias in one pass.

        Returns ``cache[(request, alias)][group key] = (plaintext, count)``.
        Concatenating every group's chunks, decoding them together, and
        segmenting one big pad array with ``reduceat`` turns thousands of
        per-group decodes into a few numpy passes (the client-side analogue
        of the paper's worker-side batching).
        """
        cache: dict[tuple[int, str], dict[int, tuple[int, int]]] = {}
        for req, per_key in merged.items():
            for alias, agg in agg_index[req].items():
                if not isinstance(agg, srv.AsheSum):
                    continue
                scheme = self._factory.ashe(agg.column)
                keys: list[int] = []
                totals: list[int] = []
                flat_chunks: list[bytes] = []
                chunk_owner: list[int] = []
                for key, payloads in per_key.items():
                    payload = payloads.get(alias)
                    if payload is None:
                        continue
                    keys.append(key)
                    totals.append(payload[1])
                    for chunk in payload[2]:
                        flat_chunks.append(chunk)
                        chunk_owner.append(len(keys) - 1)
                entry: dict[int, tuple[int, int]] = {}
                cache[(req, alias)] = entry
                if not keys:
                    continue
                ids, chunk_counts = decode_chunks_batch(flat_chunks)
                pads = scheme.pad_array(ids)
                nonempty = chunk_counts > 0
                chunk_starts = np.concatenate(
                    [[0], np.cumsum(chunk_counts)[:-1]]
                )[nonempty].astype(np.int64)
                per_chunk = np.zeros(len(flat_chunks), dtype=np.uint64)
                if chunk_starts.size:
                    per_chunk[nonempty] = np.add.reduceat(pads, chunk_starts)
                pad_by_key = np.zeros(len(keys), dtype=np.uint64)
                count_by_key = np.zeros(len(keys), dtype=np.int64)
                owners = np.asarray(chunk_owner, dtype=np.int64)
                np.add.at(pad_by_key, owners, per_chunk)
                np.add.at(count_by_key, owners, chunk_counts)
                for j, key in enumerate(keys):
                    plain = to_signed((totals[j] + int(pad_by_key[j])) & MASK64)
                    entry[key] = (plain, int(count_by_key[j]))
        return cache

    def _assemble_grouped(
        self,
        tq: TranslatedQuery,
        responses: list[srv.ServerResponse],
        agg_index: list[dict[str, srv.AggOp]],
    ) -> list[dict[str, Any]]:
        # Merge every grouped response once, keyed by request index.
        merged: dict[int, dict[int, dict[str, Any]]] = {}
        for req, response in enumerate(responses):
            if response.kind == "grouped":
                merged[req] = self._merge_group_payloads(response, agg_index[req])
        all_keys: set[int] = set()
        for per_key in merged.values():
            all_keys.update(per_key)
        ashe_cache = self._batch_decrypt_ashe_groups(merged, agg_index)
        sorted_keys = sorted(all_keys)
        key_values = self._decode_group_keys(tq, sorted_keys)

        rows: list[dict[str, Any]] = []
        for key in sorted_keys:
            row: dict[str, Any] = {}
            non_empty = False
            for item in tq.outputs:
                if item.kind == "group_key":
                    row[item.name] = key_values[key]
                    continue
                value = self._assemble_group_item(
                    item, key, merged, agg_index, ashe_cache
                )
                row[item.name] = value
                if item.kind == "count":
                    non_empty = non_empty or bool(value)
                else:
                    non_empty = non_empty or value is not None
            if non_empty:
                rows.append(row)
        return rows

    def _assemble_group_item(
        self,
        item: OutputItem,
        key: int,
        merged: dict[int, dict[int, dict[str, Any]]],
        agg_index: list[dict[str, srv.AggOp]],
        ashe_cache: dict[tuple[int, str], dict[int, tuple[int, int]]],
    ) -> Any:
        def lookup(ref: Ref) -> tuple[Any, srv.AggOp]:
            req, alias = ref
            payload = merged.get(req, {}).get(key, {}).get(alias)
            return payload, agg_index[req][alias]

        def decrypted(ref: Ref) -> int | None:
            cached = ashe_cache.get(ref)
            if cached is not None:
                hit = cached.get(key)
                return hit[0] if hit is not None else None
            payload, agg = lookup(ref)
            return self._decrypt_payload(payload, agg)

        def sum_over(refs: list[Ref]) -> int | None:
            total: int | None = None
            for ref in refs:
                value = decrypted(ref)
                if value is not None:
                    total = value if total is None else total + value
            return total

        def count_of() -> int:
            total = 0
            for ref in item.count_refs:
                cached = ashe_cache.get(ref)
                if item.count_mode == "ids" and cached is not None:
                    hit = cached.get(key)
                    total += hit[1] if hit is not None else 0
                    continue
                payload, agg = lookup(ref)
                if item.count_mode == "ids":
                    total += self._count_from_payload(payload)
                else:
                    value = self._decrypt_payload(payload, agg)
                    total += int(value) if value is not None else 0
            return total

        if item.kind == "sum":
            return sum_over(item.sum_refs)
        if item.kind == "count":
            return count_of()
        if item.kind == "avg":
            total = sum_over(item.sum_refs)
            count = count_of()
            return None if not count else total / count
        if item.kind in ("var", "stddev"):
            total = sum_over(item.sum_refs)
            sumsq = sum_over(item.sumsq_refs)
            count = count_of()
            if not count or total is None or sumsq is None:
                return None
            mean = total / count
            variance = max(sumsq / count - mean * mean, 0.0)
            return variance if item.kind == "var" else math.sqrt(variance)
        raise DecryptionError(
            f"output kind {item.kind!r} is unsupported inside GROUP BY"
        )

    # -- SPLASHE group-by -------------------------------------------------------------

    def _assemble_splashe_group(
        self,
        tq: TranslatedQuery,
        responses: list[srv.ServerResponse],
        agg_index: list[dict[str, srv.AggOp]],
    ) -> list[dict[str, Any]]:
        dim = tq.group_dim
        assert dim is not None
        plan = self._state.enc_schema.plan(dim)
        values = plan.values  # type: ignore[union-attr]

        # Enhanced mode: decode the catch-all grouped request per code.
        others_by_code: dict[int, dict[str, Any]] = {}
        if tq.group_request is not None:
            response = responses[tq.group_request]
            merged = self._merge_group_payloads(response, agg_index[tq.group_request])
            det = self._factory.det(plan.det_column)  # type: ignore[union-attr]
            keys = list(merged)
            codes = det.decrypt_column(np.fromiter(keys, dtype=np.uint64, count=len(keys)))
            for key, code in zip(keys, codes.tolist()):
                others_by_code[int(code)] = merged[key]

        def cell_value(item: OutputItem, role: str, code: int) -> Any:
            ref = item.splashe.get(role, {}).get(code)
            if ref is None:
                return None
            req, alias = ref
            agg = agg_index[req][alias]
            if code == -1:
                raise DecryptionError("catch-all cells use cell_value_others")
            payload = responses[req].flat.get(alias)
            return self._decrypt_payload(payload, agg)

        def cell_value_others(item: OutputItem, role: str, code: int) -> Any:
            ref = item.splashe.get(role, {}).get(-1)
            if ref is None:
                return None
            req, alias = ref
            agg = agg_index[req][alias]
            payload = others_by_code.get(code, {}).get(alias)
            return self._decrypt_payload(payload, agg)

        rows: list[dict[str, Any]] = []
        frequent_codes = set(tq.splashe_group_codes)
        all_codes = sorted(frequent_codes | set(others_by_code))
        if tq.group_request is None:
            all_codes = sorted(frequent_codes)
        for code in all_codes:
            from_others = code not in frequent_codes
            reader = cell_value_others if from_others else cell_value
            row: dict[str, Any] = {}
            count_nonzero = False
            for item in tq.outputs:
                if item.kind == "group_key":
                    row[item.name] = values[code]
                    continue
                count = reader(item, "count", code)
                count = int(count) if count else 0
                if item.kind == "count":
                    row[item.name] = count
                elif item.kind == "sum":
                    total = reader(item, "sum", code)
                    row[item.name] = total if count else None
                elif item.kind == "avg":
                    total = reader(item, "sum", code)
                    row[item.name] = (
                        total / count if count and total is not None else None
                    )
                else:
                    raise DecryptionError(
                        f"{item.kind!r} is unsupported under SPLASHE group-by"
                    )
                count_nonzero = count_nonzero or count > 0
            if count_nonzero:
                rows.append(row)
        return rows
