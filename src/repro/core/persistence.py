"""Client-state (de)serialisation for persistent encrypted tables.

A stored table has two halves:

- the **server half** -- ciphertext column files plus a public manifest,
  written by :mod:`repro.engine.store`; safe to hand to untrusted cloud
  storage as-is (the paper's upload-once model, Section 5);
- the **client half** -- the plaintext schema, the planner's encrypted
  schema, dictionary encoders, and the row-ID cursor.  This is the proxy
  state of Section 4.2 that lets a fresh session attach to the stored
  ciphertexts *without re-encrypting anything*.  It contains plaintext
  dictionary values, so in a real deployment this sidecar stays on the
  trusted side (or is itself encrypted); it never contains key material.

No key is ever written.  Instead the sidecar records a *key-check* value
derived from the session keychain, so attaching with the wrong master key
fails with :class:`~repro.errors.StorageError` instead of decrypting
garbage.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.core import schema as sc
from repro.core.encryptor import ClientTableState
from repro.crypto.det import DictionaryEncoder
from repro.crypto.keys import KeyChain
from repro.engine.storage import atomic_write_json
from repro.errors import StorageError

SIDECAR_NAME = "client_state.json"
SIDECAR_FORMAT = "seabed-client-state"
SIDECAR_VERSION = 1

# A sharded table's sidecar lives at the *sharded root* (above the
# per-node directories) and embeds the ordinary client state plus the
# topology and per-shard row cursors; see write_sharded_sidecar.
SHARDED_SIDECAR_NAME = "sharded_state.json"
SHARDED_FORMAT = "seabed-sharded-state"
SHARDED_VERSION = 1

_PLAN_CLASSES: dict[str, type] = {
    "plain": sc.PlainPlan,
    "ashe": sc.AshePlan,
    "paillier": sc.PaillierPlan,
    "det": sc.DetPlan,
    "ore": sc.OrePlan,
    "splashe_basic": sc.SplasheBasicPlan,
    "splashe_enhanced": sc.SplasheEnhancedPlan,
}


def key_check_value(keychain: KeyChain, table: str) -> str:
    """Hex check value proving a keychain can decrypt a stored table."""
    return keychain.derive(table, "__store__", "key-check").hex()


# ---------------------------------------------------------------------------
# Column plans
# ---------------------------------------------------------------------------


def plan_to_dict(plan: sc.ColumnPlan) -> dict[str, Any]:
    out: dict[str, Any] = {"kind": plan.kind, "column": plan.column}
    if isinstance(plan, (sc.AshePlan, sc.PaillierPlan)):
        out.update(
            cipher_column=plan.cipher_column,
            squares_column=plan.squares_column,
            ore_column=plan.ore_column,
            det_column=plan.det_column,
        )
    elif isinstance(plan, sc.DetPlan):
        out.update(
            cipher_column=plan.cipher_column,
            dtype=plan.dtype,
            join_group=plan.join_group,
        )
    elif isinstance(plan, sc.OrePlan):
        out.update(cipher_column=plan.cipher_column, nbits=plan.nbits)
    elif isinstance(plan, sc.SplasheBasicPlan):
        out.update(
            values=plan.values,
            indicator_columns=plan.indicator_columns,
            measure_columns=plan.measure_columns,
        )
    elif isinstance(plan, sc.SplasheEnhancedPlan):
        out.update(
            values=plan.values,
            frequent_codes=plan.frequent_codes,
            det_column=plan.det_column,
            # JSON objects have string keys; code-keyed maps are stored
            # as pair lists so the integer codes survive the round trip.
            indicator_columns=sorted(plan.indicator_columns.items()),
            others_indicator=plan.others_indicator,
            measure_columns={
                measure: sorted(per_code.items())
                for measure, per_code in plan.measure_columns.items()
            },
            others_measure=plan.others_measure,
        )
    elif not isinstance(plan, sc.PlainPlan):
        raise StorageError(f"cannot serialise plan kind {plan.kind!r}")
    return out


def plan_from_dict(data: dict[str, Any]) -> sc.ColumnPlan:
    kind = data.get("kind")
    cls = _PLAN_CLASSES.get(kind)
    if cls is None:
        raise StorageError(f"unknown column-plan kind {kind!r} in client state")
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    if kind == "splashe_enhanced":
        kwargs["indicator_columns"] = {
            int(code): col for code, col in kwargs["indicator_columns"]
        }
        kwargs["measure_columns"] = {
            measure: {int(code): col for code, col in per_code}
            for measure, per_code in kwargs["measure_columns"].items()
        }
    return cls(**kwargs)


# ---------------------------------------------------------------------------
# Schemas and dictionaries
# ---------------------------------------------------------------------------


def _spec_to_dict(spec: sc.ColumnSpec) -> dict[str, Any]:
    return {
        "name": spec.name,
        "dtype": spec.dtype,
        "sensitive": spec.sensitive,
        "distinct_values": spec.distinct_values,
        # Pair list: JSON would stringify integer keys of a plain object.
        "value_counts": (
            None
            if spec.value_counts is None
            else [[k, int(v)] for k, v in spec.value_counts.items()]
        ),
        "max_abs": spec.max_abs,
        "nbits": spec.nbits,
    }


def _spec_from_dict(data: dict[str, Any]) -> sc.ColumnSpec:
    counts = data.get("value_counts")
    return sc.ColumnSpec(
        name=data["name"],
        dtype=data["dtype"],
        sensitive=data["sensitive"],
        distinct_values=data["distinct_values"],
        value_counts=None if counts is None else {k: v for k, v in counts},
        max_abs=data["max_abs"],
        nbits=data["nbits"],
    )


def _dictionary_to_list(encoder: DictionaryEncoder) -> list[Any]:
    values = [encoder.value(code) for code in range(encoder.cardinality)]
    for v in values:
        if not isinstance(v, (str, int)):
            raise StorageError(
                f"dictionary value {v!r} ({type(v).__name__}) is not "
                "JSON-serialisable"
            )
    return values


def _dictionary_from_list(values: list[Any]) -> DictionaryEncoder:
    encoder = DictionaryEncoder()
    for value in values:  # codes are first-seen order
        encoder.code(value)
    return encoder


# ---------------------------------------------------------------------------
# The sidecar
# ---------------------------------------------------------------------------


def state_to_dict(
    state: ClientTableState,
    mode: str,
    prf_backend: str,
    keychain: KeyChain,
    paillier_n: int | None = None,
) -> dict[str, Any]:
    return {
        "format": SIDECAR_FORMAT,
        "version": SIDECAR_VERSION,
        "mode": mode,
        "prf_backend": prf_backend,
        "key_check": key_check_value(keychain, state.schema.name),
        # The Paillier public modulus is public material; recording it lets
        # attach fail fast when the session holds a different key pair.
        "paillier_n": None if paillier_n is None else str(paillier_n),
        "schema": {
            "name": state.schema.name,
            "columns": [_spec_to_dict(spec) for spec in state.schema.columns],
        },
        "enc_schema": {
            "table": state.enc_schema.table,
            "mode": state.enc_schema.mode,
            "plans": {
                name: plan_to_dict(plan)
                for name, plan in state.enc_schema.plans.items()
            },
            "warnings": list(state.enc_schema.warnings),
        },
        "dictionaries": {
            name: _dictionary_to_list(encoder)
            for name, encoder in state.dictionaries.items()
        },
        "next_row_id": state.next_row_id,
        "num_rows": state.num_rows,
    }


def state_from_dict(data: dict[str, Any]) -> tuple[ClientTableState, dict[str, Any]]:
    """Rebuild the client state; returns ``(state, attach_info)`` where
    ``attach_info`` carries mode / prf_backend / key_check for the session
    to verify before registering the table."""
    if data.get("format") != SIDECAR_FORMAT:
        raise StorageError("not a seabed client-state sidecar")
    version = data.get("version")
    if version != SIDECAR_VERSION:
        raise StorageError(
            f"client-state version {version!r} is not readable by this build "
            f"(expected {SIDECAR_VERSION})"
        )
    schema = sc.TableSchema(
        data["schema"]["name"],
        [_spec_from_dict(spec) for spec in data["schema"]["columns"]],
    )
    enc = data["enc_schema"]
    enc_schema = sc.EncryptedSchema(
        table=enc["table"],
        mode=enc["mode"],
        plans={name: plan_from_dict(plan) for name, plan in enc["plans"].items()},
        warnings=list(enc["warnings"]),
    )
    state = ClientTableState(
        schema=schema,
        enc_schema=enc_schema,
        dictionaries={
            name: _dictionary_from_list(values)
            for name, values in data["dictionaries"].items()
        },
        next_row_id=int(data["next_row_id"]),
        num_rows=int(data["num_rows"]),
    )
    paillier_n = data.get("paillier_n")
    attach_info = {
        "mode": data["mode"],
        "prf_backend": data["prf_backend"],
        "key_check": data["key_check"],
        "paillier_n": None if paillier_n is None else int(paillier_n),
    }
    return state, attach_info


def write_sidecar(
    store_path: str,
    state: ClientTableState,
    mode: str,
    prf_backend: str,
    keychain: KeyChain,
    paillier_n: int | None = None,
) -> str:
    """Atomically (re)write the client-state sidecar.

    This is the *commit record* of incremental ingestion: an appended
    generation counts as durable only once the sidecar's row watermark
    (``num_rows`` / ``next_row_id``, plus any dictionary growth) lands
    here -- hence the durable publish primitive shared with the store
    manifest.
    """
    target = os.path.join(store_path, SIDECAR_NAME)
    atomic_write_json(
        target, state_to_dict(state, mode, prf_backend, keychain, paillier_n)
    )
    return target


def write_sharded_sidecar(
    root: str,
    state: ClientTableState,
    mode: str,
    prf_backend: str,
    keychain: KeyChain,
    topology: dict[str, Any],
    shard_cursors: dict[int, dict[str, int]],
    paillier_n: int | None = None,
) -> str:
    """Atomically (re)write a sharded table's client-state sidecar.

    Same role as :func:`write_sidecar` -- the commit record of sharded
    ingestion -- plus the distribution half a fresh session needs to
    rebuild the worker fleet: the ring ``topology`` (as produced by
    ``ShardTopology.to_dict``) and one ``{"next_row_id", "num_rows"}``
    cursor per shard (shard row-ID spaces are disjoint strides, so every
    shard keeps its own high-water mark).  A shard generation counts as
    durable only once its cursor lands here; uncommitted tails are
    truncated by the next reconcile.
    """
    payload = state_to_dict(state, mode, prf_backend, keychain, paillier_n)
    payload["format"] = SHARDED_FORMAT
    payload["version"] = SHARDED_VERSION
    payload["sharding"] = {
        "topology": dict(topology),
        "shards": {
            str(shard): {
                "next_row_id": int(cursor["next_row_id"]),
                "num_rows": int(cursor["num_rows"]),
            }
            for shard, cursor in shard_cursors.items()
        },
    }
    target = os.path.join(root, SHARDED_SIDECAR_NAME)
    atomic_write_json(target, payload)
    return target


def read_sharded_payload(root: str) -> dict[str, Any]:
    """The raw (still-JSON) sharded-sidecar payload at ``root``.

    The transport-facing half of :func:`read_sharded_sidecar`: payloads
    are key-free by construction, so they may ship over the wire as-is
    and be parsed client-side by :func:`sharded_from_dict`.
    """
    target = os.path.join(root, SHARDED_SIDECAR_NAME)
    try:
        with open(target) as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise StorageError(
            f"no sharded table at {root!r}: the sharded client-state "
            "sidecar is missing"
        ) from None
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt sharded client-state sidecar: {exc}") from None


def read_sharded_sidecar(
    root: str,
) -> tuple[ClientTableState, dict[str, Any], dict[str, Any]]:
    """Read a sharded sidecar: ``(state, attach_info, sharding)``.

    ``sharding`` carries ``topology`` (a ``ShardTopology.to_dict``
    payload) and ``shards`` -- per-shard cursors keyed by ``int`` shard
    id (JSON stringifies them; this undoes that).
    """
    return sharded_from_dict(read_sharded_payload(root))


def sharded_from_dict(
    data: dict[str, Any],
) -> tuple[ClientTableState, dict[str, Any], dict[str, Any]]:
    """Parse a sharded-sidecar payload (see :func:`read_sharded_payload`)."""
    if data.get("format") != SHARDED_FORMAT:
        raise StorageError("not a seabed sharded client-state sidecar")
    if data.get("version") != SHARDED_VERSION:
        raise StorageError(
            f"sharded client-state version {data.get('version')!r} is not "
            f"readable by this build (expected {SHARDED_VERSION})"
        )
    sharding = data["sharding"]
    sharding = {
        "topology": dict(sharding["topology"]),
        "shards": {
            int(shard): {
                "next_row_id": int(cursor["next_row_id"]),
                "num_rows": int(cursor["num_rows"]),
            }
            for shard, cursor in sharding["shards"].items()
        },
    }
    # The embedded client state is the ordinary single-table format.
    base = dict(data)
    base["format"] = SIDECAR_FORMAT
    base["version"] = SIDECAR_VERSION
    state, attach_info = state_from_dict(base)
    return state, attach_info, sharding


def read_sidecar_payload(store_path: str) -> dict[str, Any]:
    """The raw (still-JSON) sidecar payload of the store at ``store_path``.

    The transport-facing half of :func:`read_sidecar`: sidecars are
    key-free by construction, so the payload may ship over the wire
    as-is and be parsed client-side by :func:`state_from_dict`.
    """
    target = os.path.join(store_path, SIDECAR_NAME)
    try:
        with open(target) as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise StorageError(
            f"store at {store_path!r} has no client-state sidecar; it cannot "
            "be attached without re-planning"
        ) from None
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt client-state sidecar: {exc}") from None


def write_sidecar_payload(store_path: str, payload: dict[str, Any]) -> str:
    """Atomically write an already-built sidecar payload (see
    :func:`write_sidecar`); this is how transports commit on behalf of a
    session that may live in another process."""
    if payload.get("format") != SIDECAR_FORMAT:
        raise StorageError("refusing to write a non-client-state payload as a sidecar")
    target = os.path.join(store_path, SIDECAR_NAME)
    atomic_write_json(target, payload)
    return target


def read_sidecar(store_path: str) -> tuple[ClientTableState, dict[str, Any]]:
    return state_from_dict(read_sidecar_payload(store_path))
