"""SPLASHE column transforms (paper Sections 3.3, 3.4, Appendix A.2).

Pure data transforms, independent of the crypto: given a dimension's code
column (dense integer codes) and the measure columns aggregated under it,
produce the splayed plaintext columns that the encryption module then
ASHE-encrypts.  Also implements the planner-side math:

- :func:`choose_k` -- the minimal number of splayed columns such that the
  frequent rows donate enough "dummy" DET cells to pad every infrequent
  value to the same frequency (Section 3.4):
  minimal ``k`` with ``sum_{i<=k} n_i >= sum_{i>k} (n_{k+1} - n_i)``.
- :func:`balance_det_codes` -- the dummy-entry assignment: rows holding
  frequent values receive deterministic encryptions of infrequent values,
  equalising every infrequent value's ciphertext frequency (to within one,
  for leftover cells, distributed round-robin then shuffled).
- storage estimators used by the planner's budget and Figure 10(b).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanningError

_I64 = np.int64


def choose_k(counts_desc: list[int]) -> int:
    """Minimal k so the top-k rows can pad the rest to uniform frequency.

    ``counts_desc`` are the per-value occurrence counts sorted descending.
    Returns a value in ``[0, d]``; ``k = 0`` is possible only for an
    already-uniform distribution and ``k = d`` degenerates to basic
    SPLASHE.  The paper notes such a ``k`` always exists; the more skewed
    the distribution, the smaller the ``k``.
    """
    if any(c < 0 for c in counts_desc):
        raise PlanningError("negative value counts")
    if sorted(counts_desc, reverse=True) != list(counts_desc):
        raise PlanningError("counts must be sorted in non-increasing order")
    d = len(counts_desc)
    prefix = 0
    for k in range(0, d + 1):
        threshold = counts_desc[k] if k < d else 0
        needed = sum(threshold - c for c in counts_desc[k:])
        if prefix >= needed:
            return k
        if k < d:
            prefix += counts_desc[k]
    return d


def padding_threshold(counts_desc: list[int], k: int) -> int:
    """The uniform frequency target for the infrequent values: n_{k+1}."""
    if k >= len(counts_desc):
        return 0
    return counts_desc[k]


def balance_det_codes(
    codes: np.ndarray,
    frequent_codes: list[int],
    cardinality: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Build the frequency-balanced DET code column (Section 3.4).

    Rows holding an infrequent value keep their true code.  Rows holding a
    frequent value are "unused" for DET purposes; they are filled with
    infrequent codes so every infrequent value reaches the same count,
    leftover cells being spread round-robin (keeping counts within one of
    each other) and the assignment randomly placed.

    With no infrequent values at all the column carries no information;
    it is filled with uniformly random codes so it still looks balanced.
    """
    codes = np.asarray(codes, dtype=_I64)
    if codes.size and (codes.min() < 0 or codes.max() >= cardinality):
        raise PlanningError("dimension codes out of range")
    frequent = set(frequent_codes)
    infrequent = [v for v in range(cardinality) if v not in frequent]
    det = codes.copy()
    free_mask = np.isin(codes, np.asarray(sorted(frequent), dtype=_I64))
    free_positions = np.flatnonzero(free_mask)

    if not infrequent:
        det[free_positions] = rng.integers(0, max(cardinality, 1), free_positions.size)
        return det

    counts = np.bincount(codes, minlength=cardinality)
    target = int(counts[infrequent].max()) if len(infrequent) else 0
    fills: list[int] = []
    for v in infrequent:
        fills.extend([v] * (target - int(counts[v])))
    leftover = free_positions.size - len(fills)
    if leftover < 0:
        raise PlanningError(
            f"cannot balance DET column: need {len(fills)} dummy cells but only "
            f"{free_positions.size} rows hold frequent values (k too small "
            "for this batch's distribution)"
        )
    for i in range(leftover):
        fills.append(infrequent[i % len(infrequent)])
    fill_arr = np.asarray(fills, dtype=_I64)
    rng.shuffle(fill_arr)
    det[free_positions] = fill_arr
    return det


def splay_indicators(codes: np.ndarray, cardinality: int) -> list[np.ndarray]:
    """Basic SPLASHE: one 0/1 indicator column per dimension value."""
    codes = np.asarray(codes, dtype=_I64)
    return [(codes == v).astype(_I64) for v in range(cardinality)]


def splay_measure(
    codes: np.ndarray, measure: np.ndarray, cardinality: int
) -> list[np.ndarray]:
    """Basic SPLASHE: measure value in its own value's column, 0 elsewhere."""
    codes = np.asarray(codes, dtype=_I64)
    measure = np.asarray(measure, dtype=_I64)
    if codes.shape != measure.shape:
        raise PlanningError("dimension and measure columns differ in length")
    return [np.where(codes == v, measure, 0).astype(_I64) for v in range(cardinality)]


def splay_enhanced_indicators(
    codes: np.ndarray, frequent_codes: list[int], cardinality: int
) -> tuple[dict[int, np.ndarray], np.ndarray]:
    """Enhanced SPLASHE indicators: per-frequent-value columns plus one
    "others" indicator flagging rows whose true value is infrequent."""
    codes = np.asarray(codes, dtype=_I64)
    per_frequent = {v: (codes == v).astype(_I64) for v in frequent_codes}
    frequent_arr = np.asarray(sorted(frequent_codes), dtype=_I64)
    others = (~np.isin(codes, frequent_arr)).astype(_I64)
    return per_frequent, others


def splay_enhanced_measure(
    codes: np.ndarray,
    measure: np.ndarray,
    frequent_codes: list[int],
    cardinality: int,
) -> tuple[dict[int, np.ndarray], np.ndarray]:
    """Enhanced SPLASHE measures: per-frequent-value columns plus the
    "others" column carrying the measure for infrequent rows (0 for
    frequent and dummy rows, preserving aggregate correctness)."""
    codes = np.asarray(codes, dtype=_I64)
    measure = np.asarray(measure, dtype=_I64)
    per_frequent = {
        v: np.where(codes == v, measure, 0).astype(_I64) for v in frequent_codes
    }
    frequent_arr = np.asarray(sorted(frequent_codes), dtype=_I64)
    others = np.where(np.isin(codes, frequent_arr), 0, measure).astype(_I64)
    return per_frequent, others


# ---------------------------------------------------------------------------
# Storage model (planner budget + Figure 10b)
# ---------------------------------------------------------------------------

BYTES_PER_CELL = 8  # ASHE and DET ciphertexts are one uint64 each


def basic_storage_cells(cardinality: int, num_measures: int) -> int:
    """Physical columns for basic SPLASHE: d indicators + d per measure."""
    return cardinality * (1 + num_measures)


def enhanced_storage_cells(k: int, num_measures: int) -> int:
    """Enhanced SPLASHE: (k+1) indicators + (k+1) per measure + DET col."""
    return (k + 1) * (1 + num_measures) + 1


def plain_storage_cells(num_measures: int) -> int:
    """The unsplayed baseline: the dimension plus its measures."""
    return 1 + num_measures


def storage_overhead_factor(
    cardinality: int, num_measures: int, k: int | None = None
) -> float:
    """Column blow-up factor for splaying one dimension (Figure 10b).

    ``k is None`` means basic SPLASHE.
    """
    base = plain_storage_cells(num_measures)
    if k is None:
        return basic_storage_cells(cardinality, num_measures) / base
    return enhanced_storage_cells(k, num_measures) / base
