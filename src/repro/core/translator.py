"""The query translator (paper Section 4.4, Table 2).

Rewrites a plaintext :class:`~repro.query.ast.Query` into one or more
:class:`~repro.core.server.ServerQuery` requests plus an output program
the decryption module interprets.  The three rewrites Table 2 highlights
all happen here:

1. **ID preservation** -- every ASHE aggregate implicitly carries the row
   identifier column (our server ops track IDs natively).
2. **SPLASHE rewriting** -- equality predicates on splayed dimensions
   vanish; the aggregation retargets the per-value splayed columns (plus a
   DET filter on the catch-all column for enhanced-SPLASHE infrequent
   values, each of which becomes its own small request).
3. **Group-by optimisation** -- when the expected number of groups is
   smaller than the worker count, group keys are inflated with a
   pseudo-random suffix (Section 4.5) and the client merges the inflated
   groups back together.

Constants are encrypted with the matching scheme's token function, so the
server sees only ciphertext comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.core import schema as sc
from repro.core import server as srv
from repro.core.crypto_factory import CryptoFactory
from repro.core.encryptor import ClientTableState
from repro.errors import TranslationError
from repro.ops import OPS
from repro.query.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Not,
    Or,
    Param,
    Predicate,
    Query,
    predicate_columns,
)

#: (request index, server alias)
Ref = tuple[int, str]


@dataclass(frozen=True, eq=False)
class ParamFilter:
    """A client-side placeholder in a translated filter tree.

    Holds the :class:`~repro.query.ast.Param` names it consumes plus a
    ``build`` closure that turns concrete values into the real
    server-side :data:`~repro.core.server.FilterExpr` (one token
    encryption per value -- all plan lookups and predicate splitting
    already happened at translation time).  These never reach the
    server: :func:`bind_filter` replaces them before execution.
    """

    params: tuple[str, ...]
    build: Callable[..., srv.FilterExpr]


def filter_params(expr: Any) -> tuple[str, ...]:
    """Parameter names a (possibly templated) filter tree consumes, in
    left-to-right order."""
    names: list[str] = []

    def visit(node: Any) -> None:
        if node is None:
            return
        if isinstance(node, ParamFilter):
            names.extend(n for n in node.params if n not in names)
        elif isinstance(node, (srv.FilterAnd, srv.FilterOr)):
            for child in node.children:
                visit(child)
        elif isinstance(node, srv.FilterNot):
            visit(node.child)

    visit(expr)
    return tuple(names)


def bind_filter(expr: Any, values: Mapping[str, Any]) -> srv.FilterExpr | None:
    """Substitute concrete values for every :class:`ParamFilter` slot."""
    if expr is None:
        return None
    if isinstance(expr, ParamFilter):
        try:
            args = [values[name] for name in expr.params]
        except KeyError as missing:
            raise TranslationError(
                f"no value bound for parameter {missing.args[0]!r}"
            ) from None
        return bind_filter(expr.build(*args), values)
    if isinstance(expr, srv.FilterAnd):
        return srv.FilterAnd(tuple(bind_filter(c, values) for c in expr.children))
    if isinstance(expr, srv.FilterOr):
        return srv.FilterOr(tuple(bind_filter(c, values) for c in expr.children))
    if isinstance(expr, srv.FilterNot):
        return srv.FilterNot(bind_filter(expr.child, values))
    return expr


def bind_requests(
    requests: list[srv.ServerQuery], values: Mapping[str, Any]
) -> list[srv.ServerQuery]:
    """Re-bind a translated request list; requests without parameter
    slots are shared, parameterised ones get a fresh filter tree."""
    bound: list[srv.ServerQuery] = []
    for request in requests:
        if filter_params(request.filter):
            bound.append(replace(request, filter=bind_filter(request.filter, values)))
        else:
            bound.append(request)
    return bound


@dataclass
class OutputItem:
    """One output column and where its decrypted ingredients come from.

    ``sum_refs`` entries are decrypted and added together (a SPLASHE IN
    selection contributes one ref per selected code).  ``count_mode``
    distinguishes counts carried as values (plain counts, indicator sums)
    from counts read off an ASHE ID list for free.
    """

    name: str
    kind: str  # group_key | sum | count | avg | var | stddev | min | max | median
    measure: str | None = None
    sum_refs: list[Ref] = field(default_factory=list)
    sumsq_refs: list[Ref] = field(default_factory=list)
    count_refs: list[Ref] = field(default_factory=list)
    count_mode: str = "value"  # "value" | "ids"
    extreme_ref: Ref | None = None
    extreme_mode: str | None = None  # plain | ashe | paillier
    # splashe_group shape: role -> {code: ref}; code -1 = the enhanced-mode
    # grouped request over the catch-all columns.
    splashe: dict[str, dict[int, Ref]] = field(default_factory=dict)


@dataclass
class TranslatedQuery:
    query: Query
    requests: list[srv.ServerQuery]
    outputs: list[OutputItem]
    shape: str  # "flat" | "grouped" | "splashe_group"
    group_dim: str | None = None
    group_request: int | None = None  # request carrying grouped results
    group_decode: str | None = None  # "plain" | "det" | "splashe_det"
    inflation: int = 1
    splashe_group_codes: list[int] = field(default_factory=list)
    category: str = "S"  # S | CPre | CPost | 2R (paper Tables 4 and 6)


@dataclass
class _Selector:
    """Equality selection on a SPLASHE dimension: the selected codes."""

    plan: sc.SplasheBasicPlan | sc.SplasheEnhancedPlan
    codes: list[int]


def _max_category(a: str, b: str) -> str:
    order = {"S": 0, "CPre": 1, "CPost": 2, "2R": 3}
    return a if order[a] >= order[b] else b


def inflation_factor(expected_groups: int, cores: int) -> int:
    """Section 4.5: inflate the group count to roughly the worker count
    when the result is expected to have fewer groups than workers."""
    if expected_groups <= 0 or expected_groups >= cores:
        return 1
    return max(1, -(-cores // expected_groups))


class QueryTranslator:
    """Translator bound to one table's client-side state."""

    def __init__(
        self,
        state: ClientTableState,
        factory: CryptoFactory,
        paillier_n_squared: int | None = None,
        join_context: tuple[ClientTableState, CryptoFactory] | None = None,
    ):
        self._state = state
        self._factory = factory
        self._n2 = paillier_n_squared
        self._join_state = join_context[0] if join_context else None
        self._join_factory = join_context[1] if join_context else None
        self._alias_counter = 0

    # -- public API ---------------------------------------------------------

    def translate(
        self,
        query: Query,
        cores: int = 16,
        expected_groups: int | None = None,
        join: srv.ServerJoin | None = None,
    ) -> TranslatedQuery:
        OPS.bump("translate")
        self._alias_counter = 0
        if query.table != self._state.schema.name:
            raise TranslationError(
                f"query targets table {query.table!r} but this translator is "
                f"bound to {self._state.schema.name!r}"
            )
        if not query.is_aggregation():
            raise TranslationError(
                "projection queries are not server-computable over encrypted "
                "data; only aggregation queries are supported"
            )
        if query.join is not None and join is None:
            raise TranslationError(
                "join queries need a ServerJoin; use SeabedClient.query, "
                "which resolves cross-table join keys"
            )
        base_filter, selectors = self.split_predicate(query.where)
        if query.group_by:
            return self._translate_grouped(
                query, base_filter, selectors, join, cores, expected_groups
            )
        return self._translate_flat(query, base_filter, selectors, join)

    # -- helpers ----------------------------------------------------------------

    def _fresh_alias(self) -> str:
        alias = f"a{self._alias_counter}"
        self._alias_counter += 1
        return alias

    def _plan(self, column: str) -> sc.ColumnPlan:
        plan = self._state.enc_schema.plans.get(column)
        if plan is None and self._join_state is not None:
            plan = self._join_state.enc_schema.plans.get(column)
        if plan is None:
            return self._state.enc_schema.plan(column)  # raises with context
        return plan

    def _spec(self, column: str) -> sc.ColumnSpec:
        if any(c.name == column for c in self._state.schema.columns):
            return self._state.schema.column(column)
        if self._join_state is not None:
            return self._join_state.schema.column(column)
        return self._state.schema.column(column)

    def _factory_of(self, column: str) -> CryptoFactory:
        if column in self._state.enc_schema.plans:
            return self._factory
        if self._join_state is not None and column in self._join_state.enc_schema.plans:
            assert self._join_factory is not None
            return self._join_factory
        return self._factory

    def _dict_of(self, column: str):
        enc = self._state.dictionaries.get(column)
        if enc is None and self._join_state is not None:
            enc = self._join_state.dictionaries.get(column)
        return enc

    @property
    def _mode(self) -> str:
        return self._state.enc_schema.mode

    # -- predicate handling ------------------------------------------------------

    def split_predicate(
        self, pred: Predicate | None
    ) -> tuple[srv.FilterExpr | None, list[_Selector]]:
        """Separate SPLASHE equality selections (handled by column
        retargeting) from server-filterable predicates.

        Public API: the proxy's scan path uses it to reject projections
        over SPLASHE dimensions and to obtain the server-side filter.
        Returns ``(filter expression or None, merged SPLASHE selectors)``.
        """
        if pred is None:
            return None, []
        conjuncts = list(pred.children) if isinstance(pred, And) else [pred]
        filters: list[srv.FilterExpr] = []
        selectors: list[_Selector] = []
        for node in conjuncts:
            splayed = self._try_splashe_selector(node)
            if splayed is not None:
                selectors.append(splayed)
                continue
            filters.append(self._translate_filter(node))
        merged = self._merge_selectors(selectors)
        if not filters:
            return None, merged
        if len(filters) == 1:
            return filters[0], merged
        return srv.FilterAnd(tuple(filters)), merged

    @staticmethod
    def _merge_selectors(selectors: list[_Selector]) -> list[_Selector]:
        by_dim: dict[str, _Selector] = {}
        for sel in selectors:
            existing = by_dim.get(sel.plan.column)
            if existing is None:
                by_dim[sel.plan.column] = sel
            else:
                existing.codes = sorted(set(existing.codes) & set(sel.codes))
        return list(by_dim.values())

    def _try_splashe_selector(self, node: Predicate) -> _Selector | None:
        if isinstance(node, Comparison) and node.op in ("=", "!="):
            plan = self._maybe_splashe_plan(node.column)
            if plan is None:
                return None
            self._reject_splashe_param(node.column, (node.value,))
            code = plan.code_of(node.value)
            if node.op == "=":
                codes = [code] if code is not None else []
            else:
                codes = [c for c in range(plan.cardinality) if c != code]
            return _Selector(plan=plan, codes=codes)
        if isinstance(node, InList):
            plan = self._maybe_splashe_plan(node.column)
            if plan is None:
                return None
            self._reject_splashe_param(node.column, node.values)
            codes = sorted(
                {c for v in node.values if (c := plan.code_of(v)) is not None}
            )
            return _Selector(plan=plan, codes=codes)
        return None

    @staticmethod
    def _reject_splashe_param(column: str, values: tuple[Any, ...]) -> None:
        """SPLASHE selections retarget whole columns -- the value decides
        the *structure* of the translated requests, so a late-bound
        parameter cannot work there."""
        if any(isinstance(v, Param) for v in values):
            raise TranslationError(
                f"column {column!r} is SPLASHE-planned; its predicate value "
                "selects which splayed columns are aggregated, so it cannot "
                "be a parameter -- inline the literal instead"
            )

    def _maybe_splashe_plan(
        self, column: str
    ) -> sc.SplasheBasicPlan | sc.SplasheEnhancedPlan | None:
        plan = self._state.enc_schema.plans.get(column)
        if plan is not None and plan.kind in ("splashe_basic", "splashe_enhanced"):
            return plan  # type: ignore[return-value]
        return None

    def _mentions_splashe(self, node: Predicate) -> bool:
        return any(
            self._maybe_splashe_plan(c) is not None
            for c in predicate_columns(node)
        )

    def _translate_filter(self, node: Predicate) -> srv.FilterExpr:
        if isinstance(node, Comparison):
            return self._translate_comparison(node)
        if isinstance(node, InList):
            return self._translate_in(node)
        if isinstance(node, Between):
            return srv.FilterAnd((
                self._translate_comparison(Comparison(node.column, ">=", node.low)),
                self._translate_comparison(Comparison(node.column, "<=", node.high)),
            ))
        if isinstance(node, Not):
            return srv.FilterNot(self._translate_filter(node.child))
        if isinstance(node, And):
            return srv.FilterAnd(tuple(self._translate_filter(c) for c in node.children))
        if isinstance(node, Or):
            if self._mentions_splashe(node):
                raise TranslationError(
                    "SPLASHE dimensions may only appear as top-level AND "
                    "conjuncts (the paper's rewrite rule)"
                )
            return srv.FilterOr(tuple(self._translate_filter(c) for c in node.children))
        raise TranslationError(f"unsupported predicate node {type(node).__name__}")

    def _translate_comparison(self, node: Comparison) -> srv.FilterExpr | ParamFilter:
        plan = self._plan(node.column)
        spec = self._spec(node.column)
        factory = self._factory_of(node.column)
        if isinstance(node.value, Param):
            return self._param_comparison(node, plan)
        if plan.kind == "plain":
            value: Any = node.value
            if spec.dtype == "str":
                value = self._dictionary_code(node.column, node.value)
            return srv.PlainCmp(plan.column, node.op, value)
        if plan.kind in ("splashe_basic", "splashe_enhanced"):
            raise TranslationError(
                f"predicate {node.op!r} on SPLASHE dimension {node.column!r} "
                "is only supported as a top-level equality"
            )
        if plan.kind == "det":
            if node.op not in ("=", "!="):
                raise TranslationError(
                    f"DET column {node.column!r} supports only equality, "
                    f"not {node.op!r}"
                )
            code = self._det_code(node.column, node.value)
            det = factory.det(plan.cipher_column, plan.join_group)
            return srv.DetEq(plan.cipher_column, det.token(code),
                             negate=node.op == "!=")
        if plan.kind == "ore":
            ore = factory.ore(plan.cipher_column, nbits=plan.nbits)
            return srv.OreCmp(plan.cipher_column, node.op,
                              ore.token(int(node.value)), plan.nbits)
        if plan.kind in ("ashe", "paillier"):
            if plan.ore_column is not None:
                ore = factory.ore(plan.ore_column, nbits=spec.nbits)
                return srv.OreCmp(plan.ore_column, node.op,
                                  ore.token(int(node.value)), spec.nbits)
            if plan.det_column is not None and node.op in ("=", "!="):
                det = factory.det(plan.det_column)
                return srv.DetEq(plan.det_column, det.token(int(node.value)),
                                 negate=node.op == "!=")
            raise TranslationError(
                f"measure {node.column!r} was not planned for filtering; "
                "include such a predicate in the sample queries"
            )
        raise TranslationError(f"cannot filter on plan kind {plan.kind!r}")

    def _param_comparison(
        self, node: Comparison, plan: sc.ColumnPlan
    ) -> ParamFilter:
        """Template a comparison whose value binds later.

        All structural decisions -- which physical column, which scheme,
        whether the op is supported -- are validated here, once; the
        returned slot's ``build`` only encrypts one token per execution.
        """
        self._validate_filterable(node.column, node.op, plan)
        column, op = node.column, node.op

        def build(value: Any) -> srv.FilterExpr:
            return self._translate_comparison(Comparison(column, op, value))

        assert isinstance(node.value, Param)
        return ParamFilter(params=(node.value.name,), build=build)

    def _validate_filterable(
        self, column: str, op: str, plan: sc.ColumnPlan
    ) -> None:
        """Raise the same errors a concrete translation would, so a bad
        prepared query fails at prepare time rather than first execute."""
        if plan.kind in ("splashe_basic", "splashe_enhanced"):
            raise TranslationError(
                f"predicate {op!r} on SPLASHE dimension {column!r} "
                "is only supported as a top-level equality"
            )
        if plan.kind == "det" and op not in ("=", "!="):
            raise TranslationError(
                f"DET column {column!r} supports only equality, not {op!r}"
            )
        if plan.kind in ("ashe", "paillier"):
            if plan.ore_column is not None:
                return
            if plan.det_column is not None and op in ("=", "!="):
                return
            raise TranslationError(
                f"measure {column!r} was not planned for filtering; "
                "include such a predicate in the sample queries"
            )
        if plan.kind not in ("plain", "det", "ore"):
            raise TranslationError(f"cannot filter on plan kind {plan.kind!r}")

    def _translate_in(self, node: InList) -> srv.FilterExpr | ParamFilter:
        plan = self._plan(node.column)
        names = tuple(
            v.name for v in node.values if isinstance(v, Param)
        )
        if names:
            # Validate once (an IN is a disjunction of equalities), then
            # defer token encryption to bind time.
            self._validate_filterable(node.column, "=", plan)
            column, template = node.column, node.values

            def build(*bound: Any) -> srv.FilterExpr:
                supplied = iter(bound)
                values = tuple(
                    next(supplied) if isinstance(v, Param) else v
                    for v in template
                )
                return self._translate_in(InList(column, values))

            return ParamFilter(params=names, build=build)
        if plan.kind == "det":
            det = self._factory_of(node.column).det(plan.cipher_column, plan.join_group)
            tokens = tuple(
                det.token(self._det_code(node.column, v)) for v in node.values
            )
            return srv.DetIn(plan.cipher_column, tokens)
        return srv.FilterOr(tuple(
            self._translate_comparison(Comparison(node.column, "=", v))
            for v in node.values
        ))

    def _dictionary_code(self, column: str, value: Any) -> int:
        encoder = self._dict_of(column)
        if encoder is None:
            raise TranslationError(f"no data uploaded yet for column {column!r}")
        return encoder.lookup(value)

    def _det_code(self, column: str, value: Any) -> int:
        spec = self._spec(column)
        if spec.dtype == "str":
            return self._dictionary_code(column, value)
        return int(value)

    # -- flat shape ---------------------------------------------------------------

    def _translate_flat(
        self,
        query: Query,
        base_filter: srv.FilterExpr | None,
        selectors: list[_Selector],
        join: srv.ServerJoin | None,
    ) -> TranslatedQuery:
        builder = _RequestBuilder(self, query.table, base_filter, join)
        outputs: list[OutputItem] = []
        category = "S"
        for item in query.select:
            if isinstance(item, ColumnRef):
                raise TranslationError(f"bare column {item.name!r} requires GROUP BY")
            out, cat = self._translate_aggregate(item, selectors, builder, join)
            outputs.append(out)
            category = _max_category(category, cat)
        return TranslatedQuery(
            query=query, requests=builder.finish(), outputs=outputs,
            shape="flat", category=category,
        )

    def _translate_aggregate(
        self,
        item: Aggregate,
        selectors: list[_Selector],
        builder: "_RequestBuilder",
        join: srv.ServerJoin | None = None,
    ) -> tuple[OutputItem, str]:
        name = item.output_name()
        func = item.func
        if func == "count" and item.column is None:
            out = OutputItem(name=name, kind="count")
            self._wire_count(out, selectors, builder)
            return out, "S"
        measure = item.column
        assert measure is not None
        if func in ("sum", "avg"):
            out = OutputItem(name=name, kind=func, measure=measure)
            self._wire_sum(out, "sum", measure, selectors, builder, join)
            if func == "avg":
                self._wire_count(out, selectors, builder)
            return out, "S"
        if func == "count":
            out = OutputItem(name=name, kind="count", measure=measure)
            self._wire_count(out, selectors, builder)
            return out, "S"
        if func in ("var", "stddev"):
            if selectors:
                raise TranslationError(
                    "variance under a SPLASHE selection is unsupported"
                )
            out = OutputItem(name=name, kind=func, measure=measure)
            self._wire_sum(out, "sum", measure, selectors, builder, join)
            self._wire_sum(out, "sumsq", measure, selectors, builder, join)
            self._wire_count(out, selectors, builder)
            return out, "CPre"
        if func in ("min", "max", "median"):
            if selectors:
                raise TranslationError(
                    f"{func} combined with SPLASHE selections is unsupported"
                )
            out = OutputItem(name=name, kind=func, measure=measure)
            self._wire_extreme(out, func, measure, builder)
            return out, "S"
        raise TranslationError(f"unsupported aggregate {func!r}")

    # -- ingredient wiring ---------------------------------------------------------

    def _wire_sum(
        self,
        out: OutputItem,
        role: str,
        measure: str,
        selectors: list[_Selector],
        builder: "_RequestBuilder",
        join: srv.ServerJoin | None = None,
    ) -> None:
        refs = out.sum_refs if role == "sum" else out.sumsq_refs
        selector = self._selector_for_measure(measure, selectors)
        if selector is not None:
            if role == "sumsq":
                raise TranslationError(
                    "variance under a SPLASHE selection is unsupported"
                )
            refs.extend(self._splashe_sum_refs(measure, selector, builder))
            return
        plan = self._plan(measure)
        squared = role == "sumsq"
        if plan.kind == "plain":
            refs.append(builder.add_plain(plan.column, "sumsq" if squared else "sum"))
            return
        if plan.kind in ("ashe", "paillier"):
            column = plan.squares_column if squared else plan.cipher_column
            if column is None:
                raise TranslationError(
                    f"variance on {measure!r} needs a squares column; include "
                    "a var/stddev query in the sample set"
                )
            multiset = join is not None and column in (join.payload_columns or ())
            if plan.kind == "ashe":
                refs.append(builder.add_ashe(column, multiset=multiset))
            else:
                refs.append(builder.add_paillier(column))
            return
        raise TranslationError(
            f"column {measure!r} is a dimension ({plan.kind}); it cannot be "
            "aggregated"
        )

    def _selector_for_measure(
        self, measure: str, selectors: list[_Selector]
    ) -> _Selector | None:
        for sel in selectors:
            if measure in sel.plan.measure_columns:
                return sel
            raise TranslationError(
                f"measure {measure!r} was not splayed for dimension "
                f"{sel.plan.column!r}; regenerate the plan with a sample "
                "query combining them"
            )
        return None

    def _splashe_sum_refs(
        self, measure: str, sel: _Selector, builder: "_RequestBuilder"
    ) -> list[Ref]:
        plan = sel.plan
        refs: list[Ref] = []
        if plan.kind == "splashe_basic":
            for code in sel.codes:
                refs.append(builder.add_ashe(plan.measure_columns[measure][code]))
            return refs
        det = self._factory.det(plan.det_column)
        for code in sel.codes:
            if plan.is_frequent(code):
                refs.append(builder.add_ashe(plan.measure_columns[measure][code]))
            else:
                refs.append(builder.add_ashe_filtered(
                    plan.others_measure[measure],
                    srv.DetEq(plan.det_column, det.token(code)),
                ))
        return refs

    def _wire_count(
        self, out: OutputItem, selectors: list[_Selector], builder: "_RequestBuilder"
    ) -> None:
        if selectors:
            # Counting under a SPLASHE selection: sum the indicator columns.
            sel = selectors[0]
            plan = sel.plan
            out.count_mode = "value"
            if plan.kind == "splashe_basic":
                for code in sel.codes:
                    out.count_refs.append(
                        builder.add_ashe(plan.indicator_columns[code])
                    )
                return
            det = self._factory.det(plan.det_column)
            for code in sel.codes:
                if plan.is_frequent(code):
                    out.count_refs.append(
                        builder.add_ashe(plan.indicator_columns[code])
                    )
                else:
                    out.count_refs.append(builder.add_ashe_filtered(
                        plan.others_indicator,
                        srv.DetEq(plan.det_column, det.token(code)),
                    ))
            return
        if self._mode == "seabed":
            existing = builder.first_ashe_ref()
            if existing is not None:
                out.count_mode = "ids"
                out.count_refs.append(existing)
                return
        out.count_mode = "value"
        out.count_refs.append(builder.add_plain(None, "count"))

    def _wire_extreme(
        self, out: OutputItem, func: str, measure: str, builder: "_RequestBuilder"
    ) -> None:
        plan = self._plan(measure)
        if plan.kind == "plain":
            out.extreme_mode = "plain"
            out.extreme_ref = builder.add_plain(plan.column, func)
            return
        if plan.kind not in ("ashe", "paillier") or plan.ore_column is None:
            raise TranslationError(
                f"{func} on {measure!r} needs an ORE column; include a "
                f"{func} query in the sample set"
            )
        out.extreme_mode = plan.kind
        if func == "median":
            out.extreme_ref = builder.add_median(plan.ore_column, plan.cipher_column)
        else:
            out.extreme_ref = builder.add_extreme(
                func, plan.ore_column, plan.cipher_column
            )

    # -- grouped shape ---------------------------------------------------------

    def _translate_grouped(
        self,
        query: Query,
        base_filter: srv.FilterExpr | None,
        selectors: list[_Selector],
        join: srv.ServerJoin | None,
        cores: int,
        expected_groups: int | None,
    ) -> TranslatedQuery:
        if len(query.group_by) != 1:
            raise TranslationError(
                "encrypted execution supports single-column GROUP BY; "
                "compose a combined key column client-side for more"
            )
        dim = query.group_by[0]
        plan = self._plan(dim)
        if plan.kind in ("splashe_basic", "splashe_enhanced"):
            if join is not None:
                raise TranslationError("joins with SPLASHE group-by unsupported")
            return self._translate_splashe_group(query, base_filter, selectors, plan)
        if plan.kind == "plain":
            group_column, decode = plan.column, "plain"
        elif plan.kind == "det":
            group_column, decode = plan.cipher_column, "det"
        else:
            raise TranslationError(
                f"cannot GROUP BY a {plan.kind}-encrypted column"
            )
        inflation = 1
        if self._mode == "seabed" and expected_groups is not None:
            inflation = inflation_factor(expected_groups, cores)
        builder = _RequestBuilder(
            self, query.table, base_filter, join,
            group_by=group_column, inflation=inflation,
        )
        outputs: list[OutputItem] = []
        category = "S"
        for item in query.select:
            if isinstance(item, ColumnRef):
                if item.name != dim:
                    raise TranslationError(
                        f"column {item.name!r} must appear in GROUP BY"
                    )
                outputs.append(OutputItem(name=item.name, kind="group_key"))
                continue
            if item.func in ("min", "max", "median"):
                if self._mode != "plain" and self._plan(item.column).kind != "plain":
                    raise TranslationError(
                        f"{item.func} inside GROUP BY is unsupported over "
                        "encrypted data"
                    )
            out, cat = self._translate_aggregate(item, selectors, builder, join)
            outputs.append(out)
            category = _max_category(category, cat)
        return TranslatedQuery(
            query=query, requests=builder.finish(), outputs=outputs,
            shape="grouped", group_dim=dim, group_request=0,
            group_decode=decode, inflation=inflation, category=category,
        )

    def _translate_splashe_group(
        self,
        query: Query,
        base_filter: srv.FilterExpr | None,
        selectors: list[_Selector],
        plan: sc.SplasheBasicPlan | sc.SplasheEnhancedPlan,
    ) -> TranslatedQuery:
        """GROUP BY a splayed dimension (Section 3.3/3.4): the splayed
        per-value sums *are* the groups -- no server-side grouping for
        basic mode; enhanced mode adds one DET-grouped request over the
        catch-all columns for the infrequent values."""
        if selectors:
            raise TranslationError(
                "filtering and grouping on SPLASHE dimensions in one query "
                "is unsupported"
            )
        dim = plan.column
        builder = _RequestBuilder(self, query.table, base_filter, None)
        grouped_builder = None
        if plan.kind == "splashe_enhanced":
            # The flat builder emits exactly one request here (no filtered
            # side-requests are possible without selectors), so the grouped
            # request sits at index 1.
            grouped_builder = _RequestBuilder(
                self, query.table, base_filter, None, group_by=plan.det_column,
                offset=1,
            )
        codes = (
            list(range(plan.cardinality))
            if plan.kind == "splashe_basic"
            else sorted(plan.frequent_codes)
        )
        outputs: list[OutputItem] = []
        category = "S"
        for item in query.select:
            if isinstance(item, ColumnRef):
                if item.name != dim:
                    raise TranslationError(
                        f"column {item.name!r} must appear in GROUP BY"
                    )
                outputs.append(OutputItem(name=item.name, kind="group_key"))
                continue
            if item.func not in ("sum", "avg", "count"):
                raise TranslationError(
                    f"{item.func} is unsupported when grouping by a SPLASHE "
                    "dimension"
                )
            out = OutputItem(
                name=item.output_name(), kind=item.func, measure=item.column
            )
            # A count role is always wired: the indicator sums are what tell
            # the client which groups are non-empty (splayed measure columns
            # cover every row, so their ID lists cannot reveal emptiness).
            roles = {"sum": item.func in ("sum", "avg"), "count": True}
            for role, wanted in roles.items():
                if not wanted:
                    continue
                per_code: dict[int, Ref] = {}
                for code in codes:
                    per_code[code] = self._splashe_cell(plan, item, role, code, builder)
                if grouped_builder is not None:
                    per_code[-1] = self._splashe_cell(
                        plan, item, role, None, grouped_builder
                    )
                out.splashe[role] = per_code
            outputs.append(out)
        requests = builder.finish()
        group_request = None
        if grouped_builder is not None:
            group_request = len(requests)
            assert group_request == 1, "flat SPLASHE builder must emit one request"
            requests = requests + grouped_builder.finish()
        return TranslatedQuery(
            query=query, requests=requests, outputs=outputs,
            shape="splashe_group", group_dim=dim, group_request=group_request,
            group_decode="splashe_det", splashe_group_codes=codes,
            category=category,
        )

    def _splashe_cell(
        self,
        plan: sc.SplasheBasicPlan | sc.SplasheEnhancedPlan,
        item: Aggregate,
        role: str,
        code: int | None,
        builder: "_RequestBuilder",
    ) -> Ref:
        if role == "count":
            if code is None:
                assert isinstance(plan, sc.SplasheEnhancedPlan)
                return builder.add_ashe(plan.others_indicator)
            return builder.add_ashe(plan.indicator_columns[code])
        measure = item.column
        assert measure is not None
        if measure not in plan.measure_columns:
            raise TranslationError(
                f"measure {measure!r} was not splayed for {plan.column!r}"
            )
        if code is None:
            assert isinstance(plan, sc.SplasheEnhancedPlan)
            return builder.add_ashe(plan.others_measure[measure])
        return builder.add_ashe(plan.measure_columns[measure][code])


class _RequestBuilder:
    """Accumulates aggregation ops for one main request plus side requests
    for ops that need their own filter (enhanced-SPLASHE infrequent
    values).  Refs are (request index, alias); index 0 is the main request
    and side requests follow in creation order."""

    def __init__(
        self,
        translator: QueryTranslator,
        table: str,
        base_filter: srv.FilterExpr | None,
        join: srv.ServerJoin | None,
        group_by: str | None = None,
        inflation: int = 1,
        offset: int = 0,
    ):
        self._tr = translator
        self._table = table
        self._filter = base_filter
        self._join = join
        self._group_by = group_by
        self._inflation = inflation
        self._main_aggs: list[srv.AggOp] = []
        self._extra: list[tuple[srv.FilterExpr, srv.AggOp]] = []
        self._ashe_cache: dict[tuple[str, bool], Ref] = {}
        self._offset = offset

    def add_ashe(self, column: str, multiset: bool = False) -> Ref:
        cached = self._ashe_cache.get((column, multiset))
        if cached is not None:
            return cached
        alias = self._tr._fresh_alias()
        codec = "groupby" if self._group_by is not None else "seabed"
        self._main_aggs.append(
            srv.AsheSum(column=column, alias=alias, codec=codec, multiset=multiset)
        )
        ref = (self._offset, alias)
        self._ashe_cache[(column, multiset)] = ref
        return ref

    def add_ashe_filtered(self, column: str, extra: srv.FilterExpr) -> Ref:
        alias = self._tr._fresh_alias()
        self._extra.append((extra, srv.AsheSum(column=column, alias=alias)))
        return (self._offset + len(self._extra), alias)

    def add_plain(self, column: str | None, func: str) -> Ref:
        alias = self._tr._fresh_alias()
        self._main_aggs.append(srv.PlainAgg(column=column, func=func, alias=alias))
        return (self._offset, alias)

    def add_paillier(self, column: str) -> Ref:
        if self._tr._n2 is None:
            raise TranslationError("paillier mode requires the public modulus")
        alias = self._tr._fresh_alias()
        self._main_aggs.append(
            srv.PaillierSum(column=column, alias=alias, n_squared=self._tr._n2)
        )
        return (self._offset, alias)

    def add_extreme(self, kind: str, ore_column: str, payload: str) -> Ref:
        alias = self._tr._fresh_alias()
        self._main_aggs.append(srv.OreExtreme(
            kind=kind, ore_column=ore_column, payload_column=payload, alias=alias
        ))
        return (self._offset, alias)

    def add_median(self, ore_column: str, payload: str) -> Ref:
        alias = self._tr._fresh_alias()
        self._main_aggs.append(srv.OreMedian(
            ore_column=ore_column, payload_column=payload, alias=alias
        ))
        return (self._offset, alias)

    def first_ashe_ref(self) -> Ref | None:
        for agg in self._main_aggs:
            if isinstance(agg, srv.AsheSum):
                return (self._offset, agg.alias)
        return None

    def finish(self) -> list[srv.ServerQuery]:
        requests = [srv.ServerQuery(
            table=self._table,
            aggs=tuple(self._main_aggs),
            filter=self._filter,
            join=self._join,
            group_by=self._group_by,
            inflation=self._inflation,
        )]
        for extra_filter, agg in self._extra:
            combined: srv.FilterExpr = (
                extra_filter if self._filter is None
                else srv.FilterAnd((self._filter, extra_filter))
            )
            requests.append(srv.ServerQuery(
                table=self._table, aggs=(agg,), filter=combined, join=self._join,
                group_by=self._group_by, inflation=self._inflation,
            ))
        return requests
