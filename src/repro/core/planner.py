"""The Seabed data planner (paper Section 4.2).

Given a plaintext schema, a sample query set, and optional value
statistics, the planner:

1. classifies each sensitive column as a *measure* (aggregated), a
   *dimension* (filtered / grouped / joined), or both;
2. assigns encryption schemes:
   - linear-aggregated measures -> ASHE (plus a client-side squares column
     when quadratic aggregates appear, and an ORE column when the measure
     is range-filtered or min/max'd);
   - equality-only dimensions -> SPLASHE (enhanced when the value
     distribution is known, basic otherwise);
   - joined dimensions -> DET, with a warning (Section 4.2: "we warn the
     user and then use deterministic encryption");
   - range-filtered dimensions -> ORE;
3. enforces a storage budget by prioritising SPLASHE for the
   lowest-cardinality dimensions first (Section 4.2, Figure 10b).

The same planner also produces the ``paillier`` (CryptDB/Monomi baseline)
and ``plain`` (NoEnc) schemas so the three systems share one pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import schema as sc
from repro.core.splashe import choose_k, storage_overhead_factor
from repro.errors import PlanningError
from repro.ops import OPS
from repro.query.ast import (
    ORDER_AGGS,
    QUADRATIC_AGGS,
    Query,
    predicate_usage,
)


@dataclass
class ColumnUsage:
    """How the sample queries touch one column."""

    aggregates: set[str] = field(default_factory=set)
    predicate_kinds: set[str] = field(default_factory=set)  # eq | range
    grouped: bool = False
    joined: bool = False

    @property
    def is_measure(self) -> bool:
        return bool(self.aggregates)

    @property
    def is_dimension(self) -> bool:
        return bool(self.predicate_kinds) or self.grouped or self.joined


@dataclass
class SplasheDecision:
    """Per-dimension record of the SPLASHE choice (drives Figure 10b)."""

    column: str
    cardinality: int
    num_measures: int
    chosen: str  # "basic" | "enhanced" | "det-fallback"
    k: int | None
    overhead_factor: float


@dataclass
class PlannerReport:
    usages: dict[str, ColumnUsage]
    splashe_decisions: list[SplasheDecision]
    warnings: list[str]


def analyze_usage(queries: list[Query]) -> dict[str, ColumnUsage]:
    """Aggregate column usage over the sample query set."""
    usages: dict[str, ColumnUsage] = {}

    def usage(name: str) -> ColumnUsage:
        return usages.setdefault(name, ColumnUsage())

    for q in queries:
        for agg in q.aggregates():
            if agg.column is not None:
                usage(agg.column).aggregates.add(agg.func)
        for col, kinds in predicate_usage(q.where).items():
            usage(col).predicate_kinds |= kinds
        for col in q.group_by:
            usage(col).grouped = True
        for col in q.join_columns():
            usage(col).joined = True
    return usages


class Planner:
    """Produces an :class:`~repro.core.schema.EncryptedSchema`."""

    def __init__(self, mode: str = "seabed"):
        if mode not in ("seabed", "paillier", "plain"):
            raise PlanningError(f"unknown planner mode {mode!r}")
        self.mode = mode

    def plan(
        self,
        table: sc.TableSchema,
        sample_queries: list[Query],
        storage_budget: float | None = None,
    ) -> tuple[sc.EncryptedSchema, PlannerReport]:
        OPS.bump("plan")
        usages = analyze_usage(sample_queries)
        warnings: list[str] = []
        decisions: list[SplasheDecision] = []
        plans: dict[str, sc.ColumnPlan] = {}

        if self.mode == "plain":
            for col in table.columns:
                plans[col.name] = sc.PlainPlan(column=col.name)
            encrypted = sc.EncryptedSchema(table=table.name, mode="plain", plans=plans)
            return encrypted, PlannerReport(usages, decisions, warnings)

        # Which measures are aggregated under which dimensions?  Only those
        # measures need splaying for that dimension (Section 4.2).
        measures_by_dim = self._measures_by_dimension(sample_queries)

        splashe_candidates: list[sc.ColumnSpec] = []
        for col in table.columns:
            use = usages.get(col.name, ColumnUsage())
            if not col.sensitive:
                plans[col.name] = sc.PlainPlan(column=col.name)
                continue
            if use.is_measure:
                plans[col.name] = self._plan_measure(col, use, warnings)
                if use.is_dimension and not use.joined and not use.predicate_kinds - {"eq"}:
                    # measure that is also an equality dimension: keep the
                    # DET/ORE fallback chosen in _plan_measure
                    pass
                continue
            if use.is_dimension:
                if use.joined:
                    warnings.append(
                        f"column {col.name!r} participates in a join; falling "
                        "back to deterministic encryption (frequency attacks "
                        "possible)"
                    )
                    plans[col.name] = self._det_plan(col)
                elif "range" in use.predicate_kinds:
                    plans[col.name] = self._ore_plan(col, warnings)
                else:
                    # equality / group-by only: SPLASHE candidate
                    splashe_candidates.append(col)
                continue
            # Sensitive but unused in the sample queries: protect with the
            # strongest randomized scheme that still allows later sums.
            warnings.append(
                f"column {col.name!r} is sensitive but unused by the sample "
                "queries; encrypting with the aggregate scheme"
            )
            plans[col.name] = self._plan_measure(col, ColumnUsage({"sum"}), warnings)

        self._plan_splashe(
            table, splashe_candidates, measures_by_dim, plans, decisions,
            warnings, storage_budget,
        )

        encrypted = sc.EncryptedSchema(
            table=table.name, mode=self.mode, plans=plans, warnings=warnings
        )
        return encrypted, PlannerReport(usages, decisions, warnings)

    # -- measures ---------------------------------------------------------

    def _plan_measure(
        self, col: sc.ColumnSpec, use: ColumnUsage, warnings: list[str]
    ) -> sc.ColumnPlan:
        if col.dtype != "int":
            raise PlanningError(
                f"measure column {col.name!r} must be integer-typed; encode "
                "fixed-point values client-side (e.g. cents)"
            )
        squares = None
        if use.aggregates & QUADRATIC_AGGS:
            # Client pre-processing: upload an encrypted squares column.
            squares = (
                sc.paillier_sq_col(col.name)
                if self.mode == "paillier"
                else sc.ashe_sq_col(col.name)
            )
        ore_column = None
        if use.aggregates & ORDER_AGGS or "range" in use.predicate_kinds:
            ore_column = sc.ore_col(col.name)
        det_column = None
        if "eq" in use.predicate_kinds and ore_column is None:
            det_column = sc.det_col(col.name)
        if self.mode == "paillier":
            return sc.PaillierPlan(
                column=col.name,
                cipher_column=sc.paillier_col(col.name),
                squares_column=squares,
                ore_column=ore_column,
                det_column=det_column,
            )
        return sc.AshePlan(
            column=col.name,
            cipher_column=sc.ashe_col(col.name),
            squares_column=squares,
            ore_column=ore_column,
            det_column=det_column,
        )

    # -- dimensions ------------------------------------------------------

    def _det_plan(self, col: sc.ColumnSpec) -> sc.DetPlan:
        return sc.DetPlan(
            column=col.name, cipher_column=sc.det_col(col.name), dtype=col.dtype
        )

    def _ore_plan(self, col: sc.ColumnSpec, warnings: list[str]) -> sc.OrePlan:
        if col.dtype != "int":
            raise PlanningError(
                f"range predicates on non-integer column {col.name!r} are not "
                "supported; encode an orderable integer representation"
            )
        return sc.OrePlan(
            column=col.name, cipher_column=sc.ore_col(col.name), nbits=col.nbits
        )

    def _plan_splashe(
        self,
        table: sc.TableSchema,
        candidates: list[sc.ColumnSpec],
        measures_by_dim: dict[str, set[str]],
        plans: dict[str, sc.ColumnPlan],
        decisions: list[SplasheDecision],
        warnings: list[str],
        storage_budget: float | None,
    ) -> None:
        if self.mode == "paillier":
            # The baseline systems have no SPLASHE: DET for all of these.
            for col in candidates:
                plans[col.name] = self._det_plan(col)
            return
        # Lowest cardinality first maximises dimensions protected within the
        # budget (Section 4.2).
        def sort_key(col: sc.ColumnSpec):
            return (col.cardinality is None, col.cardinality or 0, col.name)

        budget_left = storage_budget
        for col in sorted(candidates, key=sort_key):
            measures = sorted(measures_by_dim.get(col.name, set()))
            if col.distinct_values is None:
                warnings.append(
                    f"column {col.name!r}: no domain information; SPLASHE "
                    "needs the set of distinct values -- using DET"
                )
                plans[col.name] = self._det_plan(col)
                continue
            d = len(col.distinct_values)
            if col.value_counts is not None:
                counts_desc = sorted(
                    (int(col.value_counts.get(v, 0)) for v in col.distinct_values),
                    reverse=True,
                )
                k: int | None = choose_k(counts_desc)
                chosen = "enhanced"
            else:
                k = None
                chosen = "basic"
            factor = storage_overhead_factor(d, len(measures), k)
            if budget_left is not None and factor > budget_left:
                warnings.append(
                    f"column {col.name!r}: SPLASHE overhead {factor:.1f}x "
                    f"exceeds remaining budget {budget_left:.1f}x -- using DET"
                )
                plans[col.name] = self._det_plan(col)
                decisions.append(
                    SplasheDecision(col.name, d, len(measures), "det-fallback",
                                    k, factor)
                )
                continue
            if budget_left is not None:
                budget_left = max(budget_left - (factor - 1.0), 1.0)
            plans[col.name] = self._build_splashe_plan(col, measures, k)
            decisions.append(
                SplasheDecision(col.name, d, len(measures), chosen, k, factor)
            )

    def _build_splashe_plan(
        self, col: sc.ColumnSpec, measures: list[str], k: int | None
    ) -> sc.ColumnPlan:
        assert col.distinct_values is not None
        values = list(col.distinct_values)
        d = len(values)
        if k is None or k >= d:
            return sc.SplasheBasicPlan(
                column=col.name,
                values=values,
                indicator_columns=[
                    sc.splashe_indicator_col(col.name, c) for c in range(d)
                ],
                measure_columns={
                    m: [sc.splashe_measure_col(m, col.name, c) for c in range(d)]
                    for m in measures
                },
            )
        assert col.value_counts is not None
        # Frequent values: the k most common by expected frequency.
        by_freq = sorted(
            range(d),
            key=lambda c: (-int(col.value_counts.get(values[c], 0)), c),
        )
        frequent = sorted(by_freq[:k])
        return sc.SplasheEnhancedPlan(
            column=col.name,
            values=values,
            frequent_codes=frequent,
            det_column=sc.det_col(col.name),
            indicator_columns={
                c: sc.splashe_indicator_col(col.name, c) for c in frequent
            },
            others_indicator=sc.splashe_indicator_col(col.name, "oth"),
            measure_columns={
                m: {c: sc.splashe_measure_col(m, col.name, c) for c in frequent}
                for m in measures
            },
            others_measure={
                m: sc.splashe_measure_col(m, col.name, "oth") for m in measures
            },
        )

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _measures_by_dimension(queries: list[Query]) -> dict[str, set[str]]:
        """For each dimension, the measures aggregated together with it."""
        out: dict[str, set[str]] = {}
        for q in queries:
            measures = q.measure_columns()
            for dim in q.dimension_columns():
                out.setdefault(dim, set()).update(measures)
        return out
