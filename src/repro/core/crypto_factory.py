"""Per-column scheme instantiation from the master key chain.

Section 4.2: "We choose a different secret key k for each new column we
encrypt."  The factory derives one subkey per physical column (or per join
group, so equi-join columns in different tables share DET ciphertexts) and
caches scheme instances.

Every instance is handed out behind an
:class:`~repro.crypto.kernel.InstrumentedKernel` wrapper, so the batch
kernel calls the client issues (encrypt/decrypt/compare/pad) feed the
per-scheme ``seabed_kernel_*`` metrics for free; the wrapper forwards
all other attributes to the scheme, so callers are none the wiser.
"""

from __future__ import annotations

import threading

from repro.crypto.ashe import AsheScheme
from repro.crypto.det import DetScheme
from repro.crypto.kernel import InstrumentedKernel
from repro.crypto.keys import KeyChain
from repro.crypto.ore import OreScheme
from repro.crypto.prf import prf_from_name


class CryptoFactory:
    """Caches ASHE/DET/ORE instances keyed by physical column name."""

    def __init__(
        self,
        keychain: KeyChain,
        table: str,
        prf_backend: str = "splitmix64",
        det_backend: str = "fast",
        ore_backend: str = "fast",
    ):
        self._keychain = keychain
        self._table = table
        self._prf_backend = prf_backend
        self._det_backend = det_backend
        self._ore_backend = ore_backend
        self._ashe: dict[str, InstrumentedKernel] = {}
        self._det: dict[str, InstrumentedKernel] = {}
        self._ore: dict[str, InstrumentedKernel] = {}
        # query_many() decrypts on several threads; the lock keeps the
        # check-then-insert below from constructing a scheme twice (the
        # loser's per-scheme op counters would be silently discarded).
        self._lock = threading.Lock()

    @property
    def prf_backend(self) -> str:
        """The PRF this factory's ASHE schemes run on -- persisted in the
        store sidecar so a re-save after attach cannot drift from it."""
        return self._prf_backend

    def ashe(self, physical_column: str) -> InstrumentedKernel:
        with self._lock:
            if physical_column not in self._ashe:
                key = self._keychain.column_key(self._table, physical_column, "ashe")
                self._ashe[physical_column] = InstrumentedKernel(
                    AsheScheme(prf_from_name(self._prf_backend, key)), "ashe"
                )
            return self._ashe[physical_column]

    def det(self, physical_column: str, join_group: str | None = None) -> InstrumentedKernel:
        cache_key = f"join:{join_group}" if join_group else physical_column
        with self._lock:
            if cache_key not in self._det:
                if join_group:
                    key = self._keychain.derive("join", join_group, "det")
                else:
                    key = self._keychain.column_key(self._table, physical_column, "det")
                self._det[cache_key] = InstrumentedKernel(
                    DetScheme(key, backend=self._det_backend), "det"
                )
            return self._det[cache_key]

    def ore(self, physical_column: str, nbits: int = 32,
            signed: bool = True) -> InstrumentedKernel:
        cache_key = f"{physical_column}/{nbits}/{signed}"
        with self._lock:
            if cache_key not in self._ore:
                key = self._keychain.column_key(self._table, physical_column, "ore")
                self._ore[cache_key] = InstrumentedKernel(
                    OreScheme(key, nbits=nbits, signed=signed,
                              backend=self._ore_backend),
                    "ore",
                )
            return self._ore[cache_key]
