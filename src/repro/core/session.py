"""The session-centric client API: facade, prepared queries, translation cache.

:class:`SeabedSession` replaces the monolithic proxy object with a facade
that owns the long-lived client state -- keychain, planner, per-table
registry (schemas, crypto factories, dictionaries), cluster and server
handles -- and routes *every* read path (``query``, ``query_many``,
``scan``, ``linear_regression``) through one shared execution object:

- :class:`PreparedQuery` -- ``session.prepare(q)`` runs parsing, predicate
  splitting, planning lookups and request wiring exactly once; literals
  may be :class:`~repro.query.ast.Param` placeholders (``:name`` in SQL),
  and ``.execute(**values)`` re-binds encryption tokens into the cached
  request template without touching the planner or translator again.
  This is the statement/session shape production encrypted-query clients
  expose (the paper's proxy plans a schema once but re-translated every
  query; repeat-query traffic -- Section 6.6's ad-analytics log -- makes
  translation pure overhead).
- a **translation cache** -- plain ``query()`` calls are parameterised by
  query *shape* (literals lifted out) and served from an LRU of prepared
  queries, so the same query template pays for translation once per
  session no matter how its constants vary.
- fluent building -- ``session.table("t")`` returns a bound
  :class:`~repro.query.builder.QueryBuilder`.

:class:`~repro.core.proxy.SeabedClient` remains as a thin back-compat
shim over this module.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from threading import Lock
from typing import Any, Hashable, Iterable, Mapping

import numpy as np

from repro.core import persistence as ps
from repro.core import schema as sc
from repro.core import server as srv
from repro.core.access import AccessController
from repro.core.crypto_factory import CryptoFactory
from repro.core.decryptor import DecryptionModule
from repro.core.encryptor import ClientTableState, EncryptionModule
from repro.core.planner import Planner, PlannerReport
from repro.core.translator import (
    QueryTranslator,
    TranslatedQuery,
    bind_filter,
    bind_requests,
)
from repro.crypto.det import DictionaryEncoder
from repro.crypto.keys import KeyChain
from repro.crypto.paillier import PaillierKeyPair, PaillierScheme
from repro.core.transport import LocalTransport, Transport
from repro.engine.cluster import SimulatedCluster
from repro.engine.metrics import JobMetrics
from repro.engine.storage import serialize_table
from repro.errors import (
    ExecutionError,
    PlanningError,
    StorageError,
    TranslationError,
    TransportError,
)
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as obs_trace
from repro.ops import OPS
from repro.query.ast import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Param,
    Predicate,
    Query,
    query_params,
)
from repro.query.builder import QueryBuilder
from repro.query.executor import order_and_limit
from repro.query.parser import parse_query


@dataclass
class QueryResult:
    """Plaintext rows plus the timing breakdown of one query."""

    rows: list[dict[str, Any]]
    request_metrics: list[JobMetrics] = field(default_factory=list)
    client_time: float = 0.0
    translation: TranslatedQuery | None = None

    @property
    def server_time(self) -> float:
        return sum(m.server_time for m in self.request_metrics)

    @property
    def network_time(self) -> float:
        return sum(m.network_time for m in self.request_metrics)

    @property
    def result_bytes(self) -> int:
        return sum(m.result_bytes for m in self.request_metrics)

    @property
    def total_time(self) -> float:
        return self.server_time + self.network_time + self.client_time

    @property
    def queue_wait(self) -> float:
        """Time spent in the service's admission queue (0 in-process)."""
        return sum(m.queue_wait for m in self.request_metrics)

    @property
    def wire_time(self) -> float:
        """Measured client round-trip time on the wire (0 in-process)."""
        return sum(m.wire_time for m in self.request_metrics)

    @property
    def category(self) -> str:
        return self.translation.category if self.translation else "S"


@dataclass
class UploadStats:
    table: str
    rows: int
    encrypt_seconds: float
    physical_columns: int


@dataclass
class AppendStats:
    """Outcome of one incremental append to a persisted table."""

    table: str
    rows: int
    generation: int
    encrypt_seconds: float
    write_seconds: float
    physical_columns: int


@dataclass
class LinRegResult:
    """Output of the two-round-trip linear regression (category 2R)."""

    slope: float
    intercept: float
    r_squared: float
    n: int
    round_trips: int
    request_metrics: list[JobMetrics] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(m.total_time for m in self.request_metrics)


class TranslationCache:
    """A small thread-safe LRU of :class:`PreparedQuery` keyed by query
    shape; ``SeabedSession.query``/``scan`` consult it so repeat traffic
    skips translation transparently."""

    def __init__(self, maxsize: int = 128):
        self._maxsize = max(maxsize, 0)
        self._entries: OrderedDict[Hashable, "PreparedQuery"] = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> "PreparedQuery | None":
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: "PreparedQuery") -> None:
        if self._maxsize == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self._maxsize,
                "hits": self.hits,
                "misses": self.misses,
            }


class PreparedQuery:
    """A query translated once, executable many times.

    Created by :meth:`SeabedSession.prepare`.  Holds the translated
    request template (aggregation) or the resolved physical projection
    (scan) plus the decryption module; :meth:`execute` only binds
    parameter tokens, ships requests, and decrypts -- an op-counter
    verifiable zero-translation path.
    """

    def __init__(
        self,
        session: "SeabedSession",
        query: Query,
        *,
        translated: TranslatedQuery | None = None,
        decryptor: DecryptionModule,
        scan_filter: Any = None,
        scan_physical: dict[str, tuple[str, str]] | None = None,
        expected_groups: int | None = None,
        compress_at: str = "worker",
    ):
        self._session = session
        self.query = query
        self.kind = "agg" if translated is not None else "scan"
        self.expected_groups = expected_groups
        self.compress_at = compress_at
        self.param_names = query_params(query)
        self._translated = translated
        self._decryptor = decryptor
        self._scan_filter = scan_filter
        self._scan_physical = scan_physical or {}
        self._scan_requested = (
            [item.name for item in query.select] if self.kind == "scan" else []
        )
        self._tables = (query.table,) + (
            (query.join.table,) if query.join is not None else ()
        )

    # -- introspection -------------------------------------------------------

    @property
    def translation(self) -> TranslatedQuery | None:
        return self._translated

    @property
    def category(self) -> str:
        return self._translated.category if self._translated else "S"

    def sql(self) -> str:
        from repro.query.builder import render_sql

        return render_sql(self.query)

    def __repr__(self) -> str:
        return (
            f"PreparedQuery(kind={self.kind!r}, table={self.query.table!r}, "
            f"params={list(self.param_names)!r})"
        )

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        *args: Any,
        user: str | None = None,
        timeout: float | None = None,
        **params: Any,
    ) -> QueryResult:
        """Bind parameter values (positionally in declaration order or by
        name) and run.  Performs zero parse/plan/translate work.

        ``timeout`` is a per-request budget in seconds enforced by the
        session's transport (remote transports raise
        :class:`~repro.errors.TransportError` on expiry; the in-process
        transport executes synchronously and ignores it).
        """
        OPS.bump("prepared_execute")
        values = self._bind_values(args, params)
        self._session._check_access(user, self._tables)
        if self.kind == "scan":
            return self._execute_scan(values, timeout)
        return self._execute_agg(values, timeout)

    def _bind_values(
        self, args: tuple[Any, ...], params: dict[str, Any]
    ) -> dict[str, Any]:
        names = self.param_names
        if len(args) > len(names):
            raise TranslationError(
                f"{len(args)} positional values for {len(names)} "
                f"parameter(s) {list(names)!r}"
            )
        values: dict[str, Any] = dict(zip(names, args))
        for reserved in ("user", "timeout"):
            if reserved in names and reserved not in values:
                # The keyword would be swallowed by the reserved argument.
                raise TranslationError(
                    f"this query declares a parameter named {reserved!r}, "
                    f"which collides with the reserved {reserved}= argument "
                    "of execute(); bind it positionally or rename the "
                    "placeholder"
                )
        for name, value in params.items():
            if name not in names:
                raise TranslationError(
                    f"unknown parameter {name!r}; this query declares "
                    f"{list(names)!r}"
                )
            if name in values:
                raise TranslationError(
                    f"parameter {name!r} bound both positionally and by name"
                )
            values[name] = value
        missing = [n for n in names if n not in values]
        if missing:
            raise TranslationError(f"missing values for parameters {missing!r}")
        return values

    def _execute_agg(
        self, values: dict[str, Any], timeout: float | None = None
    ) -> QueryResult:
        assert self._translated is not None
        session = self._session
        with obs_trace.span(
            "query:aggregate", table=self.query.table, category=self.category
        ):
            t0 = time.perf_counter()
            requests = (
                bind_requests(self._translated.requests, values)
                if values
                else self._translated.requests
            )
            bind_time = time.perf_counter() - t0
            obs_trace.record_span("client:bind", t0, t0 + bind_time,
                                  requests=len(requests))

            responses = [
                session.transport.execute(r, timeout=timeout) for r in requests
            ]

            t1 = time.perf_counter()
            rows = self._decryptor.decrypt(self._translated, responses)
            t2 = time.perf_counter()
            client_time = bind_time + (t2 - t1)
            obs_trace.record_span("client:decrypt", t1, t2, rows=len(rows))

        metrics = [r.metrics for r in responses]
        transport_kind = type(session.transport).__name__
        for m in metrics:
            m.client_time = client_time / max(len(metrics), 1)
            _obs_metrics.observe_job(
                m, table=self.query.table, transport=transport_kind
            )
        return QueryResult(
            rows=rows,
            request_metrics=metrics,
            client_time=client_time,
            translation=self._translated,
        )

    def _execute_scan(
        self, values: dict[str, Any], timeout: float | None = None
    ) -> QueryResult:
        session = self._session
        with obs_trace.span("query:scan", table=self.query.table):
            t0 = time.perf_counter()
            scan_filter = (
                bind_filter(self._scan_filter, values) if values else self._scan_filter
            )
            bind_time = time.perf_counter() - t0
            obs_trace.record_span("client:bind", t0, t0 + bind_time)
            response = session.transport.scan(
                self.query.table,
                [column for column, _ in self._scan_physical.values()],
                scan_filter,
                timeout=timeout,
            )
            t1 = time.perf_counter()
            rows = self._decryptor.decrypt_scan(
                self._scan_requested, self._scan_physical, response
            )
            t2 = time.perf_counter()
            client_time = bind_time + (t2 - t1)
            obs_trace.record_span("client:decrypt", t1, t2, rows=len(rows))
        response.metrics.client_time = client_time
        _obs_metrics.observe_job(
            response.metrics,
            table=self.query.table,
            transport=type(session.transport).__name__,
        )
        rows = order_and_limit(rows, self.query)
        return QueryResult(
            rows=rows,
            request_metrics=[response.metrics],
            client_time=client_time,
        )


class EncryptedTable:
    """Handle to one encrypted table registered in a session.

    Returned by :meth:`SeabedSession.encrypted_table` and
    :meth:`SeabedSession.open_table`; its job is the persistence loop of
    the paper's deployment model: :meth:`save` writes the server-side
    ciphertexts to a partition store (:mod:`repro.engine.store`) plus the
    client-state sidecar, and a *fresh* session (same master key) attaches
    with ``open_table`` -- zero re-encryption, columns memory-mapped.
    """

    def __init__(self, session: "SeabedSession", name: str):
        self._session = session
        self.name = name

    @property
    def schema(self) -> sc.TableSchema:
        return self._session.table_state(self.name).schema

    @property
    def enc_schema(self) -> sc.EncryptedSchema:
        return self._session.table_state(self.name).enc_schema

    @property
    def num_rows(self) -> int:
        return self._session.table_state(self.name).num_rows

    @property
    def store_path(self) -> str | None:
        """Where the server-side table is memory-mapped from, if anywhere.

        Over a remote transport this names a path *on the serving host*.
        """
        meta = self._session.transport.table_meta(self.name)
        if meta is None:
            raise ExecutionError(
                f"no table {self.name!r} registered on the server"
            )
        return meta["store_path"]

    def save(self, path: str | None = None, overwrite: bool = False) -> str:
        """Persist ciphertexts + client state; returns the store path.

        ``path`` defaults to the table name, resolved against the
        server side's ``storage_dir``.  The written directory holds only
        public material plus the ``client_state.json`` sidecar (plaintext
        dictionaries, no keys) -- see :mod:`repro.core.persistence`.
        The server writes both halves on the session's behalf: it
        already holds the ciphertexts, and the sidecar payload the
        session hands over is key-free by construction.
        """
        session = self._session
        state = session.table_state(self.name)
        resolved = session.transport.save_store(
            self.name,
            path or self.name,
            session._column_meta(state),
            overwrite=overwrite,
        )
        session._commit_state(self.name)
        return resolved

    def append(
        self, columns: Mapping[str, Any], num_partitions: int | None = None
    ) -> AppendStats:
        """Encrypt one plaintext batch and append it to this table's
        store as a new generation; see :meth:`SeabedSession.append_rows`."""
        return self._session.append_rows(
            self.name, columns, num_partitions=num_partitions
        )

    def compact(self, target_rows: int | None = None) -> dict | None:
        """Merge small append generations back into full-size partitions;
        see :meth:`SeabedSession.compact_table`."""
        return self._session.compact_table(self.name, target_rows=target_rows)

    @property
    def generations(self) -> list[dict]:
        """The store's generation log (empty for in-memory tables)."""
        return self._session.transport.generations(self.name)

    def stats(self) -> dict:
        """Zone-map index summary: partition/row coverage and per-column
        artifact counts (:func:`repro.engine.store.store_stats`).  An
        in-memory table carries no index and reports zero coverage."""
        return self._session.transport.store_stats(self.name)

    def rebuild_index(self) -> dict:
        """Recompute the store's zone-map statistics and refresh the
        server-side view; see :meth:`SeabedSession.rebuild_index`."""
        return self._session.rebuild_index(self.name)

    def builder(self) -> QueryBuilder:
        """A fluent query builder bound to this table."""
        return self._session.table(self.name)

    def __repr__(self) -> str:
        return f"EncryptedTable({self.name!r}, rows={self.num_rows})"


class ShardedTable:
    """Handle to a table split across process-isolated shard workers.

    Returned by :meth:`SeabedSession.shard_table` and
    :meth:`SeabedSession.open_sharded`.  Queries go through the ordinary
    session surface (the server delegates to the shard coordinator by
    table name); this handle exposes the distribution-specific levers:
    replicated appends, per-shard row counts, compaction, and the fault
    injection the failover tests and demos use.
    """

    def __init__(self, session: "SeabedSession", name: str):
        self._session = session
        self.name = name

    @property
    def store(self) -> ShardedStore:
        store = self._session._sharded_stores.get(self.name)
        if store is None:
            raise TransportError(
                f"sharded table {self.name!r} is hosted by the remote "
                "service; its worker fleet is not reachable from this client"
            )
        return store

    @property
    def topology(self) -> ShardTopology:
        remote = self._session._remote_sharded.get(self.name)
        if remote is not None:
            return remote[1]
        return self.store.topology

    @property
    def root(self) -> str:
        remote = self._session._remote_sharded.get(self.name)
        if remote is not None:
            return remote[0]
        return self.store.root

    @property
    def num_rows(self) -> int:
        return self._session.table_state(self.name).num_rows

    def append(
        self, columns: Mapping[str, Any], num_partitions: int | None = None
    ) -> AppendStats:
        """Route one plaintext batch to its shards and append everywhere;
        see :meth:`SeabedSession.append_sharded`."""
        return self._session.append_sharded(
            self.name, columns, num_partitions=num_partitions
        )

    def compact(self, target_rows: int | None = None) -> dict[int, dict | None]:
        """Compact every shard store on every live replica."""
        self._session._reconcile_sharded(self.name)
        return self.store.compact(target_rows)

    def shard_rows(self) -> dict[int, int]:
        """Rows per shard (asks the first live replica of each)."""
        return {s: self.store.shard_rows(s) for s in self.store.shards}

    def kill_node(self, node: int) -> None:
        """Hard-kill one shard worker process (fault injection)."""
        self.store.kill_node(node)

    def arm_exit(self, node: int, method: str, after: int = 1) -> None:
        """Arm a fail point: ``node`` dies mid-``method``, reply unsent."""
        self.store.arm_exit(node, method, after)

    def builder(self) -> QueryBuilder:
        """A fluent query builder bound to this table."""
        return self._session.table(self.name)

    def close(self) -> None:
        """Shut down every shard worker process."""
        self.store.close()

    def __repr__(self) -> str:
        topo = self.topology
        return (
            f"ShardedTable({self.name!r}, shards={topo.num_shards}, "
            f"replicas={topo.replicas}, rows={self.num_rows})"
        )


class SeabedSession:
    """The trusted client session: planner + encryptor + prepared-query
    execution over one keychain and cluster.

    ``mode`` selects the paper's three compared systems over one pipeline:
    ``seabed`` (ASHE/SPLASHE/DET/ORE), ``paillier`` (the CryptDB/Monomi-
    style baseline), and ``plain`` (NoEnc).  Cross-table join keys and
    shared dictionaries are resolved here, which is why join queries must
    go through the session.
    """

    def __init__(
        self,
        master_key: bytes | None = None,
        mode: str = "seabed",
        cluster: SimulatedCluster | None = None,
        server: srv.SeabedServer | None = None,
        prf_backend: str = "splitmix64",
        paillier_bits: int = 1024,
        paillier_keys: PaillierKeyPair | None = None,
        paillier_blinding_pool: int | None = None,
        access_control: bool = False,
        seed: int | None = 0,
        cache_size: int = 128,
        transport: Transport | None = None,
    ):
        if mode not in ("seabed", "paillier", "plain"):
            raise PlanningError(f"unknown client mode {mode!r}")
        if transport is not None and server is not None:
            raise PlanningError(
                "pass either transport= or server=, not both: a transport "
                "already decides where the server lives"
            )
        self.mode = mode
        # Even a remote session keeps a cluster handle: its config drives
        # client-side work (translation core counts, append batch slicing,
        # query_many fan-out); the *serving* side executes with its own.
        self.cluster = cluster or SimulatedCluster()
        if transport is None:
            transport = LocalTransport(
                server or srv.SeabedServer(self.cluster), self.cluster
            )
        self._transport = transport
        self._keychain = (
            KeyChain(master_key) if master_key is not None else KeyChain.generate()
        )
        self._prf_backend = prf_backend
        self._planner = Planner(mode=mode)
        self._states: dict[str, ClientTableState] = {}
        self._factories: dict[str, CryptoFactory] = {}
        self._sample_queries: dict[str, list[Query]] = {}
        self._join_dictionaries: dict[str, DictionaryEncoder] = {}
        self._seed = seed
        self._paillier: PaillierScheme | None = None
        if mode == "paillier":
            keys = paillier_keys or PaillierKeyPair.generate(
                bits=paillier_bits, seed=seed
            )
            self._paillier = PaillierScheme(
                keys, seed=seed, blinding_pool=paillier_blinding_pool
            )
        self.reports: dict[str, PlannerReport] = {}
        self.access: AccessController | None = (
            AccessController() if access_control else None
        )
        self._cache = TranslationCache(maxsize=cache_size)
        # Sharded tables: worker fleet per table, plus one client-state
        # cursor per shard (disjoint row-ID strides; shared dictionaries).
        self._sharded_stores: dict[str, ShardedStore] = {}
        self._shard_states: dict[str, dict[int, ClientTableState]] = {}
        # Sharded tables hosted by a remote service: (server-side root,
        # topology).  Query-only from this client; the fleet lives there.
        self._remote_sharded: dict[str, tuple[str, Any]] = {}

    # -- the execution boundary --------------------------------------------------

    @property
    def transport(self) -> Transport:
        """The session's execution boundary (see :mod:`repro.core.transport`)."""
        return self._transport

    @property
    def server(self) -> srv.SeabedServer:
        """The in-process server behind a local transport.

        Only meaningful in single-process mode; a session connected to a
        remote service has no server object to poke (that is the point
        of the boundary), so this raises
        :class:`~repro.errors.TransportError`.
        """
        if isinstance(self._transport, LocalTransport):
            return self._transport.server
        raise TransportError(
            "this session runs over a remote transport; the server lives "
            "in the service process and cannot be reached in-process"
        )

    @server.setter
    def server(self, value: srv.SeabedServer) -> None:
        if isinstance(self._transport, LocalTransport):
            self._transport.server = value
            return
        raise TransportError(
            "cannot replace the server of a remotely-connected session"
        )

    # -- planning ---------------------------------------------------------------

    def create_plan(
        self,
        schema: sc.TableSchema,
        sample_queries: list[str | Query],
        storage_budget: float | None = None,
    ) -> PlannerReport:
        queries = [
            parse_query(q) if isinstance(q, str) else q for q in sample_queries
        ]
        enc_schema, report = self._planner.plan(
            schema, queries, storage_budget=storage_budget
        )
        self._states[schema.name] = ClientTableState(
            schema=schema, enc_schema=enc_schema
        )
        self._factories[schema.name] = CryptoFactory(
            self._keychain, schema.name, prf_backend=self._prf_backend
        )
        self._sample_queries[schema.name] = queries
        self.reports[schema.name] = report
        self._link_join_groups()
        # Plans (and join-group links) changed: every cached translation
        # that touches this schema is stale.
        self._cache.clear()
        return report

    def _link_join_groups(self) -> None:
        """Give equi-joined DET columns a shared key and dictionary so
        their ciphertexts match across tables."""
        for queries in self._sample_queries.values():
            for q in queries:
                if q.join is None:
                    continue
                left_table = q.table
                right_table = q.join.table
                if left_table not in self._states or right_table not in self._states:
                    continue
                left_state = self._states[left_table]
                right_state = self._states[right_table]
                group = "&".join(sorted([
                    f"{left_table}.{q.join.left_column}",
                    f"{right_table}.{q.join.right_column}",
                ]))
                shared = self._join_dictionaries.setdefault(group, DictionaryEncoder())
                for state, column in (
                    (left_state, q.join.left_column),
                    (right_state, q.join.right_column),
                ):
                    plan = state.enc_schema.plans.get(column)
                    if plan is None or plan.kind not in ("det", "plain"):
                        raise PlanningError(
                            f"join column {column!r} must be DET-planned (or "
                            "plain in NoEnc mode); got "
                            f"{plan.kind if plan else 'missing'}"
                        )
                    if plan.kind == "det":
                        plan.join_group = group
                    # Join keys must share one dictionary so codes (and
                    # hence ciphertexts) match across the two tables.
                    if state.schema.column(column).dtype == "str":
                        state.dictionaries[column] = shared

    # -- upload -----------------------------------------------------------------

    def upload(
        self,
        table: str,
        columns: Mapping[str, Any],
        num_partitions: int | None = None,
    ) -> UploadStats:
        """Encrypt one plaintext batch and hand it to the server.

        On an in-memory table the batch is appended to the server-side
        partitions directly.  Once the table is **store-backed** (saved
        or attached), the batch routes through :meth:`append_rows`
        instead, so it lands durably in the partition store -- appending
        to only the in-memory view would silently diverge from what a
        fresh attach sees.  ``num_partitions`` defaults to 8 in memory
        and to config-driven batch slicing for store appends.
        """
        state = self._state(table)
        if table in self._remote_sharded:
            raise TransportError(
                f"table {table!r} is a remotely-hosted sharded table; "
                "sharded appends must run in the serving process"
            )
        if table in self._sharded_stores:
            stats = self.append_sharded(
                table, columns, num_partitions=num_partitions
            )
            return UploadStats(
                table=table,
                rows=stats.rows,
                encrypt_seconds=stats.encrypt_seconds,
                physical_columns=stats.physical_columns,
            )
        meta = self.transport.table_meta(table)
        if meta is not None and meta["store_backed"]:
            stats = self.append_rows(table, columns, num_partitions=num_partitions)
            return UploadStats(
                table=table,
                rows=stats.rows,
                encrypt_seconds=stats.encrypt_seconds,
                physical_columns=stats.physical_columns,
            )
        encryptor = EncryptionModule(
            self._factories[table], paillier=self._paillier, seed=self._seed
        )
        t0 = time.perf_counter()
        encrypted = encryptor.encrypt_batch(
            state, columns, num_partitions=num_partitions or 8
        )
        elapsed = time.perf_counter() - t0
        self.transport.upload(encrypted)
        return UploadStats(
            table=table,
            rows=encrypted.num_rows,
            encrypt_seconds=elapsed,
            physical_columns=len(encrypted.column_names),
        )

    # -- incremental ingestion -------------------------------------------------------

    def append_rows(
        self,
        table: str,
        columns: Mapping[str, Any],
        num_partitions: int | None = None,
    ) -> AppendStats:
        """Encrypt one plaintext batch and append it to ``table``'s
        partition store as a new *generation*.

        This is the streaming half of the paper's ingestion story
        (Section 3.1: symmetric ASHE exists so continuously arriving
        ad-analytics data stays affordable to encrypt): only the batch is
        encrypted -- ASHE row IDs continue from the table's high-water
        mark so pads keep telescoping, and DET/ORE/SPLASHE columns reuse
        the existing plans and dictionaries.  The batch lands as a new
        generation of partition files published atomically; concurrent
        readers on any backend keep seeing their own snapshot.  The
        append *commits* when the client-state sidecar's row watermark is
        rewritten -- a writer killed anywhere in between is rolled back
        by the next append (or ignored by the next attach).

        ``num_partitions`` defaults to slicing the batch into partitions
        of ``cluster.config.append_partition_rows`` rows.
        """
        state = self._state(table)
        meta = self.transport.table_meta(table)
        if meta is None or not meta["store_backed"]:
            raise StorageError(
                f"table {table!r} is not store-backed; use upload() for "
                "in-memory tables, or save_table() first"
            )
        self._reconcile_store(table, state)
        arrays = {name: np.asarray(col) for name, col in columns.items()}
        nrows = len(next(iter(arrays.values()))) if arrays else 0
        if nrows == 0:
            raise StorageError("append batch is empty")
        if num_partitions is None:
            target = max(1, self.cluster.config.append_partition_rows)
            num_partitions = -(-nrows // target)
        encryptor = EncryptionModule(
            self._factories[table], paillier=self._paillier, seed=self._seed
        )
        rollback = (state.next_row_id, state.num_rows)
        t0 = time.perf_counter()
        try:
            encrypted = encryptor.encrypt_batch(
                state, arrays, num_partitions=num_partitions
            )
            encrypt_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            generation = self.transport.append_batch(
                table, encrypted, self._column_meta(state)
            )
            # Commit point: the sidecar's row watermark acknowledges the
            # generation published above.
            self._commit_state(table)
        except Exception:
            state.next_row_id, state.num_rows = rollback
            raise
        write_seconds = time.perf_counter() - t0
        self.transport.reopen(table)
        return AppendStats(
            table=table,
            rows=nrows,
            generation=generation,
            encrypt_seconds=encrypt_seconds,
            write_seconds=write_seconds,
            physical_columns=len(encrypted.column_names),
        )

    def stats(self, table: str) -> dict:
        """Zone-map index summary for ``table`` (shorthand for
        ``encrypted_table(table).stats()``)."""
        return self.encrypted_table(table).stats()

    def rebuild_index(self, table: str) -> dict:
        """Recompute every partition's zone-map statistics for ``table``'s
        store and refresh the server-side view.

        The eager counterpart of the lazy first-mutation backfill: a
        store written before manifest v3 gains its index immediately
        instead of waiting for an append or compaction.  The refreshed
        view stays pinned to the snapshot this session attached at, so a
        generation the sidecar never committed remains invisible.
        Returns the new index summary.
        """
        self._state(table)  # raises if unknown
        return self.transport.rebuild_index(table)

    def compact_table(self, table: str, target_rows: int | None = None) -> dict | None:
        """Merge runs of small append generations into full-size
        partitions (scan parallelism maintenance under streaming
        ingestion).  ``target_rows`` defaults to the store's own largest
        mean partition size.  Returns the compaction stats dict, or
        ``None`` when the store was already healthy."""
        state = self._state(table)
        meta = self.transport.table_meta(table)
        if meta is None or not meta["store_backed"]:
            raise StorageError(
                f"table {table!r} is not store-backed; there is nothing to compact"
            )
        self._reconcile_store(table, state)
        return self.transport.compact(table, target_rows=target_rows)

    def _reconcile_store(self, table: str, state: ClientTableState) -> None:
        """Roll back store generations the sidecar never acknowledged
        (a previous writer died between manifest publish and sidecar
        commit); refuse stores that are behind the client state.

        The *on-disk* sidecar is the commit record -- never this
        session's in-memory watermark, which may simply be stale because
        another session appended since we attached.  Rolling back against
        the in-memory view would silently destroy that writer's
        committed generations; instead the stale session gets a clear
        error and must re-open the table.
        """
        meta = self.transport.table_meta(table)
        assert meta is not None and meta["store_backed"]  # callers checked
        store_path = meta["store_path"]
        committed = int(self.transport.read_store_state(store_path)["num_rows"])
        if committed != state.num_rows:
            raise StorageError(
                f"the store at {store_path!r} has {committed} committed rows "
                f"but this session attached at {state.num_rows}; another "
                "writer advanced (or rewrote) the store -- re-open the table "
                "in a fresh session before appending"
            )
        on_disk = self.transport.store_rows(table)
        if on_disk == committed:
            return
        if on_disk < committed:
            raise StorageError(
                f"store at {store_path!r} holds {on_disk} rows but its "
                f"sidecar committed {committed}; the store is stale or corrupt"
            )
        self.transport.truncate_store(table, committed)

    # -- persistence ----------------------------------------------------------------

    def encrypted_table(self, name: str) -> EncryptedTable:
        """Handle to a planned-and-uploaded table (see :class:`EncryptedTable`)."""
        self._state(name)  # raises if unknown
        return EncryptedTable(self, name)

    def save_table(
        self, name: str, path: str | None = None, overwrite: bool = False
    ) -> str:
        """Persist ``name``'s ciphertexts + client state to a partition
        store; shorthand for ``encrypted_table(name).save(path)``."""
        return self.encrypted_table(name).save(path, overwrite=overwrite)

    def open_table(self, path: str) -> EncryptedTable:
        """Attach a persisted table without re-encrypting anything.

        This is the paper's upload-once model: the store was written by
        :meth:`EncryptedTable.save` (possibly in another process); this
        session -- constructed with the *same master key* -- reads the
        client-state sidecar, memory-maps the ciphertext columns, and
        registers both halves.  A wrong master key, a mode mismatch, or a
        different Paillier key pair raises
        :class:`~repro.errors.StorageError` up front instead of letting
        queries decrypt garbage.
        """
        resolved = self.cluster.config.resolve_store_path(path)
        state, attach = ps.state_from_dict(self.transport.read_store_state(path))
        name = state.schema.name
        if name in self._states:
            raise StorageError(
                f"table {name!r} is already registered in this session"
            )
        self._verify_attach(attach, name, f"store at {resolved!r}")
        # The server opens the store at its committed snapshot and
        # registers it; key/mode verification already happened above,
        # client-side, against the key-free sidecar payload.
        info = self.transport.attach(path)
        if info["name"] != name:
            raise StorageError(
                f"the server attached table {info['name']!r} but the sidecar "
                f"describes {name!r}"
            )
        self._states[name] = state
        self._factories[name] = CryptoFactory(
            self._keychain, name, prf_backend=attach["prf_backend"]
        )
        self._sample_queries.setdefault(name, [])
        # No cache invalidation needed: the name was unregistered until
        # now, so no cached translation can reference it, and attaching
        # must not evict other tables' hot templates.
        return EncryptedTable(self, name)

    def _verify_attach(
        self, attach: dict[str, Any], name: str, what: str
    ) -> None:
        """Mode / master-key / Paillier checks shared by every attach
        path; all three fail fast with :class:`StorageError` instead of
        letting queries decrypt garbage."""
        if attach["mode"] != self.mode:
            raise StorageError(
                f"{what} was written in mode {attach['mode']!r}; "
                f"this session runs mode {self.mode!r}"
            )
        if attach["key_check"] != ps.key_check_value(self._keychain, name):
            raise StorageError(
                f"the session master key cannot decrypt the {what} "
                "(key-check mismatch)"
            )
        if self.mode == "paillier":
            assert self._paillier is not None
            if attach["paillier_n"] != self._paillier.n:
                raise StorageError(
                    "the session's Paillier key pair differs from the one "
                    f"that encrypted this {what}; pass the original keys"
                )

    # -- sharded tables ---------------------------------------------------------

    def shard_table(
        self,
        name: str,
        shard_key: str,
        path: str | None = None,
        *,
        num_shards: int = 4,
        replicas: int = 1,
        vnodes: int = 64,
    ) -> ShardedTable:
        """Split a freshly planned table across ``num_shards`` worker
        processes, placed by ``shard_key``'s DET tokens on a consistent-
        hash ring with ``replicas``-way replica chains.

        Must run before any rows are ingested: rows are routed to shards
        at encryption time so each shard's store keeps the contiguous
        row-ID invariant (re-sharding ciphertexts would break ASHE pad
        telescoping).  ``shard_key`` must carry a DET ciphertext column
        (a det-planned dimension, or a measure with a DET companion) --
        that is what point/IN predicates route through.  ``path``
        defaults to the table name under the cluster's ``storage_dir``.
        """
        # Imported lazily: repro.shard itself imports the server module,
        # so a top-level import here would close a package cycle.
        from repro.shard.coordinator import (
            SHARD_ID_STRIDE,
            ShardCoordinator,
            ShardedStore,
            ShardTopology,
        )

        if not self.transport.local:
            raise TransportError(
                "shard_table spawns a worker fleet and must run in the "
                "serving process; remote sessions can query sharded tables "
                "(open_sharded) but not create them"
            )
        state = self._state(name)
        if name in self._sharded_stores:
            raise StorageError(f"table {name!r} is already sharded")
        if state.num_rows > 0:
            raise StorageError(
                f"table {name!r} already holds {state.num_rows} rows; "
                "shard_table must run before the first upload so rows are "
                "routed to shards at encryption time"
            )
        key_column, _ = self._shard_key_column(state, shard_key)
        root = self.cluster.config.resolve_store_path(path or name)
        os.makedirs(root, exist_ok=True)
        topology = ShardTopology(
            table=name,
            shard_key=shard_key,
            key_column=key_column,
            num_shards=num_shards,
            replicas=replicas,
            vnodes=vnodes,
        )
        store = ShardedStore(root, topology, self.cluster.config)
        self._sharded_stores[name] = store
        self._shard_states[name] = {
            s: ClientTableState(
                schema=state.schema,
                enc_schema=state.enc_schema,
                dictionaries=state.dictionaries,  # shared: codes stay global
                next_row_id=s * SHARD_ID_STRIDE,
                num_rows=0,
            )
            for s in range(num_shards)
        }
        self.server.register_sharded(name, ShardCoordinator(store, self.cluster))
        self._write_sharded_sidecar(root, name)  # commit the empty layout
        return ShardedTable(self, name)

    def open_sharded(self, path: str) -> ShardedTable:
        """Attach a persisted sharded table: read the sharded sidecar,
        respawn the worker fleet over the existing node directories, and
        roll back any shard generations a dead writer never committed.
        Verification mirrors :meth:`open_table` (mode, key check,
        Paillier modulus)."""
        from repro.shard.coordinator import (  # lazy: avoids package cycle
            ShardCoordinator,
            ShardedStore,
            ShardTopology,
        )

        root = self.cluster.config.resolve_store_path(path)
        payload = self.transport.read_sharded_state(path)
        state, attach, sharding = ps.sharded_from_dict(payload)
        name = state.schema.name
        if name in self._states:
            raise StorageError(
                f"table {name!r} is already registered in this session"
            )
        self._verify_attach(attach, name, f"sharded table at {root!r}")
        topology = ShardTopology.from_dict(sharding["topology"])
        if not self.transport.local:
            # The service hosts the fleet (spawning workers, rolling back
            # uncommitted shard tails); this client is query-only.
            info = self.transport.attach_sharded(path)
            self._states[name] = state
            self._factories[name] = CryptoFactory(
                self._keychain, name, prf_backend=attach["prf_backend"]
            )
            self._sample_queries.setdefault(name, [])
            self._remote_sharded[name] = (info.get("root", path), topology)
            return ShardedTable(self, name)
        self._states[name] = state
        self._factories[name] = CryptoFactory(
            self._keychain, name, prf_backend=attach["prf_backend"]
        )
        self._sample_queries.setdefault(name, [])
        store = ShardedStore(root, topology, self.cluster.config)
        self._sharded_stores[name] = store
        self._shard_states[name] = {
            shard: ClientTableState(
                schema=state.schema,
                enc_schema=state.enc_schema,
                dictionaries=state.dictionaries,
                next_row_id=cursor["next_row_id"],
                num_rows=cursor["num_rows"],
            )
            for shard, cursor in sharding["shards"].items()
        }
        # Workers read their stores' latest manifests, so uncommitted
        # tails from a dead writer must be rolled back before queries.
        self._reconcile_sharded(name)
        self.server.register_sharded(name, ShardCoordinator(store, self.cluster))
        return ShardedTable(self, name)

    def sharded_table(self, name: str) -> ShardedTable:
        """Handle to a sharded table registered in this session."""
        if name not in self._sharded_stores and name not in self._remote_sharded:
            raise StorageError(f"table {name!r} is not sharded in this session")
        return ShardedTable(self, name)

    def close(self) -> None:
        """Shut down every sharded table's worker fleet.

        Single-store and in-memory tables need no teardown; only sharded
        tables hold OS processes.  Idempotent, and an atexit reaper kills
        stragglers anyway, but tests and long-lived callers should close
        deterministically.
        """
        for store in self._sharded_stores.values():
            store.close()
        self._transport.close()

    def append_sharded(
        self,
        table: str,
        columns: Mapping[str, Any],
        num_partitions: int | None = None,
    ) -> AppendStats:
        """Route one plaintext batch to its shards and append everywhere.

        The sharded counterpart of :meth:`append_rows`: the batch's shard
        key is encoded and DET-encrypted once, the ring assigns every row
        an owning shard, and each shard's slice is encrypted against that
        shard's own row-ID cursor, then appended -- identically, in the
        same order -- to *every* replica of the shard (appends need the
        full replica chain alive; queries need one survivor).  The append
        commits when the sharded sidecar's per-shard cursors are
        rewritten; a writer killed mid-way leaves uncommitted shard
        generations the next reconcile rolls back.
        """
        state = self._state(table)
        if table in self._remote_sharded:
            raise TransportError(
                f"sharded table {table!r} is hosted by the remote service; "
                "sharded appends must run in the serving process"
            )
        store = self._sharded_stores.get(table)
        if store is None:
            raise StorageError(
                f"table {table!r} is not sharded; use upload()/append_rows() "
                "for single-store tables, or shard_table() first"
            )
        shard_states = self._shard_states[table]
        self._reconcile_sharded(table)
        arrays = {name: np.asarray(col) for name, col in columns.items()}
        nrows = len(next(iter(arrays.values()))) if arrays else 0
        if nrows == 0:
            raise StorageError("append batch is empty")
        shard_ids = self._route_rows(table, state, arrays)
        encryptor = EncryptionModule(
            self._factories[table], paillier=self._paillier, seed=self._seed
        )
        column_meta = self._column_meta(state)
        rollback = {
            s: (st.next_row_id, st.num_rows) for s, st in shard_states.items()
        }
        base_rollback = (state.next_row_id, state.num_rows)
        encrypt_seconds = 0.0
        write_seconds = 0.0
        generation = 0
        physical_columns = 0
        try:
            for shard in sorted(set(shard_ids.tolist())):
                mask = shard_ids == shard
                batch = {name: arr[mask] for name, arr in arrays.items()}
                shard_nrows = int(mask.sum())
                if num_partitions is None:
                    target = max(1, self.cluster.config.append_partition_rows)
                    parts = -(-shard_nrows // target)
                else:
                    parts = num_partitions
                t0 = time.perf_counter()
                encrypted = encryptor.encrypt_batch(
                    shard_states[shard], batch, num_partitions=parts
                )
                encrypt_seconds += time.perf_counter() - t0
                physical_columns = len(encrypted.column_names)
                t0 = time.perf_counter()
                generation = max(
                    generation,
                    store.append_shard(
                        shard, serialize_table(encrypted), column_meta
                    ),
                )
                write_seconds += time.perf_counter() - t0
            state.num_rows += nrows
            # Commit point: the per-shard cursors acknowledge every
            # generation published above, atomically.
            self._write_sharded_sidecar(store.root, table)
        except Exception:
            for s, (next_id, rows) in rollback.items():
                shard_states[s].next_row_id = next_id
                shard_states[s].num_rows = rows
            state.next_row_id, state.num_rows = base_rollback
            raise
        return AppendStats(
            table=table,
            rows=nrows,
            generation=generation,
            encrypt_seconds=encrypt_seconds,
            write_seconds=write_seconds,
            physical_columns=physical_columns,
        )

    @staticmethod
    def _shard_key_column(
        state: ClientTableState, shard_key: str
    ) -> tuple[str, str | None]:
        """The shard key's DET ciphertext column (and join group)."""
        plan = state.enc_schema.plans.get(shard_key)
        if plan is None:
            raise PlanningError(
                f"table {state.schema.name!r} has no column {shard_key!r}"
            )
        if isinstance(plan, sc.DetPlan):
            return plan.cipher_column, plan.join_group
        if isinstance(plan, (sc.AshePlan, sc.PaillierPlan)) and plan.det_column:
            return plan.det_column, None
        raise PlanningError(
            f"shard key {shard_key!r} carries no DET ciphertext column "
            f"(plan kind {plan.kind!r}); shard by a det-planned dimension "
            "so point predicates can route"
        )

    def _route_rows(
        self,
        table: str,
        state: ClientTableState,
        arrays: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """Owning shard per batch row, from the shard key's DET tokens."""
        topo = self._sharded_stores[table].topology
        values = arrays.get(topo.shard_key)
        if values is None:
            raise StorageError(
                f"append batch is missing the shard key column "
                f"{topo.shard_key!r}"
            )
        spec = next(
            s for s in state.schema.columns if s.name == topo.shard_key
        )
        if spec.dtype == "str":
            encoder = state.dictionaries.setdefault(
                topo.shard_key, DictionaryEncoder()
            )
            codes = encoder.encode_column(values.tolist())
        else:
            codes = values.astype(np.int64)
        plan = state.enc_schema.plans[topo.shard_key]
        join_group = plan.join_group if isinstance(plan, sc.DetPlan) else None
        det = self._factories[table].det(topo.key_column, join_group)
        return self._sharded_stores[table].ring.owners(det.encrypt_column(codes))

    def _reconcile_sharded(self, table: str) -> None:
        """Roll back shard generations the sharded sidecar never
        acknowledged; refuse when this session's view is stale (another
        writer committed past our cursors -- re-open the table)."""
        store = self._sharded_stores[table]
        shard_states = self._shard_states[table]
        _, _, sharding = ps.read_sharded_sidecar(store.root)
        for shard, st in shard_states.items():
            cursor = sharding["shards"].get(shard)
            committed = cursor["num_rows"] if cursor is not None else 0
            if committed != st.num_rows:
                raise StorageError(
                    f"shard {shard} of {table!r} has {committed} committed "
                    f"rows but this session attached at {st.num_rows}; "
                    "another writer advanced the table -- re-open it in a "
                    "fresh session before appending"
                )
            on_disk = store.shard_rows(shard)
            if on_disk == committed:
                continue
            if on_disk < committed:
                raise StorageError(
                    f"shard {shard} of {table!r} holds {on_disk} rows but "
                    f"its sidecar committed {committed}; the store is stale "
                    "or corrupt"
                )
            store.truncate_shard(shard, committed)

    def _write_sharded_sidecar(self, root: str, table: str) -> None:
        ps.write_sharded_sidecar(
            root,
            self._states[table],
            mode=self.mode,
            prf_backend=self._factories[table].prf_backend,
            keychain=self._keychain,
            topology=self._sharded_stores[table].topology.to_dict(),
            shard_cursors={
                shard: {"next_row_id": st.next_row_id, "num_rows": st.num_rows}
                for shard, st in self._shard_states[table].items()
            },
            paillier_n=(
                self._paillier.n if self._paillier is not None else None
            ),
        )

    # -- the fluent surface -------------------------------------------------------

    def table(self, name: str) -> QueryBuilder:
        """A fluent builder bound to this session::

            session.table("uservisits").where(col("pageRank") > 100) \\
                   .group_by("hour").sum("adRevenue").execute()
        """
        return QueryBuilder(name, session=self)

    # -- preparation ---------------------------------------------------------------

    def prepare(
        self,
        query: str | Query | QueryBuilder,
        expected_groups: int | None = None,
        compress_at: str = "worker",
    ) -> PreparedQuery:
        """Translate once; execute many times.

        Aggregation queries compile to a server-request template,
        projections to a resolved physical scan; both leave
        :class:`~repro.query.ast.Param` slots open for ``execute`` to
        bind.
        """
        OPS.bump("prepare")
        q = self._as_query(query)
        if q.is_aggregation():
            return self._prepare_aggregation(q, expected_groups, compress_at)
        return self._prepare_scan(q)

    def _prepare_aggregation(
        self, q: Query, expected_groups: int | None, compress_at: str
    ) -> PreparedQuery:
        state = self._state(q.table)
        factory = self._factories[q.table]
        join_context = None
        server_join = None
        if q.join is not None:
            join_state = self._state(q.join.table)
            join_context = (join_state, self._factories[q.join.table])
            server_join = self._build_server_join(q, state, join_state)
        translator = QueryTranslator(
            state,
            factory,
            paillier_n_squared=(
                self._paillier.n ** 2 if self._paillier is not None else None
            ),
            join_context=join_context,
        )
        translated = translator.translate(
            q,
            cores=self.cluster.config.cores,
            expected_groups=expected_groups,
            join=server_join,
        )
        if compress_at != "worker":
            translated.requests = [
                replace(r, compress_at=compress_at) for r in translated.requests
            ]
        decryptor = DecryptionModule(
            state, self._decrypt_factory(q), paillier=self._paillier
        )
        return PreparedQuery(
            self, q, translated=translated, decryptor=decryptor,
            expected_groups=expected_groups, compress_at=compress_at,
        )

    def _prepare_scan(self, q: Query) -> PreparedQuery:
        """Resolve a projection: ``SELECT cols FROM t WHERE ...``.

        The server filters with DET/ORE tokens and returns the matching
        encrypted rows; the client decrypts them row-by-row (two PRF
        evaluations per ASHE cell, Section 4.6).  SPLASHE and bare ORE
        columns cannot be projected.
        """
        state = self._state(q.table)
        factory = self._factories[q.table]
        translator = QueryTranslator(state, factory)
        base_filter, selectors = translator.split_predicate(q.where)
        if selectors:
            raise TranslationError("SPLASHE dimensions cannot be projected")
        physical: dict[str, tuple[str, str]] = {}
        for item in q.select:
            name = item.name
            plan = state.enc_schema.plan(name)
            if plan.kind == "plain":
                physical[name] = (plan.column, "plain")
            elif plan.kind in ("ashe", "det", "paillier"):
                physical[name] = (plan.cipher_column, plan.kind)
            else:
                raise TranslationError(
                    f"column {name!r} ({plan.kind}) cannot be projected"
                )
        decryptor = DecryptionModule(state, factory, paillier=self._paillier)
        return PreparedQuery(
            self, q, decryptor=decryptor,
            scan_filter=base_filter, scan_physical=physical,
        )

    # -- querying ---------------------------------------------------------------

    def query(
        self,
        query: str | Query | QueryBuilder,
        expected_groups: int | None = None,
        compress_at: str = "worker",
        user: str | None = None,
        timeout: float | None = None,
        **params: Any,
    ) -> QueryResult:
        """Translate (or reuse a cached translation), execute, decrypt.

        The query is parameterised by shape -- literals lifted into
        :class:`~repro.query.ast.Param` slots -- and looked up in the
        session's LRU translation cache, so repeated templates skip the
        translator entirely.  Explicit ``:name`` placeholders bind from
        ``params`` (access control itself is enforced inside the shared
        ``PreparedQuery.execute`` path).
        """
        q = self._as_query(query)
        if not q.is_aggregation():
            raise TranslationError(
                "projection queries are not server-computable over encrypted "
                "data; use scan() for row-level projections"
            )
        self._validate_params(q, params)
        prepared, lifted = self._cached_prepare(q, expected_groups, compress_at)
        return prepared.execute(user=user, timeout=timeout, **lifted, **params)

    def scan(
        self,
        query: str | Query | QueryBuilder,
        user: str | None = None,
        timeout: float | None = None,
        **params: Any,
    ) -> QueryResult:
        """Execute a projection (scan) query through the shared prepared
        path (same shape cache and parameter binding as :meth:`query`)."""
        q = self._as_query(query)
        if q.is_aggregation():
            raise TranslationError("scan() is for projection queries; use query()")
        self._validate_params(q, params)
        prepared, lifted = self._cached_prepare(q, None, "worker")
        return prepared.execute(user=user, timeout=timeout, **lifted, **params)

    def query_many(
        self,
        queries: Iterable[Any],
        expected_groups: int | None = None,
        compress_at: str = "worker",
        user: str | None = None,
        max_in_flight: int | None = None,
        timeout: float | None = None,
    ) -> list[QueryResult]:
        """Execute a batch of independent queries, results in input order.

        This is the "millions of users" traffic shape: each entry is
        translated (or served from the translation cache), executed, and
        decrypted independently, so the batch fans out through the
        cluster's execution backend.  With the ``serial`` backend (the
        default) queries run sequentially; with ``threads`` or
        ``processes`` up to ``max_in_flight`` queries (default: the
        backend's worker count) are in flight at once on a driver-side
        thread pool, and their server stages share the backend's worker
        pool.

        Batch entries may be:

        - SQL strings, :class:`Query` ASTs, or builders -- run with the
          batch-level ``expected_groups``;
        - ``(query, expected_groups)`` pairs -- per-query override, so a
          mixed batch does not inflate every entry by one group count;
        - :class:`PreparedQuery` instances, optionally as
          ``(prepared, {param: value})`` pairs -- executed directly with
          zero translation (their own prepare-time ``expected_groups``
          applies).
        """
        jobs = [
            self._batch_job(item, expected_groups, compress_at, user, timeout)
            for item in queries
        ]
        backend = self.cluster.backend
        if backend.name == "serial" or len(jobs) <= 1:
            return [job() for job in jobs]
        width = max_in_flight or backend.workers
        with ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="seabed-query"
        ) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [f.result() for f in futures]

    def _batch_job(
        self,
        item: Any,
        expected_groups: int | None,
        compress_at: str,
        user: str | None,
        timeout: float | None = None,
    ):
        groups = expected_groups
        if isinstance(item, tuple):
            if len(item) != 2:
                raise TranslationError(
                    "batch tuples must be (query, expected_groups) or "
                    "(PreparedQuery, params)"
                )
            first, second = item
            if isinstance(first, PreparedQuery):
                if not isinstance(second, Mapping):
                    raise TranslationError(
                        "a PreparedQuery batch tuple takes a parameter "
                        "mapping as its second element"
                    )
                return lambda: first.execute(
                    user=user, timeout=timeout, **dict(second)
                )
            if not (second is None or isinstance(second, int)):
                raise TranslationError(
                    "per-query expected_groups must be int or None, "
                    f"got {type(second).__name__}"
                )
            item, groups = first, second
        if isinstance(item, PreparedQuery):
            prepared = item
            return lambda: prepared.execute(user=user, timeout=timeout)
        query = item
        per_query_groups = groups
        return lambda: self.query(
            query, expected_groups=per_query_groups,
            compress_at=compress_at, user=user, timeout=timeout,
        )

    def linear_regression(
        self,
        table: str,
        x_column: str,
        y_column: str,
        where: str | None = None,
        user: str | None = None,
    ) -> LinRegResult:
        """Least-squares regression of ``y`` on ``x``: a *two round-trip*
        query (paper Table 6, LinRegSlope/Intercept/R2, category 2R).

        Round 1 aggregates first moments on the server (sums and count);
        the client decrypts them into means.  Round 2 pulls the filtered
        (x, y) ciphertext pairs back to the client -- "data sent back to
        client" -- which decrypts and finishes the second moments and the
        fit.  Both rounds run under the same predicate and the same
        access check.
        """
        predicate = f" WHERE {where}" if where else ""
        first = self.query(
            f"SELECT sum({x_column}), sum({y_column}), count(*) "
            f"FROM {table}{predicate}",
            user=user,
        )
        row = first.rows[0]
        n = row["count(*)"]
        if not n:
            raise TranslationError("linear regression over an empty selection")
        mean_x = row[f"sum({x_column})"] / n
        mean_y = row[f"sum({y_column})"] / n

        second = self.scan(
            f"SELECT {x_column}, {y_column} FROM {table}{predicate}", user=user
        )
        xs = np.array([r[x_column] for r in second.rows], dtype=np.float64)
        ys = np.array([r[y_column] for r in second.rows], dtype=np.float64)
        sxx = float(((xs - mean_x) ** 2).sum())
        sxy = float(((xs - mean_x) * (ys - mean_y)).sum())
        syy = float(((ys - mean_y) ** 2).sum())
        if sxx == 0.0:
            raise TranslationError("x has zero variance; slope undefined")
        slope = sxy / sxx
        intercept = mean_y - slope * mean_x
        r2 = 0.0 if syy == 0.0 else (sxy * sxy) / (sxx * syy)
        return LinRegResult(
            slope=slope, intercept=intercept, r_squared=r2, n=int(n),
            round_trips=2,
            request_metrics=first.request_metrics + second.request_metrics,
        )

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _column_meta(state: ClientTableState) -> dict[str, str]:
        """Physical column -> encryption *scheme*, recorded in store
        manifests.  Per-physical, not per-plan: the ORE/DET companion
        columns of an ASHE measure are recorded as ``ore``/``det``, which
        is what tells the zone-map index (and its leakage auditor) which
        columns are indexable ciphertext and which are semantically
        secure."""
        return {
            physical: scheme
            for plan in state.enc_schema.plans.values()
            for physical, scheme in plan.physical_schemes().items()
        }

    def _commit_state(self, table: str) -> None:
        """Hand the key-free sidecar payload to the transport to write --
        the commit point of saves and appends, possibly executed by a
        remote service on the session's behalf."""
        payload = ps.state_to_dict(
            self._states[table],
            mode=self.mode,
            # The *table's* factory backend, not the session default: a
            # table attached from a store keeps the PRF it was encrypted
            # with, and a re-save must persist that same backend.
            prf_backend=self._factories[table].prf_backend,
            keychain=self._keychain,
            paillier_n=(
                self._paillier.n if self._paillier is not None else None
            ),
        )
        self.transport.commit_state(table, payload)

    def _as_query(self, query: str | Query | QueryBuilder) -> Query:
        if isinstance(query, str):
            return parse_query(query)
        if isinstance(query, QueryBuilder):
            return query.build()
        return query

    def _check_access(self, user: str | None, tables: tuple[str, ...]) -> None:
        if self.access is None:
            return
        for table in tables:
            self.access.check(user, table)

    @staticmethod
    def _validate_params(q: Query, params: Mapping[str, Any]) -> None:
        """Reject values for parameters the query does not declare (the
        shared execute path reports *missing* ones)."""
        names = query_params(q)
        unknown = sorted(set(params) - set(names))
        if unknown:
            raise TranslationError(
                f"unknown parameters {unknown!r}; this query declares "
                f"{list(names)!r}"
            )

    def _cached_prepare(
        self, q: Query, expected_groups: int | None, compress_at: str
    ) -> tuple[PreparedQuery, dict[str, Any]]:
        shape, values = self._parameterize(q)
        key = (shape, expected_groups, compress_at)
        prepared = self._cache.get(key)
        if prepared is None:
            OPS.bump("cache_miss")
            prepared = self.prepare(
                shape, expected_groups=expected_groups, compress_at=compress_at
            )
            self._cache.put(key, prepared)
        else:
            OPS.bump("cache_hit")
        return prepared, values

    def _fixed_predicate_columns(self, q: Query) -> set[str]:
        """Columns whose predicate values shape the translation itself
        (SPLASHE retargeting) and therefore must stay inline."""
        fixed: set[str] = set()
        tables = [q.table] + ([q.join.table] if q.join is not None else [])
        for table in tables:
            state = self._states.get(table)
            if state is None:
                continue
            for name, plan in state.enc_schema.plans.items():
                if plan.kind in ("splashe_basic", "splashe_enhanced"):
                    fixed.add(name)
        return fixed

    def _parameterize(self, q: Query) -> tuple[Query, dict[str, Any]]:
        """Lift predicate literals into fresh ``Param`` slots, returning
        the shape (the cache key) and the lifted values.  Explicit user
        placeholders are kept as-is (their fresh-name counter skips
        collisions); values on SPLASHE dimensions stay inline -- they
        select physical columns, so they are part of the shape."""
        if q.where is None:
            return q, {}
        fixed = self._fixed_predicate_columns(q)
        taken = set(query_params(q))
        values: dict[str, Any] = {}
        counter = iter(range(10**9))

        def lift(value: Any) -> Param:
            if isinstance(value, Param):
                return value  # explicit placeholder: bound by the caller
            name = next(n for i in counter if (n := f"p{i}") not in taken)
            values[name] = value
            return Param(name)

        def sub(node: Predicate) -> Predicate:
            if isinstance(node, Comparison):
                if node.column in fixed:
                    return node
                return Comparison(node.column, node.op, lift(node.value))
            if isinstance(node, InList):
                if node.column in fixed:
                    return node
                return InList(node.column, tuple(lift(v) for v in node.values))
            if isinstance(node, Between):
                if node.column in fixed:
                    return node
                return Between(node.column, lift(node.low), lift(node.high))
            if isinstance(node, Not):
                return Not(sub(node.child))
            if isinstance(node, And):
                return And(tuple(sub(c) for c in node.children))
            if isinstance(node, Or):
                return Or(tuple(sub(c) for c in node.children))
            raise TranslationError(
                f"unknown predicate node {type(node).__name__}"
            )

        return replace(q, where=sub(q.where)), values

    def _state(self, table: str) -> ClientTableState:
        try:
            return self._states[table]
        except KeyError:
            raise PlanningError(
                f"no plan for table {table!r}; call create_plan first"
            ) from None

    def _decrypt_factory(self, q: Query) -> CryptoFactory:
        """Factory used for decryption; join payload columns resolve through
        a composite factory when the query spans two tables."""
        if q.join is None:
            return self._factories[q.table]
        return _CompositeFactory(
            primary=self._factories[q.table],
            secondary=self._factories[q.join.table],
            secondary_columns=set(
                self._states[q.join.table].enc_schema.physical_columns()
            ),
        )

    def _build_server_join(
        self, q: Query, probe: ClientTableState, build: ClientTableState
    ) -> srv.ServerJoin:
        assert q.join is not None
        probe_plan = probe.enc_schema.plans.get(q.join.left_column)
        build_plan = build.enc_schema.plans.get(q.join.right_column)
        if probe_plan is None or build_plan is None:
            raise TranslationError("join columns missing from the plans")
        probe_key = (
            probe_plan.cipher_column if probe_plan.kind == "det" else probe_plan.column
        )
        build_key = (
            build_plan.cipher_column if build_plan.kind == "det" else build_plan.column
        )
        # Build-side physical columns the query touches.
        needed: set[str] = set()
        build_names = set(build.schema.column_names())
        for col in (q.measure_columns() | q.dimension_columns()) - {q.join.left_column}:
            if col in build_names and col not in set(probe.schema.column_names()):
                needed.update(build.enc_schema.plan(col).physical_columns())
        return srv.ServerJoin(
            build_table=build.schema.name,
            probe_key_column=probe_key,
            build_key_column=build_key,
            payload_columns=tuple(sorted(needed)),
        )

    # -- introspection -------------------------------------------------------------

    def encrypted_schema(self, table: str) -> sc.EncryptedSchema:
        return self._state(table).enc_schema

    def table_state(self, table: str) -> ClientTableState:
        return self._state(table)

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/size counters of the translation cache."""
        return self._cache.stats()


class _CompositeFactory:
    """Routes physical-column scheme lookups across two tables' factories."""

    def __init__(self, primary: CryptoFactory, secondary: CryptoFactory,
                 secondary_columns: set[str]):
        self._primary = primary
        self._secondary = secondary
        self._secondary_columns = secondary_columns

    def _route(self, physical_column: str) -> CryptoFactory:
        if physical_column in self._secondary_columns:
            return self._secondary
        return self._primary

    def ashe(self, physical_column: str):
        return self._route(physical_column).ashe(physical_column)

    def det(self, physical_column: str, join_group: str | None = None):
        return self._route(physical_column).det(physical_column, join_group)

    def ore(self, physical_column: str, nbits: int = 32, signed: bool = True):
        return self._route(physical_column).ore(physical_column, nbits, signed)
