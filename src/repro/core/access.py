"""Proxy-side access control (paper Section 4.3).

Symmetric keys are normally hard to revoke -- once shared, only
re-encryption invalidates them.  Seabed sidesteps this because the proxy
mediates every query: the secret keys never leave it, so access can be
granted, limited to specific tables, and revoked instantly without
touching the ciphertexts ("it can revoke or limit their access without
re-encryption").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SeabedError


class AccessError(SeabedError):
    """A user attempted a query they are not authorised to run."""


@dataclass
class _Grant:
    tables: set[str] | None  # None = all tables
    revoked: bool = False


@dataclass
class AccessController:
    """Tracks per-user grants; consulted by the proxy before each query."""

    _grants: dict[str, _Grant] = field(default_factory=dict)

    def grant(self, user: str, tables: set[str] | None = None) -> None:
        """Allow ``user`` to query ``tables`` (None = every table).
        Re-granting un-revokes."""
        self._grants[user] = _Grant(tables=set(tables) if tables else None)

    def limit(self, user: str, tables: set[str]) -> None:
        """Restrict an existing user to a subset of tables."""
        grant = self._grants.get(user)
        if grant is None or grant.revoked:
            raise AccessError(f"user {user!r} has no active grant to limit")
        grant.tables = set(tables)

    def revoke(self, user: str) -> None:
        """Invalidate a user immediately; no re-encryption required."""
        grant = self._grants.get(user)
        if grant is None:
            raise AccessError(f"user {user!r} was never granted access")
        grant.revoked = True

    def check(self, user: str | None, table: str) -> None:
        """Raise :class:`AccessError` unless ``user`` may query ``table``."""
        if user is None:
            raise AccessError("access control is enabled; a user is required")
        grant = self._grants.get(user)
        if grant is None:
            raise AccessError(f"user {user!r} has no grant")
        if grant.revoked:
            raise AccessError(f"user {user!r} has been revoked")
        if grant.tables is not None and table not in grant.tables:
            raise AccessError(
                f"user {user!r} may not query table {table!r}"
            )

    def is_active(self, user: str) -> bool:
        grant = self._grants.get(user)
        return grant is not None and not grant.revoked
