"""Query-support classification (paper Section 5, Tables 4 and 6).

Seabed sorts analytical queries into four support categories:

- ``S``     -- computed fully on the server (sums, counts, min/max via
  ORE, averages with only a trailing client division);
- ``CPre``  -- needs client *pre*-processing at upload time (squared
  columns for variance/stddev/covariance, auxiliary counters);
- ``CPost`` -- needs client *post*-processing (user-defined functions,
  conditional values, model evaluation);
- ``2R``    -- needs two client round-trips (iterative computations such
  as linear regression, where an intermediate result is re-encrypted and
  sent back).

:func:`classify_query` handles pure-AST queries; :func:`classify_features`
handles catalog entries (MDX functions, TPC-DS templates, ad-analytics
logs) whose classification depends on structural features our SQL subset
does not express (UDFs, iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.ast import QUADRATIC_AGGS, Query

CATEGORIES = ("S", "CPre", "CPost", "2R")

#: Aggregate functions needing client-side squared (or cross-term) columns.
_PRECOMPUTE_AGGS = QUADRATIC_AGGS | {"correlation", "covariance"}


@dataclass(frozen=True)
class QueryFeatures:
    """Structural features driving the support category."""

    aggregates: frozenset[str] = frozenset()
    has_udf: bool = False  # arbitrary user-defined function over the data
    returns_data_for_client_compute: bool = False  # Monomi-style splitting
    iterative: bool = False  # needs an encrypted intermediate round-trip
    needs_precomputed_column: bool = False  # e.g. CoalesceEmpty counters

    def category(self) -> str:
        if self.iterative:
            return "2R"
        if self.has_udf or self.returns_data_for_client_compute:
            return "CPost"
        if self.needs_precomputed_column or (self.aggregates & _PRECOMPUTE_AGGS):
            return "CPre"
        return "S"


def classify_features(features: QueryFeatures) -> str:
    return features.category()


def classify_query(query: Query) -> str:
    """Category for a pure SQL-subset query (no UDFs expressible)."""
    aggs = frozenset(a.func for a in query.aggregates())
    return QueryFeatures(aggregates=aggs).category()


@dataclass
class CategoryCounts:
    """Tallies for one query set (one row of the paper's Table 4)."""

    name: str
    total: int = 0
    counts: dict[str, int] = field(default_factory=lambda: {c: 0 for c in CATEGORIES})

    def add(self, category: str, n: int = 1) -> None:
        self.counts[category] += n
        self.total += n

    def row(self) -> dict[str, int]:
        return {
            "Total": self.total,
            "Purely on Server": self.counts["S"],
            "Client Pre-processing": self.counts["CPre"],
            "Client Post-processing": self.counts["CPost"],
            "Two Round-trips": self.counts["2R"],
        }
