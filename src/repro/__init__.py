"""Seabed reproduction: big-data analytics over encrypted datasets.

This package reimplements the system described in *Big Data Analytics over
Encrypted Datasets with Seabed* (OSDI 2016): the ASHE and SPLASHE encryption
schemes, the Seabed planner / encryptor / translator / decryptor pipeline,
a Paillier baseline, and a simulated-cluster columnar engine standing in for
the paper's Spark deployment.

Public entry points:

- :class:`repro.core.session.SeabedSession` -- the client-side session
  facade (plan, upload, fluent ``table()`` builder, ``prepare``/cached
  ``query``, scan, linear_regression).
- :class:`repro.core.session.PreparedQuery` -- translate once, execute
  many times with bound parameters.
- :class:`repro.query.builder.QueryBuilder` / :func:`col` -- the fluent
  query builder, and :class:`repro.query.ast.Param` for placeholders.
- :class:`repro.core.proxy.SeabedClient` -- deprecated back-compat shim
  over ``SeabedSession``.
- :class:`repro.core.schema.TableSchema` / :class:`ColumnSpec` -- schema
  declarations fed to the planner.
- :mod:`repro.crypto` -- ASHE, DET, ORE, Paillier, PRFs.
- :mod:`repro.engine` -- the execution substrate.
- :mod:`repro.workloads` -- dataset and query-set generators used by the
  benchmark harness.
- :func:`repro.serve` / :func:`repro.connect` -- host stores behind the
  asyncio TCP service and open sessions against it over the wire
  (:mod:`repro.net`).
"""

__version__ = "0.1.0"

__all__ = [
    "AppendStats",
    "ColumnSpec",
    "EncryptedTable",
    "LocalTransport",
    "Param",
    "PreparedQuery",
    "QueryBuilder",
    "RemoteTransport",
    "SeabedClient",
    "SeabedSession",
    "TableSchema",
    "Transport",
    "__version__",
    "col",
    "connect",
    "serve",
]

_LAZY = {
    "AppendStats": ("repro.core.session", "AppendStats"),
    "SeabedClient": ("repro.core.proxy", "SeabedClient"),
    "SeabedSession": ("repro.core.session", "SeabedSession"),
    "EncryptedTable": ("repro.core.session", "EncryptedTable"),
    "PreparedQuery": ("repro.core.session", "PreparedQuery"),
    "QueryBuilder": ("repro.query.builder", "QueryBuilder"),
    "col": ("repro.query.builder", "col"),
    "Param": ("repro.query.ast", "Param"),
    "ColumnSpec": ("repro.core.schema", "ColumnSpec"),
    "TableSchema": ("repro.core.schema", "TableSchema"),
    "Transport": ("repro.core.transport", "Transport"),
    "LocalTransport": ("repro.core.transport", "LocalTransport"),
    "RemoteTransport": ("repro.net.client", "RemoteTransport"),
    "connect": ("repro.net.client", "connect"),
    "serve": ("repro.net.service", "serve"),
}


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and break no subpackage cycles.
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
