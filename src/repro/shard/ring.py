"""Consistent-hash ring: shard routing and replica placement.

The sharded tier splits a table across N shard workers by the DET token
of a designated shard-key column.  DET tokens are already uniformly
distributed 64-bit values (a keyed PRP output), so hashing them once
more with a public mixer and walking a virtual-node ring gives the three
properties the coordinator needs:

- **balance** -- with enough virtual nodes per member, each member owns
  a near-equal arc of the token space;
- **minimal movement** -- adding or removing a member only reassigns the
  keys that land on that member's arcs; keys never move *between*
  surviving members (the property the hypothesis suite pins down);
- **routability** -- a ``DetEq``/``DetIn`` predicate's tokens identify
  the owning shards without touching any data.

Replica chains are placed at *member* granularity, not per key: shard
``s``'s store is replicated on the next ``R - 1`` distinct members of a
hash-ordered member circle.  Per-vnode successor sets would scatter one
shard's rows across differing replica groups, which is useless when the
unit of storage (and failover) is a whole generation-logged store.

Everything here is deterministic and keyless -- the ring can be rebuilt
from the topology record alone, in any process, and two rings built from
the same member list are bit-identical.  The mixer is the same public
splitmix64 finaliser the zone-map bloom filters use.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ExecutionError

_U64 = np.uint64
_MASK64 = (1 << 64) - 1

# splitmix64 finaliser constants (public; also used by repro.index.bloom).
_MIX_MUL_1 = 0xBF58476D1CE4E5B9
_MIX_MUL_2 = 0x94D049BB133111EB


def hash_key(key: int) -> int:
    """Public 64-bit mix of an integer key (DET tokens route through this)."""
    x = int(key) & _MASK64
    x ^= x >> 30
    x = (x * _MIX_MUL_1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX_MUL_2) & _MASK64
    return x ^ (x >> 31)


def _hash_keys(keys: np.ndarray) -> np.ndarray:
    x = np.asarray(keys, dtype=_U64)
    x = x ^ (x >> _U64(30))
    x = x * _U64(_MIX_MUL_1)
    x = x ^ (x >> _U64(27))
    x = x * _U64(_MIX_MUL_2)
    return x ^ (x >> _U64(31))


def _point(member: str | int, vnode: int) -> int:
    """Ring position of one virtual node (stable across processes)."""
    digest = hashlib.blake2b(
        f"{member}#{vnode}".encode(), digest_size=8, person=b"seabedRING"
    ).digest()
    return int.from_bytes(digest, "little")


class HashRing:
    """A virtual-node consistent-hash ring over shard members.

    ``members`` is the ordered member list (shard identifiers -- ints in
    the sharded store, but any string/int works); ``vnodes`` virtual
    nodes per member smooth the arc lengths; ``replicas`` is the R-way
    placement factor used by :meth:`replica_chain`.
    """

    def __init__(
        self,
        members: Sequence[str | int],
        vnodes: int = 64,
        replicas: int = 1,
    ):
        members = list(members)
        if not members:
            raise ExecutionError("a hash ring needs at least one member")
        if len(set(members)) != len(members):
            raise ExecutionError(f"duplicate ring members in {members!r}")
        if vnodes < 1:
            raise ExecutionError(f"vnodes must be positive, got {vnodes}")
        if not 1 <= replicas <= len(members):
            raise ExecutionError(
                f"replicas must be in [1, {len(members)}] for "
                f"{len(members)} member(s), got {replicas}"
            )
        self.members = tuple(members)
        self.vnodes = int(vnodes)
        self.replicas = int(replicas)
        points: list[tuple[int, int]] = []
        for idx, member in enumerate(members):
            for v in range(vnodes):
                points.append((_point(member, v), idx))
        # Ties between distinct members at one point are broken by member
        # order -- astronomically unlikely at 64 bits, but deterministic.
        points.sort()
        self._points = np.asarray([p for p, _ in points], dtype=_U64)
        self._point_owner = np.asarray([i for _, i in points], dtype=np.int64)
        # Member circle for replica chains: hash-ordered, vnode-free.
        self._circle = sorted(
            range(len(members)), key=lambda i: (_point(members[i], -1), i)
        )

    # -- key routing ---------------------------------------------------------

    def owner(self, key: int) -> str | int:
        """The member owning ``key`` (first vnode at or after its hash)."""
        idx = int(
            np.searchsorted(self._points, _U64(hash_key(key)), side="left")
        )
        if idx == len(self._points):
            idx = 0  # wrap past the last vnode
        return self.members[int(self._point_owner[idx])]

    def owners(self, keys: np.ndarray | Iterable[int]) -> np.ndarray:
        """Vectorised :meth:`owner`: member *indices* for a key array."""
        hashed = _hash_keys(np.asarray(list(keys) if not isinstance(
            keys, np.ndarray) else keys, dtype=_U64))
        idx = np.searchsorted(self._points, hashed, side="left")
        idx[idx == len(self._points)] = 0
        return self._point_owner[idx]

    # -- replica placement ---------------------------------------------------

    def replica_chain(self, member: str | int) -> tuple[str | int, ...]:
        """``member`` plus the next R-1 distinct members of the member
        circle -- where the member's shard store is replicated, and the
        order the coordinator fails over in."""
        try:
            idx = self.members.index(member)
        except ValueError:
            raise ExecutionError(f"{member!r} is not a ring member") from None
        pos = self._circle.index(idx)
        chain = [
            self.members[self._circle[(pos + step) % len(self._circle)]]
            for step in range(self.replicas)
        ]
        return tuple(chain)

    def preference(self, key: int) -> tuple[str | int, ...]:
        """The replica chain of the key's owner (who may serve the key)."""
        return self.replica_chain(self.owner(key))

    def __repr__(self) -> str:
        return (
            f"HashRing(members={len(self.members)}, vnodes={self.vnodes}, "
            f"replicas={self.replicas})"
        )
