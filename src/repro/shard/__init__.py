"""Sharded multi-node execution (scatter-gather over worker processes).

The paper runs Seabed on a Spark cluster where data is partitioned
across machines and queries scatter to the partitions' hosts.  This
package reproduces that dimension with real process isolation: a table
is split across N shard workers -- each its own OS process owning a
disjoint generation-logged partition store -- placed on a consistent-
hash ring with R-way replica chains.  A coordinator routes DET
point/IN predicates to owning shards, prunes shards through zone-map
rollups, scatter-gathers partial aggregates, and retries a dead
worker's stage on a replica, keeping results bit-identical to
single-store execution.
"""

from repro.shard.coordinator import ShardCoordinator, ShardedStore, ShardTopology
from repro.shard.ring import HashRing, hash_key
from repro.shard.worker import shard_alias, shard_worker_main

__all__ = [
    "HashRing",
    "ShardCoordinator",
    "ShardTopology",
    "ShardedStore",
    "hash_key",
    "shard_alias",
    "shard_worker_main",
]
