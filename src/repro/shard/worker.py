"""The shard worker: one process, one node directory, N hosted shards.

A worker is a full (if small) Seabed server in its own OS process: it
owns a node directory containing one generation-logged partition store
per hosted shard -- the shards whose replica chain includes this node --
and serves the coordinator's RPCs over the :mod:`repro.engine.transport`
pipe.  Process isolation is the point: a crash (injected or real) kills
exactly one node's stores out of the table, and the coordinator observes
a dead pipe, not a corrupted in-process state.

Stores are registered on the worker's local :class:`SeabedServer` under
the alias ``{table}::shard{sid}`` because one node hosts several shards
of the *same* table (its primaries plus replicas) and the server
registry is keyed by name.  The alias is also the name written into each
shard store's manifest, so re-attaching after a restart needs no
rename.  Incoming :class:`ServerQuery` objects reference the base table
name; the worker rewrites them to the alias before executing.

Everything data-bearing that crosses the pipe is ciphertext: append
batches arrive as SBED-serialised encrypted tables, queries carry
DET/ORE tokens, and replies carry encrypted partial aggregates -- the
worker holds no keys, exactly like the paper's untrusted cluster nodes.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
from multiprocessing import connection
from typing import Any, Sequence

from repro.core import server as srv
from repro.engine import store as store_mod
from repro.engine import transport
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.engine.storage import deserialize_table
from repro.engine.table import Table
from repro.errors import StorageError
from repro.index.rollup import rollup_zone_maps
from repro.obs import trace as obs_trace


def shard_alias(table: str, shard_id: int) -> str:
    """Registry/manifest name of one shard's slice of ``table``."""
    return f"{table}::shard{shard_id}"


class _ShardWorker:
    """Handler object behind one worker process's serve loop."""

    def __init__(self, node_id: int, node_dir: str, config: ClusterConfig):
        self.node_id = node_id
        self.node_dir = node_dir
        self.cluster = SimulatedCluster(config)
        self.server = srv.SeabedServer(self.cluster, pruning=True)

    # -- store plumbing ----------------------------------------------------

    def _store_dir(self, shard_id: int) -> str:
        return os.path.join(self.node_dir, f"shard-{shard_id}")

    def _register(self, table: str, shard_id: int) -> Table:
        opened = store_mod.open_store(self._store_dir(shard_id))
        self.server.register(opened)
        return opened

    def _has_store(self, shard_id: int) -> bool:
        """A shard the ring never routed a row to has no store at all --
        an *empty shard*, not an error (four distinct shard-key values
        can land on three of four shards)."""
        path = self._store_dir(shard_id)
        return os.path.exists(os.path.join(path, store_mod.MANIFEST_NAME))

    def _ensure(self, table: str, shard_id: int) -> str:
        """Alias of the shard's table, attaching the store lazily."""
        alias = shard_alias(table, shard_id)
        if self.server.get(alias) is None:
            if not self._has_store(shard_id):
                raise StorageError(
                    f"node {self.node_id} hosts no store for shard "
                    f"{shard_id} of table {table!r}"
                )
            self._register(table, shard_id)
        return alias

    # -- RPC handlers ------------------------------------------------------

    def ping(self) -> int:
        return self.node_id

    def append(
        self,
        table: str,
        shard_id: int,
        blob: bytes,
        column_meta: dict[str, str] | None,
    ) -> int:
        """Write or append one encrypted batch into the shard's store.

        The batch arrives SBED-serialised under the base table name and
        is re-badged to the shard alias so the store's own name check
        (and any later re-attach) stays coherent per shard.
        """
        batch = deserialize_table(blob)
        alias = shard_alias(table, shard_id)
        batch = Table(alias, batch.partitions)
        path = self._store_dir(shard_id)
        if os.path.exists(os.path.join(path, store_mod.MANIFEST_NAME)):
            generation = store_mod.append_store(batch, path, column_meta)
        else:
            store_mod.write_store(batch, path, column_meta)
            generation = store_mod.FIRST_GENERATION
        self._register(table, shard_id)
        return generation

    def rows(self, table: str, shard_id: int) -> int:
        path = self._store_dir(shard_id)
        if not os.path.exists(os.path.join(path, store_mod.MANIFEST_NAME)):
            return 0
        return store_mod.store_num_rows(path)

    def truncate(self, table: str, shard_id: int, num_rows: int) -> int:
        """Roll back uncommitted append generations (crash recovery).

        Rolling back to zero rows -- a writer died during this shard's
        very first append -- removes the store entirely: a generation
        log cannot be truncated below its first generation, and an
        empty store is exactly "no store yet".
        """
        path = self._store_dir(shard_id)
        if not os.path.exists(os.path.join(path, store_mod.MANIFEST_NAME)):
            return 0
        if num_rows == 0:
            dropped = len(store_mod.store_generations(path))
            store_mod._evict_cached(os.path.abspath(path))
            shutil.rmtree(path)
            self.server.unregister(shard_alias(table, shard_id))
            return dropped
        dropped = store_mod.truncate_store(path, num_rows)
        if dropped:
            self._register(table, shard_id)
        return dropped

    def compact(
        self, table: str, shard_id: int, target_rows: int | None = None
    ) -> dict | None:
        stats = store_mod.compact_store(self._store_dir(shard_id), target_rows)
        if stats is not None:
            self._register(table, shard_id)
        return stats

    def rollup(self, table: str, shard_id: int) -> tuple[int, dict | None]:
        """(generation, shard-level zone-map rollup) for coordinator
        pruning; the generation keys the coordinator's rollup cache.
        An empty shard reports a zero-row rollup: the strongest prune."""
        if not self._has_store(shard_id):
            return 0, {"rows": 0, "nulls": 0, "columns": {}}
        self._ensure(table, shard_id)
        rdr = store_mod.reader(self._store_dir(shard_id))
        return rdr.generation, rollup_zone_maps(rdr.zone_maps)

    def execute(self, shard_id: int, q: srv.ServerQuery) -> srv.ServerResponse:
        """Partial aggregates over this node's copy of one shard."""
        if not self._has_store(shard_id):
            # Empty shard: nothing to aggregate, the partial is vacuous.
            if q.group_by is not None:
                return srv.ServerResponse(kind="grouped", groups=[])
            return srv.ServerResponse(
                kind="partial", flat={agg.alias: [] for agg in q.aggs}
            )
        alias = self._ensure(q.table, shard_id)
        return self.server.execute_partial(dataclasses.replace(q, table=alias))

    def scan(
        self,
        table: str,
        shard_id: int,
        columns: Sequence[str],
        filt: Any,
    ) -> srv.ServerResponse | None:
        """``None`` for an empty shard: with no store there is no dtype
        to shape even a zero-row reply, so the coordinator drops it."""
        if not self._has_store(shard_id):
            return None
        alias = self._ensure(table, shard_id)
        return self.server.scan(alias, columns, filt)

    def shutdown(self) -> None:
        self.cluster.close()

    def handlers(self) -> dict[str, Any]:
        return {
            "ping": self.ping,
            "append": self.append,
            "rows": self.rows,
            "truncate": self.truncate,
            "compact": self.compact,
            "rollup": self.rollup,
            "execute": self.execute,
            "scan": self.scan,
            "shutdown": self.shutdown,
        }


def shard_worker_main(
    conn: connection.Connection,
    node_id: int,
    node_dir: str,
    config: ClusterConfig,
) -> None:
    """Process entry point: build the worker and serve until shutdown."""
    obs_trace.set_process_label(f"shard-node-{node_id}")
    worker = _ShardWorker(node_id, node_dir, config)
    try:
        transport.serve(conn, worker.handlers())
    finally:
        worker.cluster.close()
